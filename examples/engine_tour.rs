//! Tour of the execution engine: stages, broadcast, and the virtual
//! cluster model — the substrate standing in for Spark.
//!
//! ```sh
//! cargo run --release --example engine_tour
//! ```

use rp_dbscan::engine::{CostModel, Engine};

fn main() {
    // A virtual 10-worker cluster with an explicit network model: 1 GB/s,
    // 1 ms latency, 2 ms task-launch overhead (Azure-ish numbers).
    let engine = Engine::with_cost_model(
        10,
        CostModel {
            bandwidth_bytes_per_sec: 1.0e9,
            latency_sec: 1.0e-3,
            per_task_overhead_sec: 2.0e-3,
        },
    );

    // Stage 1: forty uneven tasks. The engine measures each task's real
    // duration and schedules them onto the 10 virtual workers.
    let inputs: Vec<u64> = (1..=40).collect();
    let result = engine.run_stage("demo:uneven", inputs, |_, weight| {
        // Simulate work proportional to the weight.
        let mut acc = 0u64;
        for i in 0..weight * 200_000 {
            acc = acc.wrapping_add(i).rotate_left(3);
        }
        acc
    });
    println!(
        "stage '{}': {} tasks on {} workers",
        result.metrics.name, result.metrics.num_tasks, result.metrics.workers
    );
    println!(
        "  total CPU {:.3}s, simulated makespan {:.3}s, load imbalance {:.1}x",
        result.metrics.total_cpu(),
        result.metrics.makespan,
        result.metrics.load_imbalance()
    );

    // Stage 2: broadcast 8 MB to every worker (like the cell dictionary).
    let t = engine.broadcast_cost("demo:broadcast", 8 << 20);
    println!("broadcast of 8 MiB to 10 workers: {t:.4}s simulated");

    // Stage 3: same tasks, one virtual worker — the speed-up denominator.
    let single = Engine::with_cost_model(1, CostModel::free());
    let inputs: Vec<u64> = (1..=40).collect();
    let r1 = single.run_stage("demo:single", inputs, |_, weight| {
        let mut acc = 0u64;
        for i in 0..weight * 200_000 {
            acc = acc.wrapping_add(i).rotate_left(3);
        }
        acc
    });
    println!(
        "speed-up 1 -> 10 workers: {:.2}x (ideal 10x; uneven tasks cap it)",
        r1.metrics.makespan / result.metrics.makespan
    );

    // The report aggregates everything that ran.
    println!("\nfull report:");
    for s in engine.report().stages {
        println!(
            "  {:<16} tasks={:<3} elapsed={:.4}s",
            s.name,
            s.num_tasks,
            s.elapsed()
        );
    }
}
