//! Tour of the execution engine: fallible stages, retry, pluggable
//! schedulers, and trace export — the substrate standing in for Spark.
//!
//! ```sh
//! cargo run --release --example engine_tour
//! ```

use rp_dbscan::engine::{CostModel, Engine, Lpt, RetryPolicy, TaskError};

fn spin(weight: u64) -> u64 {
    let mut acc = 0u64;
    for i in 0..weight * 200_000 {
        acc = acc.wrapping_add(i).rotate_left(3);
    }
    acc
}

fn main() {
    // A virtual 10-worker cluster with an explicit network model: 1 GB/s,
    // 1 ms latency, 2 ms task-launch overhead (Azure-ish numbers). LPT
    // scheduling places the longest tasks first.
    let engine = Engine::with_cost_model(
        10,
        CostModel {
            bandwidth_bytes_per_sec: 1.0e9,
            latency_sec: 1.0e-3,
            per_task_overhead_sec: 2.0e-3,
        },
    )
    .with_scheduler(Lpt);

    // Stage 1: forty uneven tasks. Every task gets a TaskCtx (stage name,
    // index, virtual worker lane) and returns a Result; the engine
    // measures each task's real duration and schedules them onto the 10
    // virtual workers.
    let inputs: Vec<u64> = (1..=40).collect();
    let result = engine
        .run_stage("demo:uneven", inputs, |ctx, weight| {
            if ctx.is_cancelled() {
                return Err(TaskError::new("cancelled"));
            }
            Ok(spin(weight))
        })
        .expect("no task fails");
    println!(
        "stage '{}': {} tasks on {} workers under {} scheduling",
        result.metrics.name,
        result.metrics.num_tasks,
        result.metrics.workers,
        engine.scheduler_name()
    );
    println!(
        "  work {:.3}s, simulated makespan {:.3}s (lower bound {:.3}s, imbalance {:.2}), load skew {:.1}x",
        result.metrics.work,
        result.metrics.makespan,
        result.metrics.makespan_lower_bound(),
        result.metrics.imbalance,
        result.metrics.load_imbalance()
    );

    // Stage 2: broadcast 8 MB to every worker (like the cell dictionary).
    let t = engine.broadcast_cost("demo:broadcast", 8 << 20);
    println!("broadcast of 8 MiB to 10 workers: {t:.4}s simulated");

    // Stage 3: a flaky task recovered by bounded retry. The first attempt
    // fails; the second succeeds, so the stage still returns Ok. Retry is
    // an engine-wide policy, so this demo runs on its own engine.
    let flaky =
        Engine::with_cost_model(4, CostModel::free()).with_retry(RetryPolicy::with_attempts(2));
    let recovered = flaky
        .run_stage("demo:flaky", vec![7u64], |ctx, weight| {
            if ctx.attempt() == 1 {
                return Err(TaskError::new("transient failure"));
            }
            Ok(spin(weight))
        })
        .expect("second attempt succeeds");
    println!(
        "flaky task recovered on retry: output {}",
        recovered.outputs[0]
    );

    // Stage 4: a hard failure surfaces as an Err instead of a panic; the
    // engine stays usable afterwards.
    let err = flaky
        .run_stage("demo:poisoned", vec![1u64, 2, 3], |ctx, _| {
            if ctx.index() == 1 {
                return Err(TaskError::new("poisoned partition"));
            }
            Ok(0u64)
        })
        .unwrap_err();
    println!("hard failure surfaced: {err}");

    // Stage 5: same tasks, one virtual worker — the speed-up denominator.
    let single = Engine::with_cost_model(1, CostModel::free());
    let inputs: Vec<u64> = (1..=40).collect();
    let r1 = single
        .run_stage("demo:single", inputs, |_ctx, weight| Ok(spin(weight)))
        .expect("no task fails");
    println!(
        "speed-up 1 -> 10 workers: {:.2}x (ideal 10x; uneven tasks cap it)",
        r1.metrics.makespan / result.metrics.makespan
    );

    // The report aggregates everything that ran, including the execution
    // trace (Chrome trace-event JSON — load it in Perfetto).
    println!("\nfull report:");
    let report = engine.report();
    for s in &report.stages {
        println!(
            "  {:<16} tasks={:<3} scheduler={:<6} elapsed={:.4}s",
            s.name,
            s.num_tasks,
            s.scheduler,
            s.elapsed()
        );
    }
    let trace = report.chrome_trace_json();
    println!(
        "\ntrace: {} events, {} bytes of Chrome trace JSON",
        report.trace.spans.len() + report.trace.events.len(),
        trace.len()
    );
}
