//! Skewed geospatial workload: the scenario that motivates RP-DBSCAN.
//!
//! GeoLife-style GPS data is heavily skewed (most users stayed in one
//! metro area). Region-split parallel DBSCANs assign whole sub-regions to
//! workers, so one worker inherits the metro blob and the rest idle; the
//! paper reports load imbalances of 2.90–623× for them versus 1.44 for
//! RP-DBSCAN (§7.3.1). This example reproduces that comparison at laptop
//! scale.
//!
//! ```sh
//! cargo run --release --example skewed_geo
//! ```

use rp_dbscan::prelude::*;

fn main() {
    let data = synth::geolife_like(SynthConfig::new(60_000));
    // ε must be small relative to the dense region so that the metro blob
    // spans many cells — that's what lets random cell dealing balance the
    // load (the paper's GeoLife runs satisfy this by data scale).
    let eps = 0.3;
    let min_pts = 10;
    let workers = 8;

    println!("GeoLife-like skewed data: {} points in 3-d", data.len());
    println!("{:-<72}", "");
    println!(
        "{:<14} {:>12} {:>16} {:>14} {:>10}",
        "algorithm", "elapsed(s)", "load imbalance", "pts processed", "clusters"
    );

    // RP-DBSCAN: random cells -> balanced splits.
    let engine = Engine::new(workers);
    let out = RpDbscan::new(RpDbscanParams::new(eps, min_pts).with_partitions(workers * 4))
        .unwrap()
        .run(&data, &engine)
        .unwrap();
    let report = engine.report();
    println!(
        "{:<14} {:>12.3} {:>16.2} {:>14} {:>10}",
        "RP-DBSCAN",
        report.total_elapsed(),
        report.load_imbalance_with_prefix("phase2"),
        out.stats.points_processed,
        out.clustering.num_clusters()
    );

    // Region-split competitors: contiguous sub-regions -> one worker gets
    // the metro area.
    for (name, params) in [
        ("ESP-DBSCAN", RegionParams::esp(eps, min_pts, 0.01, workers)),
        ("RBP-DBSCAN", RegionParams::rbp(eps, min_pts, 0.01, workers)),
        ("CBP-DBSCAN", RegionParams::cbp(eps, min_pts, 0.01, workers)),
    ] {
        let engine = Engine::new(workers);
        let out = RegionDbscan::new(params).run(&data, &engine).unwrap();
        let report = engine.report();
        println!(
            "{:<14} {:>12.3} {:>16.2} {:>14} {:>10}",
            name,
            report.total_elapsed(),
            report.load_imbalance_with_prefix("local:"),
            out.points_processed,
            out.clustering.num_clusters()
        );
    }

    println!("{:-<72}", "");
    println!(
        "Note: 'pts processed' > {} for the region family is halo duplication;",
        data.len()
    );
    println!("RP-DBSCAN processes each point exactly once (Figure 14).");
}
