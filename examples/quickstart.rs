//! Quickstart: cluster a two-moons data set with RP-DBSCAN and compare
//! against exact DBSCAN.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use rp_dbscan::prelude::*;

fn main() {
    // 1. A data set DBSCAN is good at: two interleaving half-moons.
    let data = synth::moons(SynthConfig::new(20_000), 0.05);
    println!("data: {} points, {} dims", data.len(), data.dim());

    // 2. Configure RP-DBSCAN. eps/minPts are the usual DBSCAN knobs;
    //    rho controls the dictionary approximation (0.01 = paper default,
    //    indistinguishable from exact), and partitions says how many
    //    random splits to process in parallel.
    let params = RpDbscanParams::new(0.15, 10)
        .with_rho(0.01)
        .with_partitions(8);

    // 3. Run on a simulated 8-worker cluster.
    let engine = Engine::new(8);
    let out = RpDbscan::new(params)
        .expect("valid parameters")
        .run(&data, &engine)
        .expect("clustering succeeds");

    println!(
        "RP-DBSCAN: {} clusters, {} noise points",
        out.clustering.num_clusters(),
        out.clustering.noise_count()
    );
    println!(
        "dictionary: {} cells / {} sub-cells, {} bytes broadcast ({:.3}% of the data)",
        out.stats.dict_cells,
        out.stats.dict_subcells,
        out.stats.dict_wire_bytes,
        100.0 * out.stats.dict_size_bits as f64 / 8.0 / data.paper_size_bytes() as f64,
    );

    // 4. Sanity-check against the original DBSCAN algorithm.
    let exact = exact_dbscan(&data, 0.15, 10);
    let ri = rand_index(
        &exact.clustering,
        &out.clustering,
        NoisePolicy::SingleCluster,
    );
    println!("Rand index vs exact DBSCAN: {ri:.4}");

    // 5. The engine recorded a per-phase breakdown (Figure 12's view).
    let report = engine.report();
    for prefix in ["phase1-1", "phase1-2", "phase2", "phase3-1", "phase3-2"] {
        println!("  {prefix:9} {:8.4}s", report.elapsed_with_prefix(prefix));
    }
    println!("  total     {:8.4}s (simulated)", report.total_elapsed());
}
