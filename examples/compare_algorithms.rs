//! Head-to-head: all six parallel DBSCAN algorithms on one workload —
//! a miniature of the paper's Figure 11 comparison.
//!
//! ```sh
//! cargo run --release --example compare_algorithms [n_points]
//! ```

use rp_dbscan::prelude::*;
use std::time::Instant;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(30_000);
    let data = synth::cosmo_like(SynthConfig::new(n));
    let eps = 1.0;
    let min_pts = 20;
    let workers = 8;
    let rho = 0.01;

    println!("Cosmo-like data: {n} points, eps={eps}, minPts={min_pts}, {workers} workers");
    println!("{:-<78}", "");
    println!(
        "{:<14} {:>10} {:>12} {:>12} {:>9} {:>9}",
        "algorithm", "wall(s)", "simulated(s)", "processed", "clusters", "RI"
    );

    let exact = exact_dbscan(&data, eps, min_pts);
    let ri = |c: &Clustering| rand_index(&exact.clustering, c, NoisePolicy::SingleCluster);

    // RP-DBSCAN
    let engine = Engine::new(workers);
    let wall = Instant::now(); // lint:allow(determinism-time): wall-clock timing is printed for the user, not fed into clustering results
    let out = RpDbscan::new(
        RpDbscanParams::new(eps, min_pts)
            .with_rho(rho)
            .with_partitions(workers * 4),
    )
    .unwrap()
    .run(&data, &engine)
    .unwrap();
    println!(
        "{:<14} {:>10.2} {:>12.3} {:>12} {:>9} {:>9.4}",
        "RP-DBSCAN",
        wall.elapsed().as_secs_f64(),
        engine.report().total_elapsed(),
        out.stats.points_processed,
        out.clustering.num_clusters(),
        ri(&out.clustering)
    );

    // Region-split family + SPARK.
    for (name, params) in [
        ("ESP-DBSCAN", RegionParams::esp(eps, min_pts, rho, workers)),
        ("RBP-DBSCAN", RegionParams::rbp(eps, min_pts, rho, workers)),
        ("CBP-DBSCAN", RegionParams::cbp(eps, min_pts, rho, workers)),
        ("SPARK-DBSCAN", RegionParams::spark(eps, min_pts, workers)),
    ] {
        let engine = Engine::new(workers);
        let wall = Instant::now(); // lint:allow(determinism-time): wall-clock timing is printed for the user, not fed into clustering results
        let out = RegionDbscan::new(params).run(&data, &engine).unwrap();
        println!(
            "{:<14} {:>10.2} {:>12.3} {:>12} {:>9} {:>9.4}",
            name,
            wall.elapsed().as_secs_f64(),
            engine.report().total_elapsed(),
            out.points_processed,
            out.clustering.num_clusters(),
            ri(&out.clustering)
        );
    }

    // NG-DBSCAN
    let engine = Engine::new(workers);
    let wall = Instant::now(); // lint:allow(determinism-time): wall-clock timing is printed for the user, not fed into clustering results
    let out = NgDbscan::new(NgParams::new(eps, min_pts))
        .run(&data, &engine)
        .unwrap();
    println!(
        "{:<14} {:>10.2} {:>12.3} {:>12} {:>9} {:>9.4}",
        "NG-DBSCAN",
        wall.elapsed().as_secs_f64(),
        engine.report().total_elapsed(),
        out.points_processed,
        out.clustering.num_clusters(),
        ri(&out.clustering)
    );
    println!("{:-<78}", "");
    println!("RI = Rand index against exact DBSCAN (1.0 = identical clustering).");
}
