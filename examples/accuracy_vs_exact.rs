//! Accuracy study: RP-DBSCAN vs exact DBSCAN across ρ (Table 4's view).
//!
//! The two-level cell dictionary approximates each point by its sub-cell
//! centre; Theorem 5.4 bounds the resulting clustering between the exact
//! clusterings at `(1±ρ/2)ε`. This example measures the Rand index on the
//! three accuracy data sets for ρ ∈ {0.10, 0.05, 0.01}.
//!
//! ```sh
//! cargo run --release --example accuracy_vs_exact
//! ```

use rp_dbscan::prelude::*;

fn main() {
    let n = 20_000;
    let sets: Vec<(&str, Dataset, f64, usize)> = vec![
        ("Moons", synth::moons(SynthConfig::new(n), 0.05), 0.15, 10),
        (
            "Blobs",
            synth::blobs(SynthConfig::new(n), 6, 1.5, 100.0),
            1.0,
            10,
        ),
        (
            "Chameleon",
            synth::chameleon_like(SynthConfig::new(n)),
            1.2,
            10,
        ),
    ];

    println!(
        "{:<12} {:>8} {:>8} {:>8}   (Rand index vs exact DBSCAN)",
        "data set", "rho=0.10", "rho=0.05", "rho=0.01"
    );
    let engine = Engine::new(4);
    for (name, data, eps, min_pts) in &sets {
        let exact = exact_dbscan(data, *eps, *min_pts);
        print!("{name:<12}");
        for rho in [0.10, 0.05, 0.01] {
            let params = RpDbscanParams::new(*eps, *min_pts)
                .with_rho(rho)
                .with_partitions(8);
            let out = RpDbscan::new(params).unwrap().run(data, &engine).unwrap();
            let ri = rand_index(
                &exact.clustering,
                &out.clustering,
                NoisePolicy::SingleCluster,
            );
            print!(" {ri:>8.4}");
        }
        println!(
            "   ({} clusters exact, {} noise)",
            exact.clustering.num_clusters(),
            exact.clustering.noise_count()
        );
    }
    println!("\nPaper's Table 4 reports 0.98–1.00 over the same grid; ρ=0.01 is exact.");
}
