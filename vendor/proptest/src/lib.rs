//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this crate
//! implements the subset of proptest's surface the workspace's property
//! tests use: the [`proptest!`] macro (with `#![proptest_config(..)]`),
//! range and tuple strategies, `prop::collection::vec`,
//! `prop::sample::select`, `prop_map`, and the `prop_assert*` /
//! `prop_assume!` macros.
//!
//! Differences from upstream: cases are generated from a seed derived
//! deterministically from the test name (reproducible across runs and
//! machines, overridable via `PROPTEST_SEED`), and failing inputs are
//! reported but not shrunk.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

/// The RNG handed to strategies.
pub type TestRng = StdRng;

/// Why a single test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case was rejected by `prop_assume!` and should not count.
    Reject,
    /// The case failed an assertion.
    Fail(String),
}

/// Per-case result used by the generated test bodies.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Runner configuration (`#![proptest_config(..)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases to run per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` accepted cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// A generator of values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn gen_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.gen_value(rng))
    }
}

/// A strategy that always yields the same value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn gen_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                use rand::Rng;
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                use rand::Rng;
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.gen_value(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::*;

    /// Anything usable as the size argument of [`vec`].
    pub trait SizeRange {
        /// Inclusive bounds on the collection length.
        fn bounds(&self) -> (usize, usize);
    }

    impl SizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self)
        }
    }

    impl SizeRange for Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            assert!(self.start < self.end, "empty size range");
            (self.start, self.end - 1)
        }
    }

    impl SizeRange for RangeInclusive<usize> {
        fn bounds(&self) -> (usize, usize) {
            (*self.start(), *self.end())
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl SizeRange) -> VecStrategy<S> {
        let (min_len, max_len) = size.bounds();
        VecStrategy {
            element,
            min_len,
            max_len,
        }
    }

    /// Strategy produced by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        min_len: usize,
        max_len: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn gen_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            use rand::Rng;
            let len = rng.gen_range(self.min_len..=self.max_len);
            (0..len).map(|_| self.element.gen_value(rng)).collect()
        }
    }
}

/// Sampling strategies (`prop::sample`).
pub mod sample {
    use super::*;

    /// Strategy drawing uniformly from a fixed list of options.
    pub fn select<T: Clone + Debug>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select needs at least one option");
        Select { options }
    }

    /// Strategy produced by [`select`].
    #[derive(Debug, Clone)]
    pub struct Select<T: Clone> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn gen_value(&self, rng: &mut TestRng) -> T {
            use rand::Rng;
            self.options[rng.gen_range(0..self.options.len())].clone()
        }
    }
}

/// Namespace mirror so `prop::collection::vec` works after importing the
/// prelude.
pub mod prop {
    pub use crate::collection;
    pub use crate::sample;
}

/// Everything a property test file needs.
pub mod prelude {
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just,
        ProptestConfig, Strategy, TestCaseError, TestCaseResult,
    };
}

/// Deterministic base seed for a test, from its name (FNV-1a) unless
/// `PROPTEST_SEED` overrides it.
fn base_seed(name: &str) -> u64 {
    if let Ok(s) = std::env::var("PROPTEST_SEED") {
        if let Ok(v) = s.parse() {
            return v;
        }
    }
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Drives one property test: draws inputs per case and executes the body.
///
/// Called by the code [`proptest!`] generates; not for direct use.
pub fn run_cases(
    config: ProptestConfig,
    name: &str,
    mut case: impl FnMut(&mut TestRng) -> TestCaseResult,
) {
    let seed = base_seed(name);
    let mut accepted = 0u32;
    let mut rejected = 0u64;
    let max_rejects = (config.cases as u64) * 20 + 100;
    let mut attempt = 0u64;
    while accepted < config.cases {
        let case_seed = seed.wrapping_add(attempt);
        let mut rng = TestRng::seed_from_u64(case_seed);
        match case(&mut rng) {
            Ok(()) => accepted += 1,
            Err(TestCaseError::Reject) => {
                rejected += 1;
                if rejected > max_rejects {
                    panic!(
                        "property test {name}: too many rejected cases \
                         ({rejected} rejects for {accepted} accepted)"
                    );
                }
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "property test {name} failed at case {accepted} \
                     (PROPTEST_SEED={case_seed} reproduces): {msg}"
                );
            }
        }
        attempt += 1;
    }
}

/// Defines property tests: each argument is drawn from its strategy for
/// every case, and the body runs with `prop_assert*` support.
#[macro_export]
macro_rules! proptest {
    (@cfg ($cfg:expr) $( $(#[$meta:meta])* fn $name:ident ( $($arg:pat in $strat:expr),* $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                $crate::run_cases(config, stringify!($name), |__proptest_rng| {
                    $(let $arg = $crate::Strategy::gen_value(&($strat), __proptest_rng);)*
                    $body
                    Ok(())
                });
            }
        )*
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Fails the current case with a message if the condition is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case if the two expressions are not equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError::Fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+), l, r
            )));
        }
    }};
}

/// Fails the current case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
        let _ = r;
    }};
}

/// Rejects the current case (does not count toward the case total).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use rand::SeedableRng;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(x in 3u32..10, y in -2.5f64..2.5) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-2.5..2.5).contains(&y));
        }

        #[test]
        fn vec_lengths_in_range(v in prop::collection::vec(0u8..255, 2..9)) {
            prop_assert!(v.len() >= 2 && v.len() <= 8, "len {}", v.len());
        }

        #[test]
        fn select_only_yields_options(c in prop::sample::select(vec!['a', 'b', 'c'])) {
            prop_assert!(['a', 'b', 'c'].contains(&c));
        }

        #[test]
        fn tuples_and_map_compose(
            (a, b) in (0u64..100, 0u64..100),
            doubled in (0u32..50).prop_map(|v| v * 2),
        ) {
            prop_assert!(a < 100 && b < 100);
            prop_assert_eq!(doubled % 2, 0);
        }

        #[test]
        fn assume_rejects_without_failing(n in 0u32..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::Strategy;
        let strat = crate::collection::vec(0u64..1000, 5..20);
        let mut r1 = crate::TestRng::seed_from_u64(9);
        let mut r2 = crate::TestRng::seed_from_u64(9);
        assert_eq!(strat.gen_value(&mut r1), strat.gen_value(&mut r2));
    }

    #[test]
    #[should_panic(expected = "property test")]
    fn failing_property_panics() {
        crate::run_cases(ProptestConfig::with_cases(5), "always_fails", |_| {
            Err(TestCaseError::Fail("nope".into()))
        });
    }
}
