//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this crate
//! provides the exact API subset the workspace uses — `StdRng`,
//! `SmallRng`, `SeedableRng::seed_from_u64`, `Rng::{gen, gen_range,
//! gen_bool, gen_ratio}` and `seq::SliceRandom::{shuffle, choose}` —
//! backed by xoshiro256** seeded through SplitMix64.
//!
//! Streams differ from upstream `rand` (which uses ChaCha12 for
//! `StdRng`), so seeded results are deterministic *within* this
//! workspace but not identical to runs against the real crate.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level 64-bit generator interface.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// xoshiro256** — a small, fast, high-quality PRNG (Blackman & Vigna).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256StarStar {
    s: [u64; 4],
}

impl Xoshiro256StarStar {
    fn from_u64(seed: u64) -> Self {
        // SplitMix64 expansion, the reference seeding procedure.
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        Self {
            s: [next(), next(), next(), next()],
        }
    }
}

impl RngCore for Xoshiro256StarStar {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
    /// Builds a generator from OS entropy — here, from the system clock.
    fn from_entropy() -> Self {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x5eed);
        Self::seed_from_u64(nanos)
    }
}

macro_rules! named_rng {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(Debug, Clone, PartialEq, Eq)]
        pub struct $name(Xoshiro256StarStar);

        impl SeedableRng for $name {
            fn seed_from_u64(seed: u64) -> Self {
                Self(Xoshiro256StarStar::from_u64(seed))
            }
        }

        impl RngCore for $name {
            fn next_u64(&mut self) -> u64 {
                self.0.next_u64()
            }
        }
    };
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::*;

    named_rng!(
        /// The workspace's deterministic standard generator.
        StdRng
    );
    named_rng!(
        /// A small fast generator (same engine as [`StdRng`] here).
        SmallRng
    );
}

/// Types samplable uniformly over their whole domain (`Rng::gen`).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Types drawable uniformly from a bounded range.
///
/// A single blanket `SampleRange` impl per range shape is generic over
/// this trait — mirroring upstream's `SampleUniform` structure, which is
/// what lets `gen_range(-25.0..25.0)` infer the float type from context.
pub trait UniformSampled: Sized {
    /// Draws from `[lo, hi)` (`inclusive == false`) or `[lo, hi]`
    /// (`inclusive == true`); panics if the range is empty.
    fn sample_range<R: RngCore + ?Sized>(lo: Self, hi: Self, inclusive: bool, rng: &mut R) -> Self;
}

macro_rules! int_uniform {
    ($($t:ty),*) => {$(
        impl UniformSampled for $t {
            fn sample_range<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                if inclusive {
                    assert!(lo <= hi, "empty range in gen_range");
                } else {
                    assert!(lo < hi, "empty range in gen_range");
                }
                let span = (hi as i128 - lo as i128) as u128 + u128::from(inclusive);
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_uniform {
    ($($t:ty),*) => {$(
        impl UniformSampled for $t {
            fn sample_range<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                if inclusive {
                    assert!(lo <= hi, "empty range in gen_range");
                } else {
                    assert!(lo < hi, "empty range in gen_range");
                }
                let unit = <$t as Standard>::sample(rng);
                lo + unit * (hi - lo)
            }
        }
    )*};
}

float_uniform!(f32, f64);

/// Ranges samplable by `Rng::gen_range`.
pub trait SampleRange<T> {
    /// Draws one value from the range; panics if the range is empty.
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: UniformSampled> SampleRange<T> for Range<T> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(self.start, self.end, false, rng)
    }
}

impl<T: UniformSampled> SampleRange<T> for RangeInclusive<T> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_range(lo, hi, true, rng)
    }
}

/// High-level sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value uniformly over `T`'s domain.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_one(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        <f64 as Standard>::sample(self) < p
    }

    /// Returns `true` with probability `numerator / denominator`.
    fn gen_ratio(&mut self, numerator: u32, denominator: u32) -> bool {
        assert!(denominator > 0 && numerator <= denominator);
        self.gen_range(0..denominator) < numerator
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Sequence helpers, mirroring `rand::seq`.
pub mod seq {
    use super::{Rng, RngCore};

    /// Shuffling and random choice on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
        /// Uniformly random element, `None` on an empty slice.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_bounds_hold() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let v = rng.gen_range(-3i64..17);
            assert!((-3..17).contains(&v));
            let f = rng.gen_range(2.0f64..3.5);
            assert!((2.0..3.5).contains(&f));
            let u = rng.gen_range(0..=4usize);
            assert!(u <= 4);
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0usize; 8];
        for _ in 0..80_000 {
            counts[rng.gen_range(0..8usize)] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "{counts:?}");
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>(), "astronomically unlikely");
    }

    #[test]
    fn gen_bool_and_ratio_hit_expected_frequency() {
        let mut rng = StdRng::seed_from_u64(5);
        let hits = (0..40_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((9_000..11_000).contains(&hits), "{hits}");
        let hits = (0..40_000).filter(|_| rng.gen_ratio(1, 4)).count();
        assert!((9_000..11_000).contains(&hits), "{hits}");
    }

    #[test]
    fn works_through_unsized_rng() {
        fn draw(rng: &mut (impl Rng + ?Sized)) -> f64 {
            rng.gen()
        }
        let mut rng = StdRng::seed_from_u64(6);
        let dyn_rng: &mut StdRng = &mut rng;
        assert!((0.0..1.0).contains(&draw(dyn_rng)));
    }
}
