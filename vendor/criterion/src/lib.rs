//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this crate
//! provides the API subset the workspace's benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`,
//! `BenchmarkId`, `Throughput`, `black_box`, and the `criterion_group!`
//! / `criterion_main!` macros — backed by a simple
//! warmup-then-median-of-samples timing loop instead of criterion's
//! statistical machinery.
//!
//! Output is one line per benchmark:
//! `<group>/<name>  time: <median>  (<throughput>)`.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting the
/// benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Identifier for one parameterised benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `<function_name>/<parameter>`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Just the parameter value as the label.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

/// Anything usable as a benchmark name.
pub trait IntoBenchmarkId {
    /// The display label.
    fn into_label(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_label(self) -> String {
        self.label
    }
}

impl IntoBenchmarkId for &str {
    fn into_label(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_label(self) -> String {
        self
    }
}

/// Units for derived throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Number of logical elements processed per iteration.
    Elements(u64),
    /// Number of bytes processed per iteration.
    Bytes(u64),
}

/// The per-benchmark timing driver handed to bench closures.
pub struct Bencher {
    sample_size: usize,
    measurement_time: Duration,
    /// Median seconds per iteration, filled by [`Bencher::iter`].
    elapsed_per_iter: f64,
}

impl Bencher {
    /// Times `routine`, storing the median seconds per iteration.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warmup and calibration: find an iteration count that takes
        // roughly measurement_time / sample_size per sample.
        let mut iters_per_sample = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            let target = self.measurement_time / (self.sample_size as u32).max(1);
            if elapsed >= target.min(Duration::from_millis(50)) || iters_per_sample >= 1 << 20 {
                break;
            }
            iters_per_sample *= 2;
        }
        let mut samples: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            samples.push(start.elapsed().as_secs_f64() / iters_per_sample as f64);
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        self.elapsed_per_iter = samples[samples.len() / 2];
    }

    /// Times `routine` on a fresh input from `setup` each iteration,
    /// excluding the setup cost from the measurement.
    pub fn iter_with_setup<I, O, S, R>(&mut self, mut setup: S, mut routine: R)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        // Calibration: grow the per-sample iteration count until the
        // *timed* portion is long enough to trust the clock.
        let mut iters_per_sample = 1u64;
        loop {
            let mut timed = Duration::ZERO;
            for _ in 0..iters_per_sample {
                let input = setup();
                let start = Instant::now();
                black_box(routine(input));
                timed += start.elapsed();
            }
            let target = self.measurement_time / (self.sample_size as u32).max(1);
            if timed >= target.min(Duration::from_millis(50)) || iters_per_sample >= 1 << 20 {
                break;
            }
            iters_per_sample *= 2;
        }
        let mut samples: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut timed = Duration::ZERO;
            for _ in 0..iters_per_sample {
                let input = setup();
                let start = Instant::now();
                black_box(routine(input));
                timed += start.elapsed();
            }
            samples.push(timed.as_secs_f64() / iters_per_sample as f64);
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        self.elapsed_per_iter = samples[samples.len() / 2];
    }
}

fn format_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    parent: &'a mut Criterion,
    sample_size: usize,
    measurement_time: Duration,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the time budget benchmarks aim to spend measuring.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    /// Sets the warm-up time budget. This implementation calibrates
    /// per-benchmark instead of warming up for a fixed period, so the
    /// value is accepted for API compatibility and otherwise ignored.
    pub fn warm_up_time(&mut self, _t: Duration) -> &mut Self {
        self
    }

    /// Sets the throughput used to derive rates in the report.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = id.into_label();
        let mut b = Bencher {
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            elapsed_per_iter: 0.0,
        };
        f(&mut b);
        self.report(&label, b.elapsed_per_iter);
        self
    }

    /// Runs one benchmark parameterised by `input`.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = id.into_label();
        let mut b = Bencher {
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            elapsed_per_iter: 0.0,
        };
        f(&mut b, input);
        self.report(&label, b.elapsed_per_iter);
        self
    }

    fn report(&self, label: &str, secs: f64) {
        let rate = match (self.throughput, secs > 0.0) {
            (Some(Throughput::Elements(n)), true) => {
                format!("  ({:.0} elem/s)", n as f64 / secs)
            }
            (Some(Throughput::Bytes(n)), true) => {
                format!("  ({:.1} MiB/s)", n as f64 / secs / (1024.0 * 1024.0))
            }
            _ => String::new(),
        };
        println!(
            "{:<40} time: {:>12}{rate}",
            format!("{}/{label}", self.name),
            format_time(secs)
        );
        let _ = &self.parent;
    }

    /// Ends the group (reporting is incremental, so this is a no-op).
    pub fn finish(&mut self) {}
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("== {name} ==");
        BenchmarkGroup {
            name,
            parent: self,
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            throughput: None,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group(name.to_string())
            .bench_function("_", f);
        self
    }
}

/// Declares a benchmark group function list, mirroring criterion.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring criterion.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            // `cargo test` runs bench binaries with `--test`; skip the
            // timing loops there so tier-1 stays fast.
            if std::env::args().any(|a| a == "--test") {
                return;
            }
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_positive_time() {
        let mut b = Bencher {
            sample_size: 3,
            measurement_time: Duration::from_millis(20),
            elapsed_per_iter: 0.0,
        };
        b.iter(|| {
            let mut acc = 0u64;
            for i in 0..1000u64 {
                acc = acc.wrapping_add(black_box(i));
            }
            acc
        });
        assert!(b.elapsed_per_iter > 0.0);
    }

    #[test]
    fn group_runs_benchmarks() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("selftest");
        group.sample_size(2);
        group.measurement_time(Duration::from_millis(5));
        let mut ran = false;
        group.bench_function(BenchmarkId::from_parameter(42), |b| {
            ran = true;
            b.iter(|| black_box(1 + 1));
        });
        group.finish();
        assert!(ran);
    }
}
