//! Integration tests for the `rpdbscan` command-line interface.

use std::path::PathBuf;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_rpdbscan"))
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("rpdbscan-cli-tests");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

#[test]
fn generate_cluster_metrics_plot_pipeline() {
    let csv = tmp("blobs.csv");
    let labeled = tmp("blobs_rp.csv");
    let labeled2 = tmp("blobs_exact.csv");
    let svg = tmp("blobs.svg");

    let out = bin()
        .args([
            "generate",
            "blobs",
            "3000",
            csv.to_str().unwrap(),
            "--seed",
            "7",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(csv.exists());

    let out = bin()
        .args([
            "cluster",
            csv.to_str().unwrap(),
            labeled.to_str().unwrap(),
            "--eps",
            "1.0",
            "--min-pts",
            "10",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("clusters"), "{stdout}");

    let out = bin()
        .args([
            "cluster",
            csv.to_str().unwrap(),
            labeled2.to_str().unwrap(),
            "--eps",
            "1.0",
            "--min-pts",
            "10",
            "--algo",
            "exact",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());

    let out = bin()
        .args([
            "metrics",
            labeled.to_str().unwrap(),
            labeled2.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("RI=1.000000"),
        "RP vs exact should agree: {stdout}"
    );

    let out = bin()
        .args(["plot", labeled.to_str().unwrap(), svg.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    let content = std::fs::read_to_string(&svg).unwrap();
    assert!(content.starts_with("<svg"));
}

#[test]
fn stream_dictionary_round_trip_and_corruption() {
    let csv = tmp("stream_dict.csv");
    let out = bin()
        .args([
            "generate",
            "blobs",
            "600",
            csv.to_str().unwrap(),
            "--seed",
            "3",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());

    // Save the final dictionary from a streaming run.
    let dict = tmp("stream_dict.bin");
    let stream_args = |extra: &[&str]| {
        let mut v = vec![
            "stream".to_string(),
            csv.to_str().unwrap().to_string(),
            tmp("stream_dict_out.csv").to_str().unwrap().to_string(),
            "--eps".into(),
            "1.0".into(),
            "--min-pts".into(),
            "8".into(),
            "--batch".into(),
            "200".into(),
        ];
        v.extend(extra.iter().map(|s| s.to_string()));
        v
    };
    let out = bin()
        .args(stream_args(&["--save-dict", dict.to_str().unwrap()]))
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let bytes = std::fs::read(&dict).unwrap();
    assert!(!bytes.is_empty());

    // The intact dictionary passes a compatibility check.
    let out = bin()
        .args(stream_args(&["--check-dict", dict.to_str().unwrap()]))
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("grid compatible"), "{stdout}");

    // A truncated dictionary fails with a typed decode message and a
    // nonzero exit code — not a panic.
    let truncated = tmp("stream_dict_truncated.bin");
    std::fs::write(&truncated, &bytes[..bytes.len() / 2]).unwrap();
    let out = bin()
        .args(stream_args(&["--check-dict", truncated.to_str().unwrap()]))
        .output()
        .unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("corrupt dictionary") && stderr.contains("truncated"),
        "{stderr}"
    );
    assert!(!stderr.contains("panicked"), "{stderr}");

    // A dictionary saved under different grid parameters is well-formed
    // but incompatible: the mismatch is reported, not silently accepted.
    let other = tmp("stream_dict_other.bin");
    let out = bin()
        .args([
            "stream",
            csv.to_str().unwrap(),
            tmp("stream_dict_out2.csv").to_str().unwrap(),
            "--eps",
            "2.0",
            "--min-pts",
            "8",
            "--batch",
            "200",
            "--save-dict",
            other.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let out = bin()
        .args(stream_args(&["--check-dict", other.to_str().unwrap()]))
        .output()
        .unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("grid mismatch"), "{stderr}");
}

#[test]
fn serve_self_agreement_and_query_file() {
    let csv = tmp("serve_moons.csv");
    let out = bin()
        .args([
            "generate",
            "moons",
            "1500",
            csv.to_str().unwrap(),
            "--seed",
            "11",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());

    // Self-serve: classifying the clustered points must reproduce the
    // stored labels exactly.
    let out = bin()
        .args([
            "serve",
            csv.to_str().unwrap(),
            "--eps",
            "0.15",
            "--min-pts",
            "5",
            "--shards",
            "4",
            "--workers",
            "4",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("(100.0%)"), "{stdout}");
    assert!(stdout.contains("classify latency"), "{stdout}");

    // An explicit query file lands in a labeled CSV with one trailing
    // label column per query row.
    let queries = tmp("serve_queries.csv");
    std::fs::write(&queries, "0.0,0.0\n1.0,-0.4\n50.0,50.0\n").unwrap();
    let labeled = tmp("serve_labeled.csv");
    let out = bin()
        .args([
            "serve",
            csv.to_str().unwrap(),
            "--eps",
            "0.15",
            "--min-pts",
            "5",
            "--queries",
            queries.to_str().unwrap(),
            "--out",
            labeled.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let content = std::fs::read_to_string(&labeled).unwrap();
    let lines: Vec<&str> = content.lines().collect();
    assert_eq!(lines.len(), 3);
    assert!(
        lines[2].ends_with(",-1"),
        "far-away query must be noise: {content}"
    );

    // Dimension mismatches are reported, not panicked on.
    let bad = tmp("serve_bad_queries.csv");
    std::fs::write(&bad, "1.0,2.0,3.0\n").unwrap();
    let out = bin()
        .args([
            "serve",
            csv.to_str().unwrap(),
            "--eps",
            "0.15",
            "--min-pts",
            "5",
            "--queries",
            bad.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("dimension"), "{stderr}");
    assert!(!stderr.contains("panicked"), "{stderr}");
}

#[test]
fn ingest_and_out_of_core_cluster_match_resident() {
    let csv = tmp("ooc_blobs.csv");
    let out = bin()
        .args([
            "generate",
            "blobs",
            "2500",
            csv.to_str().unwrap(),
            "--seed",
            "19",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());

    let store = tmp("ooc_blobs.store");
    let out = bin()
        .args([
            "ingest",
            csv.to_str().unwrap(),
            "--out",
            store.to_str().unwrap(),
            "--eps",
            "1.0",
            "--page-rows",
            "128",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("ingested 2500 points"), "{stdout}");

    // Out-of-core under a deliberately tiny pool budget.
    let labels = tmp("ooc_blobs.labels");
    let out = bin()
        .args([
            "cluster",
            labels.to_str().unwrap(),
            "--store",
            store.to_str().unwrap(),
            "--min-pts",
            "10",
            "--mem-budget",
            "16K",
            "--partitions",
            "8",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("pool: budget 16384 bytes"), "{stdout}");
    assert!(stdout.contains("spill:"), "{stdout}");

    // Resident run on the same CSV: the trailing label column must be
    // byte-for-byte the out-of-core labels file.
    let labeled = tmp("ooc_blobs_resident.csv");
    let out = bin()
        .args([
            "cluster",
            csv.to_str().unwrap(),
            labeled.to_str().unwrap(),
            "--eps",
            "1.0",
            "--min-pts",
            "10",
            "--partitions",
            "8",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let resident: Vec<String> = std::fs::read_to_string(&labeled)
        .unwrap()
        .lines()
        .map(|l| l.rsplit(',').next().unwrap().to_string())
        .collect();
    let ooc: Vec<String> = std::fs::read_to_string(&labels)
        .unwrap()
        .lines()
        .map(str::to_string)
        .collect();
    assert_eq!(ooc, resident, "out-of-core labels must match resident");
}

#[test]
fn corrupted_store_files_fail_with_typed_errors() {
    let csv = tmp("ooc_corrupt.csv");
    bin()
        .args(["generate", "blobs", "400", csv.to_str().unwrap()])
        .output()
        .unwrap();
    let store = tmp("ooc_corrupt.store");
    let out = bin()
        .args([
            "ingest",
            csv.to_str().unwrap(),
            "--out",
            store.to_str().unwrap(),
            "--eps",
            "1.0",
            "--page-rows",
            "64",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let good = std::fs::read(&store).unwrap();

    let run = |store_path: &std::path::Path, extra: &[&str]| {
        let mut args = vec![
            "cluster".to_string(),
            tmp("ooc_corrupt.labels").to_str().unwrap().to_string(),
            "--store".into(),
            store_path.to_str().unwrap().to_string(),
            "--min-pts".into(),
            "10".into(),
        ];
        args.extend(extra.iter().map(|s| s.to_string()));
        bin().args(args).output().unwrap()
    };

    // Flipped magic: not a store.
    let bad = tmp("ooc_badmagic.store");
    let mut bytes = good.clone();
    bytes[0] ^= 0xFF;
    std::fs::write(&bad, &bytes).unwrap();
    let out = run(&bad, &[]);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("not a column store"), "{stderr}");
    assert!(!stderr.contains("panicked"), "{stderr}");

    // Truncated body.
    let cut = tmp("ooc_truncated.store");
    std::fs::write(&cut, &good[..good.len() - 11]).unwrap();
    let out = run(&cut, &[]);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("store truncated"), "{stderr}");
    assert!(!stderr.contains("panicked"), "{stderr}");

    // Flipped directory byte: checksum failure at open.
    let rot = tmp("ooc_dirrot.store");
    let mut bytes = good.clone();
    let n = bytes.len();
    bytes[n - 1] ^= 0x80;
    std::fs::write(&rot, &bytes).unwrap();
    let out = run(&rot, &[]);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("checksum mismatch"), "{stderr}");
    assert!(!stderr.contains("panicked"), "{stderr}");

    // Flipped page byte: open succeeds (directory intact) but the run
    // fails when the damaged page is pinned.
    let pagerot = tmp("ooc_pagerot.store");
    let mut bytes = good.clone();
    bytes[72 + 5] ^= 0x01;
    std::fs::write(&pagerot, &bytes).unwrap();
    let out = run(&pagerot, &[]);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("checksum mismatch"), "{stderr}");
    assert!(!stderr.contains("panicked"), "{stderr}");

    // An intact store with mismatched grid parameters is a typed
    // mismatch, not a wrong answer.
    let out = run(&store, &["--eps", "2.0"]);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("grid mismatch"), "{stderr}");

    // Bad byte-count syntax is rejected up front.
    let out = run(&store, &["--mem-budget", "12Q"]);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("invalid byte count"), "{stderr}");

    // Ingesting an empty CSV cannot infer a dimensionality.
    let empty = tmp("ooc_empty.csv");
    std::fs::write(&empty, "# nothing\n").unwrap();
    let out = bin()
        .args([
            "ingest",
            empty.to_str().unwrap(),
            "--out",
            tmp("ooc_empty.store").to_str().unwrap(),
            "--eps",
            "1.0",
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("cannot infer dimensionality"), "{stderr}");
}

#[test]
fn unknown_command_fails_with_usage() {
    let out = bin().args(["frobnicate"]).output().unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("usage:"));
}

#[test]
fn missing_flags_reported() {
    let out = bin()
        .args(["cluster", "/nonexistent.csv", "/tmp/out.csv"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--eps"), "{stderr}");
}

#[test]
fn all_algorithms_accepted() {
    let csv = tmp("algo.csv");
    bin()
        .args(["generate", "blobs", "800", csv.to_str().unwrap()])
        .output()
        .unwrap();
    for algo in ["rp", "exact", "esp", "rbp", "cbp", "spark", "ng"] {
        let out = bin()
            .args([
                "cluster",
                csv.to_str().unwrap(),
                tmp(&format!("algo_{algo}.csv")).to_str().unwrap(),
                "--eps",
                "1.0",
                "--min-pts",
                "8",
                "--algo",
                algo,
            ])
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "{algo}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
}

#[test]
fn mixture_and_uniform_kinds_parse() {
    for kind in ["mixture:4:0.5", "uniform:3:50"] {
        let csv = tmp(&format!("{}.csv", kind.replace(':', "_")));
        let out = bin()
            .args(["generate", kind, "500", csv.to_str().unwrap()])
            .output()
            .unwrap();
        assert!(out.status.success(), "{kind}");
    }
    let out = bin()
        .args(["generate", "mixture:bad", "10", "/tmp/x.csv"])
        .output()
        .unwrap();
    assert!(!out.status.success());
}
