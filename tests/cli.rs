//! Integration tests for the `rpdbscan` command-line interface.

use std::path::PathBuf;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_rpdbscan"))
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("rpdbscan-cli-tests");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

#[test]
fn generate_cluster_metrics_plot_pipeline() {
    let csv = tmp("blobs.csv");
    let labeled = tmp("blobs_rp.csv");
    let labeled2 = tmp("blobs_exact.csv");
    let svg = tmp("blobs.svg");

    let out = bin()
        .args([
            "generate",
            "blobs",
            "3000",
            csv.to_str().unwrap(),
            "--seed",
            "7",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(csv.exists());

    let out = bin()
        .args([
            "cluster",
            csv.to_str().unwrap(),
            labeled.to_str().unwrap(),
            "--eps",
            "1.0",
            "--min-pts",
            "10",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("clusters"), "{stdout}");

    let out = bin()
        .args([
            "cluster",
            csv.to_str().unwrap(),
            labeled2.to_str().unwrap(),
            "--eps",
            "1.0",
            "--min-pts",
            "10",
            "--algo",
            "exact",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());

    let out = bin()
        .args([
            "metrics",
            labeled.to_str().unwrap(),
            labeled2.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("RI=1.000000"),
        "RP vs exact should agree: {stdout}"
    );

    let out = bin()
        .args(["plot", labeled.to_str().unwrap(), svg.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    let content = std::fs::read_to_string(&svg).unwrap();
    assert!(content.starts_with("<svg"));
}

#[test]
fn stream_dictionary_round_trip_and_corruption() {
    let csv = tmp("stream_dict.csv");
    let out = bin()
        .args([
            "generate",
            "blobs",
            "600",
            csv.to_str().unwrap(),
            "--seed",
            "3",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());

    // Save the final dictionary from a streaming run.
    let dict = tmp("stream_dict.bin");
    let stream_args = |extra: &[&str]| {
        let mut v = vec![
            "stream".to_string(),
            csv.to_str().unwrap().to_string(),
            tmp("stream_dict_out.csv").to_str().unwrap().to_string(),
            "--eps".into(),
            "1.0".into(),
            "--min-pts".into(),
            "8".into(),
            "--batch".into(),
            "200".into(),
        ];
        v.extend(extra.iter().map(|s| s.to_string()));
        v
    };
    let out = bin()
        .args(stream_args(&["--save-dict", dict.to_str().unwrap()]))
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let bytes = std::fs::read(&dict).unwrap();
    assert!(!bytes.is_empty());

    // The intact dictionary passes a compatibility check.
    let out = bin()
        .args(stream_args(&["--check-dict", dict.to_str().unwrap()]))
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("grid compatible"), "{stdout}");

    // A truncated dictionary fails with a typed decode message and a
    // nonzero exit code — not a panic.
    let truncated = tmp("stream_dict_truncated.bin");
    std::fs::write(&truncated, &bytes[..bytes.len() / 2]).unwrap();
    let out = bin()
        .args(stream_args(&["--check-dict", truncated.to_str().unwrap()]))
        .output()
        .unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("corrupt dictionary") && stderr.contains("truncated"),
        "{stderr}"
    );
    assert!(!stderr.contains("panicked"), "{stderr}");

    // A dictionary saved under different grid parameters is well-formed
    // but incompatible: the mismatch is reported, not silently accepted.
    let other = tmp("stream_dict_other.bin");
    let out = bin()
        .args([
            "stream",
            csv.to_str().unwrap(),
            tmp("stream_dict_out2.csv").to_str().unwrap(),
            "--eps",
            "2.0",
            "--min-pts",
            "8",
            "--batch",
            "200",
            "--save-dict",
            other.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let out = bin()
        .args(stream_args(&["--check-dict", other.to_str().unwrap()]))
        .output()
        .unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("grid mismatch"), "{stderr}");
}

#[test]
fn serve_self_agreement_and_query_file() {
    let csv = tmp("serve_moons.csv");
    let out = bin()
        .args([
            "generate",
            "moons",
            "1500",
            csv.to_str().unwrap(),
            "--seed",
            "11",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());

    // Self-serve: classifying the clustered points must reproduce the
    // stored labels exactly.
    let out = bin()
        .args([
            "serve",
            csv.to_str().unwrap(),
            "--eps",
            "0.15",
            "--min-pts",
            "5",
            "--shards",
            "4",
            "--workers",
            "4",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("(100.0%)"), "{stdout}");
    assert!(stdout.contains("classify latency"), "{stdout}");

    // An explicit query file lands in a labeled CSV with one trailing
    // label column per query row.
    let queries = tmp("serve_queries.csv");
    std::fs::write(&queries, "0.0,0.0\n1.0,-0.4\n50.0,50.0\n").unwrap();
    let labeled = tmp("serve_labeled.csv");
    let out = bin()
        .args([
            "serve",
            csv.to_str().unwrap(),
            "--eps",
            "0.15",
            "--min-pts",
            "5",
            "--queries",
            queries.to_str().unwrap(),
            "--out",
            labeled.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let content = std::fs::read_to_string(&labeled).unwrap();
    let lines: Vec<&str> = content.lines().collect();
    assert_eq!(lines.len(), 3);
    assert!(
        lines[2].ends_with(",-1"),
        "far-away query must be noise: {content}"
    );

    // Dimension mismatches are reported, not panicked on.
    let bad = tmp("serve_bad_queries.csv");
    std::fs::write(&bad, "1.0,2.0,3.0\n").unwrap();
    let out = bin()
        .args([
            "serve",
            csv.to_str().unwrap(),
            "--eps",
            "0.15",
            "--min-pts",
            "5",
            "--queries",
            bad.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("dimension"), "{stderr}");
    assert!(!stderr.contains("panicked"), "{stderr}");
}

#[test]
fn unknown_command_fails_with_usage() {
    let out = bin().args(["frobnicate"]).output().unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("usage:"));
}

#[test]
fn missing_flags_reported() {
    let out = bin()
        .args(["cluster", "/nonexistent.csv", "/tmp/out.csv"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--eps"), "{stderr}");
}

#[test]
fn all_algorithms_accepted() {
    let csv = tmp("algo.csv");
    bin()
        .args(["generate", "blobs", "800", csv.to_str().unwrap()])
        .output()
        .unwrap();
    for algo in ["rp", "exact", "esp", "rbp", "cbp", "spark", "ng"] {
        let out = bin()
            .args([
                "cluster",
                csv.to_str().unwrap(),
                tmp(&format!("algo_{algo}.csv")).to_str().unwrap(),
                "--eps",
                "1.0",
                "--min-pts",
                "8",
                "--algo",
                algo,
            ])
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "{algo}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
}

#[test]
fn mixture_and_uniform_kinds_parse() {
    for kind in ["mixture:4:0.5", "uniform:3:50"] {
        let csv = tmp(&format!("{}.csv", kind.replace(':', "_")));
        let out = bin()
            .args(["generate", kind, "500", csv.to_str().unwrap()])
            .output()
            .unwrap();
        assert!(out.status.success(), "{kind}");
    }
    let out = bin()
        .args(["generate", "mixture:bad", "10", "/tmp/x.csv"])
        .output()
        .unwrap();
    assert!(!out.status.success());
}
