//! End-to-end integration tests across the whole workspace: RP-DBSCAN
//! against exact DBSCAN on realistic generated workloads, invariants over
//! the engine metrics, and cross-algorithm agreement.

use rp_dbscan::metrics::adjusted_rand_index;
use rp_dbscan::prelude::*;

fn engine() -> Engine {
    Engine::with_cost_model(4, CostModel::free())
}

fn rp(data: &Dataset, eps: f64, min_pts: usize) -> rp_dbscan::core::RpDbscanOutput {
    RpDbscan::new(
        RpDbscanParams::new(eps, min_pts)
            .with_rho(0.01)
            .with_partitions(12),
    )
    .unwrap()
    .run(data, &engine())
    .unwrap()
}

#[test]
fn moons_equivalent_to_exact_dbscan() {
    let data = synth::moons(SynthConfig::new(8_000), 0.05);
    let exact = exact_dbscan(&data, 0.15, 10);
    let out = rp(&data, 0.15, 10);
    let ri = rand_index(
        &exact.clustering,
        &out.clustering,
        NoisePolicy::SingleCluster,
    );
    assert_eq!(ri, 1.0, "rho=0.01 must be DBSCAN-equivalent on moons");
    assert_eq!(out.clustering.num_clusters(), 2);
}

#[test]
fn blobs_equivalent_to_exact_dbscan() {
    let data = synth::blobs(SynthConfig::new(8_000), 5, 1.5, 100.0);
    let exact = exact_dbscan(&data, 1.0, 10);
    let out = rp(&data, 1.0, 10);
    let ri = rand_index(
        &exact.clustering,
        &out.clustering,
        NoisePolicy::SingleCluster,
    );
    assert!(ri >= 0.9999, "Rand index {ri}");
}

#[test]
fn chameleon_high_agreement_across_rho() {
    let data = synth::chameleon_like(SynthConfig::new(8_000));
    let exact = exact_dbscan(&data, 1.2, 10);
    for rho in [0.10, 0.05, 0.01] {
        let out = RpDbscan::new(
            RpDbscanParams::new(1.2, 10)
                .with_rho(rho)
                .with_partitions(8),
        )
        .unwrap()
        .run(&data, &engine())
        .unwrap();
        let ri = rand_index(
            &exact.clustering,
            &out.clustering,
            NoisePolicy::SingleCluster,
        );
        assert!(ri > 0.97, "rho={rho}: Rand index {ri}");
    }
}

#[test]
fn all_parallel_algorithms_agree_on_well_separated_data() {
    let data = synth::blobs(SynthConfig::new(6_000), 4, 1.0, 200.0);
    let eps = 0.8;
    let min_pts = 8;
    let exact = exact_dbscan(&data, eps, min_pts);
    let reference = &exact.clustering;

    let out = rp(&data, eps, min_pts);
    assert_eq!(
        rand_index(reference, &out.clustering, NoisePolicy::SingleCluster),
        1.0,
        "RP-DBSCAN"
    );
    for (name, params) in [
        ("ESP", RegionParams::esp(eps, min_pts, 0.01, 4)),
        ("RBP", RegionParams::rbp(eps, min_pts, 0.01, 4)),
        ("CBP", RegionParams::cbp(eps, min_pts, 0.01, 4)),
        ("SPARK", RegionParams::spark(eps, min_pts, 4)),
    ] {
        let out = RegionDbscan::new(params).run(&data, &engine()).unwrap();
        let ri = rand_index(reference, &out.clustering, NoisePolicy::SingleCluster);
        assert_eq!(ri, 1.0, "{name}");
    }
    let ng = NgDbscan::new(NgParams::new(eps, min_pts))
        .run(&data, &engine())
        .unwrap();
    let ri = rand_index(reference, &ng.clustering, NoisePolicy::SingleCluster);
    assert!(ri > 0.95, "NG-DBSCAN Rand index {ri}");
}

#[test]
fn rp_dbscan_never_duplicates_points() {
    let data = synth::geolife_like(SynthConfig::new(10_000));
    for eps in [0.2, 0.4, 0.8] {
        let out = rp(&data, eps, 10);
        assert_eq!(out.stats.points_processed, data.len() as u64, "eps={eps}");
    }
}

#[test]
fn region_split_duplicates_grow_with_eps() {
    let data = synth::osm_like(SynthConfig::new(15_000));
    let mut processed = Vec::new();
    for eps in [0.3, 0.6, 1.2] {
        let out = RegionDbscan::new(RegionParams::esp(eps, 10, 0.01, 8))
            .run(&data, &engine())
            .unwrap();
        processed.push(out.points_processed);
    }
    assert!(
        processed[2] > processed[0],
        "duplication should grow with eps: {processed:?}"
    );
    assert!(processed[0] > data.len() as u64);
}

#[test]
fn engine_breakdown_covers_all_phases_and_is_positive() {
    let data = synth::cosmo_like(SynthConfig::new(10_000));
    let e = Engine::new(4);
    RpDbscan::new(RpDbscanParams::new(1.0, 10).with_partitions(8))
        .unwrap()
        .run(&data, &e)
        .unwrap();
    let report = e.report();
    let phases = ["phase1-1", "phase1-2", "phase2", "phase3-1", "phase3-2"];
    let mut total = 0.0;
    for p in phases {
        let t = report.elapsed_with_prefix(p);
        assert!(t >= 0.0, "{p}");
        total += t;
    }
    assert!((total - report.total_elapsed()).abs() < 1e-9);
    assert!(report.elapsed_with_prefix("phase2") > 0.0);
}

#[test]
fn edge_reduction_is_monotone_and_substantial() {
    let data = synth::cosmo_like(SynthConfig::new(20_000));
    let out = RpDbscan::new(RpDbscanParams::new(1.6, 25).with_partitions(16))
        .unwrap()
        .run(&data, &engine())
        .unwrap();
    let e = &out.stats.edges_per_round;
    assert!(e.len() >= 3, "16 partitions need >= 4 rounds: {e:?}");
    for w in e.windows(2) {
        assert!(w[1] <= w[0], "{e:?}");
    }
    assert!(
        (*e.last().unwrap() as f64) < 0.8 * e[0] as f64,
        "reduction too weak: {e:?}"
    );
}

#[test]
fn labeled_csv_round_trip_through_io() {
    let data = synth::moons(SynthConfig::new(2_000), 0.05);
    let out = rp(&data, 0.15, 8);
    let dir = std::env::temp_dir().join("rpdbscan-e2e");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("labeled.csv");
    rp_dbscan::data::io::write_labeled_csv(&path, &data, &out.clustering, ',').unwrap();
    // The labeled file has one extra column; reading it back yields dim+1.
    let back = rp_dbscan::data::io::read_csv(&path, ',').unwrap();
    assert_eq!(back.len(), data.len());
    assert_eq!(back.dim(), data.dim() + 1);
}

#[test]
fn nmi_and_ari_track_rand_index() {
    let data = synth::blobs(SynthConfig::new(5_000), 5, 1.0, 100.0);
    let exact = exact_dbscan(&data, 0.8, 8);
    let out = rp(&data, 0.8, 8);
    let ri = rand_index(
        &exact.clustering,
        &out.clustering,
        NoisePolicy::SingleCluster,
    );
    let ari = adjusted_rand_index(
        &exact.clustering,
        &out.clustering,
        NoisePolicy::SingleCluster,
    );
    assert!(ri > 0.999);
    assert!(ari > 0.999);
}

#[test]
fn virtual_workers_do_not_change_results_only_timing() {
    let data = synth::osm_like(SynthConfig::new(8_000));
    let mut clusterings = Vec::new();
    for workers in [1usize, 4, 16] {
        let e = Engine::with_cost_model(workers, CostModel::free());
        let out = RpDbscan::new(RpDbscanParams::new(0.6, 10).with_partitions(8))
            .unwrap()
            .run(&data, &e)
            .unwrap();
        clusterings.push(out.clustering);
    }
    assert_eq!(clusterings[0], clusterings[1]);
    assert_eq!(clusterings[1], clusterings[2]);
}
