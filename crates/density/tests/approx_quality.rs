//! Property tests pinning the approximate backends' accuracy floor.
//!
//! On separable Gaussian blobs both approximate estimators must track
//! exact DBSCAN at Rand ≥ 0.95 — the same floor the `density_accuracy`
//! bench gates in CI. The backends are allowed to disagree with exact
//! labels on boundary points (that is what "approximate" buys), but a
//! floor violation on *separable* data means the estimator is broken,
//! not merely approximate.

use proptest::prelude::*;
use rpdbscan_baselines::exact_dbscan;
use rpdbscan_core::RpDbscanParams;
use rpdbscan_data::{synth, SynthConfig};
use rpdbscan_density::{DensityBackend, MutualKnn, SampledCore};
use rpdbscan_engine::{CostModel, Engine};
use rpdbscan_geom::Dataset;
use rpdbscan_metrics::{rand_index, Clustering, NoisePolicy};

const RAND_FLOOR: f64 = 0.95;
const EPS: f64 = 1.5;
const MIN_PTS: usize = 8;

/// Well-separated blobs: 4 components of std 0.5 in a [0, 200]² box —
/// inter-centre distance dwarfs ε for (almost) every seed.
fn separable_blobs(seed: u64) -> Dataset {
    synth::gaussian_mixture_with(SynthConfig::new(600).with_seed(seed), 2, 4.0, 4, 200.0)
}

fn rand_vs_exact(data: &Dataset, approx: &Clustering) -> f64 {
    let exact = exact_dbscan(data, EPS, MIN_PTS);
    rand_index(&exact.clustering, approx, NoisePolicy::SingleCluster)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn mutual_knn_tracks_exact_on_separable_blobs(seed in 0u64..10_000) {
        let data = separable_blobs(seed);
        let params = RpDbscanParams::new(EPS, MIN_PTS).with_seed(seed);
        let engine = Engine::with_cost_model(4, CostModel::free());
        let out = MutualKnn::new(params, 16)
            .cluster(&data, &engine)
            .expect("knn backend run");
        let ri = rand_vs_exact(&data, &out.clustering);
        prop_assert!(
            ri >= RAND_FLOOR,
            "knn Rand index {ri:.4} below {RAND_FLOOR} at seed {seed}"
        );
    }

    #[test]
    fn sampled_core_tracks_exact_on_separable_blobs(seed in 0u64..10_000) {
        let data = separable_blobs(seed);
        let params = RpDbscanParams::new(EPS, MIN_PTS).with_seed(seed);
        let engine = Engine::with_cost_model(4, CostModel::free());
        let out = SampledCore::new(params, 0.4)
            .cluster(&data, &engine)
            .expect("sampled backend run");
        let ri = rand_vs_exact(&data, &out.clustering);
        prop_assert!(
            ri >= RAND_FLOOR,
            "sampled Rand index {ri:.4} below {RAND_FLOOR} at seed {seed}"
        );
    }

    #[test]
    fn sampled_cores_are_a_subset_of_exact_cores(seed in 0u64..10_000) {
        // The sampled estimator never promotes: every flagged core
        // passes the full region query, so it is a true DBSCAN core
        // (up to the rho sub-cell inflation, generous slack below).
        let data = separable_blobs(seed);
        let params = RpDbscanParams::new(EPS, MIN_PTS).with_seed(seed);
        let engine = Engine::with_cost_model(2, CostModel::free());
        let flags = SampledCore::new(params, 0.4)
            .core_flags(&data, &engine)
            .expect("core flags");
        let slack = EPS * 1.1;
        for (i, &is_core) in flags.iter().enumerate() {
            if is_core {
                let p = data.point_at(i);
                let cnt = data
                    .iter()
                    .filter(|(_, q)| rpdbscan_geom::dist2(p, q) <= slack * slack)
                    .count();
                prop_assert!(
                    cnt >= MIN_PTS,
                    "sampled core {i} has only {cnt} slack-ball neighbours at seed {seed}"
                );
            }
        }
    }
}
