//! Bit-identity of the [`ExactGrid`] backend with the batch driver.
//!
//! The exact backend is a *thin adapter*: its `cluster` must reproduce
//! [`RpDbscan::run`]'s labels exactly — not "equivalent up to
//! relabelling", the same `Vec<Option<u32>>` byte for byte — across
//! dimensions, approximation rates ρ, and partition counts. Its
//! `core_flags` must agree with a brute-force DBSCAN density count.

use rpdbscan_core::{DensityBackendKind, RpDbscan, RpDbscanParams};
use rpdbscan_data::{synth, SynthConfig};
use rpdbscan_density::{backend_for, DensityBackend, ExactGrid};
use rpdbscan_engine::{CostModel, Engine};
use rpdbscan_geom::{dist2, Dataset};

fn engine(workers: usize) -> Engine {
    Engine::with_cost_model(workers, CostModel::free())
}

/// eps per dimension keeping the gaussian mixture's clusters connected.
fn eps_for(dim: usize) -> f64 {
    1.2 * (dim as f64).sqrt()
}

#[test]
fn exact_backend_is_bit_identical_across_dims_rho_and_partitions() {
    for dim in 1..=4usize {
        let data = synth::gaussian_mixture(SynthConfig::new(1_200).with_seed(dim as u64), dim, 4.0);
        let eps = eps_for(dim);
        for rho in [1.0, 0.1] {
            for parts in [1usize, 4, 9] {
                let params = RpDbscanParams::new(eps, 8)
                    .with_rho(rho)
                    .with_partitions(parts)
                    .with_seed(17);
                let engine = engine(4);
                let reference = RpDbscan::new(params)
                    .expect("valid params")
                    .run(&data, &engine)
                    .expect("driver run");
                let ours = ExactGrid::new(params)
                    .cluster(&data, &engine)
                    .expect("backend run");
                assert_eq!(
                    ours.clustering.labels(),
                    reference.clustering.labels(),
                    "labels diverged at dim={dim} rho={rho} parts={parts}"
                );
                assert_eq!(ours.stats.num_clusters, reference.stats.num_clusters);
                assert_eq!(ours.stats.noise_points, reference.stats.noise_points);
            }
        }
    }
}

#[test]
fn backend_for_normalises_to_the_same_exact_path() {
    let data = synth::gaussian_mixture(SynthConfig::new(800).with_seed(3), 2, 4.0);
    let params = RpDbscanParams::new(eps_for(2), 8)
        .with_rho(0.1)
        .with_partitions(5);
    // Dispatch through the kind enum and through the adapter directly:
    // one code path, one answer.
    let via_dispatch = backend_for(&params.with_density_backend(DensityBackendKind::Exact))
        .expect("dispatch")
        .cluster(&data, &engine(3))
        .expect("run");
    let direct = RpDbscan::new(params)
        .expect("valid params")
        .run(&data, &engine(3))
        .expect("run");
    assert_eq!(via_dispatch.clustering.labels(), direct.clustering.labels());
}

/// Brute-force `(ε,ρ)`-free DBSCAN core test at ρ → sub-cell granularity
/// is approximate; with ρ = 1.0 and a grid that is still finer than ε,
/// the region query's density equals the true ε-neighbourhood count on
/// generic (non-boundary) data, so core flags must match brute force.
#[test]
fn core_flags_match_brute_force_density_at_fine_rho() {
    for dim in 1..=3usize {
        let data =
            synth::gaussian_mixture(SynthConfig::new(500).with_seed(40 + dim as u64), dim, 6.0);
        let eps = eps_for(dim);
        let min_pts = 6usize;
        let params = RpDbscanParams::new(eps, min_pts).with_rho(0.05);
        let flags = ExactGrid::new(params)
            .core_flags(&data, &engine(4))
            .expect("core flags");
        let brute: Vec<bool> = brute_core_flags(&data, eps, min_pts);
        // rho=0.05 sub-cell approximation can only over-count within the
        // (1+rho)-inflated ball; points whose neighbourhood count sits
        // away from the min_pts boundary must agree exactly.
        let mut checked = 0;
        for i in 0..data.len() {
            let cnt = eps_count(&data, i, eps);
            let slack_cnt = eps_count(&data, i, eps * 1.06);
            if (cnt >= min_pts) == (slack_cnt >= min_pts) {
                assert_eq!(
                    flags[i], brute[i],
                    "dim={dim} point {i}: grid={} brute={} (count {cnt})",
                    flags[i], brute[i]
                );
                checked += 1;
            }
        }
        assert!(checked > data.len() / 2, "the check must not be vacuous");
    }
}

fn eps_count(data: &Dataset, i: usize, eps: f64) -> usize {
    let p = data.point_at(i);
    data.iter()
        .filter(|(_, q)| dist2(p, q) <= eps * eps)
        .count()
}

fn brute_core_flags(data: &Dataset, eps: f64, min_pts: usize) -> Vec<bool> {
    (0..data.len())
        .map(|i| eps_count(data, i, eps) >= min_pts)
        .collect()
}
