//! Pluggable density backends for the Phase II core-point decision.
//!
//! RP-DBSCAN's Phase II answers one question per point: *is this a core
//! point, and which cells hold its `(ε,ρ)`-neighbours?* The batch
//! pipeline answers it exactly against the broadcast cell dictionary —
//! correct in any dimension, but the grid machinery degrades as `d`
//! grows (the `(2b+1)^d` neighbour window and `2^d`-ary sub-cell tree
//! both blow up). This crate abstracts the decision behind the
//! [`DensityBackend`] trait and ships three implementations:
//!
//! * [`ExactGrid`] — a thin adapter over the existing dictionary +
//!   kd-tree path. Bit-identical to [`RpDbscan`]: `cluster` *is* the
//!   batch driver, so every pre-backend label is reproduced exactly.
//! * [`MutualKnn`] — density from a mutual-kNN graph à la KNN-DBSCAN
//!   (arXiv 2009.04552): a point is core when at least `minPts − 1` of
//!   its `k` nearest neighbours within ε are *mutual* (each lists the
//!   other). Clusters are the connected components of the mutual
//!   core–core graph; non-core points join their nearest core within ε.
//! * [`SampledCore`] — sampled core estimation à la DBSCAN++
//!   (arXiv 1810.13105): the full region query runs only on an
//!   `s`-fraction uniform sample, cores within ε are linked, and every
//!   remaining point classifies against its nearest discovered core.
//!
//! Selection is carried by [`DensityBackendKind`] on
//! [`RpDbscanParams`]; [`backend_for`] dispatches it. The batch driver,
//! the streaming epoch path, and the serving index accept only the
//! exact kind (each rejects approximate kinds with a typed error), so
//! this crate is the one place approximate backends execute.
//!
//! ```
//! use rpdbscan_core::{DensityBackendKind, RpDbscanParams};
//! use rpdbscan_density::backend_for;
//! use rpdbscan_engine::{CostModel, Engine};
//! use rpdbscan_geom::Dataset;
//!
//! let rows: Vec<Vec<f64>> = (0..40).map(|i| vec![i as f64 * 0.05, 0.0]).collect();
//! let data = Dataset::from_rows(2, &rows).unwrap();
//! let params = RpDbscanParams::new(0.3, 3)
//!     .with_density_backend(DensityBackendKind::MutualKnn { k: 8 });
//! let engine = Engine::with_cost_model(2, CostModel::free());
//! let backend = backend_for(&params).unwrap();
//! let out = backend.cluster(&data, &engine).unwrap();
//! assert_eq!(out.stats.backend, "knn");
//! assert_eq!(out.clustering.num_clusters(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rpdbscan_core::{CoreError, DensityBackendKind, RpDbscanParams};
use rpdbscan_engine::{Engine, StageError, TaskError};
use rpdbscan_geom::Dataset;
use rpdbscan_grid::QueryStats;
use rpdbscan_metrics::Clustering;

mod exact;
mod knn;
mod sampled;
mod uf;

pub use exact::ExactGrid;
pub use knn::MutualKnn;
pub use sampled::SampledCore;

/// Errors from a density backend.
#[derive(Debug)]
pub enum DensityError {
    /// A core-pipeline error (grid construction, parameter validation,
    /// or — for the exact backend — anything the batch driver raises).
    Core(CoreError),
    /// A backend stage failed on the execution engine.
    Stage(StageError),
    /// A backend task failed outside an engine stage.
    Task(TaskError),
}

impl std::fmt::Display for DensityError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Core(e) => write!(f, "core error: {e}"),
            Self::Stage(e) => write!(f, "density stage failed: {e}"),
            Self::Task(e) => write!(f, "density task failed: {e}"),
        }
    }
}

impl std::error::Error for DensityError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Core(e) => Some(e),
            Self::Stage(e) => Some(e),
            Self::Task(_) => None,
        }
    }
}

impl From<CoreError> for DensityError {
    fn from(e: CoreError) -> Self {
        Self::Core(e)
    }
}

impl From<StageError> for DensityError {
    fn from(e: StageError) -> Self {
        Self::Stage(e)
    }
}

impl From<TaskError> for DensityError {
    fn from(e: TaskError) -> Self {
        Self::Task(e)
    }
}

/// Statistics of one backend clustering pass.
#[derive(Debug, Clone, PartialEq)]
pub struct DensityStats {
    /// Backend tag (`exact` / `knn` / `sampled`).
    pub backend: &'static str,
    /// Core points found, when the backend surfaces per-point core
    /// status on its clustering path. `None` for [`ExactGrid`], whose
    /// `cluster` delegates wholesale to the batch driver (core counts
    /// are available through [`DensityBackend::core_flags`]).
    pub core_points: Option<usize>,
    /// Neighbourhood searches executed: region queries for the grid
    /// backends, kNN queries for the graph backend.
    pub neighbor_searches: u64,
    /// Clusters in the output labelling.
    pub num_clusters: usize,
    /// Points labelled noise.
    pub noise_points: usize,
    /// Aggregated region-query instrumentation, tagged with this
    /// backend's name. Only [`SampledCore`] runs dictionary region
    /// queries, so the counters stay zero for the other backends.
    pub query: QueryStats,
}

impl DensityStats {
    fn new(backend: &'static str) -> Self {
        Self {
            backend,
            core_points: None,
            neighbor_searches: 0,
            num_clusters: 0,
            noise_points: 0,
            query: QueryStats {
                backend,
                ..QueryStats::default()
            },
        }
    }
}

/// A finished backend clustering.
#[derive(Debug)]
pub struct DensityOutput {
    /// Point labels (None = noise), canonicalised: cluster ids are
    /// assigned by the smallest point index each cluster contains.
    pub clustering: Clustering,
    /// Backend statistics.
    pub stats: DensityStats,
}

/// One way of answering Phase II's core-point/neighbourhood decision.
///
/// Implementations must be deterministic: the same dataset and
/// parameters produce the same labels regardless of engine worker
/// count. Only [`ExactGrid`] promises *bit-identity* with the batch
/// driver; the approximate backends promise high Rand agreement on
/// well-separated data (measured by the `density_accuracy` bench and
/// pinned by this crate's property tests), not identical labels.
pub trait DensityBackend {
    /// The backend's stable tag (`exact` / `knn` / `sampled`).
    fn name(&self) -> &'static str;

    /// Per-point core flags under this backend's density estimate.
    ///
    /// For [`SampledCore`] only sampled points can be flagged — that is
    /// the estimator's contract, not an implementation gap.
    fn core_flags(&self, data: &Dataset, engine: &Engine) -> Result<Vec<bool>, DensityError>;

    /// Full clustering under this backend's density estimate.
    fn cluster(&self, data: &Dataset, engine: &Engine) -> Result<DensityOutput, DensityError>;
}

/// Instantiates the backend selected by `params.density_backend`,
/// validating backend knobs ([`rpdbscan_core::validate_backend_config`])
/// first.
pub fn backend_for(params: &RpDbscanParams) -> Result<Box<dyn DensityBackend>, DensityError> {
    rpdbscan_core::validate_backend_config(&params.density_backend)?;
    if params.min_pts == 0 {
        return Err(DensityError::Core(CoreError::InvalidMinPts(0)));
    }
    Ok(match params.density_backend {
        DensityBackendKind::Exact => Box::new(ExactGrid::new(*params)),
        DensityBackendKind::MutualKnn { k } => Box::new(MutualKnn::new(*params, k)),
        DensityBackendKind::SampledCore { sample_frac } => {
            Box::new(SampledCore::new(*params, sample_frac))
        }
    })
}

/// Convenience: dispatch on `params.density_backend` and cluster.
pub fn cluster_with(
    params: &RpDbscanParams,
    data: &Dataset,
    engine: &Engine,
) -> Result<DensityOutput, DensityError> {
    backend_for(params)?.cluster(data, engine)
}

/// Splits `0..n` into at most `chunks` contiguous ranges for engine
/// fan-out. Deterministic in `n` and `chunks` alone, so stage task
/// boundaries (and therefore outputs) never depend on worker count.
fn point_ranges(n: usize, chunks: usize) -> Vec<(usize, usize)> {
    let chunks = chunks.clamp(1, n.max(1));
    let per = n.div_ceil(chunks);
    let mut ranges = Vec::new();
    let mut lo = 0;
    while lo < n {
        let hi = (lo + per).min(n);
        ranges.push((lo, hi));
        lo = hi;
    }
    ranges
}

/// Canonicalises labels: cluster ids are renumbered `0..` in order of
/// each cluster's smallest point index.
fn canonicalize(labels: &mut [Option<u32>]) {
    let mut remap: Vec<Option<u32>> = Vec::new();
    let mut next = 0u32;
    for l in labels.iter_mut() {
        if let Some(old) = *l {
            let slot = old as usize;
            if slot >= remap.len() {
                remap.resize(slot + 1, None);
            }
            let new = match remap[slot] {
                Some(new) => new,
                None => {
                    let new = next;
                    remap[slot] = Some(new);
                    next += 1;
                    new
                }
            };
            *l = Some(new);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_ranges_cover_and_partition() {
        for n in [0usize, 1, 7, 64, 100] {
            for chunks in [1usize, 3, 8, 200] {
                let ranges = point_ranges(n, chunks);
                let mut expect = 0;
                for &(lo, hi) in &ranges {
                    assert_eq!(lo, expect);
                    assert!(hi > lo);
                    expect = hi;
                }
                assert_eq!(expect, n);
                if n == 0 {
                    assert!(ranges.is_empty());
                }
            }
        }
    }

    #[test]
    fn canonicalize_orders_by_first_appearance() {
        let mut labels = vec![Some(7), None, Some(2), Some(7), Some(9), None];
        canonicalize(&mut labels);
        assert_eq!(labels, vec![Some(0), None, Some(1), Some(0), Some(2), None]);
    }

    #[test]
    fn backend_for_dispatches_and_validates() {
        let base = RpDbscanParams::new(0.5, 4);
        assert_eq!(backend_for(&base).unwrap().name(), "exact");
        let knn = base.with_density_backend(DensityBackendKind::MutualKnn { k: 8 });
        assert_eq!(backend_for(&knn).unwrap().name(), "knn");
        let sampled =
            base.with_density_backend(DensityBackendKind::SampledCore { sample_frac: 0.5 });
        assert_eq!(backend_for(&sampled).unwrap().name(), "sampled");

        let bad_k = base.with_density_backend(DensityBackendKind::MutualKnn { k: 0 });
        assert!(matches!(
            backend_for(&bad_k),
            Err(DensityError::Core(CoreError::InvalidBackendConfig { .. }))
        ));
        let bad_frac =
            base.with_density_backend(DensityBackendKind::SampledCore { sample_frac: 0.0 });
        assert!(matches!(
            backend_for(&bad_frac),
            Err(DensityError::Core(CoreError::InvalidBackendConfig { .. }))
        ));
        let mut zero_minpts = base;
        zero_minpts.min_pts = 0;
        assert!(matches!(
            backend_for(&zero_minpts),
            Err(DensityError::Core(CoreError::InvalidMinPts(0)))
        ));
    }
}
