//! The sampled-core backend (à la DBSCAN++, arXiv 1810.13105).

use crate::uf::UnionFind;
use crate::{DensityBackend, DensityError, DensityOutput, DensityStats};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rpdbscan_core::{CoreError, DensityBackendKind, RpDbscanParams};
use rpdbscan_engine::Engine;
use rpdbscan_geom::{Dataset, KdTree};
use rpdbscan_grid::{CellDictionary, DictionaryIndex, GridSpec, QueryStats, RegionQueryResult};
use rpdbscan_metrics::Clustering;

/// Full `(ε,ρ)`-region queries on a uniform `s`-fraction sample only.
///
/// The cell dictionary is still built from **all** points — densities
/// stay exact; what is sampled is *which* points get the expensive
/// query:
///
/// * a seeded partial Fisher–Yates draw picks `m = ⌈s·n⌉` candidate
///   points (deterministic in `params.seed`, independent of workers);
/// * each candidate runs the ordinary region query (engine-parallel,
///   stats tagged `sampled`) and is core iff its density ≥ `minPts` —
///   exactly the batch rule, so sampled cores are *true* cores;
/// * discovered cores within ε of each other are linked into clusters;
/// * every remaining point joins its nearest core within ε (ties by
///   smallest core id) or is noise.
///
/// The estimate errs toward noise: a true core outside the sample is
/// never flagged, but no non-core point is ever promoted.
pub struct SampledCore {
    params: RpDbscanParams,
    sample_frac: f64,
}

struct Solved {
    core: Vec<bool>,
    labels: Vec<Option<u32>>,
    query: QueryStats,
    searches: u64,
}

impl SampledCore {
    /// Creates the backend; `sample_frac` is the sampled fraction `s`.
    pub fn new(params: RpDbscanParams, sample_frac: f64) -> Self {
        Self {
            params,
            sample_frac,
        }
    }

    /// Deterministic partial Fisher–Yates draw of `m` distinct indices
    /// out of `0..n`, returned sorted ascending.
    fn sample_indices(&self, n: usize, m: usize) -> Vec<u32> {
        let mut idx: Vec<u32> = (0..n as u32).collect();
        let mut rng = StdRng::seed_from_u64(self.params.seed.wrapping_add(0x5a5a_5a5a));
        for i in 0..m {
            let j = rng.gen_range(i..n);
            idx.swap(i, j);
        }
        idx.truncate(m);
        idx.sort_unstable();
        idx
    }

    fn solve(&self, data: &Dataset, engine: &Engine) -> Result<Solved, DensityError> {
        rpdbscan_core::validate_backend_config(&DensityBackendKind::SampledCore {
            sample_frac: self.sample_frac,
        })?;
        let p = &self.params;
        if p.min_pts == 0 {
            return Err(DensityError::Core(CoreError::InvalidMinPts(0)));
        }
        let n = data.len();
        let mut query = QueryStats {
            backend: "sampled",
            ..QueryStats::default()
        };
        if n == 0 {
            return Ok(Solved {
                core: Vec::new(),
                labels: Vec::new(),
                query,
                searches: 0,
            });
        }

        let spec =
            GridSpec::new(data.dim(), p.eps, p.rho).map_err(rpdbscan_core::CoreError::from)?;
        let dict = CellDictionary::build_from_points(spec, data.iter().map(|(_, pt)| pt));
        let index = DictionaryIndex::new(dict, p.subdict_capacity);

        let m = ((self.sample_frac * n as f64).ceil() as usize).clamp(1, n);
        let sample = self.sample_indices(n, m);

        // Region queries on the sample only, parallel over sample
        // chunks; each task reports its discovered cores and counters.
        let min_pts = p.min_pts as u64;
        let chunks: Vec<Vec<u32>> = crate::point_ranges(m, p.num_partitions)
            .into_iter()
            .map(|(lo, hi)| sample[lo..hi].to_vec())
            .collect();
        let stage = engine.run_stage("density:sampled-cores", chunks, |_ctx, chunk| {
            let mut cores: Vec<u32> = Vec::new();
            let mut stats = QueryStats::default();
            let mut r = RegionQueryResult::default();
            let mut center = vec![0.0; data.dim()];
            for &i in &chunk {
                index.region_query_cells_scratch(data.point_at(i as usize), &mut r, &mut center);
                stats.merge(&r.stats);
                if r.density >= min_pts {
                    cores.push(i);
                }
            }
            Ok((cores, stats))
        })?;
        let mut cores: Vec<u32> = Vec::new();
        for (chunk_cores, stats) in stage.outputs {
            cores.extend(chunk_cores); // chunks are sorted and disjoint
            query.merge(&stats);
        }

        let mut core = vec![false; n];
        for &c in &cores {
            core[c as usize] = true;
        }
        let mut labels: Vec<Option<u32>> = vec![None; n];
        if cores.is_empty() {
            return Ok(Solved {
                core,
                labels,
                query,
                searches: m as u64,
            });
        }

        // Link cores within ε of each other (DBSCAN++'s core graph).
        // Union by smallest position makes components order-free.
        let dim = data.dim();
        let mut core_coords = Vec::with_capacity(cores.len() * dim);
        for &c in &cores {
            core_coords.extend_from_slice(data.point_at(c as usize));
        }
        let core_tree = KdTree::build(dim, core_coords, (0..cores.len() as u32).collect());
        let mut uf = UnionFind::new(cores.len());
        for (pos, &c) in cores.iter().enumerate() {
            core_tree.for_each_within(data.point_at(c as usize), p.eps, |other, _| {
                uf.union(pos as u32, other);
            });
        }
        let root_of: Vec<u32> = (0..cores.len() as u32).map(|c| uf.find(c)).collect();

        // Assign every point to its nearest core within ε (engine-
        // parallel); ties break on the smaller core position, which is
        // the smaller point id because `cores` is sorted.
        let eps = p.eps;
        let ranges = crate::point_ranges(n, p.num_partitions);
        let stage = engine.run_stage("density:sampled-assign", ranges, |_ctx, (lo, hi)| {
            let mut out: Vec<Option<u32>> = Vec::with_capacity(hi - lo);
            for i in lo..hi {
                let mut best: Option<(f64, u32)> = None;
                core_tree.for_each_within(data.point_at(i), eps, |pos, d2| {
                    let better = match best {
                        None => true,
                        Some((bd2, bpos)) => match d2.total_cmp(&bd2) {
                            std::cmp::Ordering::Less => true,
                            std::cmp::Ordering::Equal => pos < bpos,
                            std::cmp::Ordering::Greater => false,
                        },
                    };
                    if better {
                        best = Some((d2, pos));
                    }
                });
                out.push(best.map(|(_, pos)| root_of[pos as usize]));
            }
            Ok(out)
        })?;
        labels = stage.outputs.into_iter().flatten().collect();
        crate::canonicalize(&mut labels);
        Ok(Solved {
            core,
            labels,
            query,
            searches: m as u64 + n as u64 + cores.len() as u64,
        })
    }
}

impl DensityBackend for SampledCore {
    fn name(&self) -> &'static str {
        "sampled"
    }

    fn core_flags(&self, data: &Dataset, engine: &Engine) -> Result<Vec<bool>, DensityError> {
        Ok(self.solve(data, engine)?.core)
    }

    fn cluster(&self, data: &Dataset, engine: &Engine) -> Result<DensityOutput, DensityError> {
        let solved = self.solve(data, engine)?;
        let clustering = Clustering::new(solved.labels);
        let mut stats = DensityStats::new("sampled");
        stats.core_points = Some(solved.core.iter().filter(|c| **c).count());
        stats.neighbor_searches = solved.searches;
        stats.num_clusters = clustering.num_clusters();
        stats.noise_points = clustering.noise_count();
        stats.query = solved.query;
        Ok(DensityOutput { clustering, stats })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpdbscan_engine::CostModel;

    fn engine() -> Engine {
        Engine::with_cost_model(3, CostModel::free())
    }

    fn blobs_with_noise() -> Dataset {
        let mut rows = Vec::new();
        for i in 0..25 {
            rows.push(vec![(i % 5) as f64 * 0.1, (i / 5) as f64 * 0.1]);
        }
        for i in 0..25 {
            rows.push(vec![20.0 + (i % 5) as f64 * 0.1, (i / 5) as f64 * 0.1]);
        }
        rows.push(vec![100.0, 100.0]);
        Dataset::from_rows(2, &rows).unwrap()
    }

    #[test]
    fn full_sample_matches_exact_core_semantics() {
        let data = blobs_with_noise();
        let params = RpDbscanParams::new(0.5, 4);
        // s = 1: every point is queried, so cores are exactly DBSCAN's.
        let out = SampledCore::new(params, 1.0)
            .cluster(&data, &engine())
            .unwrap();
        assert_eq!(out.stats.backend, "sampled");
        assert_eq!(out.stats.query.backend, "sampled");
        assert!(out.stats.query.subdicts_visited > 0);
        assert_eq!(out.clustering.num_clusters(), 2);
        assert_eq!(out.clustering.labels()[50], None);
        assert_eq!(out.clustering.labels()[0], Some(0));
    }

    #[test]
    fn sampling_is_deterministic_and_worker_independent() {
        let data = blobs_with_noise();
        let params = RpDbscanParams::new(0.5, 4).with_seed(7);
        let reference = SampledCore::new(params.with_partitions(1), 0.4)
            .cluster(&data, &Engine::with_cost_model(1, CostModel::free()))
            .unwrap();
        for parts in [2, 5, 13] {
            let out = SampledCore::new(params.with_partitions(parts), 0.4)
                .cluster(&data, &Engine::with_cost_model(4, CostModel::free()))
                .unwrap();
            assert_eq!(out.clustering.labels(), reference.clustering.labels());
        }
    }

    #[test]
    fn different_seeds_draw_different_samples() {
        let a = SampledCore::new(RpDbscanParams::new(0.5, 4).with_seed(1), 0.3);
        let b = SampledCore::new(RpDbscanParams::new(0.5, 4).with_seed(2), 0.3);
        assert_ne!(a.sample_indices(100, 30), b.sample_indices(100, 30));
        // And each draw is sorted and distinct.
        let s = a.sample_indices(100, 30);
        for w in s.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn unsampled_cores_err_toward_noise_not_merges() {
        let data = blobs_with_noise();
        let params = RpDbscanParams::new(0.5, 4).with_seed(3);
        let out = SampledCore::new(params, 0.2)
            .cluster(&data, &engine())
            .unwrap();
        // At most the two true blobs can appear; sampling can split
        // nothing together that exact DBSCAN keeps apart.
        assert!(out.clustering.num_clusters() <= 2);
        assert_eq!(out.clustering.labels()[50], None);
        assert!(
            out.stats.core_points.unwrap() <= 11,
            "only sampled points flag core"
        );
    }

    #[test]
    fn empty_input() {
        let empty = Dataset::from_rows(2, &Vec::<Vec<f64>>::new()).unwrap();
        let out = SampledCore::new(RpDbscanParams::new(1.0, 2), 0.5)
            .cluster(&empty, &engine())
            .unwrap();
        assert_eq!(out.clustering.len(), 0);
        assert_eq!(out.stats.core_points, Some(0));
    }
}
