//! The exact grid backend: a thin adapter over the batch driver.

use crate::{DensityBackend, DensityError, DensityOutput, DensityStats};
use rpdbscan_core::phase2::{build_local_clustering, QueryRouting};
use rpdbscan_core::{partition::group_by_cell, DensityBackendKind, Partition};
use rpdbscan_core::{RpDbscan, RpDbscanParams};
use rpdbscan_engine::Engine;
use rpdbscan_geom::{Dataset, PointId};
use rpdbscan_grid::{CellDictionary, DictionaryIndex, GridSpec};

/// The paper's exact `(ε,ρ)`-region-query density, unchanged.
///
/// `cluster` *is* [`RpDbscan::run`] — the adapter forwards to the batch
/// driver with the backend selection normalised to
/// [`DensityBackendKind::Exact`], so its labels are bit-identical to a
/// driver run with the same parameters (the equivalence suite pins
/// this). `core_flags` runs Phase II alone over the same dictionary.
pub struct ExactGrid {
    params: RpDbscanParams,
}

impl ExactGrid {
    /// Creates the adapter. The params' backend selection is normalised
    /// to [`DensityBackendKind::Exact`] so the inner driver accepts it.
    pub fn new(params: RpDbscanParams) -> Self {
        Self {
            params: params.with_density_backend(DensityBackendKind::Exact),
        }
    }
}

impl DensityBackend for ExactGrid {
    fn name(&self) -> &'static str {
        "exact"
    }

    fn core_flags(&self, data: &Dataset, engine: &Engine) -> Result<Vec<bool>, DensityError> {
        let p = &self.params;
        let spec =
            GridSpec::new(data.dim(), p.eps, p.rho).map_err(rpdbscan_core::CoreError::from)?;
        let dict = CellDictionary::build_from_points(spec, data.iter().map(|(_, pt)| pt));
        let index = DictionaryIndex::new(dict, p.subdict_capacity);
        let routing = QueryRouting::auto(&index);

        // Core status is a per-point property, so any cell split gives
        // the same flags; chunk the (already coordinate-sorted) cells
        // into `num_partitions` tasks for engine fan-out.
        let cells = group_by_cell(index.spec(), data);
        let partitions: Vec<Partition> = crate::point_ranges(cells.len(), p.num_partitions)
            .into_iter()
            .enumerate()
            .map(|(id, (lo, hi))| Partition {
                id,
                cells: cells[lo..hi].to_vec(),
            })
            .collect();

        let min_pts = p.min_pts;
        let stage = engine.run_stage("density:exact-cores", partitions, |_ctx, part| {
            let local = build_local_clustering(&part, data, &index, min_pts, routing)?;
            let mut ids: Vec<PointId> = local.core_points.into_values().flatten().collect();
            ids.sort_unstable();
            Ok(ids)
        })?;

        let mut flags = vec![false; data.len()];
        for ids in stage.outputs {
            for pid in ids {
                flags[pid.0 as usize] = true;
            }
        }
        Ok(flags)
    }

    fn cluster(&self, data: &Dataset, engine: &Engine) -> Result<DensityOutput, DensityError> {
        let out = RpDbscan::new(self.params)?.run(data, engine)?;
        let mut stats = DensityStats::new("exact");
        stats.neighbor_searches = out.stats.points_processed;
        stats.num_clusters = out.stats.num_clusters;
        stats.noise_points = out.stats.noise_points;
        Ok(DensityOutput {
            clustering: out.clustering,
            stats,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpdbscan_engine::CostModel;

    fn two_blobs() -> Dataset {
        let mut rows = Vec::new();
        for i in 0..20 {
            rows.push(vec![(i % 5) as f64 * 0.1, (i / 5) as f64 * 0.1]);
            rows.push(vec![8.0 + (i % 5) as f64 * 0.1, (i / 5) as f64 * 0.1]);
        }
        rows.push(vec![50.0, 50.0]); // noise
        Dataset::from_rows(2, &rows).unwrap()
    }

    #[test]
    fn cluster_matches_the_batch_driver_bit_for_bit() {
        let data = two_blobs();
        let params = RpDbscanParams::new(0.4, 4).with_partitions(3);
        let engine = Engine::with_cost_model(2, CostModel::free());
        let ours = ExactGrid::new(params).cluster(&data, &engine).unwrap();
        let reference = RpDbscan::new(params).unwrap().run(&data, &engine).unwrap();
        assert_eq!(ours.clustering.labels(), reference.clustering.labels());
        assert_eq!(ours.stats.backend, "exact");
        assert_eq!(ours.stats.num_clusters, 2);
        assert_eq!(ours.stats.query.backend, "exact");
    }

    #[test]
    fn core_flags_mark_dense_points_only() {
        let data = two_blobs();
        let params = RpDbscanParams::new(0.4, 4).with_partitions(3);
        let engine = Engine::with_cost_model(2, CostModel::free());
        let flags = ExactGrid::new(params).core_flags(&data, &engine).unwrap();
        assert_eq!(flags.len(), data.len());
        assert!(!flags[data.len() - 1], "the far outlier is not core");
        assert!(flags.iter().filter(|f| **f).count() > 20);
    }
}
