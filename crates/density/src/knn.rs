//! The mutual-kNN-graph backend (à la KNN-DBSCAN, arXiv 2009.04552).

use crate::uf::UnionFind;
use crate::{DensityBackend, DensityError, DensityOutput, DensityStats};
use rpdbscan_core::{CoreError, DensityBackendKind, RpDbscanParams};
use rpdbscan_engine::Engine;
use rpdbscan_geom::{Dataset, KdTree};
use rpdbscan_metrics::Clustering;

/// Density from a mutual-kNN graph instead of exhaustive ε-range
/// counting.
///
/// One exact kNN query per point (engine-parallel over point ranges)
/// replaces the per-point region query; everything downstream reads the
/// finished graph:
///
/// * an edge `i — j` is *mutual* when each point lists the other among
///   its `k` nearest **and** they are within ε;
/// * `i` is core when it keeps at least `minPts − 1` mutual edges (the
///   point itself supplies the remaining count, matching DBSCAN's
///   `|N_ε(p)| ≥ minPts` convention);
/// * clusters are connected components of the mutual core–core graph;
/// * a non-core point joins the component of its nearest core within ε
///   (plain DBSCAN border semantics — mutuality is not required to be
///   absorbed, only to *be* dense), otherwise it is noise.
///
/// With `k ≥ minPts − 1` neighbours available this recovers exact
/// DBSCAN cores on well-separated data; undersized `k` only *loses*
/// density (never invents it), so the estimate degrades toward more
/// noise, not toward merged clusters.
pub struct MutualKnn {
    params: RpDbscanParams,
    k: usize,
}

struct Solved {
    core: Vec<bool>,
    labels: Vec<Option<u32>>,
}

impl MutualKnn {
    /// Creates the backend; `k` is the neighbour-list length per point.
    pub fn new(params: RpDbscanParams, k: usize) -> Self {
        Self { params, k }
    }

    fn solve(&self, data: &Dataset, engine: &Engine) -> Result<Solved, DensityError> {
        rpdbscan_core::validate_backend_config(&DensityBackendKind::MutualKnn { k: self.k })?;
        if self.params.min_pts == 0 {
            return Err(DensityError::Core(CoreError::InvalidMinPts(0)));
        }
        let n = data.len();
        if n == 0 {
            return Ok(Solved {
                core: Vec::new(),
                labels: Vec::new(),
            });
        }

        let mut coords = Vec::with_capacity(n * data.dim());
        for (_, p) in data.iter() {
            coords.extend_from_slice(p);
        }
        let tree = KdTree::build(data.dim(), coords, (0..n as u32).collect());

        // One kNN query per point, parallel over contiguous ranges. Ask
        // for k+1 and drop the self-match, so every list holds up to k
        // genuine neighbours even with duplicate coordinates (ties sort
        // by payload, so the self id is always present in the k+1).
        let k = self.k;
        let ranges = crate::point_ranges(n, self.params.num_partitions);
        let stage = engine.run_stage("density:knn-graph", ranges, |_ctx, (lo, hi)| {
            let mut lists: Vec<Vec<(u32, f64)>> = Vec::with_capacity(hi - lo);
            for i in lo..hi {
                let mut nb = tree.nearest_k(data.point_at(i), k + 1);
                nb.retain(|&(p, _)| p != i as u32);
                nb.truncate(k);
                lists.push(nb);
            }
            Ok(lists)
        })?;
        let knn: Vec<Vec<(u32, f64)>> = stage.outputs.into_iter().flatten().collect();

        // Sorted neighbour-id lists give O(log k) mutuality tests.
        let ids_sorted: Vec<Vec<u32>> = knn
            .iter()
            .map(|l| {
                let mut v: Vec<u32> = l.iter().map(|&(p, _)| p).collect();
                v.sort_unstable();
                v
            })
            .collect();
        let is_mutual =
            |i: usize, j: u32| ids_sorted[j as usize].binary_search(&(i as u32)).is_ok();

        let eps2 = self.params.eps * self.params.eps;
        let min_mutual = self.params.min_pts - 1;
        let core: Vec<bool> = (0..n)
            .map(|i| {
                let deg = knn[i]
                    .iter()
                    .filter(|&&(j, d2)| d2 <= eps2 && is_mutual(i, j))
                    .count();
                deg >= min_mutual
            })
            .collect();

        // Components over mutual core–core edges. Union by smallest id
        // makes the result independent of edge order.
        let mut uf = UnionFind::new(n);
        for i in 0..n {
            if !core[i] {
                continue;
            }
            for &(j, d2) in &knn[i] {
                if core[j as usize] && d2 <= eps2 && is_mutual(i, j) {
                    uf.union(i as u32, j);
                }
            }
        }

        let mut labels: Vec<Option<u32>> = vec![None; n];
        for i in 0..n {
            if core[i] {
                labels[i] = Some(uf.find(i as u32));
            } else {
                // kNN lists are sorted by (d², payload): the first core
                // hit is the nearest, ties broken by smallest id.
                for &(j, d2) in &knn[i] {
                    if d2 <= eps2 && core[j as usize] {
                        labels[i] = Some(uf.find(j));
                        break;
                    }
                }
            }
        }
        crate::canonicalize(&mut labels);
        Ok(Solved { core, labels })
    }
}

impl DensityBackend for MutualKnn {
    fn name(&self) -> &'static str {
        "knn"
    }

    fn core_flags(&self, data: &Dataset, engine: &Engine) -> Result<Vec<bool>, DensityError> {
        Ok(self.solve(data, engine)?.core)
    }

    fn cluster(&self, data: &Dataset, engine: &Engine) -> Result<DensityOutput, DensityError> {
        let solved = self.solve(data, engine)?;
        let clustering = Clustering::new(solved.labels);
        let mut stats = DensityStats::new("knn");
        stats.core_points = Some(solved.core.iter().filter(|c| **c).count());
        stats.neighbor_searches = data.len() as u64;
        stats.num_clusters = clustering.num_clusters();
        stats.noise_points = clustering.noise_count();
        Ok(DensityOutput { clustering, stats })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpdbscan_engine::CostModel;

    fn engine() -> Engine {
        Engine::with_cost_model(3, CostModel::free())
    }

    fn blobs_with_noise() -> Dataset {
        let mut rows = Vec::new();
        for i in 0..25 {
            rows.push(vec![(i % 5) as f64 * 0.1, (i / 5) as f64 * 0.1]);
        }
        for i in 0..25 {
            rows.push(vec![20.0 + (i % 5) as f64 * 0.1, (i / 5) as f64 * 0.1]);
        }
        rows.push(vec![100.0, 100.0]);
        Dataset::from_rows(2, &rows).unwrap()
    }

    #[test]
    fn separable_blobs_cluster_cleanly() {
        let data = blobs_with_noise();
        let params = RpDbscanParams::new(0.5, 4)
            .with_density_backend(DensityBackendKind::MutualKnn { k: 8 });
        let out = MutualKnn::new(params, 8).cluster(&data, &engine()).unwrap();
        assert_eq!(out.stats.backend, "knn");
        assert_eq!(out.clustering.num_clusters(), 2);
        let labels = out.clustering.labels();
        assert_eq!(labels[50], None, "the far point is noise");
        // Canonical ids: the cluster containing point 0 is id 0.
        assert_eq!(labels[0], Some(0));
        assert_eq!(labels[30], Some(1));
        assert!(out.stats.core_points.unwrap() > 0);
    }

    #[test]
    fn results_are_independent_of_partition_and_worker_count() {
        let data = blobs_with_noise();
        let base = RpDbscanParams::new(0.5, 4);
        let reference = MutualKnn::new(base.with_partitions(1), 6)
            .cluster(&data, &Engine::with_cost_model(1, CostModel::free()))
            .unwrap();
        for parts in [2, 5, 13] {
            let out = MutualKnn::new(base.with_partitions(parts), 6)
                .cluster(&data, &Engine::with_cost_model(4, CostModel::free()))
                .unwrap();
            assert_eq!(out.clustering.labels(), reference.clustering.labels());
        }
    }

    #[test]
    fn undersized_k_loses_density_but_never_merges() {
        let data = blobs_with_noise();
        let base = RpDbscanParams::new(0.5, 6);
        // k = 1 cannot reach min_pts - 1 = 5 mutual neighbours.
        let starved = MutualKnn::new(base, 1).cluster(&data, &engine()).unwrap();
        assert_eq!(starved.stats.core_points, Some(0));
        assert_eq!(starved.clustering.num_clusters(), 0);
        assert_eq!(starved.stats.noise_points, data.len());
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let empty = Dataset::from_rows(2, &Vec::<Vec<f64>>::new()).unwrap();
        let params = RpDbscanParams::new(1.0, 2);
        let out = MutualKnn::new(params, 4)
            .cluster(&empty, &engine())
            .unwrap();
        assert_eq!(out.clustering.len(), 0);

        let single = Dataset::from_rows(2, &[vec![0.0, 0.0]]).unwrap();
        let out = MutualKnn::new(params, 4)
            .cluster(&single, &engine())
            .unwrap();
        assert_eq!(out.clustering.labels(), &[None]);
    }
}
