//! A small deterministic union–find over dense `u32` ids.

/// Union–find with path halving and union by smaller root id.
///
/// Union by *id* (not by rank) keeps the representative of every
/// component equal to its smallest member, so downstream label
/// canonicalisation never depends on union order.
pub(crate) struct UnionFind {
    parent: Vec<u32>,
}

impl UnionFind {
    pub(crate) fn new(n: usize) -> Self {
        Self {
            parent: (0..n as u32).collect(),
        }
    }

    pub(crate) fn find(&mut self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            let grand = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = grand;
            x = grand;
        }
        x
    }

    pub(crate) fn union(&mut self, a: u32, b: u32) {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            return;
        }
        // Smaller id wins: roots are always the minimum of their set.
        let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
        self.parent[hi as usize] = lo;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roots_are_smallest_members() {
        let mut uf = UnionFind::new(8);
        uf.union(5, 3);
        uf.union(3, 7);
        uf.union(2, 5);
        assert_eq!(uf.find(7), 2);
        assert_eq!(uf.find(5), 2);
        assert_eq!(uf.find(2), 2);
        assert_eq!(uf.find(0), 0);
        assert_eq!(uf.find(6), 6);
    }

    #[test]
    fn union_order_does_not_change_roots() {
        let edges = [(0u32, 1u32), (2, 3), (1, 2), (4, 5)];
        let mut a = UnionFind::new(6);
        for &(x, y) in &edges {
            a.union(x, y);
        }
        let mut b = UnionFind::new(6);
        for &(x, y) in edges.iter().rev() {
            b.union(y, x);
        }
        for i in 0..6u32 {
            assert_eq!(a.find(i), b.find(i));
        }
    }
}
