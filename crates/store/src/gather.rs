//! Cell-granular gathers through the buffer pool.
//!
//! Phase II and labeling consume one cell at a time: a contiguous row
//! range per the directory. These helpers pin the overlapping pages of
//! each column in turn (one pin live at a time, so tiny budgets work),
//! decode into caller-owned scratch, and unpin. All hot loops take
//! hoisted buffers and are marked `// lint:hot`.

use crate::format;
use crate::pool::{BufferPool, PageKey};
use crate::StoreError;

impl BufferPool {
    /// Gathers a row range's coordinates row-major into `out`
    /// (`out[row * dim + c]`), replacing its contents.
    // lint:hot
    pub fn gather_coords(
        &self,
        row_start: u64,
        row_count: u64,
        out: &mut Vec<f64>,
    ) -> Result<(), StoreError> {
        let dim = self.store().dim();
        out.clear();
        out.resize((row_count as usize) * dim, 0.0);
        let n = self.store().len();
        let page_rows = self.store().page_rows() as u64;
        check_range(row_start, row_count, n)?;
        for c in 0..dim {
            let mut row = row_start;
            let end = row_start + row_count;
            while row < end {
                let page = (row / page_rows) as u32;
                let pref = self.pin(PageKey {
                    col: c as u32,
                    page,
                })?;
                let bytes = pref.bytes();
                let page_first = page as u64 * page_rows;
                let page_end = page_first + format::rows_in_page(n, page_rows as u32, page);
                let upto = end.min(page_end);
                let mut a = [0u8; 8];
                for r in row..upto {
                    let off = ((r - page_first) * 8) as usize;
                    a.copy_from_slice(&bytes[off..off + 8]);
                    out[(r - row_start) as usize * dim + c] = f64::from_le_bytes(a);
                }
                row = upto;
            }
        }
        Ok(())
    }

    /// Gathers a row range's original point ids into `out`, replacing
    /// its contents. Ids ascend within any single cell's range.
    // lint:hot
    pub fn gather_ids(
        &self,
        row_start: u64,
        row_count: u64,
        out: &mut Vec<u32>,
    ) -> Result<(), StoreError> {
        out.clear();
        out.reserve(row_count as usize);
        let n = self.store().len();
        let dim = self.store().dim() as u32;
        let page_rows = self.store().page_rows() as u64;
        check_range(row_start, row_count, n)?;
        let mut row = row_start;
        let end = row_start + row_count;
        let mut a = [0u8; 4];
        while row < end {
            let page = (row / page_rows) as u32;
            let pref = self.pin(PageKey { col: dim, page })?;
            let bytes = pref.bytes();
            let page_first = page as u64 * page_rows;
            let page_end = page_first + format::rows_in_page(n, page_rows as u32, page);
            let upto = end.min(page_end);
            for r in row..upto {
                let off = ((r - page_first) * 4) as usize;
                a.copy_from_slice(&bytes[off..off + 4]);
                out.push(u32::from_le_bytes(a));
            }
            row = upto;
        }
        Ok(())
    }

    /// Merge-scans a cell's permutation rows for `ids` (ascending
    /// original point ids, each present in the range) and appends the
    /// matching row numbers — ascending — to `out_rows` (cleared first).
    /// Used by labeling to locate a predecessor cell's core points.
    // lint:hot
    pub fn rows_of_ids(
        &self,
        row_start: u64,
        row_count: u64,
        ids: &[u32],
        out_rows: &mut Vec<u64>,
    ) -> Result<(), StoreError> {
        out_rows.clear();
        if ids.is_empty() {
            return Ok(());
        }
        let n = self.store().len();
        let dim = self.store().dim() as u32;
        let page_rows = self.store().page_rows() as u64;
        check_range(row_start, row_count, n)?;
        let mut want = 0usize;
        let mut row = row_start;
        let end = row_start + row_count;
        let mut a = [0u8; 4];
        'scan: while row < end {
            let page = (row / page_rows) as u32;
            let pref = self.pin(PageKey { col: dim, page })?;
            let bytes = pref.bytes();
            let page_first = page as u64 * page_rows;
            let page_end = page_first + format::rows_in_page(n, page_rows as u32, page);
            let upto = end.min(page_end);
            for r in row..upto {
                let off = ((r - page_first) * 4) as usize;
                a.copy_from_slice(&bytes[off..off + 4]);
                if u32::from_le_bytes(a) == ids[want] {
                    out_rows.push(r);
                    want += 1;
                    if want == ids.len() {
                        break 'scan;
                    }
                }
            }
            row = upto;
        }
        if want != ids.len() {
            return Err(StoreError::Corrupt {
                what: "permutation",
                detail: format!(
                    "only {want} of {} ids found in rows [{row_start}, +{row_count})",
                    ids.len()
                ),
            });
        }
        Ok(())
    }

    /// Gathers the coordinates of specific rows (ascending) row-major
    /// into `out`, replacing its contents.
    // lint:hot
    pub fn gather_rows_coords(&self, rows: &[u64], out: &mut Vec<f64>) -> Result<(), StoreError> {
        let dim = self.store().dim();
        out.clear();
        out.resize(rows.len() * dim, 0.0);
        let n = self.store().len();
        let page_rows = self.store().page_rows() as u64;
        let mut a = [0u8; 8];
        for c in 0..dim {
            let mut cur_page = u32::MAX;
            let mut pref = None;
            for (j, &r) in rows.iter().enumerate() {
                if r >= n {
                    return Err(StoreError::Corrupt {
                        what: "row address",
                        detail: format!("row {r} out of range (n = {n})"),
                    });
                }
                let page = (r / page_rows) as u32;
                if page != cur_page {
                    pref = Some(self.pin(PageKey {
                        col: c as u32,
                        page,
                    })?);
                    cur_page = page;
                }
                if let Some(p) = &pref {
                    let off = ((r - page as u64 * page_rows) * 8) as usize;
                    a.copy_from_slice(&p.bytes()[off..off + 8]);
                    out[j * dim + c] = f64::from_le_bytes(a);
                }
            }
        }
        Ok(())
    }
}

/// Validates `[row_start, row_start + row_count)` against the store.
fn check_range(row_start: u64, row_count: u64, n: u64) -> Result<(), StoreError> {
    match row_start.checked_add(row_count) {
        Some(end) if end <= n => Ok(()),
        _ => Err(StoreError::Corrupt {
            what: "row range",
            detail: format!("[{row_start}, +{row_count}) exceeds {n} rows"),
        }),
    }
}
