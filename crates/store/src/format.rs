//! On-disk layout (format v1) and the encode/decode primitives.
//!
//! ```text
//! offset 0                                   HEADER (72 bytes, LE)
//!   [0..8)   magic            b"RPDBSOA1"
//!   [8..12)  version          u32 = 1
//!   [12..16) dim              u32 (>= 1)
//!   [16..24) n_points         u64 (<= u32::MAX: point ids are 32-bit)
//!   [24..28) page_rows        u32 (>= 1)
//!   [28..32) reserved         u32 = 0
//!   [32..40) eps              f64 bits (ingest grid spec)
//!   [40..48) rho              f64 bits (ingest grid spec)
//!   [48..56) dir_offset       u64
//!   [56..64) dir_bytes        u64
//!   [64..72) dir_checksum     u64 (FNV-1a of the directory section)
//! offset 72                                  COLUMN DATA
//!   dim coordinate columns, each n_points × f64, cell-sorted row order,
//!   then one permutation column of n_points × u32 original point ids.
//!   Every column is split into pages of page_rows rows (last page
//!   short); pages are stored back to back with no padding.
//! offset dir_offset                          DIRECTORY (dir_bytes long)
//!   n_cells u64
//!   per cell (ascending coordinate order):
//!     dim × i64 lattice coordinate, row_start u64, row_count u64
//!   n_page_checksums u64
//!   per page: u64 FNV-1a of the page's raw bytes, enumerated column
//!   0..=dim (the permutation column is column `dim`), page 0..pages.
//! ```
//!
//! Rows are sorted by `(cell coordinate, original point id)`, so each
//! cell is one contiguous row range and ids ascend within a cell —
//! exactly the order the resident pipeline produces, which is what makes
//! the out-of-core run bit-identical to the resident one.

use crate::StoreError;
use rpdbscan_grid::CellCoord;

/// First eight bytes of every store file.
pub const MAGIC: [u8; 8] = *b"RPDBSOA1";
/// Format version this build writes and the highest it reads.
pub const FORMAT_VERSION: u32 = 1;
/// Fixed header size in bytes.
pub const HEADER_BYTES: u64 = 72;
/// Default rows per page (32 KiB coordinate pages, 16 KiB id pages).
pub const DEFAULT_PAGE_ROWS: u32 = 4096;

/// One directory entry: a grid cell's contiguous row range.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellMeta {
    /// The cell's lattice coordinate.
    pub coord: CellCoord,
    /// First row of the cell in the cell-sorted row order.
    pub row_start: u64,
    /// Number of rows (points) in the cell.
    pub row_count: u64,
}

/// Decoded fixed header.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Header {
    /// Dimensionality of the stored points.
    pub dim: u32,
    /// Number of points.
    pub n_points: u64,
    /// Rows per page.
    pub page_rows: u32,
    /// ε the ingest grid spec was built with.
    pub eps: f64,
    /// ρ the ingest grid spec was built with.
    pub rho: f64,
    /// Byte offset of the directory section.
    pub dir_offset: u64,
    /// Byte length of the directory section.
    pub dir_bytes: u64,
    /// FNV-1a checksum of the directory section.
    pub dir_checksum: u64,
}

/// 64-bit FNV-1a over a byte slice — dependency-free and deterministic.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Byte width of a column: coordinate columns hold `f64`, the
/// permutation column (`col == dim`) holds `u32`.
#[inline]
pub fn col_width(dim: u32, col: u32) -> u64 {
    if col < dim {
        8
    } else {
        4
    }
}

/// File offset of a column's first byte.
#[inline]
pub fn col_offset(dim: u32, n_points: u64, col: u32) -> u64 {
    let coord_cols = (col.min(dim)) as u64;
    HEADER_BYTES + coord_cols * n_points * 8 + if col > dim { n_points * 4 } else { 0 }
}

/// Number of pages in a column of `n_points` rows.
#[inline]
pub fn pages_in_col(n_points: u64, page_rows: u32) -> u32 {
    n_points.div_ceil(page_rows.max(1) as u64) as u32
}

/// Rows held by page `page` of a column (the last page may be short).
#[inline]
pub fn rows_in_page(n_points: u64, page_rows: u32, page: u32) -> u64 {
    let first = page as u64 * page_rows as u64;
    n_points.saturating_sub(first).min(page_rows as u64)
}

/// Flat index of `(col, page)` in the directory's checksum table:
/// columns `0..=dim` in order, pages within a column in order.
#[inline]
pub fn page_sum_index(n_points: u64, page_rows: u32, col: u32, page: u32) -> usize {
    col as usize * pages_in_col(n_points, page_rows) as usize + page as usize
}

impl Header {
    /// Total column-data bytes (everything between header and directory).
    pub fn column_bytes(&self) -> u64 {
        self.n_points * (self.dim as u64 * 8 + 4)
    }

    /// Encodes the header into its fixed 72-byte form.
    pub fn encode(&self) -> [u8; HEADER_BYTES as usize] {
        let mut out = [0u8; HEADER_BYTES as usize];
        out[0..8].copy_from_slice(&MAGIC);
        out[8..12].copy_from_slice(&FORMAT_VERSION.to_le_bytes());
        out[12..16].copy_from_slice(&self.dim.to_le_bytes());
        out[16..24].copy_from_slice(&self.n_points.to_le_bytes());
        out[24..28].copy_from_slice(&self.page_rows.to_le_bytes());
        // [28..32) reserved, zero
        out[32..40].copy_from_slice(&self.eps.to_bits().to_le_bytes());
        out[40..48].copy_from_slice(&self.rho.to_bits().to_le_bytes());
        out[48..56].copy_from_slice(&self.dir_offset.to_le_bytes());
        out[56..64].copy_from_slice(&self.dir_bytes.to_le_bytes());
        out[64..72].copy_from_slice(&self.dir_checksum.to_le_bytes());
        out
    }

    /// Decodes and validates the fixed header.
    pub fn decode(buf: &[u8]) -> Result<Header, StoreError> {
        if (buf.len() as u64) < HEADER_BYTES {
            return Err(StoreError::Truncated {
                what: "header",
                expected: HEADER_BYTES,
                got: buf.len() as u64,
            });
        }
        let mut magic = [0u8; 8];
        magic.copy_from_slice(&buf[0..8]);
        if magic != MAGIC {
            return Err(StoreError::BadMagic { got: magic });
        }
        let mut c = Cursor::new(&buf[8..HEADER_BYTES as usize], "header");
        let version = c.u32()?;
        if version > FORMAT_VERSION {
            return Err(StoreError::UnsupportedVersion {
                got: version,
                supported: FORMAT_VERSION,
            });
        }
        let dim = c.u32()?;
        let n_points = c.u64()?;
        let page_rows = c.u32()?;
        let _reserved = c.u32()?;
        let eps = f64::from_bits(c.u64()?);
        let rho = f64::from_bits(c.u64()?);
        let dir_offset = c.u64()?;
        let dir_bytes = c.u64()?;
        let dir_checksum = c.u64()?;
        if dim == 0 {
            return Err(StoreError::Corrupt {
                what: "header",
                detail: "dim must be >= 1".into(),
            });
        }
        if page_rows == 0 {
            return Err(StoreError::Corrupt {
                what: "header",
                detail: "page_rows must be >= 1".into(),
            });
        }
        if n_points > u32::MAX as u64 {
            return Err(StoreError::Corrupt {
                what: "header",
                detail: format!("n_points {n_points} exceeds 32-bit point ids"),
            });
        }
        let h = Header {
            dim,
            n_points,
            page_rows,
            eps,
            rho,
            dir_offset,
            dir_bytes,
            dir_checksum,
        };
        if dir_offset != HEADER_BYTES + h.column_bytes() {
            return Err(StoreError::Corrupt {
                what: "header",
                detail: format!(
                    "directory offset {dir_offset} disagrees with {} column bytes",
                    h.column_bytes()
                ),
            });
        }
        Ok(h)
    }
}

/// Encodes the directory section (cell ranges + page checksum table).
pub fn encode_directory(cells: &[CellMeta], page_sums: &[u64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + cells.len() * 64 + 8 + page_sums.len() * 8);
    out.extend_from_slice(&(cells.len() as u64).to_le_bytes());
    for cell in cells {
        for &c in cell.coord.coords() {
            out.extend_from_slice(&c.to_le_bytes());
        }
        out.extend_from_slice(&cell.row_start.to_le_bytes());
        out.extend_from_slice(&cell.row_count.to_le_bytes());
    }
    out.extend_from_slice(&(page_sums.len() as u64).to_le_bytes());
    for &s in page_sums {
        out.extend_from_slice(&s.to_le_bytes());
    }
    out
}

/// Decodes the directory section and validates the cell ranges: ascending
/// coordinates, contiguous row ranges covering exactly `0..n_points`, and
/// a checksum entry for every page of every column.
pub fn decode_directory(h: &Header, buf: &[u8]) -> Result<(Vec<CellMeta>, Vec<u64>), StoreError> {
    let mut c = Cursor::new(buf, "directory");
    let n_cells = c.u64()?;
    if n_cells > h.n_points {
        return Err(StoreError::Corrupt {
            what: "directory",
            detail: format!("{n_cells} cells for {} points", h.n_points),
        });
    }
    let mut cells = Vec::with_capacity(n_cells as usize);
    let mut next_row = 0u64;
    for i in 0..n_cells {
        let mut coord = Vec::with_capacity(h.dim as usize);
        for _ in 0..h.dim {
            coord.push(c.i64()?);
        }
        let coord = CellCoord::new(coord);
        let row_start = c.u64()?;
        let row_count = c.u64()?;
        if row_start != next_row || row_count == 0 {
            return Err(StoreError::Corrupt {
                what: "directory",
                detail: format!(
                    "cell {i} range [{row_start}, +{row_count}) breaks contiguity at row {next_row}"
                ),
            });
        }
        if let Some(prev) = cells.last() {
            let prev: &CellMeta = prev;
            if prev.coord >= coord {
                return Err(StoreError::Corrupt {
                    what: "directory",
                    detail: format!("cell {i} coordinate not ascending"),
                });
            }
        }
        next_row += row_count;
        cells.push(CellMeta {
            coord,
            row_start,
            row_count,
        });
    }
    if next_row != h.n_points {
        return Err(StoreError::Corrupt {
            what: "directory",
            detail: format!("cells cover {next_row} rows of {}", h.n_points),
        });
    }
    let n_sums = c.u64()?;
    let expected_sums = (h.dim as u64 + 1) * pages_in_col(h.n_points, h.page_rows) as u64;
    if n_sums != expected_sums {
        return Err(StoreError::Corrupt {
            what: "directory",
            detail: format!("{n_sums} page checksums, expected {expected_sums}"),
        });
    }
    let mut sums = Vec::with_capacity(n_sums as usize);
    for _ in 0..n_sums {
        sums.push(c.u64()?);
    }
    if !c.at_end() {
        return Err(StoreError::Corrupt {
            what: "directory",
            detail: "trailing bytes after checksum table".into(),
        });
    }
    Ok((cells, sums))
}

/// Bounds-checked little-endian reader over a byte slice.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
    what: &'static str,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8], what: &'static str) -> Self {
        Cursor { buf, pos: 0, what }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], StoreError> {
        match self.buf.get(self.pos..self.pos + n) {
            Some(s) => {
                self.pos += n;
                Ok(s)
            }
            None => Err(StoreError::Truncated {
                what: self.what,
                expected: (self.pos + n) as u64,
                got: self.buf.len() as u64,
            }),
        }
    }

    fn u32(&mut self) -> Result<u32, StoreError> {
        let mut a = [0u8; 4];
        a.copy_from_slice(self.take(4)?);
        Ok(u32::from_le_bytes(a))
    }

    fn u64(&mut self) -> Result<u64, StoreError> {
        let mut a = [0u8; 8];
        a.copy_from_slice(self.take(8)?);
        Ok(u64::from_le_bytes(a))
    }

    fn i64(&mut self) -> Result<i64, StoreError> {
        let mut a = [0u8; 8];
        a.copy_from_slice(self.take(8)?);
        Ok(i64::from_le_bytes(a))
    }

    fn at_end(&self) -> bool {
        self.pos == self.buf.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn header() -> Header {
        let h = Header {
            dim: 2,
            n_points: 10,
            page_rows: 4,
            eps: 0.5,
            rho: 0.01,
            dir_offset: 0,
            dir_bytes: 99,
            dir_checksum: 7,
        };
        Header {
            dir_offset: HEADER_BYTES + h.column_bytes(),
            ..h
        }
    }

    #[test]
    fn header_round_trip() {
        let h = header();
        assert_eq!(Header::decode(&h.encode()).unwrap(), h);
    }

    #[test]
    fn bad_magic_is_typed() {
        let mut b = header().encode();
        b[0] = b'X';
        assert!(matches!(
            Header::decode(&b),
            Err(StoreError::BadMagic { .. })
        ));
    }

    #[test]
    fn future_version_rejected() {
        let mut b = header().encode();
        b[8..12].copy_from_slice(&99u32.to_le_bytes());
        assert_eq!(
            Header::decode(&b),
            Err(StoreError::UnsupportedVersion {
                got: 99,
                supported: FORMAT_VERSION
            })
        );
    }

    #[test]
    fn short_header_is_truncated() {
        assert!(matches!(
            Header::decode(&[0u8; 10]),
            Err(StoreError::Truncated { what: "header", .. })
        ));
    }

    #[test]
    fn page_geometry() {
        assert_eq!(pages_in_col(10, 4), 3);
        assert_eq!(rows_in_page(10, 4, 0), 4);
        assert_eq!(rows_in_page(10, 4, 2), 2);
        assert_eq!(pages_in_col(0, 4), 0);
        assert_eq!(col_width(2, 0), 8);
        assert_eq!(col_width(2, 2), 4);
        assert_eq!(col_offset(2, 10, 1), HEADER_BYTES + 80);
        assert_eq!(col_offset(2, 10, 2), HEADER_BYTES + 160);
    }

    #[test]
    fn directory_round_trip_and_validation() {
        let h = header();
        let cells = vec![
            CellMeta {
                coord: CellCoord::new([0, 0]),
                row_start: 0,
                row_count: 6,
            },
            CellMeta {
                coord: CellCoord::new([1, 0]),
                row_start: 6,
                row_count: 4,
            },
        ];
        let sums = vec![1u64; 9]; // 3 cols × 3 pages
        let buf = encode_directory(&cells, &sums);
        let (c2, s2) = decode_directory(&h, &buf).unwrap();
        assert_eq!(c2, cells);
        assert_eq!(s2, sums);

        // Non-contiguous ranges are corrupt.
        let bad = vec![
            CellMeta {
                coord: CellCoord::new([0, 0]),
                row_start: 0,
                row_count: 5,
            },
            CellMeta {
                coord: CellCoord::new([1, 0]),
                row_start: 6,
                row_count: 4,
            },
        ];
        assert!(matches!(
            decode_directory(&h, &encode_directory(&bad, &sums)),
            Err(StoreError::Corrupt { .. })
        ));

        // Truncation inside the table is typed.
        assert!(matches!(
            decode_directory(&h, &buf[..buf.len() - 3]),
            Err(StoreError::Truncated { .. })
        ));
    }
}
