//! Spill files for the memory-bounded Phase II → III merge.
//!
//! Each partition's cell graph is serialized to its own spill file; the
//! tournament merge then streams pairs of spill files and writes a
//! merged spill, so no round ever holds more than one merge frontier in
//! memory. A [`SpillDir`] owns a private directory (removed on drop)
//! and counts bytes in both directions for `RunStats`.
//!
//! Spill files are scratch, not interchange: the format (length-prefixed
//! little-endian sections) is private to this process and carries no
//! magic or checksums — the store file is the durable artifact.

use crate::StoreError;
use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Process-wide counter so concurrent [`SpillDir`]s (e.g. parallel
/// tests) never collide on a directory name. Paired with the pid so
/// reruns over a shared temp root stay distinct without consulting the
/// clock.
static NEXT_SPILL_DIR: Mutex<u64> = Mutex::new(0);

/// Byte accounting for one spill directory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SpillStats {
    /// Spill files written (including merged rounds).
    pub files: u64,
    /// Total bytes written across all spill files.
    pub bytes_written: u64,
    /// Total bytes read back across all spill files.
    pub bytes_read: u64,
}

/// A named, sized spill file inside a [`SpillDir`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpillHandle {
    path: PathBuf,
    bytes: u64,
}

impl SpillHandle {
    /// The spill file's size in bytes.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }
}

/// A private scratch directory of spill files, removed on drop.
#[derive(Debug)]
pub struct SpillDir {
    dir: PathBuf,
    state: Mutex<SpillState>,
}

#[derive(Debug)]
struct SpillState {
    next_file: u64,
    stats: SpillStats,
}

impl SpillDir {
    /// Creates a fresh spill directory under `base` (the system temp
    /// directory when `None`).
    pub fn create(base: Option<&Path>) -> Result<SpillDir, StoreError> {
        let seq = {
            let mut next = NEXT_SPILL_DIR.lock().unwrap_or_else(|p| p.into_inner());
            let seq = *next;
            *next += 1;
            seq
        };
        let root = match base {
            Some(p) => p.to_path_buf(),
            None => std::env::temp_dir(),
        };
        let dir = root.join(format!("rpdbscan-spill-{}-{seq}", std::process::id()));
        std::fs::create_dir_all(&dir)?;
        Ok(SpillDir {
            dir,
            state: Mutex::new(SpillState {
                next_file: 0,
                stats: SpillStats::default(),
            }),
        })
    }

    /// Byte counters (snapshot).
    pub fn stats(&self) -> SpillStats {
        self.state.lock().unwrap_or_else(|p| p.into_inner()).stats
    }

    /// Opens a new spill file for writing.
    pub fn writer(&self) -> Result<SpillWriter<'_>, StoreError> {
        let seq = {
            let mut state = self.state.lock().unwrap_or_else(|p| p.into_inner());
            let seq = state.next_file;
            state.next_file += 1;
            state.stats.files += 1;
            seq
        };
        let path = self.dir.join(format!("spill-{seq}.bin"));
        let file = File::create(&path)?;
        Ok(SpillWriter {
            dir: self,
            path,
            w: BufWriter::new(file),
            bytes: 0,
        })
    }

    /// Opens a finished spill file for streaming reads; the handle's
    /// full size is charged to `bytes_read` up front (merges consume
    /// their inputs whole).
    pub fn open(&self, handle: &SpillHandle) -> Result<SpillReader, StoreError> {
        let file = File::open(&handle.path)?;
        let mut state = self.state.lock().unwrap_or_else(|p| p.into_inner());
        state.stats.bytes_read += handle.bytes;
        Ok(SpillReader {
            r: BufReader::new(file),
        })
    }

    /// Deletes a consumed spill file (merge inputs after each round).
    pub fn remove(&self, handle: &SpillHandle) -> Result<(), StoreError> {
        std::fs::remove_file(&handle.path)?;
        Ok(())
    }
}

impl Drop for SpillDir {
    fn drop(&mut self) {
        // Best effort: spill files are scratch; leaking on IO error is
        // acceptable, panicking in drop is not.
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

/// Buffered writer over one spill file; call [`Self::finish`] to flush
/// and obtain the handle.
#[derive(Debug)]
pub struct SpillWriter<'a> {
    dir: &'a SpillDir,
    path: PathBuf,
    w: BufWriter<File>,
    bytes: u64,
}

impl SpillWriter<'_> {
    /// Writes one byte.
    pub fn write_u8(&mut self, v: u8) -> Result<(), StoreError> {
        self.w.write_all(&[v])?;
        self.bytes += 1;
        Ok(())
    }

    /// Writes a little-endian `u32`.
    pub fn write_u32(&mut self, v: u32) -> Result<(), StoreError> {
        self.w.write_all(&v.to_le_bytes())?;
        self.bytes += 4;
        Ok(())
    }

    /// Writes a little-endian `u64`.
    pub fn write_u64(&mut self, v: u64) -> Result<(), StoreError> {
        self.w.write_all(&v.to_le_bytes())?;
        self.bytes += 8;
        Ok(())
    }

    /// Flushes and returns the finished file's handle.
    pub fn finish(self) -> Result<SpillHandle, StoreError> {
        let mut w = self.w;
        w.flush()?;
        drop(w);
        {
            let mut state = self.dir.state.lock().unwrap_or_else(|p| p.into_inner());
            state.stats.bytes_written += self.bytes;
        }
        Ok(SpillHandle {
            path: self.path,
            bytes: self.bytes,
        })
    }
}

/// Buffered reader over one spill file. Premature EOF surfaces as
/// [`StoreError::Truncated`].
#[derive(Debug)]
pub struct SpillReader {
    r: BufReader<File>,
}

impl SpillReader {
    /// Reads one byte.
    pub fn read_u8(&mut self) -> Result<u8, StoreError> {
        let mut b = [0u8; 1];
        self.read_exact(&mut b)?;
        Ok(b[0])
    }

    /// Reads a little-endian `u32`.
    pub fn read_u32(&mut self) -> Result<u32, StoreError> {
        let mut b = [0u8; 4];
        self.read_exact(&mut b)?;
        Ok(u32::from_le_bytes(b))
    }

    /// Reads a little-endian `u64`.
    pub fn read_u64(&mut self) -> Result<u64, StoreError> {
        let mut b = [0u8; 8];
        self.read_exact(&mut b)?;
        Ok(u64::from_le_bytes(b))
    }

    fn read_exact(&mut self, buf: &mut [u8]) -> Result<(), StoreError> {
        self.r.read_exact(buf).map_err(|e| match e.kind() {
            std::io::ErrorKind::UnexpectedEof => StoreError::Truncated {
                what: "spill file",
                expected: buf.len() as u64,
                got: 0,
            },
            _ => StoreError::Io(e.to_string()),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spill_round_trip_and_accounting() {
        let spill = SpillDir::create(None).unwrap();
        let mut w = spill.writer().unwrap();
        w.write_u64(3).unwrap();
        w.write_u32(7).unwrap();
        w.write_u8(2).unwrap();
        let handle = w.finish().unwrap();
        assert_eq!(handle.bytes(), 13);

        let mut r = spill.open(&handle).unwrap();
        assert_eq!(r.read_u64().unwrap(), 3);
        assert_eq!(r.read_u32().unwrap(), 7);
        assert_eq!(r.read_u8().unwrap(), 2);
        assert!(matches!(
            r.read_u8(),
            Err(StoreError::Truncated {
                what: "spill file",
                ..
            })
        ));

        let stats = spill.stats();
        assert_eq!(stats.files, 1);
        assert_eq!(stats.bytes_written, 13);
        assert_eq!(stats.bytes_read, 13);

        spill.remove(&handle).unwrap();
        assert!(spill.open(&handle).is_err());
    }

    #[test]
    fn spill_dirs_are_distinct_and_cleaned() {
        let a = SpillDir::create(None).unwrap();
        let b = SpillDir::create(None).unwrap();
        assert_ne!(a.dir, b.dir);
        let dir = a.dir.clone();
        assert!(dir.is_dir());
        drop(a);
        assert!(!dir.exists());
        drop(b);
    }
}
