//! Out-of-core column store for paper-scale datasets.
//!
//! The paper's headline runs cluster billions of points — far past what a
//! resident `Vec<f64>` holds. This crate gives the batch pipeline a
//! file-backed structure-of-arrays layout it can stream instead:
//!
//! * **Ingest** ([`StoreWriter`]): points are sorted once by `(cell,
//!   original id)` under a fixed [`rpdbscan_grid::GridSpec`] and written
//!   as per-dimension coordinate columns plus a permutation column of
//!   original point ids, all split into fixed-size pages with per-page
//!   checksums. A cell → row-range directory closes the file, so every
//!   grid cell is a contiguous row range — Phase I-1's group-by-cell
//!   happens exactly once per dataset, at ingest time.
//! * **Read** ([`ColumnStore`]): opens the file, validates magic /
//!   version / length / directory checksum, and serves positioned page
//!   reads (safe `read_exact_at`; no memory mapping, no `unsafe`).
//! * **Buffer pool** ([`BufferPool`]): a byte-budgeted page cache with
//!   pinned-page `Arc` handles and clock (second-chance) eviction. Cell
//!   gathers pin one page at a time, so peak tracked bytes stay at
//!   `O(budget + one page per concurrent reader)`.
//! * **Spill files** ([`SpillDir`]): byte-accounted scratch files the
//!   Phase III tournament merge streams per-partition cell graphs
//!   through, keeping the merge frontier — not the whole edge set —
//!   in memory.
//!
//! Everything is deterministic: page contents depend only on the input
//! order and the grid spec, and the pool's hit/miss/eviction counters are
//! reproducible for a fixed operation sequence.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod format;
pub mod gather;
pub mod pool;
pub mod reader;
pub mod spill;
pub mod writer;

pub use format::{CellMeta, DEFAULT_PAGE_ROWS, FORMAT_VERSION, MAGIC};
pub use pool::{BufferPool, PageKey, PageRef, PoolStats};
pub use reader::ColumnStore;
pub use spill::{SpillDir, SpillHandle, SpillReader, SpillStats, SpillWriter};
pub use writer::{IngestStats, StoreWriter};

/// Typed failures of the store layer: open/ingest problems, corrupted
/// or truncated files, checksum mismatches, and grid-spec disagreements.
/// Mirrors the dictionary-decode hardening: every malformed input turns
/// into a value the caller can match on, never a panic.
#[derive(Debug, Clone, PartialEq)]
pub enum StoreError {
    /// Underlying filesystem error (message form of `std::io::Error`).
    Io(String),
    /// The file does not start with [`MAGIC`] — not a column store.
    BadMagic {
        /// The first eight bytes actually found.
        got: [u8; 8],
    },
    /// The file's format version is newer than this build understands.
    UnsupportedVersion {
        /// Version stamped in the file.
        got: u32,
        /// Highest version this build reads.
        supported: u32,
    },
    /// The file ends before a section the header promised.
    Truncated {
        /// Which section was cut short.
        what: &'static str,
        /// Bytes the section needed.
        expected: u64,
        /// Bytes actually available.
        got: u64,
    },
    /// A stored checksum disagrees with the bytes on disk.
    ChecksumMismatch {
        /// `"directory"` or `"page"`.
        what: &'static str,
        /// Column of the failing page (0 for the directory).
        col: u32,
        /// Page index within the column (0 for the directory).
        page: u32,
        /// Checksum recorded at ingest.
        expected: u64,
        /// Checksum of the bytes read back.
        got: u64,
    },
    /// Structurally invalid content behind a valid header (bad ranges,
    /// out-of-order cells, impossible counts).
    Corrupt {
        /// Which invariant failed.
        what: &'static str,
        /// Details for the log line.
        detail: String,
    },
    /// The store was ingested under a different grid than the run asks
    /// for; ε/ρ are baked into the cell lattice at ingest time.
    GridMismatch {
        /// `"dim"`, `"eps"` or `"rho"`.
        field: &'static str,
        /// Value recorded in the store.
        store: f64,
        /// Value the caller requested.
        requested: f64,
    },
    /// A configuration value is out of range (zero page rows, mismatched
    /// row dimensionality, too many points for 32-bit ids, ...).
    InvalidConfig {
        /// What was wrong.
        what: &'static str,
    },
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store io error: {e}"),
            StoreError::BadMagic { got } => {
                write!(f, "not a column store (magic {got:02x?})")
            }
            StoreError::UnsupportedVersion { got, supported } => {
                write!(
                    f,
                    "store format v{got} is newer than supported v{supported}"
                )
            }
            StoreError::Truncated {
                what,
                expected,
                got,
            } => write!(
                f,
                "store truncated in {what}: need {expected} bytes, have {got}"
            ),
            StoreError::ChecksumMismatch {
                what,
                col,
                page,
                expected,
                got,
            } => write!(
                f,
                "checksum mismatch in {what} (col {col}, page {page}): \
                 stored {expected:#018x}, computed {got:#018x}"
            ),
            StoreError::Corrupt { what, detail } => {
                write!(f, "corrupt store ({what}): {detail}")
            }
            StoreError::GridMismatch {
                field,
                store,
                requested,
            } => write!(
                f,
                "grid mismatch: store was ingested with {field}={store}, run requested {requested} \
                 — re-ingest or match the store's parameters"
            ),
            StoreError::InvalidConfig { what } => write!(f, "invalid store config: {what}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e.to_string())
    }
}
