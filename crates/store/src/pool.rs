//! A byte-budgeted page cache with pinned-page handles.
//!
//! [`BufferPool::pin`] returns an [`Arc`]-backed [`PageRef`]; while any
//! handle to a page is alive the page cannot be evicted (pin = an extra
//! strong count). Eviction is clock / second-chance: each cached page
//! carries a referenced bit set on every hit; when tracked bytes exceed
//! the budget the clock hand sweeps the ring, clearing referenced bits
//! on the first pass and evicting unpinned, unreferenced pages on the
//! second. If every page is pinned the pool overshoots its budget
//! honestly — `peak_tracked_bytes` records it — rather than deadlocking,
//! so the budget floor for an `n`-worker run is `n + 1` pages.
//!
//! The miss path drops the pool lock around the file read: concurrent
//! misses on different pages read in parallel, and a lost race simply
//! adopts the winner's buffer.

use crate::reader::ColumnStore;
use crate::StoreError;
use rpdbscan_grid::FxHashMap;
use std::sync::{Arc, Mutex};

/// Address of one page: column index (coordinate columns `0..dim`, the
/// permutation column at `dim`) and page index within the column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageKey {
    /// Column index.
    pub col: u32,
    /// Page index within the column.
    pub page: u32,
}

/// A pinned page: holding this keeps the bytes cached and immovable.
#[derive(Debug, Clone)]
pub struct PageRef {
    data: Arc<Vec<u8>>,
}

impl PageRef {
    /// The page's raw bytes (little-endian column values).
    #[inline]
    pub fn bytes(&self) -> &[u8] {
        &self.data
    }
}

/// Pool counters. `tracked_bytes` is the live cache size;
/// `peak_tracked_bytes` is the high-water mark the scale bench asserts
/// against the budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolStats {
    /// Byte budget the pool evicts towards.
    pub budget_bytes: u64,
    /// Pins answered from cache.
    pub hits: u64,
    /// Pins that read from disk.
    pub misses: u64,
    /// Pages evicted.
    pub evictions: u64,
    /// Bytes currently cached.
    pub tracked_bytes: u64,
    /// High-water mark of `tracked_bytes`.
    pub peak_tracked_bytes: u64,
}

impl PoolStats {
    /// Hit fraction in `[0, 1]` (1.0 when no pin has happened).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            return 1.0;
        }
        self.hits as f64 / total as f64
    }
}

struct Slot {
    data: Arc<Vec<u8>>,
    referenced: bool,
}

struct PoolInner {
    pages: FxHashMap<PageKey, Slot>,
    /// Clock ring of cached keys; order is insertion order perturbed by
    /// `swap_remove` on eviction — a performance detail only.
    ring: Vec<PageKey>,
    hand: usize,
    stats: PoolStats,
}

/// The bounded page cache over one [`ColumnStore`].
pub struct BufferPool {
    store: Arc<ColumnStore>,
    inner: Mutex<PoolInner>,
}

impl std::fmt::Debug for BufferPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BufferPool")
            .field("stats", &self.stats())
            .finish()
    }
}

impl BufferPool {
    /// A pool over `store` evicting towards `budget_bytes`.
    pub fn new(store: Arc<ColumnStore>, budget_bytes: u64) -> BufferPool {
        BufferPool {
            store,
            inner: Mutex::new(PoolInner {
                pages: FxHashMap::default(),
                ring: Vec::new(),
                hand: 0,
                stats: PoolStats {
                    budget_bytes,
                    ..PoolStats::default()
                },
            }),
        }
    }

    /// The store this pool reads from.
    pub fn store(&self) -> &Arc<ColumnStore> {
        &self.store
    }

    /// Current counters (snapshot).
    pub fn stats(&self) -> PoolStats {
        self.inner.lock().unwrap_or_else(|p| p.into_inner()).stats
    }

    /// Pins a page: returns a handle whose bytes stay valid and cached
    /// for the handle's lifetime. Cache hits are lock-only; misses read
    /// the page outside the lock, verify its checksum, then insert and
    /// evict towards the budget.
    // lint:hot
    pub fn pin(&self, key: PageKey) -> Result<PageRef, StoreError> {
        {
            let mut inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
            if let Some(slot) = inner.pages.get_mut(&key) {
                slot.referenced = true;
                let data = slot.data.clone();
                inner.stats.hits += 1;
                return Ok(PageRef { data });
            }
            inner.stats.misses += 1;
        }
        // Read outside the lock so concurrent misses overlap their IO.
        let len = self.store.page_bytes(key.col, key.page) as usize;
        let mut buf: Vec<u8> = Vec::with_capacity(len);
        self.store.read_page(key.col, key.page, &mut buf)?;
        let data = Arc::new(buf);

        let mut inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        if let Some(slot) = inner.pages.get_mut(&key) {
            // Lost a race with another miss on the same page: adopt the
            // cached buffer and drop ours.
            slot.referenced = true;
            let data = slot.data.clone();
            return Ok(PageRef { data });
        }
        let bytes = data.len() as u64;
        inner.pages.insert(
            key,
            Slot {
                data: data.clone(),
                referenced: false,
            },
        );
        inner.ring.push(key);
        inner.stats.tracked_bytes += bytes;
        if inner.stats.tracked_bytes > inner.stats.peak_tracked_bytes {
            inner.stats.peak_tracked_bytes = inner.stats.tracked_bytes;
        }
        evict_to_budget(&mut inner);
        Ok(PageRef { data })
    }
}

/// Clock sweep: clear referenced bits on first touch, evict unpinned
/// unreferenced pages, stop when under budget or when a full double
/// sweep finds nothing evictable (everything pinned).
fn evict_to_budget(inner: &mut PoolInner) {
    let mut fruitless = 0usize;
    while inner.stats.tracked_bytes > inner.stats.budget_bytes && !inner.ring.is_empty() {
        if fruitless > 2 * inner.ring.len() {
            break;
        }
        if inner.hand >= inner.ring.len() {
            inner.hand = 0;
        }
        let key = inner.ring[inner.hand];
        let evict = match inner.pages.get_mut(&key) {
            Some(slot) => {
                if slot.referenced {
                    slot.referenced = false;
                    false
                } else {
                    // Strong count 1 = only the pool holds it; >1 = pinned.
                    Arc::strong_count(&slot.data) == 1
                }
            }
            // Ring/map disagreement cannot happen (both mutate under the
            // same lock); treat a stale key as evictable bookkeeping.
            None => true,
        };
        if evict {
            if let Some(slot) = inner.pages.remove(&key) {
                inner.stats.tracked_bytes -= slot.data.len() as u64;
                inner.stats.evictions += 1;
            }
            inner.ring.swap_remove(inner.hand);
            fruitless = 0;
        } else {
            inner.hand += 1;
            fruitless += 1;
        }
    }
}
