//! Ingest: build a column store file from a stream of points.
//!
//! Ingest is the one resident step of the out-of-core pipeline: it holds
//! the raw coordinates while it argsorts rows by `(cell, original id)`
//! and writes the paged columns. Everything downstream (dictionary
//! build, Phase II, labeling) then streams cells through the buffer pool
//! instead of owning coordinate copies. The sort/write hot loops take
//! hoisted scratch buffers and are marked `// lint:hot` so the analyzer
//! keeps them allocation-free.

use crate::format::{self, CellMeta, Header, HEADER_BYTES};
use crate::StoreError;
use rpdbscan_grid::{CellCoord, GridSpec};
use std::fs::File;
use std::io::{BufWriter, Seek, SeekFrom, Write};
use std::path::Path;

/// Facts about a finished ingest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IngestStats {
    /// Points written.
    pub points: u64,
    /// Non-empty cells in the directory.
    pub cells: u64,
    /// Total pages across all columns.
    pub pages: u64,
    /// Final file size in bytes.
    pub file_bytes: u64,
}

/// Accumulates points, then sorts and writes the store in [`Self::finish`].
#[derive(Debug)]
pub struct StoreWriter {
    spec: GridSpec,
    page_rows: u32,
    dim: usize,
    coords: Vec<f64>,
}

impl StoreWriter {
    /// A writer for points under `spec`'s grid, paged at `page_rows`
    /// rows per page ([`format::DEFAULT_PAGE_ROWS`] is the usual choice).
    pub fn new(spec: GridSpec, page_rows: u32) -> Result<Self, StoreError> {
        if page_rows == 0 {
            return Err(StoreError::InvalidConfig {
                what: "page_rows must be >= 1",
            });
        }
        Ok(StoreWriter {
            dim: spec.dim(),
            spec,
            page_rows,
            coords: Vec::new(),
        })
    }

    /// Appends one point (original ids are assigned in push order).
    pub fn push(&mut self, p: &[f64]) -> Result<(), StoreError> {
        if p.len() != self.dim {
            return Err(StoreError::InvalidConfig {
                what: "row dimensionality disagrees with the grid spec",
            });
        }
        if self.len() >= u32::MAX as u64 {
            return Err(StoreError::InvalidConfig {
                what: "too many points for 32-bit point ids",
            });
        }
        self.coords.extend_from_slice(p);
        Ok(())
    }

    /// Points pushed so far.
    pub fn len(&self) -> u64 {
        (self.coords.len() / self.dim) as u64
    }

    /// True when no point has been pushed.
    pub fn is_empty(&self) -> bool {
        self.coords.is_empty()
    }

    /// Sorts rows by `(cell, original id)` and writes the store file.
    pub fn finish(self, path: &Path) -> Result<IngestStats, StoreError> {
        let dim = self.dim;
        let n = self.len();

        // Cell of every point, then the argsort; both buffers are the
        // ingest's own scratch, allocated once for the whole dataset.
        let mut cells: Vec<CellCoord> = Vec::with_capacity(n as usize);
        for row in self.coords.chunks_exact(dim.max(1)) {
            cells.push(self.spec.cell_of(row));
        }
        let mut order: Vec<u32> = (0..n as u32).collect();
        sort_rows_by_cell(&cells, &mut order);

        // Directory: runs of equal cells over the sorted order.
        let mut dir_cells: Vec<CellMeta> = Vec::new();
        for (row, &orig) in order.iter().enumerate() {
            let coord = &cells[orig as usize];
            match dir_cells.last_mut() {
                Some(last) if &last.coord == coord => last.row_count += 1,
                _ => dir_cells.push(CellMeta {
                    coord: coord.clone(),
                    row_start: row as u64,
                    row_count: 1,
                }),
            }
        }

        let file = File::create(path)?;
        let mut w = BufWriter::new(file);
        // Header placeholder; the real one lands after the directory
        // bytes (and their checksum) are known.
        w.write_all(&[0u8; HEADER_BYTES as usize])?;

        let mut page_buf: Vec<u8> = Vec::with_capacity(self.page_rows as usize * 8);
        let mut page_sums: Vec<u64> =
            Vec::with_capacity((dim + 1) * format::pages_in_col(n, self.page_rows) as usize);
        for c in 0..dim {
            write_coord_column(
                &mut w,
                &self.coords,
                dim,
                c,
                &order,
                self.page_rows,
                &mut page_buf,
                &mut page_sums,
            )?;
        }
        write_perm_column(
            &mut w,
            &order,
            self.page_rows,
            &mut page_buf,
            &mut page_sums,
        )?;

        let dir = format::encode_directory(&dir_cells, &page_sums);
        w.write_all(&dir)?;
        let mut file = w.into_inner().map_err(|e| StoreError::Io(e.to_string()))?;

        let header = Header {
            dim: dim as u32,
            n_points: n,
            page_rows: self.page_rows,
            eps: self.spec.eps(),
            rho: self.spec.rho(),
            dir_offset: HEADER_BYTES + n * (dim as u64 * 8 + 4),
            dir_bytes: dir.len() as u64,
            dir_checksum: format::fnv1a(&dir),
        };
        file.seek(SeekFrom::Start(0))?;
        file.write_all(&header.encode())?;
        file.flush()?;

        Ok(IngestStats {
            points: n,
            cells: dir_cells.len() as u64,
            pages: page_sums.len() as u64,
            file_bytes: header.dir_offset + header.dir_bytes,
        })
    }
}

/// Argsort of rows by `(cell coordinate, original id)` — ids ascend
/// within a cell, matching the resident pipeline's per-cell point order.
// lint:hot
fn sort_rows_by_cell(cells: &[CellCoord], order: &mut [u32]) {
    order.sort_unstable_by(|&a, &b| {
        cells[a as usize]
            .cmp(&cells[b as usize])
            .then_with(|| a.cmp(&b))
    });
}

/// Writes one coordinate column in sorted row order, page by page,
/// recording a checksum per page. `page_buf` is caller-hoisted scratch.
// lint:hot
#[allow(clippy::too_many_arguments)]
fn write_coord_column(
    w: &mut BufWriter<File>,
    coords: &[f64],
    dim: usize,
    col: usize,
    order: &[u32],
    page_rows: u32,
    page_buf: &mut Vec<u8>,
    page_sums: &mut Vec<u64>,
) -> Result<(), StoreError> {
    for chunk in order.chunks(page_rows as usize) {
        page_buf.clear();
        for &orig in chunk {
            let v = coords[orig as usize * dim + col];
            page_buf.extend_from_slice(&v.to_le_bytes());
        }
        page_sums.push(format::fnv1a(page_buf));
        w.write_all(page_buf)?;
    }
    Ok(())
}

/// Writes the permutation column (original point id per sorted row).
// lint:hot
fn write_perm_column(
    w: &mut BufWriter<File>,
    order: &[u32],
    page_rows: u32,
    page_buf: &mut Vec<u8>,
    page_sums: &mut Vec<u64>,
) -> Result<(), StoreError> {
    for chunk in order.chunks(page_rows as usize) {
        page_buf.clear();
        for &orig in chunk {
            page_buf.extend_from_slice(&orig.to_le_bytes());
        }
        page_sums.push(format::fnv1a(page_buf));
        w.write_all(page_buf)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_rejects_bad_config() {
        let spec = GridSpec::new(2, 1.0, 0.5).unwrap();
        assert!(matches!(
            StoreWriter::new(spec.clone(), 0),
            Err(StoreError::InvalidConfig { .. })
        ));
        let mut w = StoreWriter::new(spec, 4).unwrap();
        assert!(matches!(
            w.push(&[1.0, 2.0, 3.0]),
            Err(StoreError::InvalidConfig { .. })
        ));
        assert!(w.is_empty());
    }

    #[test]
    fn sort_is_by_cell_then_id() {
        let spec = GridSpec::new(1, 1.0, 0.5).unwrap();
        let cells: Vec<CellCoord> = [5.0, 0.5, 5.1, 0.2]
            .iter()
            .map(|&v| spec.cell_of(&[v]))
            .collect();
        let mut order: Vec<u32> = (0..4).collect();
        sort_rows_by_cell(&cells, &mut order);
        assert_eq!(order, vec![1, 3, 0, 2]);
    }
}
