//! Opening and reading a column store file.
//!
//! [`ColumnStore::open`] validates the fixed header (magic, version,
//! geometry), checks the file length against what the header promises,
//! verifies the directory checksum, and decodes the cell directory.
//! Page reads are positioned (`read_exact_at`) so any number of threads
//! can read through one shared `File` without seeking state — all safe
//! Rust, no memory mapping.

use crate::format::{self, CellMeta, Header, HEADER_BYTES};
use crate::StoreError;
use rpdbscan_grid::GridSpec;
use std::fs::File;
use std::path::{Path, PathBuf};

/// A validated, read-only column store.
#[derive(Debug)]
pub struct ColumnStore {
    file: File,
    path: PathBuf,
    header: Header,
    spec: GridSpec,
    cells: Vec<CellMeta>,
    page_sums: Vec<u64>,
}

impl ColumnStore {
    /// Opens and validates a store file.
    pub fn open(path: &Path) -> Result<ColumnStore, StoreError> {
        let file = File::open(path)?;
        let file_len = file.metadata()?.len();
        if file_len < HEADER_BYTES {
            return Err(StoreError::Truncated {
                what: "header",
                expected: HEADER_BYTES,
                got: file_len,
            });
        }
        let mut head = [0u8; HEADER_BYTES as usize];
        pread(&file, path, &mut head, 0).map_err(|_| StoreError::Truncated {
            what: "header",
            expected: HEADER_BYTES,
            got: file_len,
        })?;
        let header = Header::decode(&head)?;

        let expected_len = header.dir_offset + header.dir_bytes;
        if file_len < expected_len {
            return Err(StoreError::Truncated {
                what: "file body",
                expected: expected_len,
                got: file_len,
            });
        }
        if file_len > expected_len {
            return Err(StoreError::Corrupt {
                what: "file body",
                detail: format!("{} trailing bytes", file_len - expected_len),
            });
        }

        let mut dir = vec![0u8; header.dir_bytes as usize];
        pread(&file, path, &mut dir, header.dir_offset)
            .map_err(|e| StoreError::Io(e.to_string()))?;
        let got_sum = format::fnv1a(&dir);
        if got_sum != header.dir_checksum {
            return Err(StoreError::ChecksumMismatch {
                what: "directory",
                col: 0,
                page: 0,
                expected: header.dir_checksum,
                got: got_sum,
            });
        }
        let (cells, page_sums) = format::decode_directory(&header, &dir)?;

        let spec = GridSpec::new(header.dim as usize, header.eps, header.rho).map_err(|e| {
            StoreError::Corrupt {
                what: "grid spec",
                detail: e.to_string(),
            }
        })?;

        Ok(ColumnStore {
            file,
            path: path.to_path_buf(),
            header,
            spec,
            cells,
            page_sums,
        })
    }

    /// Dimensionality of the stored points.
    pub fn dim(&self) -> usize {
        self.header.dim as usize
    }

    /// Number of stored points.
    pub fn len(&self) -> u64 {
        self.header.n_points
    }

    /// True when the store holds no points.
    pub fn is_empty(&self) -> bool {
        self.header.n_points == 0
    }

    /// Rows per page.
    pub fn page_rows(&self) -> u32 {
        self.header.page_rows
    }

    /// ε the store was ingested with.
    pub fn eps(&self) -> f64 {
        self.header.eps
    }

    /// ρ the store was ingested with.
    pub fn rho(&self) -> f64 {
        self.header.rho
    }

    /// The ingest grid spec (reconstructed and validated at open).
    pub fn spec(&self) -> &GridSpec {
        &self.spec
    }

    /// The cell directory: ascending cell coordinates, each a contiguous
    /// row range of the cell-sorted row order.
    pub fn cells(&self) -> &[CellMeta] {
        &self.cells
    }

    /// The file this store reads from.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Bytes a fully resident copy of the coordinates would occupy
    /// (`n × dim × 8`) — the yardstick the pool budget is set against.
    pub fn resident_bytes(&self) -> u64 {
        self.header.n_points * self.header.dim as u64 * 8
    }

    /// Total file size in bytes.
    pub fn file_bytes(&self) -> u64 {
        self.header.dir_offset + self.header.dir_bytes
    }

    /// Pages per column.
    pub fn pages_per_col(&self) -> u32 {
        format::pages_in_col(self.header.n_points, self.header.page_rows)
    }

    /// Byte length of page `page` of column `col`.
    pub fn page_bytes(&self, col: u32, page: u32) -> u64 {
        format::rows_in_page(self.header.n_points, self.header.page_rows, page)
            * format::col_width(self.header.dim, col)
    }

    /// Reads one page into `buf` (resized to the exact page length) and
    /// verifies its checksum against the directory's table. `col` is a
    /// coordinate column in `0..dim` or `dim` for the permutation column.
    // lint:hot
    pub fn read_page(&self, col: u32, page: u32, buf: &mut Vec<u8>) -> Result<(), StoreError> {
        let h = &self.header;
        if col > h.dim || page >= self.pages_per_col() {
            return Err(StoreError::Corrupt {
                what: "page address",
                detail: format!("col {col} page {page} out of range"),
            });
        }
        let rows_before = page as u64 * h.page_rows as u64;
        let offset = format::col_offset(h.dim, h.n_points, col)
            + rows_before * format::col_width(h.dim, col);
        let len = self.page_bytes(col, page) as usize;
        buf.clear();
        buf.resize(len, 0);
        pread(&self.file, &self.path, buf, offset).map_err(|e| match e.kind() {
            std::io::ErrorKind::UnexpectedEof => StoreError::Truncated {
                what: "page",
                expected: offset + len as u64,
                got: offset,
            },
            _ => StoreError::Io(e.to_string()),
        })?;
        let idx = format::page_sum_index(h.n_points, h.page_rows, col, page);
        let expected = match self.page_sums.get(idx) {
            Some(&s) => s,
            None => {
                return Err(StoreError::Corrupt {
                    what: "page checksum table",
                    detail: format!("no entry for col {col} page {page}"),
                })
            }
        };
        let got = format::fnv1a(buf);
        if got != expected {
            return Err(StoreError::ChecksumMismatch {
                what: "page",
                col,
                page,
                expected,
                got,
            });
        }
        Ok(())
    }
}

/// Positioned read of exactly `buf.len()` bytes at `offset`.
#[cfg(unix)]
fn pread(file: &File, _path: &Path, buf: &mut [u8], offset: u64) -> std::io::Result<()> {
    use std::os::unix::fs::FileExt;
    file.read_exact_at(buf, offset)
}

/// Portable fallback: re-open the file per read so no seek state is
/// shared between threads. Correct everywhere, fast only on unix.
#[cfg(not(unix))]
fn pread(_file: &File, path: &Path, buf: &mut [u8], offset: u64) -> std::io::Result<()> {
    use std::io::{Read, Seek, SeekFrom};
    let mut f = File::open(path)?;
    f.seek(SeekFrom::Start(offset))?;
    f.read_exact(buf)
}
