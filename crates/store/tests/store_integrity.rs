//! Store-file integrity and buffer-pool behaviour: every corruption a
//! disk can inflict must surface as a typed [`StoreError`], and the pool
//! must honour pins, evict towards its budget, and count faithfully.

use rpdbscan_grid::GridSpec;
use rpdbscan_store::{
    BufferPool, ColumnStore, PageKey, StoreError, StoreWriter, FORMAT_VERSION, MAGIC,
};
use std::path::PathBuf;
use std::sync::Arc;

fn temp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "rpdbscan-store-test-{}-{tag}.store",
        std::process::id()
    ))
}

/// Writes a 2-d store of `n` deterministic points at 8 rows per page.
fn write_store(tag: &str, n: usize) -> PathBuf {
    let spec = GridSpec::new(2, 1.0, 0.5).unwrap();
    let mut w = StoreWriter::new(spec, 8).unwrap();
    for i in 0..n {
        let x = (i % 17) as f64 * 0.3;
        let y = (i / 17) as f64 * 0.4;
        w.push(&[x, y]).unwrap();
    }
    let path = temp_path(tag);
    let stats = w.finish(&path).unwrap();
    assert_eq!(stats.points, n as u64);
    path
}

struct Cleanup(PathBuf);
impl Drop for Cleanup {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

#[test]
fn round_trip_preserves_points_and_order() {
    let path = write_store("roundtrip", 100);
    let _c = Cleanup(path.clone());
    let store = Arc::new(ColumnStore::open(&path).unwrap());
    assert_eq!(store.len(), 100);
    assert_eq!(store.dim(), 2);
    let pool = BufferPool::new(Arc::clone(&store), u64::MAX);

    // Every directory cell's rows must decode back to points that (a)
    // really belong to that cell and (b) carry ascending original ids.
    let spec = store.spec().clone();
    let mut coords = Vec::new();
    let mut ids = Vec::new();
    let mut seen = [false; 100];
    for meta in store.cells() {
        pool.gather_coords(meta.row_start, meta.row_count, &mut coords)
            .unwrap();
        pool.gather_ids(meta.row_start, meta.row_count, &mut ids)
            .unwrap();
        assert!(ids.windows(2).all(|w| w[0] < w[1]), "ids ascend in-cell");
        for (j, &id) in ids.iter().enumerate() {
            assert!(!seen[id as usize], "id {id} duplicated");
            seen[id as usize] = true;
            let p = &coords[j * 2..(j + 1) * 2];
            assert_eq!(spec.cell_of(p), meta.coord);
            // Reconstruct the original point from its id and compare
            // bitwise — the file round-trip must be exact.
            let x = (id % 17) as f64 * 0.3;
            let y = (id / 17) as f64 * 0.4;
            assert_eq!(p, &[x, y]);
        }
    }
    assert!(seen.iter().all(|&s| s), "every point accounted for");
}

#[test]
fn rows_of_ids_locates_core_points() {
    let path = write_store("rows-of-ids", 64);
    let _c = Cleanup(path.clone());
    let store = Arc::new(ColumnStore::open(&path).unwrap());
    let pool = BufferPool::new(Arc::clone(&store), u64::MAX);
    let mut ids = Vec::new();
    let mut rows = Vec::new();
    let mut coords = Vec::new();
    let meta = store
        .cells()
        .iter()
        .find(|m| m.row_count >= 2)
        .expect("a multi-point cell");
    pool.gather_ids(meta.row_start, meta.row_count, &mut ids)
        .unwrap();
    // Ask for a strict subset (every other id).
    let want: Vec<u32> = ids.iter().copied().step_by(2).collect();
    pool.rows_of_ids(meta.row_start, meta.row_count, &want, &mut rows)
        .unwrap();
    assert_eq!(rows.len(), want.len());
    pool.gather_rows_coords(&rows, &mut coords).unwrap();
    for (j, &id) in want.iter().enumerate() {
        let x = (id % 17) as f64 * 0.3;
        let y = (id / 17) as f64 * 0.4;
        assert_eq!(&coords[j * 2..(j + 1) * 2], &[x, y]);
    }
    // An id that is not in the cell is a corruption-grade error.
    let err = pool
        .rows_of_ids(meta.row_start, meta.row_count, &[u32::MAX], &mut rows)
        .unwrap_err();
    assert!(matches!(
        err,
        StoreError::Corrupt {
            what: "permutation",
            ..
        }
    ));
}

#[test]
fn bad_magic_is_rejected() {
    let path = write_store("magic", 10);
    let _c = Cleanup(path.clone());
    let mut bytes = std::fs::read(&path).unwrap();
    bytes[0] ^= 0xFF;
    std::fs::write(&path, &bytes).unwrap();
    assert!(matches!(
        ColumnStore::open(&path).unwrap_err(),
        StoreError::BadMagic { .. }
    ));
}

#[test]
fn future_version_is_rejected() {
    let path = write_store("version", 10);
    let _c = Cleanup(path.clone());
    let mut bytes = std::fs::read(&path).unwrap();
    let future = (FORMAT_VERSION + 1).to_le_bytes();
    bytes[MAGIC.len()..MAGIC.len() + 4].copy_from_slice(&future);
    std::fs::write(&path, &bytes).unwrap();
    match ColumnStore::open(&path).unwrap_err() {
        StoreError::UnsupportedVersion { got, supported } => {
            assert_eq!(got, FORMAT_VERSION + 1);
            assert_eq!(supported, FORMAT_VERSION);
        }
        other => panic!("expected UnsupportedVersion, got {other:?}"),
    }
}

#[test]
fn truncation_is_typed_at_every_layer() {
    let path = write_store("truncate", 50);
    let _c = Cleanup(path.clone());
    let bytes = std::fs::read(&path).unwrap();
    // Shorter than a header.
    std::fs::write(&path, &bytes[..40]).unwrap();
    assert!(matches!(
        ColumnStore::open(&path).unwrap_err(),
        StoreError::Truncated { what: "header", .. }
    ));
    // Header intact, body cut.
    std::fs::write(&path, &bytes[..bytes.len() - 9]).unwrap();
    assert!(matches!(
        ColumnStore::open(&path).unwrap_err(),
        StoreError::Truncated {
            what: "file body",
            ..
        }
    ));
    // Trailing garbage is corruption, not silence.
    let mut long = bytes.clone();
    long.extend_from_slice(&[0u8; 7]);
    std::fs::write(&path, &long).unwrap();
    assert!(matches!(
        ColumnStore::open(&path).unwrap_err(),
        StoreError::Corrupt {
            what: "file body",
            ..
        }
    ));
}

#[test]
fn flipped_page_byte_fails_its_checksum() {
    let path = write_store("bitrot", 50);
    let _c = Cleanup(path.clone());
    let mut bytes = std::fs::read(&path).unwrap();
    // Flip one byte in the first coordinate page (just past the header).
    bytes[72 + 3] ^= 0x01;
    std::fs::write(&path, &bytes).unwrap();
    // The directory still checks out, so open succeeds…
    let store = ColumnStore::open(&path).unwrap();
    // …but reading the damaged page is a typed checksum failure.
    let mut buf = Vec::new();
    match store.read_page(0, 0, &mut buf).unwrap_err() {
        StoreError::ChecksumMismatch {
            what: "page",
            col: 0,
            page: 0,
            expected,
            got,
        } => assert_ne!(expected, got),
        other => panic!("expected page ChecksumMismatch, got {other:?}"),
    }
    // And the pool propagates it.
    let pool = BufferPool::new(Arc::new(store), u64::MAX);
    assert!(matches!(
        pool.pin(PageKey { col: 0, page: 0 }).unwrap_err(),
        StoreError::ChecksumMismatch { .. }
    ));
}

#[test]
fn flipped_directory_byte_fails_at_open() {
    let path = write_store("dirrot", 50);
    let _c = Cleanup(path.clone());
    let mut bytes = std::fs::read(&path).unwrap();
    let n = bytes.len();
    bytes[n - 1] ^= 0x80;
    std::fs::write(&path, &bytes).unwrap();
    assert!(matches!(
        ColumnStore::open(&path).unwrap_err(),
        StoreError::ChecksumMismatch {
            what: "directory",
            ..
        }
    ));
}

#[test]
fn empty_store_round_trips() {
    let spec = GridSpec::new(3, 2.0, 0.25).unwrap();
    let w = StoreWriter::new(spec, 16).unwrap();
    let path = temp_path("empty");
    let _c = Cleanup(path.clone());
    let stats = w.finish(&path).unwrap();
    assert_eq!(stats.points, 0);
    assert_eq!(stats.cells, 0);
    assert_eq!(stats.pages, 0);
    let store = ColumnStore::open(&path).unwrap();
    assert!(store.is_empty());
    assert_eq!(store.cells().len(), 0);
    assert_eq!(store.pages_per_col(), 0);
    assert_eq!(store.dim(), 3);
    assert_eq!(store.eps(), 2.0);
}

#[test]
fn pool_evicts_towards_budget_and_counts() {
    let path = write_store("pool", 200);
    let _c = Cleanup(path.clone());
    let store = Arc::new(ColumnStore::open(&path).unwrap());
    // Budget of exactly two full coordinate pages (8 rows × 8 bytes).
    let pool = BufferPool::new(Arc::clone(&store), 2 * 8 * 8);
    let pages = store.pages_per_col();
    assert!(pages >= 4, "need enough pages to force eviction");

    // Touch every coordinate page of column 0, dropping each pin.
    for page in 0..pages {
        let p = pool.pin(PageKey { col: 0, page }).unwrap();
        assert_eq!(p.bytes().len(), store.page_bytes(0, page) as usize);
    }
    let s = pool.stats();
    assert_eq!(s.misses, pages as u64);
    assert_eq!(s.hits, 0);
    assert!(s.evictions > 0, "tiny budget must evict");
    assert!(s.tracked_bytes <= s.budget_bytes);
    assert!(s.peak_tracked_bytes >= s.tracked_bytes);

    // Re-pinning a page still cached is a hit; an evicted one refetches.
    let before = pool.stats();
    let _p = pool
        .pin(PageKey {
            col: 0,
            page: pages - 1,
        })
        .unwrap();
    let after = pool.stats();
    assert_eq!(after.hits + after.misses, before.hits + before.misses + 1);
}

#[test]
fn pinned_pages_survive_eviction_pressure() {
    let path = write_store("pins", 200);
    let _c = Cleanup(path.clone());
    let store = Arc::new(ColumnStore::open(&path).unwrap());
    let pool = BufferPool::new(Arc::clone(&store), 8 * 8); // one page
    let pages = store.pages_per_col();

    // Hold a pin while cycling the rest of the column through the pool.
    let pinned = pool.pin(PageKey { col: 0, page: 0 }).unwrap();
    let expected = pinned.bytes().to_vec();
    for page in 1..pages {
        let _ = pool.pin(PageKey { col: 0, page }).unwrap();
    }
    // The pinned page's bytes are untouched and still cached: re-pinning
    // it is a hit, not a refetch.
    assert_eq!(pinned.bytes(), &expected[..]);
    let before = pool.stats();
    let again = pool.pin(PageKey { col: 0, page: 0 }).unwrap();
    assert_eq!(pool.stats().hits, before.hits + 1);
    assert_eq!(again.bytes(), &expected[..]);
    // Budget was honestly overshot while both the pin and a newer page
    // were live; the peak records it.
    assert!(pool.stats().peak_tracked_bytes >= 2 * 8 * 8);
}

#[test]
fn pool_pin_evict_refetch_sequence_is_deterministic() {
    let path = write_store("determinism", 150);
    let _c = Cleanup(path.clone());
    let run = || {
        let store = Arc::new(ColumnStore::open(&path).unwrap());
        let pool = BufferPool::new(Arc::clone(&store), 3 * 8 * 8);
        let pages = store.pages_per_col();
        // A fixed access pattern with re-visits.
        for round in 0..3 {
            for page in 0..pages {
                let col = (round + page) % 3;
                let _ = pool.pin(PageKey { col, page }).unwrap();
            }
        }
        pool.stats()
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "identical access pattern must give identical stats");
    assert!(a.evictions > 0);
}
