// Rule-engine fixture: unordered-iter positives and waived sinks.

use std::collections::HashMap;

pub fn bad_keys(m: &HashMap<u32, u32>) -> Vec<u32> {
    let mut out = Vec::new();
    for k in m.keys() {
        out.push(*k);
    }
    out
}

pub fn bad_for_loop(m: HashMap<u32, u32>) -> Vec<u32> {
    let mut out = Vec::new();
    for (k, _v) in m {
        out.push(k);
    }
    out
}

pub fn waived_by_sort(m: &HashMap<u32, u32>) -> Vec<u32> {
    let mut v: Vec<u32> = m.keys().copied().collect();
    v.sort_unstable();
    v
}

pub fn waived_by_sink(m: &HashMap<u32, u32>) -> usize {
    m.keys().count()
}

pub fn undeclared_receiver_negative(v: &[u32]) -> usize {
    v.iter().len()
}
