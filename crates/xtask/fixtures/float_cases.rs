// Rule-engine fixture: float-eq positives and tricky negatives.
// A comment saying x == 0.0 is not a finding, and neither is the
// string below.

pub fn bad_eq(x: f64) -> bool {
    x == 0.0
}

pub fn bad_ne(x: f64) -> bool {
    1.5 != x
}

pub fn tolerance_negative(x: f64) -> bool {
    (x - 0.5).abs() < 1e-9
}

pub fn integer_negative(a: u32) -> bool {
    a == 0
}

pub fn string_negative() -> &'static str {
    "x == 0.0 inside a string literal"
}
