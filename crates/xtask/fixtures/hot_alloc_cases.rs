//! Fixture: hot-path-alloc cases.

// lint:hot
pub fn hot_allocates() -> Vec<u32> {
    let mut v = Vec::new();
    let w = vec![0.0f64; 4];
    let s = [1u8, 2].to_vec();
    v.push(w.len() as u32 + s.len() as u32);
    v
}

pub fn cold_allocates() -> Vec<u32> {
    let v = Vec::new();
    v
}

// lint:hot
pub fn hot_clean(buf: &mut [f64]) {
    buf[0] = 1.0;
    // Vec::new() mentioned in a comment, vec![] in a string: no findings.
    let _ = "Vec::new() vec![]";
}

// lint:hot
pub fn hot_suppressed() {
    // lint:allow(hot-path-alloc): fixture demonstrates a justified one-off allocation
    let _v: Vec<u8> = Vec::new();
}

// lint:hot
pub fn hot_kernel_chunk<const DIM: usize>(q: &[f64], block: &[f64]) -> f64 {
    // Const-generic kernel bodies are marker-scoped like any other fn.
    let leaked = block[..DIM].to_vec();
    q[0] + leaked[0]
}

// lint:hot
pub fn hot_gather_clean(gathered: &mut Vec<u64>, key: u64) -> u64 {
    // Batch-amortised gather path: pre-sized scratch is not a finding.
    let mut out = Vec::with_capacity(1);
    out.push(key);
    gathered.push(key);
    out[0]
}
