// Rule-engine fixture: lock-discipline positives and negatives.
// This file is never compiled; the `fixtures` directory is excluded
// from the workspace walk and only read by crates/xtask/tests.

pub fn hazard_send_while_locked(m: &Mutex<u32>, tx: &Sender<u32>) {
    let g = m.lock().unwrap_or_else(|p| p.into_inner());
    let _ = tx.send(*g);
}

pub fn negative_guard_dropped_before_send(m: &Mutex<u32>, tx: &Sender<u32>) {
    let g = m.lock().unwrap_or_else(|p| p.into_inner());
    let v = *g;
    drop(g);
    let _ = tx.send(v);
}

pub fn negative_block_scoped_guard(m: &Mutex<u32>, tx: &Sender<u32>) {
    let v = {
        let g = m.lock().unwrap_or_else(|p| p.into_inner());
        *g
    };
    let _ = tx.send(v);
}

// a comment mentioning m.lock() and tx.send() is not a finding
pub fn negative_strings_and_comments() -> &'static str {
    "never call send() while m.lock() is held"
}

pub fn consistent_ab_order(a: &Mutex<u32>, b: &Mutex<u32>) {
    let ga = a.lock().unwrap_or_else(|p| p.into_inner());
    let gb = b.lock().unwrap_or_else(|p| p.into_inner());
    let _ = (*ga, *gb);
}

pub fn reversed_ba_order_via_helper(a: &Mutex<u32>, b: &Mutex<u32>) {
    let gb = b.lock().unwrap_or_else(|p| p.into_inner());
    lock_a_too(a);
    let _ = *gb;
}

fn lock_a_too(a: &Mutex<u32>) {
    let ga = a.lock().unwrap_or_else(|p| p.into_inner());
    let _ = *ga;
}
