// Rule-engine fixture: determinism-time and thread-discipline.

use std::time::{Instant, SystemTime};

pub fn bad_instant() -> Instant {
    Instant::now()
}

pub fn bad_system_time() -> SystemTime {
    SystemTime::now()
}

pub fn bad_spawn() {
    std::thread::spawn(|| {}).join().ok();
}

#[cfg(test)]
mod tests {
    #[test]
    fn clocks_are_fine_in_tests() {
        let _ = std::time::Instant::now();
    }
}
