// Rule-engine fixture: atomics-discipline positives and negatives.
// This file is never compiled; the `fixtures` directory is excluded
// from the workspace walk and only read by crates/xtask/tests.

pub fn justified_pair(flag: &AtomicBool) {
    // sync: pairs with the Release store in `justified_pair` below.
    let _ = flag.load(Ordering::Acquire);
    flag.store(true, Ordering::Release); // sync: publishes the flag payload
}

pub fn missing_justification(flag: &AtomicBool) {
    let _ = flag.load(Ordering::Acquire);
}

// a comment mentioning Ordering::Relaxed is not a finding
pub fn string_negative() -> &'static str {
    "Ordering::SeqCst inside a string is not a finding"
}

pub fn cmp_ordering_negative(a: u32, b: u32) -> bool {
    matches!(a.cmp(&b), std::cmp::Ordering::Less)
}

pub fn mismatched_pair(state: &AtomicU64) {
    state.store(1, Ordering::Release); // sync: publishes the epoch payload
    // sync: reads the epoch counter without pairing with the release.
    let _ = state.load(Ordering::Relaxed);
}

pub fn relaxed_counter(hits: &AtomicU64) {
    // sync: pure statistics counter; no data is published through it.
    hits.fetch_add(1, Ordering::Relaxed);
}
