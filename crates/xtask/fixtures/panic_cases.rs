// Rule-engine fixture: panic-safety positives and tricky negatives.
// This file is never compiled; the `fixtures` directory is excluded
// from the workspace walk and only read by crates/xtask/tests.

pub fn bad_unwrap(v: Option<u32>) -> u32 {
    v.unwrap()
}

pub fn string_literal_negative() -> &'static str {
    "never call .unwrap() or panic!() in library code"
}

// a comment mentioning .unwrap() and panic!() is not a finding
pub fn comment_negative() -> u32 {
    7
}

pub fn bad_expect(v: Option<u32>) -> u32 {
    v.expect("present")
}

pub fn bad_panic() {
    panic!("kaboom");
}

pub fn bad_unreachable() {
    unreachable!();
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_is_fine_in_tests() {
        Some(1).unwrap();
        None::<u32>.expect("tests may panic");
    }
}
