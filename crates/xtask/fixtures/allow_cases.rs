// Rule-engine fixture: lint:allow hygiene.

pub fn justified(v: Option<u32>) -> u32 {
    v.unwrap() // lint:allow(panic-safety): fixture invariant documented here
}

pub fn missing_reason(v: Option<u32>) -> u32 {
    v.unwrap() // lint:allow(panic-safety)
}

pub fn standalone(v: Option<u32>) -> u32 {
    // lint:allow(panic-safety): a standalone allow fires on the next code line
    v.unwrap()
}

// lint:allow(float-eq): nothing floaty below, so this allow is unused
pub fn clean() -> u32 {
    3
}

pub fn unknown_rule(v: Option<u32>) -> u32 {
    v.unwrap() // lint:allow(no-such-rule): not a real rule
}
