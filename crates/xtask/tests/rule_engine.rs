//! Rule-engine tests over the fixture files in `crates/xtask/fixtures`.
//!
//! The `fixtures` directory is excluded from both the workspace walk
//! and `scope::classify`, so the deliberately-bad code in it never
//! pollutes a real `cargo run -p xtask -- lint`. These tests feed each
//! fixture through `rules::check_file` under a library scope and pin
//! the exact `(rule, line)` set — including the tricky negatives:
//! `unwrap` inside a string literal, `==` inside a comment, and
//! `lint:allow` without a reason.

use xtask::manifest;
use xtask::rules::{self, Finding};
use xtask::scope;

/// A scope with every rule active: library source in an ordered crate.
fn lib_scope() -> scope::FileScope {
    scope::classify("crates/core/src/fixture.rs").expect("library scope")
}

fn check(src: &str) -> rules::FileOutcome {
    rules::check_file("fixture.rs", &lib_scope(), src)
}

fn pairs(findings: &[Finding]) -> Vec<(&'static str, u32)> {
    findings.iter().map(|f| (f.rule, f.line)).collect()
}

#[test]
fn panic_rule_flags_real_sites_not_strings_comments_or_tests() {
    let out = check(include_str!("../fixtures/panic_cases.rs"));
    assert_eq!(
        pairs(&out.findings),
        vec![
            ("panic-safety", 6),  // v.unwrap()
            ("panic-safety", 19), // v.expect("present")
            ("panic-safety", 23), // panic!
            ("panic-safety", 27), // unreachable!
        ],
        "string literals, comments, and #[cfg(test)] must not fire: {:?}",
        out.findings
    );
    assert!(out.suppressed.is_empty());
}

#[test]
fn float_rule_flags_literal_comparisons_not_comments_or_ints() {
    let out = check(include_str!("../fixtures/float_cases.rs"));
    assert_eq!(
        pairs(&out.findings),
        vec![("float-eq", 6), ("float-eq", 10)],
        "{:?}",
        out.findings
    );
}

#[test]
fn allow_hygiene_reason_mandatory_unused_and_unknown_flagged() {
    let out = check(include_str!("../fixtures/allow_cases.rs"));
    // Line 8: the allow has no reason, so it is malformed AND the
    // unwrap it meant to cover survives. Line 16: allow that never
    // fires. Line 22: allow naming an unknown rule, unwrap survives.
    assert_eq!(
        pairs(&out.findings),
        vec![
            ("panic-safety", 8),
            ("suppression", 8),
            ("suppression", 16),
            ("panic-safety", 22),
            ("suppression", 22),
        ],
        "{:?}",
        out.findings
    );
    // The two well-formed allows suppress exactly their own targets,
    // carrying the mandatory reason through to the report.
    assert_eq!(
        pairs(&out.suppressed),
        vec![("panic-safety", 4), ("panic-safety", 13)]
    );
    assert!(out.suppressed.iter().all(|f| !f.reason.is_empty()));
}

#[test]
fn unordered_rule_flags_hash_iteration_waives_sorts_and_sinks() {
    let out = check(include_str!("../fixtures/ordering_cases.rs"));
    assert_eq!(
        pairs(&out.findings),
        vec![("unordered-iter", 7), ("unordered-iter", 15)],
        "sorted bindings and order-insensitive sinks must be waived: {:?}",
        out.findings
    );
}

#[test]
fn clock_and_thread_rules_fire_in_library_scope() {
    let out = check(include_str!("../fixtures/clock_thread_cases.rs"));
    assert_eq!(
        pairs(&out.findings),
        vec![
            ("determinism-time", 6),
            ("determinism-time", 10),
            ("thread-discipline", 14),
        ],
        "{:?}",
        out.findings
    );
}

#[test]
fn engine_timing_layer_may_read_clocks_and_spawn_threads() {
    let pool = scope::classify("crates/engine/src/pool.rs").expect("pool scope");
    let out = rules::check_file(
        "crates/engine/src/pool.rs",
        &pool,
        include_str!("../fixtures/clock_thread_cases.rs"),
    );
    assert!(out.findings.is_empty(), "{:?}", out.findings);
}

#[test]
fn test_scope_only_runs_the_unsafe_scan() {
    let t = scope::classify("crates/core/tests/t.rs").expect("test scope");
    let out = rules::check_file(
        "crates/core/tests/t.rs",
        &t,
        include_str!("../fixtures/panic_cases.rs"),
    );
    assert!(out.findings.is_empty(), "{:?}", out.findings);
}

#[test]
fn unsafe_flagged_everywhere_and_crate_roots_need_forbid() {
    let t = scope::classify("crates/core/tests/t.rs").expect("test scope");
    let out = rules::check_file("t.rs", &t, "pub fn f() {\n    unsafe {}\n}\n");
    assert_eq!(pairs(&out.findings), vec![("forbid-unsafe", 2)]);

    let root = scope::classify("crates/geom/src/lib.rs").expect("crate root");
    assert!(root.is_crate_root);
    let out = rules::check_file("lib.rs", &root, "//! docs\npub fn f() {}\n");
    assert_eq!(pairs(&out.findings), vec![("forbid-unsafe", 1)]);
    let out = rules::check_file("lib.rs", &root, "#![forbid(unsafe_code)]\npub fn f() {}\n");
    assert!(out.findings.is_empty());
}

#[test]
fn serve_is_a_full_library_and_ordered_crate() {
    // The serving layer sits on the read path of published clusterings:
    // it gets the complete rule set (panic-safety, thread discipline,
    // clock bans) plus the ordered-iteration rule, like core/stream/grid.
    let s = scope::classify("crates/serve/src/index.rs").expect("library scope");
    assert!(s.panic_safety());
    assert!(s.determinism_time());
    assert!(s.thread_discipline());
    assert!(s.unordered_iter());
    let out = rules::check_file(
        "crates/serve/src/index.rs",
        &s,
        "pub fn f() {\n    let x: Option<u32> = None;\n    x.unwrap();\n    \
         std::thread::spawn(|| {});\n    let _ = std::time::Instant::now();\n}\n",
    );
    let names: Vec<&str> = out.findings.iter().map(|f| f.rule).collect();
    assert!(names.contains(&"panic-safety"), "{names:?}");
    assert!(names.contains(&"thread-discipline"), "{names:?}");
    assert!(names.contains(&"determinism-time"), "{names:?}");

    let root = scope::classify("crates/serve/src/lib.rs").expect("crate root");
    assert!(
        root.is_crate_root,
        "serve lib.rs must carry forbid(unsafe_code)"
    );
}

#[test]
fn density_is_a_full_library_and_ordered_crate() {
    // The density backends decide core-point status — a result-shaped
    // path — so they get the complete rule set plus ordered iteration,
    // exactly like core/stream/grid/serve.
    let s = scope::classify("crates/density/src/knn.rs").expect("library scope");
    assert!(s.panic_safety());
    assert!(s.determinism_time());
    assert!(s.thread_discipline());
    assert!(s.float_eq());
    assert!(s.unordered_iter());
    let out = rules::check_file(
        "crates/density/src/knn.rs",
        &s,
        "pub fn f() {\n    let m: std::collections::HashMap<u32, u32> = Default::default();\n    \
         for (k, v) in &m {\n        println!(\"{k}{v}\");\n    }\n    \
         let x: Option<u32> = None;\n    x.unwrap();\n}\n",
    );
    let names: Vec<&str> = out.findings.iter().map(|f| f.rule).collect();
    assert!(names.contains(&"panic-safety"), "{names:?}");
    assert!(names.contains(&"unordered-iter"), "{names:?}");

    let root = scope::classify("crates/density/src/lib.rs").expect("crate root");
    assert!(
        root.is_crate_root,
        "density lib.rs must carry forbid(unsafe_code)"
    );
    // Its tests directory only gets the unsafe scan, like every crate.
    let t = scope::classify("crates/density/tests/exact_equivalence.rs").expect("test scope");
    assert!(!t.panic_safety());
    assert!(!t.unordered_iter());
}

#[test]
fn store_is_a_full_library_and_ordered_crate() {
    // The column store feeds coordinates straight into Phase II and the
    // spill merge — result-shaped bytes — so it gets the complete rule
    // set plus ordered iteration, exactly like core/stream/grid/serve/
    // density. Its page-read path is `// lint:hot`-marked, so per-call
    // allocations there must keep tripping hot-path-alloc.
    let s = scope::classify("crates/store/src/gather.rs").expect("library scope");
    assert!(s.panic_safety());
    assert!(s.determinism_time());
    assert!(s.thread_discipline());
    assert!(s.float_eq());
    assert!(s.unordered_iter());
    let out = rules::check_file(
        "crates/store/src/gather.rs",
        &s,
        "pub fn f() {\n    let m: std::collections::HashMap<u32, u32> = Default::default();\n    \
         for (k, v) in &m {\n        println!(\"{k}{v}\");\n    }\n    \
         let x: Option<u32> = None;\n    x.unwrap();\n}\n\
         // lint:hot\nfn page_read() {\n    let buf: Vec<u8> = Vec::new();\n    drop(buf);\n}\n",
    );
    let names: Vec<&str> = out.findings.iter().map(|f| f.rule).collect();
    assert!(names.contains(&"panic-safety"), "{names:?}");
    assert!(names.contains(&"unordered-iter"), "{names:?}");
    assert!(names.contains(&"hot-path-alloc"), "{names:?}");

    let root = scope::classify("crates/store/src/lib.rs").expect("crate root");
    assert!(
        root.is_crate_root,
        "store lib.rs must carry forbid(unsafe_code)"
    );
    // Its tests directory only gets the unsafe scan, like every crate.
    let t = scope::classify("crates/store/tests/store_integrity.rs").expect("test scope");
    assert!(!t.panic_safety());
    assert!(!t.unordered_iter());
}

#[test]
fn fixtures_are_out_of_scope_for_the_workspace_walk() {
    assert!(scope::classify("crates/xtask/fixtures/panic_cases.rs").is_none());
    assert!(scope::classify("vendor/foo/src/lib.rs").is_none());
}

#[test]
fn manifests_registry_deps_flagged_offline_forms_pass() {
    let good = r#"
[dependencies]
foo = { path = "../foo" }
bar.workspace = true
baz = { workspace = true }

[dependencies.quux]
path = "../quux"

[features]
default = []
"#;
    assert!(manifest::check_manifest("Cargo.toml", good).is_empty());

    let bad = "[dependencies]\nserde = \"1.0\"\n\n[dependencies.tokio]\nversion = \"1\"\n";
    let f = manifest::check_manifest("Cargo.toml", bad);
    assert_eq!(
        f.iter().map(|f| (f.rule, f.line)).collect::<Vec<_>>(),
        vec![("offline-deps", 2), ("offline-deps", 4)],
        "{f:?}"
    );
}

#[test]
fn hot_alloc_rule_is_marker_scoped_and_suppressible() {
    let out = check(include_str!("../fixtures/hot_alloc_cases.rs"));
    assert_eq!(
        pairs(&out.findings),
        vec![
            ("hot-path-alloc", 5),  // Vec::new in a marked fn
            ("hot-path-alloc", 6),  // vec![..] in a marked fn
            ("hot-path-alloc", 7),  // .to_vec() in a marked fn
            ("hot-path-alloc", 33), // .to_vec() in a marked const-generic kernel fn
        ],
        "unmarked functions, comments, strings, and Vec::with_capacity \
         in the gather path must not fire: {:?}",
        out.findings
    );
    assert_eq!(pairs(&out.suppressed), vec![("hot-path-alloc", 27)]);
}
