//! Rule-engine tests for the two flow-aware concurrency passes:
//! `lock-discipline` (guard tracking, held-across hazards, the
//! workspace acquisition-order graph) and `atomics-discipline`
//! (`// sync:` justifications, Relaxed bans, Acquire/Release pairing).
//! Same fixture style as `rule_engine.rs`: each fixture is lexed under
//! a library scope and the exact `(rule, line)` set is pinned.

use xtask::locks;
use xtask::rules::{self, Finding};
use xtask::scope;

fn lib_scope() -> scope::FileScope {
    scope::classify("crates/core/src/fixture.rs").expect("library scope")
}

fn check(src: &str) -> rules::FileOutcome {
    rules::check_file("fixture.rs", &lib_scope(), src)
}

fn pairs(findings: &[Finding]) -> Vec<(&'static str, u32)> {
    findings.iter().map(|f| (f.rule, f.line)).collect()
}

#[test]
fn guard_across_send_flagged_releases_are_not() {
    let out = check(include_str!("../fixtures/lock_cases.rs"));
    // Line 7 holds `m`'s guard across a channel send. The drop on 13,
    // the block close on 21, and the string/comment mentions must not
    // fire.
    assert_eq!(
        pairs(&out.findings),
        vec![("lock-discipline", 7)],
        "{:?}",
        out.findings
    );
    assert!(out.findings[0].message.contains("send"));
    assert!(out.suppressed.is_empty());
}

#[test]
fn cross_function_lock_order_cycle_is_found() {
    let out = check(include_str!("../fixtures/lock_cases.rs"));
    // `consistent_ab_order` takes a then b; `reversed_ba_order_via_helper`
    // holds b and calls `lock_a_too`, whose lock set propagates a — the
    // classic ABBA cycle, closed through a call edge.
    let cycles = locks::check_order(&out.lock_fns);
    assert_eq!(cycles.len(), 1, "{cycles:?}");
    let c = &cycles[0];
    assert_eq!(c.rule, "lock-discipline");
    assert!(
        c.message.contains("cyclic lock acquisition order"),
        "{}",
        c.message
    );
    assert!(
        c.message.contains("core::a") && c.message.contains("core::b"),
        "{}",
        c.message
    );
    assert!(c.message.contains("lock_a_too"), "{}", c.message);

    // Dropping the reversed function leaves a consistent global order.
    let acyclic: Vec<locks::FnLocks> = out
        .lock_fns
        .iter()
        .filter(|f| f.fn_name != "reversed_ba_order_via_helper")
        .cloned()
        .collect();
    assert!(locks::check_order(&acyclic).is_empty());
}

#[test]
fn atomics_sites_need_sync_comments_and_matched_pairs() {
    let out = check(include_str!("../fixtures/atomics_cases.rs"));
    // Line 12: `Ordering::Acquire` with no `// sync:`. Line 27: the
    // load is justified but pairs a Release store with a Relaxed load.
    // Strings, comments, `cmp::Ordering`, and the justified counter
    // must not fire.
    assert_eq!(
        pairs(&out.findings),
        vec![("atomics-discipline", 12), ("atomics-discipline", 27)],
        "{:?}",
        out.findings
    );
    assert!(out.findings[0].message.contains("sync:"));
    assert!(out.findings[1].message.contains("Release"));
}

#[test]
fn empty_sync_invariant_justifies_nothing() {
    let out = check("pub fn f(x: &AtomicU32) {\n    // sync:\n    x.load(Ordering::Acquire);\n}\n");
    assert_eq!(pairs(&out.findings), vec![("atomics-discipline", 3)]);
}

#[test]
fn relaxed_on_publish_paths_needs_a_waiver() {
    let s = scope::classify("crates/engine/src/pool.rs").expect("pool scope");
    let src = "pub fn f(c: &AtomicBool) {\n    \
               // sync: advisory flag; no payload rides on it.\n    \
               c.store(true, Ordering::Relaxed);\n}\n";
    let out = rules::check_file("crates/engine/src/pool.rs", &s, src);
    assert_eq!(
        pairs(&out.findings),
        vec![("atomics-discipline", 3)],
        "{:?}",
        out.findings
    );
    assert!(out.findings[0].message.contains("publish/verify"));

    // The same site with an explicit reason is waived — and the reason
    // travels into the suppressed report.
    let waived = "pub fn f(c: &AtomicBool) {\n    \
                  // sync: advisory flag; no payload rides on it.\n    \
                  c.store(true, Ordering::Relaxed); \
                  // lint:allow(atomics-discipline): flag only; no data published\n}\n";
    let out = rules::check_file("crates/engine/src/pool.rs", &s, waived);
    assert!(out.findings.is_empty(), "{:?}", out.findings);
    assert_eq!(pairs(&out.suppressed), vec![("atomics-discipline", 3)]);
    assert!(!out.suppressed[0].reason.is_empty());

    // Outside the publish/verify paths a justified Relaxed needs no
    // waiver at all.
    let out = check(src);
    assert!(out.findings.is_empty(), "{:?}", out.findings);
}

#[test]
fn concurrency_passes_run_on_libraries_not_tools_or_tests() {
    let lib = lib_scope();
    assert!(lib.lock_discipline());
    assert!(lib.atomics_discipline());
    // The delta-publish and sliding-window modules are library code on
    // the serving/streaming publish paths: both passes must cover them.
    for path in ["crates/serve/src/patch.rs", "crates/stream/src/window.rs"] {
        let s = scope::classify(path).expect("publish-path scope");
        assert!(s.lock_discipline(), "{path}");
        assert!(s.atomics_discipline(), "{path}");
    }
    let tool = scope::classify("crates/xtask/src/rules.rs").expect("tool scope");
    assert!(!tool.lock_discipline());
    assert!(!tool.atomics_discipline());
    let model = scope::classify("crates/model/src/explore.rs").expect("model scope");
    assert!(!model.lock_discipline());
    let t = scope::classify("crates/serve/tests/t.rs").expect("test scope");
    assert!(!t.lock_discipline());
    assert!(!t.atomics_discipline());

    // The same hazard source produces nothing under a test scope.
    let hazard = "pub fn f(m: &Mutex<u32>, tx: &Sender<u32>) {\n    \
                  let g = m.lock().unwrap_or_else(|p| p.into_inner());\n    \
                  let _ = tx.send(*g);\n}\n";
    let out = rules::check_file("crates/serve/tests/t.rs", &t, hazard);
    assert!(out.findings.is_empty(), "{:?}", out.findings);
    assert!(out.lock_fns.is_empty());
}
