//! Human-readable and machine-readable (`LINT.json`) lint reports.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use rpdbscan_json::Value;

use crate::rules::{Finding, RULE_DESCRIPTIONS, RULE_NAMES};

/// `LINT.json` schema version. Bumped to 2 when the concurrency passes
/// landed (new rules in `by_rule`, `--baseline` consumers appeared).
pub const SCHEMA_VERSION: i64 = 2;

/// The complete result of a lint run.
#[derive(Debug, Default)]
pub struct LintReport {
    /// Findings that survive suppression; nonzero exit if non-empty.
    pub findings: Vec<Finding>,
    /// Findings silenced by a `lint:allow`, with reasons.
    pub suppressed: Vec<Finding>,
    /// Number of source files scanned.
    pub files_scanned: usize,
    /// Number of manifests checked.
    pub manifests_checked: usize,
}

impl LintReport {
    /// Renders the human-readable report.
    pub fn human(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            let _ = writeln!(out, "{}:{}: [{}] {}", f.file, f.line, f.rule, f.message);
        }
        if !self.findings.is_empty() {
            let _ = writeln!(out);
        }
        let mut by_rule: BTreeMap<&str, usize> = BTreeMap::new();
        for f in &self.findings {
            *by_rule.entry(f.rule).or_insert(0) += 1;
        }
        let _ = writeln!(
            out,
            "xtask lint: {} file(s), {} manifest(s) scanned",
            self.files_scanned, self.manifests_checked
        );
        let _ = writeln!(
            out,
            "  {} finding(s), {} suppressed via lint:allow",
            self.findings.len(),
            self.suppressed.len()
        );
        for (rule, n) in &by_rule {
            let _ = writeln!(out, "    {rule}: {n}");
        }
        if self.findings.is_empty() {
            let _ = writeln!(out, "  clean.");
        }
        out
    }

    /// Renders the `LINT.json` payload (deterministic key order).
    pub fn json(&self) -> Value {
        let finding_value = |f: &Finding| {
            let mut v = Value::object();
            v.insert("rule", f.rule);
            v.insert("file", f.file.as_str());
            v.insert("line", f.line);
            v.insert("matched", f.matched.as_str());
            v.insert("message", f.message.as_str());
            if !f.reason.is_empty() {
                v.insert("reason", f.reason.as_str());
            }
            v
        };
        let mut by_rule: BTreeMap<String, Value> = BTreeMap::new();
        for name in RULE_NAMES {
            let n = self.findings.iter().filter(|f| f.rule == name).count();
            by_rule.insert(name.to_string(), Value::Int(n as i64));
        }
        let mut summary = Value::object();
        summary.insert("files_scanned", self.files_scanned);
        summary.insert("manifests_checked", self.manifests_checked);
        summary.insert("findings", self.findings.len());
        summary.insert("suppressed", self.suppressed.len());
        summary.insert("by_rule", Value::Object(by_rule));

        let mut root = Value::object();
        root.insert("tool", "xtask lint");
        root.insert("schema_version", SCHEMA_VERSION);
        root.insert("summary", summary);
        root.insert(
            "findings",
            Value::Array(self.findings.iter().map(finding_value).collect()),
        );
        root.insert(
            "suppressed",
            Value::Array(self.suppressed.iter().map(finding_value).collect()),
        );
        root
    }
}

/// Renders the `xtask rules` listing.
pub fn rules_listing() -> String {
    let mut out = String::new();
    for (name, desc) in RULE_NAMES.iter().zip(RULE_DESCRIPTIONS.iter()) {
        let _ = writeln!(out, "{name:<18} {desc}");
    }
    out
}
