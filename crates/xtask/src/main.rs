//! CLI for the workspace static analyzer.
//!
//! ```text
//! cargo run -p xtask -- lint [--json PATH] [--baseline PATH] [--root PATH]
//! cargo run -p xtask -- rules
//! ```
//!
//! `lint` exits 0 when no unsuppressed finding survives, 1 when
//! findings remain, 2 on usage or I/O errors. With `--baseline` the
//! gate shifts to *new* findings: anything already recorded in the
//! given `LINT.json` (keyed by rule/file/match, not line) is reported
//! but does not fail the run.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
usage: cargo run -p xtask -- <command>

commands:
  lint [--json PATH] [--baseline PATH] [--root PATH]
        scan the workspace; write LINT.json; with --baseline, fail only
        on findings not present in the given report
  rules
        list the rules and what they enforce
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(&args[1..]),
        Some("rules") => {
            print!("{}", xtask::report::rules_listing());
            ExitCode::SUCCESS
        }
        _ => {
            eprint!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

fn lint(args: &[String]) -> ExitCode {
    let mut root = workspace_root();
    let mut json_path: Option<PathBuf> = Some(PathBuf::from("LINT.json"));
    let mut baseline_path: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => match it.next() {
                Some(p) => root = PathBuf::from(p),
                None => return usage_err("--root needs a path"),
            },
            "--json" => match it.next() {
                Some(p) => json_path = Some(PathBuf::from(p)),
                None => return usage_err("--json needs a path"),
            },
            "--baseline" => match it.next() {
                Some(p) => baseline_path = Some(PathBuf::from(p)),
                None => return usage_err("--baseline needs a path"),
            },
            "--no-json" => json_path = None,
            other => return usage_err(&format!("unknown flag `{other}`")),
        }
    }

    let report = match xtask::run_lint(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("xtask lint: {e}");
            return ExitCode::from(2);
        }
    };
    print!("{}", report.human());
    if let Some(path) = json_path {
        let path = if path.is_absolute() {
            path
        } else {
            root.join(path)
        };
        let mut text = report.json().to_string();
        text.push('\n');
        if let Err(e) = std::fs::write(&path, text) {
            eprintln!("xtask lint: write {}: {e}", path.display());
            return ExitCode::from(2);
        }
        println!("  report: {}", path.display());
    }
    if let Some(path) = baseline_path {
        let path = if path.is_absolute() {
            path
        } else {
            root.join(path)
        };
        let src = match std::fs::read_to_string(&path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("xtask lint: read baseline {}: {e}", path.display());
                return ExitCode::from(2);
            }
        };
        let base = match xtask::baseline::Baseline::parse(&src) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("xtask lint: {e}");
                return ExitCode::from(2);
            }
        };
        let new = base.new_findings(&report.findings);
        for f in &new {
            println!("  NEW {}:{}: [{}] {}", f.file, f.line, f.rule, f.message);
        }
        println!(
            "  baseline {}: {} new finding(s)",
            path.display(),
            new.len()
        );
        return if new.is_empty() {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }
    if report.findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn usage_err(msg: &str) -> ExitCode {
    eprintln!("xtask lint: {msg}\n");
    eprint!("{USAGE}");
    ExitCode::from(2)
}

/// The workspace root: CARGO_MANIFEST_DIR is `crates/xtask`, two up.
fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(|p| p.parent())
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."))
}
