//! `lock-discipline`: flow-aware lock analysis on the token stream.
//!
//! The nine original rules are single-token pattern checks; this pass
//! is the first *flow-aware* one. Per function it tracks `Mutex`/
//! `RwLock` guard bindings — `let g = x.lock()…;` holds `x` until the
//! enclosing block closes or `drop(g)` runs, while a guard consumed in
//! the same statement (`x.lock().….field += 1;`) is a temporary — and
//! from the held-sets derives two kinds of facts:
//!
//! * **hazards** (per-file findings): a guard held across a call that
//!   blocks or re-enters the engine — `run_stage`, a channel `send`/
//!   `recv`, or a condvar `wait` — is reported at the call site. These
//!   calls can park the thread for arbitrarily long (or, for
//!   `run_stage`, run arbitrary task closures), so holding a lock over
//!   them turns back-pressure into a convoy or a deadlock.
//! * **a workspace-wide acquisition-order graph**: an edge `A → B` is
//!   recorded when lock `B` is acquired while `A` is held, either
//!   directly or through a same-crate function call made while `A` is
//!   held — where only free calls and `self.method(..)` resolve to
//!   local functions (`queue.drain(..)` is `VecDeque::drain`, not a
//!   local `fn drain`). [`check_order`] runs after every file is scanned,
//!   propagates callee lock-sets to a fixpoint, and fails on any cycle
//!   — the classic ABBA deadlock shape — naming the full cycle.
//!
//! Lock identity is the receiver identifier qualified by crate
//! (`serve::queue`, `engine::failure`); distinct fields with one name
//! in one crate collapse onto one node, which errs towards reporting.
//! Only zero-argument `.lock()`/`.read()`/`.write()` calls count, so
//! `io::Read::read(&mut buf)` and `fs::read_dir` never match.

use crate::lexer::{Token, TokenKind};
use crate::rules::{Finding, RULE_LOCK};
use std::collections::{BTreeMap, BTreeSet};

/// Calls that must never run while a lock guard is held: they block on
/// external progress (channel peers, condvar signals) or re-enter the
/// engine (`run_stage` executes arbitrary task closures on the pool).
const HELD_ACROSS_HAZARDS: [&str; 7] = [
    "run_stage",
    "send",
    "recv",
    "recv_timeout",
    "wait",
    "wait_timeout",
    "wait_while",
];

/// Method names that acquire a guard when called with no arguments.
const ACQUIRE_METHODS: [&str; 3] = ["lock", "read", "write"];

/// Guard-adapter methods that may trail the acquisition without
/// consuming the guard (`.lock().unwrap()`, `.write().unwrap_or_else(…)`).
const GUARD_ADAPTERS: [&str; 3] = ["unwrap", "unwrap_or_else", "expect"];

/// Lock facts extracted from one function body.
#[derive(Debug, Clone)]
pub struct FnLocks {
    /// Workspace-relative file the function lives in.
    pub file: String,
    /// Owning crate (lock and call resolution stays within it).
    pub crate_name: String,
    /// Function name (token after `fn`).
    pub fn_name: String,
    /// Locks acquired anywhere in the body: `(lock, line)`.
    pub acquires: Vec<(String, u32)>,
    /// Direct order edges: lock `held` → lock `acquired`, at `line`.
    pub edges: Vec<(String, String, u32)>,
    /// Same-crate calls made while holding locks:
    /// `(callee, held locks, line)`.
    pub calls_while_held: Vec<(String, Vec<String>, u32)>,
    /// Every call made in the body (for transitive lock sets).
    pub calls: Vec<String>,
}

/// One live guard binding.
#[derive(Debug)]
struct Guard {
    /// Binding name (`queue` in `let mut queue = …`); empty for
    /// temporaries that live to the end of their statement.
    binding: String,
    /// Canonical lock id (`crate::receiver`).
    lock: String,
    /// Brace depth the binding lives at; popped when depth drops below.
    depth: i32,
    /// Temporaries are released at the next `;` at their depth.
    statement_temp: bool,
}

/// Scans one file's tokens for lock facts. Returns hazard findings
/// (guard held across a blocking call) plus per-function summaries for
/// the workspace-wide order check. `mask` marks test tokens to skip.
pub fn analyze_file(
    file: &str,
    crate_name: &str,
    t: &[Token],
    mask: &[bool],
    out: &mut Vec<Finding>,
) -> Vec<FnLocks> {
    let mut fns = Vec::new();
    let mut i = 0;
    while i < t.len() {
        if t[i].kind == TokenKind::Ident && t[i].text == "fn" && !mask[i] {
            let Some(name) = t.get(i + 1).filter(|n| n.kind == TokenKind::Ident) else {
                i += 1;
                continue;
            };
            // The body is the first brace-balanced block after the
            // signature; a trait/extern declaration ends at `;` first.
            let mut j = i + 2;
            let mut body_open = None;
            while let Some(tok) = t.get(j) {
                if tok.kind == TokenKind::Punct {
                    match tok.text.as_str() {
                        "{" => {
                            body_open = Some(j);
                            break;
                        }
                        ";" => break,
                        _ => {}
                    }
                }
                j += 1;
            }
            let Some(open) = body_open else {
                i = j + 1;
                continue;
            };
            let end = block_end(t, open);
            let info = analyze_fn(file, crate_name, &name.text, t, open, end, out);
            if !info.acquires.is_empty() || !info.calls.is_empty() {
                fns.push(info);
            }
            i = end;
            continue;
        }
        i += 1;
    }
    fns
}

/// Index just past the `}` matching the `{` at `open`.
fn block_end(t: &[Token], open: usize) -> usize {
    let mut depth = 0i32;
    for (j, tok) in t.iter().enumerate().skip(open) {
        if tok.kind == TokenKind::Punct {
            match tok.text.as_str() {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    if depth == 0 {
                        return j + 1;
                    }
                }
                _ => {}
            }
        }
    }
    t.len()
}

fn punct(t: &[Token], i: usize, s: &str) -> bool {
    t.get(i)
        .is_some_and(|tok| tok.kind == TokenKind::Punct && tok.text == s)
}

/// Walks one function body, maintaining the live guard stack.
fn analyze_fn(
    file: &str,
    crate_name: &str,
    fn_name: &str,
    t: &[Token],
    open: usize,
    end: usize,
    out: &mut Vec<Finding>,
) -> FnLocks {
    let mut info = FnLocks {
        file: file.to_string(),
        crate_name: crate_name.to_string(),
        fn_name: fn_name.to_string(),
        acquires: Vec::new(),
        edges: Vec::new(),
        calls_while_held: Vec::new(),
        calls: Vec::new(),
    };
    let mut guards: Vec<Guard> = Vec::new();
    let mut depth = 0i32;
    let mut j = open;
    while j < end {
        let tok = &t[j];
        if tok.kind == TokenKind::Punct {
            match tok.text.as_str() {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    guards.retain(|g| g.depth <= depth);
                }
                ";" => guards.retain(|g| !(g.statement_temp && g.depth == depth)),
                _ => {}
            }
            j += 1;
            continue;
        }
        if tok.kind != TokenKind::Ident {
            j += 1;
            continue;
        }
        // `drop(name)` releases the named guard.
        if tok.text == "drop" && punct(t, j + 1, "(") {
            if let Some(arg) = t.get(j + 2).filter(|a| a.kind == TokenKind::Ident) {
                guards.retain(|g| g.binding != arg.text);
            }
            j += 1;
            continue;
        }
        // Zero-arg `.lock()` / `.read()` / `.write()`.
        if ACQUIRE_METHODS.contains(&tok.text.as_str())
            && punct(t, j.wrapping_sub(1), ".")
            && punct(t, j + 1, "(")
            && punct(t, j + 2, ")")
        {
            let lock = qualified_receiver(crate_name, t, j - 1);
            for g in &guards {
                info.edges.push((g.lock.clone(), lock.clone(), tok.line));
            }
            info.acquires.push((lock.clone(), tok.line));
            let (binding, statement_temp) = guard_binding(t, j, end);
            guards.push(Guard {
                binding,
                lock,
                depth,
                statement_temp,
            });
            j += 3;
            continue;
        }
        // A call: `name(` or `.name(`. The hazard check is name-based
        // (`self.engine.run_stage(..)` must fire), but only `self.name(`
        // and free `name(` calls resolve to same-crate functions for
        // the order graph — `queue.drain(..)` is `VecDeque::drain`, not
        // `Server::drain`, and conflating them manufactures edges.
        if punct(t, j + 1, "(") && tok.text != "fn" {
            if HELD_ACROSS_HAZARDS.contains(&tok.text.as_str()) && !guards.is_empty() {
                let held: Vec<String> = guards.iter().map(|g| g.lock.clone()).collect();
                out.push(Finding {
                    rule: RULE_LOCK,
                    file: file.to_string(),
                    line: tok.line,
                    matched: tok.text.clone(),
                    message: format!(
                        "`{}` called while holding {} — release the guard before blocking \
                         or re-entering the engine",
                        tok.text,
                        held.join(", "),
                    ),
                    reason: String::new(),
                });
            }
            let is_method = punct(t, j.wrapping_sub(1), ".");
            let resolvable = if is_method {
                j >= 2 && t[j - 2].kind == TokenKind::Ident && t[j - 2].text == "self"
            } else {
                tok.text.starts_with(|c: char| c.is_ascii_lowercase())
                    && !matches!(
                        tok.text.as_str(),
                        "for" | "if" | "while" | "match" | "loop" | "let" | "return" | "move"
                    )
            };
            if resolvable {
                info.calls.push(tok.text.clone());
                if !guards.is_empty() {
                    info.calls_while_held.push((
                        tok.text.clone(),
                        guards.iter().map(|g| g.lock.clone()).collect(),
                        tok.line,
                    ));
                }
            }
        }
        j += 1;
    }
    info
}

/// Canonical `crate::receiver` id for the expression ending at the `.`
/// before the acquire method. Walks back over one index expression
/// (`slots[i]`) and takes the nearest identifier; `self.` and longer
/// paths collapse onto the field name.
fn qualified_receiver(crate_name: &str, t: &[Token], dot: usize) -> String {
    let mut k = dot as isize - 1;
    if k >= 0 && t[k as usize].kind == TokenKind::Punct && t[k as usize].text == "]" {
        let mut d = 0i32;
        while k >= 0 {
            match (t[k as usize].kind, t[k as usize].text.as_str()) {
                (TokenKind::Punct, "]") => d += 1,
                (TokenKind::Punct, "[") => {
                    d -= 1;
                    if d == 0 {
                        k -= 1;
                        break;
                    }
                }
                _ => {}
            }
            k -= 1;
        }
    }
    let name = usize::try_from(k)
        .ok()
        .and_then(|k| t.get(k))
        .filter(|tok| tok.kind == TokenKind::Ident)
        .map(|tok| tok.text.as_str())
        .unwrap_or("<expr>");
    format!("{crate_name}::{name}")
}

/// Decides whether the acquisition at `lock_idx` is bound to a live
/// guard (`let g = x.lock().unwrap…;` — returns the binding name) or is
/// a statement temporary (further method calls or field access consume
/// it, or there is no `let`).
fn guard_binding(t: &[Token], lock_idx: usize, end: usize) -> (String, bool) {
    // Forward: skip the `()` then any guard-adapter calls; a `;` right
    // after means the binding *is* the guard.
    let mut j = lock_idx + 3; // past `( )`
    loop {
        if punct(t, j, ".")
            && t.get(j + 1).is_some_and(|a| {
                a.kind == TokenKind::Ident && GUARD_ADAPTERS.contains(&a.text.as_str())
            })
            && punct(t, j + 2, "(")
        {
            j = block_paren_end(t, j + 2, end);
            continue;
        }
        break;
    }
    if !punct(t, j, ";") {
        return (String::new(), true);
    }
    // Backward: find `let [mut] name =` in the same statement.
    let mut k = lock_idx;
    while k > 0 {
        k -= 1;
        let tok = &t[k];
        if tok.kind == TokenKind::Punct && matches!(tok.text.as_str(), ";" | "{" | "}") {
            break;
        }
        if tok.kind == TokenKind::Ident && tok.text == "let" {
            let name_idx = if t.get(k + 1).is_some_and(|m| m.text == "mut") {
                k + 2
            } else {
                k + 1
            };
            if let Some(name) = t.get(name_idx).filter(|n| n.kind == TokenKind::Ident) {
                return (name.text.clone(), false);
            }
            break;
        }
    }
    (String::new(), true)
}

/// Index just past the `)` matching the `(` at `open`, capped at `end`.
fn block_paren_end(t: &[Token], open: usize, end: usize) -> usize {
    let mut depth = 0i32;
    let mut j = open;
    while j < end {
        if t[j].kind == TokenKind::Punct {
            match t[j].text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => {
                    depth -= 1;
                    if depth == 0 {
                        return j + 1;
                    }
                }
                _ => {}
            }
        }
        j += 1;
    }
    end
}

/// Workspace pass: builds the acquisition-order graph from every
/// function summary — direct edges plus edges through same-crate calls
/// made while holding a lock, with callee lock-sets propagated to a
/// fixpoint — and reports every cycle. Runs after per-file suppression,
/// so order cycles are not waivable: a deadlock shape must be fixed by
/// reordering, not annotated away.
pub fn check_order(fns: &[FnLocks]) -> Vec<Finding> {
    // Transitive lock set per (crate, fn name). Collisions on one name
    // within a crate union their sets (erring towards reporting).
    let mut lock_sets: BTreeMap<(String, String), BTreeSet<String>> = BTreeMap::new();
    let mut callees: BTreeMap<(String, String), BTreeSet<String>> = BTreeMap::new();
    for f in fns {
        let key = (f.crate_name.clone(), f.fn_name.clone());
        let set = lock_sets.entry(key.clone()).or_default();
        for (lock, _) in &f.acquires {
            set.insert(lock.clone());
        }
        callees
            .entry(key)
            .or_default()
            .extend(f.calls.iter().cloned());
    }
    loop {
        let mut changed = false;
        let keys: Vec<(String, String)> = lock_sets.keys().cloned().collect();
        for key in keys {
            let Some(calls) = callees.get(&key) else {
                continue;
            };
            let mut add = BTreeSet::new();
            for callee in calls {
                let callee_key = (key.0.clone(), callee.clone());
                if callee_key == key {
                    continue;
                }
                if let Some(s) = lock_sets.get(&callee_key) {
                    add.extend(s.iter().cloned());
                }
            }
            let set = lock_sets.entry(key).or_default();
            let before = set.len();
            set.extend(add);
            changed |= set.len() != before;
        }
        if !changed {
            break;
        }
    }

    // Edges: held → acquired, directly or through a held call. The
    // value records one representative site: (file, fn, line, callee).
    type Site = (String, String, u32, String);
    let mut edges: BTreeMap<(String, String), Site> = BTreeMap::new();
    for f in fns {
        for (from, to, line) in &f.edges {
            edges.entry((from.clone(), to.clone())).or_insert((
                f.file.clone(),
                f.fn_name.clone(),
                *line,
                String::new(),
            ));
        }
        for (callee, held, line) in &f.calls_while_held {
            let callee_key = (f.crate_name.clone(), callee.clone());
            let Some(target_locks) = lock_sets.get(&callee_key) else {
                continue;
            };
            for from in held {
                for to in target_locks {
                    if from == to {
                        continue;
                    }
                    edges.entry((from.clone(), to.clone())).or_insert((
                        f.file.clone(),
                        f.fn_name.clone(),
                        *line,
                        callee.clone(),
                    ));
                }
            }
        }
    }

    // Cycle detection: DFS with a three-colour marking over the sorted
    // node set, reporting each back edge's cycle once.
    let mut adj: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for (from, to) in edges.keys() {
        adj.entry(from).or_default().push(to);
        adj.entry(to).or_default();
    }
    let mut colour: BTreeMap<&str, u8> = adj.keys().map(|&n| (n, 0u8)).collect();
    let mut findings = Vec::new();
    let nodes: Vec<&str> = adj.keys().copied().collect();
    for start in nodes {
        if colour[start] != 0 {
            continue;
        }
        let mut stack: Vec<(&str, usize)> = vec![(start, 0)];
        let mut path: Vec<&str> = vec![start];
        colour.insert(start, 1);
        while let Some((node, next)) = stack.last_mut() {
            let node = *node;
            let succs = &adj[node];
            if *next < succs.len() {
                let s = succs[*next];
                *next += 1;
                match colour[s] {
                    0 => {
                        colour.insert(s, 1);
                        path.push(s);
                        stack.push((s, 0));
                    }
                    1 => {
                        // Back edge node→s: the cycle is path[pos..] + s.
                        let pos = path.iter().position(|&n| n == s).unwrap_or(0);
                        let mut cycle: Vec<&str> = path[pos..].to_vec();
                        cycle.push(s);
                        let (file, via_fn, line, via_call) = edges
                            .get(&(node.to_string(), s.to_string()))
                            .cloned()
                            .unwrap_or_default();
                        let through = if via_call.is_empty() {
                            String::new()
                        } else {
                            format!(" (through call to `{via_call}`)")
                        };
                        findings.push(Finding {
                            rule: RULE_LOCK,
                            file,
                            line,
                            matched: "lock-order cycle".to_string(),
                            message: format!(
                                "cyclic lock acquisition order {} in fn `{via_fn}`{} — a \
                                 schedule exists where two threads deadlock; acquire these \
                                 locks in one global order",
                                cycle.join(" -> "),
                                through,
                            ),
                            reason: String::new(),
                        });
                    }
                    _ => {}
                }
            } else {
                colour.insert(node, 2);
                stack.pop();
                path.pop();
            }
        }
    }
    findings
}
