//! A comment- and string-aware Rust token scanner.
//!
//! The lint rules need to see *code* tokens only: `unwrap` inside a
//! string literal or a doc comment is not a finding. A full parser
//! (`syn`) is unavailable under the vendored-deps policy, so this
//! module implements the small lexical subset the rules need:
//!
//! * line and (nested) block comments are stripped but *collected*, so
//!   `// lint:allow(...)` suppressions can be parsed from them;
//! * string, raw-string, byte-string, and char literals are single
//!   tokens (their contents never match a rule);
//! * lifetimes (`'a`) are distinguished from char literals (`'a'`);
//! * number literals distinguish integers from floats (the float-safety
//!   rule keys on float adjacency);
//! * common multi-char operators (`==`, `!=`, `::`, ...) are single
//!   punctuation tokens.
//!
//! The scanner is intentionally forgiving: on malformed input it
//! degrades to single-byte punctuation tokens rather than failing, so
//! the linter never blocks on a file it cannot fully understand.

/// The lexical class of a [`Token`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`unwrap`, `for`, `unsafe`, ...).
    Ident,
    /// Punctuation; multi-char operators are one token (`::`, `==`).
    Punct,
    /// Integer literal (`42`, `0xff`, `1_000u64`).
    Int,
    /// Float literal (`1.0`, `1e-3`, `2f64`).
    Float,
    /// String literal of any flavour (`"x"`, `r#"x"#`, `b"x"`).
    Str,
    /// Char or byte-char literal (`'x'`, `b'\n'`).
    Char,
    /// Lifetime (`'a`, `'static`, `'_`).
    Lifetime,
}

/// One code token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Token {
    /// Lexical class.
    pub kind: TokenKind,
    /// Source text (literals keep their quotes).
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
}

/// One comment, kept so suppressions can be parsed out of it.
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: u32,
    /// Full comment text including the `//` / `/*` introducer.
    pub text: String,
    /// True when no code token precedes the comment on its line — a
    /// standalone comment suppresses the *next* code line, a trailing
    /// comment suppresses its own.
    pub own_line: bool,
}

/// Scanner output: code tokens plus collected comments.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Code tokens in source order.
    pub tokens: Vec<Token>,
    /// Comments in source order.
    pub comments: Vec<Comment>,
}

/// Scans `src` into tokens and comments. Never fails.
pub fn lex(src: &str) -> Lexed {
    Lexer {
        src,
        b: src.as_bytes(),
        i: 0,
        line: 1,
        line_has_code: false,
        out: Lexed::default(),
    }
    .run()
}

struct Lexer<'a> {
    src: &'a str,
    b: &'a [u8],
    i: usize,
    line: u32,
    line_has_code: bool,
    out: Lexed,
}

impl<'a> Lexer<'a> {
    fn run(mut self) -> Lexed {
        while self.i < self.b.len() {
            let c = self.b[self.i];
            match c {
                b'\n' => {
                    self.line += 1;
                    self.line_has_code = false;
                    self.i += 1;
                }
                _ if c.is_ascii_whitespace() => self.i += 1,
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(),
                b'"' => self.string(),
                b'\'' => self.char_or_lifetime(),
                b'r' | b'b' if self.raw_or_byte_literal() => {}
                _ if c.is_ascii_digit() => self.number(),
                _ if is_ident_start(c) => self.ident(),
                _ => self.punct(),
            }
        }
        self.out
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.b.get(self.i + ahead).copied()
    }

    fn push(&mut self, kind: TokenKind, start: usize, end: usize, line: u32) {
        self.out.tokens.push(Token {
            kind,
            text: self.src[start..end].to_string(),
            line,
        });
        self.line_has_code = true;
    }

    fn line_comment(&mut self) {
        let start = self.i;
        while self.i < self.b.len() && self.b[self.i] != b'\n' {
            self.i += 1;
        }
        self.out.comments.push(Comment {
            line: self.line,
            text: self.src[start..self.i].to_string(),
            own_line: !self.line_has_code,
        });
    }

    fn block_comment(&mut self) {
        let start = self.i;
        let start_line = self.line;
        let own_line = !self.line_has_code;
        let mut depth = 1usize;
        self.i += 2;
        while self.i < self.b.len() && depth > 0 {
            if self.b[self.i] == b'\n' {
                self.line += 1;
                self.i += 1;
            } else if self.b[self.i] == b'/' && self.peek(1) == Some(b'*') {
                depth += 1;
                self.i += 2;
            } else if self.b[self.i] == b'*' && self.peek(1) == Some(b'/') {
                depth -= 1;
                self.i += 2;
            } else {
                self.i += 1;
            }
        }
        self.out.comments.push(Comment {
            line: start_line,
            text: self.src[start..self.i].to_string(),
            own_line,
        });
    }

    /// Consumes a plain (escaped) string body starting at the opening
    /// quote; `self.i` ends just past the closing quote.
    fn string_body(&mut self) {
        self.i += 1; // opening quote
        while self.i < self.b.len() {
            match self.b[self.i] {
                b'\\' => self.i += 2,
                b'"' => {
                    self.i += 1;
                    return;
                }
                b'\n' => {
                    self.line += 1;
                    self.i += 1;
                }
                _ => self.i += 1,
            }
        }
    }

    fn string(&mut self) {
        let start = self.i;
        let line = self.line;
        self.string_body();
        self.push(TokenKind::Str, start, self.i, line);
    }

    /// Handles `r"..."`, `r#"..."#`, `b"..."`, `b'..'`, `br#"..."#`.
    /// Returns false when the `r`/`b` starts a plain identifier.
    fn raw_or_byte_literal(&mut self) -> bool {
        let start = self.i;
        let line = self.line;
        let mut j = self.i + 1;
        let mut raw = self.b[self.i] == b'r';
        if self.b[self.i] == b'b' {
            match self.b.get(j) {
                Some(b'"') => {
                    self.i = j;
                    self.string_body();
                    self.push(TokenKind::Str, start, self.i, line);
                    return true;
                }
                Some(b'\'') => {
                    self.i = j;
                    self.char_literal_body();
                    self.push(TokenKind::Char, start, self.i, line);
                    return true;
                }
                Some(b'r') => {
                    raw = true;
                    j += 1;
                }
                _ => return false,
            }
        }
        if !raw {
            return false;
        }
        let mut hashes = 0usize;
        while self.b.get(j) == Some(&b'#') {
            hashes += 1;
            j += 1;
        }
        if self.b.get(j) != Some(&b'"') {
            return false; // `r` / `br` identifier or raw identifier prefix
        }
        // Raw string: scan for `"` followed by `hashes` hash marks.
        self.i = j + 1;
        while self.i < self.b.len() {
            if self.b[self.i] == b'\n' {
                self.line += 1;
                self.i += 1;
                continue;
            }
            if self.b[self.i] == b'"' {
                let close = &self.b[self.i + 1..];
                if close.len() >= hashes && close[..hashes].iter().all(|&h| h == b'#') {
                    self.i += 1 + hashes;
                    self.push(TokenKind::Str, start, self.i, line);
                    return true;
                }
            }
            self.i += 1;
        }
        self.push(TokenKind::Str, start, self.i, line);
        true
    }

    /// Consumes a char-literal body starting at the opening `'`;
    /// `self.i` ends just past the closing `'`.
    fn char_literal_body(&mut self) {
        self.i += 1; // opening quote
        if self.peek(0) == Some(b'\\') {
            self.i += 2; // the escape introducer and its head char
                         // `\u{...}` escapes
            if self.b.get(self.i.wrapping_sub(1)) == Some(&b'u') && self.peek(0) == Some(b'{') {
                while self.i < self.b.len() && self.b[self.i] != b'}' {
                    self.i += 1;
                }
                self.i += 1;
            }
        } else if self.i < self.b.len() {
            // one (possibly multi-byte) character
            self.i += utf8_len(self.b[self.i]);
        }
        if self.peek(0) == Some(b'\'') {
            self.i += 1;
        }
    }

    fn char_or_lifetime(&mut self) {
        let start = self.i;
        let line = self.line;
        // `'ident` is a lifetime unless a closing quote follows the
        // ident run (then it is a char literal like `'a'`).
        if let Some(c) = self.peek(1) {
            if is_ident_start(c) {
                let mut j = self.i + 2;
                while self.b.get(j).is_some_and(|&x| is_ident_continue(x)) {
                    j += 1;
                }
                if self.b.get(j) == Some(&b'\'') && j == self.i + 2 {
                    self.i = j + 1;
                    self.push(TokenKind::Char, start, self.i, line);
                } else {
                    self.i = j;
                    self.push(TokenKind::Lifetime, start, self.i, line);
                }
                return;
            }
        }
        self.char_literal_body();
        self.push(TokenKind::Char, start, self.i, line);
    }

    fn number(&mut self) {
        let start = self.i;
        let line = self.line;
        let mut float = false;
        if self.b[self.i] == b'0' && matches!(self.peek(1), Some(b'x' | b'X' | b'o' | b'b')) {
            self.i += 2;
            while self
                .b
                .get(self.i)
                .is_some_and(|&c| c.is_ascii_alphanumeric() || c == b'_')
            {
                self.i += 1;
            }
            self.push(TokenKind::Int, start, self.i, line);
            return;
        }
        while self
            .b
            .get(self.i)
            .is_some_and(|&c| c.is_ascii_digit() || c == b'_')
        {
            self.i += 1;
        }
        if self.peek(0) == Some(b'.') {
            match self.peek(1) {
                Some(c) if c.is_ascii_digit() => {
                    float = true;
                    self.i += 1;
                    while self
                        .b
                        .get(self.i)
                        .is_some_and(|&c| c.is_ascii_digit() || c == b'_')
                    {
                        self.i += 1;
                    }
                }
                // `1.` is a float; `1..x` is a range, `1.max(2)` a call.
                Some(c) if c == b'.' || is_ident_start(c) => {}
                _ => {
                    float = true;
                    self.i += 1;
                }
            }
        }
        if matches!(self.peek(0), Some(b'e' | b'E')) {
            let exp_digit = match self.peek(1) {
                Some(b'+' | b'-') => self.peek(2).is_some_and(|c| c.is_ascii_digit()),
                Some(c) => c.is_ascii_digit(),
                None => false,
            };
            if exp_digit {
                float = true;
                self.i += 1;
                if matches!(self.peek(0), Some(b'+' | b'-')) {
                    self.i += 1;
                }
                while self
                    .b
                    .get(self.i)
                    .is_some_and(|&c| c.is_ascii_digit() || c == b'_')
                {
                    self.i += 1;
                }
            }
        }
        // suffix
        let sfx_start = self.i;
        while self
            .b
            .get(self.i)
            .is_some_and(|&c| c.is_ascii_alphanumeric() || c == b'_')
        {
            self.i += 1;
        }
        if matches!(&self.src[sfx_start..self.i], "f32" | "f64") {
            float = true;
        }
        let kind = if float {
            TokenKind::Float
        } else {
            TokenKind::Int
        };
        self.push(kind, start, self.i, line);
    }

    fn ident(&mut self) {
        let start = self.i;
        let line = self.line;
        while self.b.get(self.i).is_some_and(|&c| is_ident_continue(c)) {
            self.i += 1;
        }
        self.push(TokenKind::Ident, start, self.i, line);
    }

    fn punct(&mut self) {
        let start = self.i;
        let line = self.line;
        let rest = &self.src[self.i..];
        let len = ["..=", "<<=", ">>="]
            .iter()
            .find(|op| rest.starts_with(**op))
            .map(|op| op.len())
            .or_else(|| {
                [
                    "==", "!=", "<=", ">=", "::", "->", "=>", "..", "&&", "||", "+=", "-=", "*=",
                    "/=", "%=", "^=", "&=", "|=", "<<", ">>",
                ]
                .iter()
                .find(|op| rest.starts_with(**op))
                .map(|op| op.len())
            })
            .unwrap_or_else(|| utf8_len(self.b[self.i]));
        self.i += len;
        self.push(TokenKind::Punct, start, self.i, line);
    }
}

fn is_ident_start(c: u8) -> bool {
    c.is_ascii_alphabetic() || c == b'_' || c >= 0x80
}

fn is_ident_continue(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_' || c >= 0x80
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

/// Marks every token that belongs to a `#[cfg(test)]` / `#[test]` item
/// (the attribute itself, any stacked attributes, and the item body).
/// Rules skip masked tokens: panics inside unit tests are fine.
///
/// An attribute counts as a test attribute when it mentions the `test`
/// identifier without `not` (`#[cfg(not(test))]` guards *non*-test
/// code).
pub fn test_mask(tokens: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let mut i = 0;
    while i < tokens.len() {
        if !(is_punct(tokens, i, "#") && is_punct(tokens, i + 1, "[")) {
            i += 1;
            continue;
        }
        let (attr_end, is_test) = scan_attr(tokens, i + 1);
        if !is_test {
            i = attr_end;
            continue;
        }
        let attr_start = i;
        let mut k = attr_end;
        // Stacked attributes between the test attribute and the item.
        while is_punct(tokens, k, "#") && is_punct(tokens, k + 1, "[") {
            k = scan_attr(tokens, k + 1).0;
        }
        // The item: ends at `;` at depth 0, or at the `}` closing the
        // outermost brace group.
        let mut depth = 0i32;
        while k < tokens.len() {
            let t = &tokens[k];
            if t.kind == TokenKind::Punct {
                match t.text.as_str() {
                    "{" | "(" | "[" => depth += 1,
                    ")" | "]" => depth -= 1,
                    "}" => {
                        depth -= 1;
                        if depth == 0 {
                            k += 1;
                            break;
                        }
                    }
                    ";" if depth == 0 => {
                        k += 1;
                        break;
                    }
                    _ => {}
                }
            }
            k += 1;
        }
        for slot in mask.iter_mut().take(k).skip(attr_start) {
            *slot = true;
        }
        i = k;
    }
    mask
}

fn is_punct(tokens: &[Token], i: usize, text: &str) -> bool {
    tokens
        .get(i)
        .is_some_and(|t| t.kind == TokenKind::Punct && t.text == text)
}

/// Scans an attribute starting at its `[` token; returns the index just
/// past the matching `]` and whether the attribute marks test code.
fn scan_attr(tokens: &[Token], open: usize) -> (usize, bool) {
    let mut depth = 0i32;
    let mut has_test = false;
    let mut has_not = false;
    let mut k = open;
    while k < tokens.len() {
        let t = &tokens[k];
        match t.kind {
            TokenKind::Punct if t.text == "[" => depth += 1,
            TokenKind::Punct if t.text == "]" => {
                depth -= 1;
                if depth == 0 {
                    return (k + 1, has_test && !has_not);
                }
            }
            TokenKind::Ident if t.text == "test" => has_test = true,
            TokenKind::Ident if t.text == "not" => has_not = true,
            _ => {}
        }
        k += 1;
    }
    (tokens.len(), has_test && !has_not)
}
