//! `--baseline` diff mode: gate on *new* findings only.
//!
//! CI commits a known `LINT.json`; a PR's lint run then fails only when
//! it introduces findings absent from that baseline, instead of
//! re-litigating absolute counts. Findings are keyed by
//! `(rule, file, matched)` as a multiset — line numbers shift with
//! every edit, so they are deliberately not part of the key, but adding
//! a *second* `unwrap` to a file that already had one still fails.

use crate::rules::Finding;
use rpdbscan_json::Value;
use std::collections::BTreeMap;

/// Multiset of baseline finding keys.
#[derive(Debug, Default)]
pub struct Baseline {
    counts: BTreeMap<(String, String, String), usize>,
}

impl Baseline {
    /// Parses a previously written `LINT.json` document.
    pub fn parse(src: &str) -> Result<Baseline, String> {
        let doc = Value::parse(src).map_err(|e| format!("baseline: {e}"))?;
        let findings = doc
            .as_object()
            .and_then(|o| o.get("findings"))
            .and_then(Value::as_array)
            .ok_or_else(|| "baseline: no `findings` array".to_string())?;
        let mut counts = BTreeMap::new();
        for f in findings {
            let obj = f
                .as_object()
                .ok_or_else(|| "baseline: non-object finding".to_string())?;
            let field = |k: &str| -> Result<String, String> {
                match obj.get(k) {
                    Some(Value::String(s)) => Ok(s.clone()),
                    _ => Err(format!("baseline: finding missing string `{k}`")),
                }
            };
            let key = (field("rule")?, field("file")?, field("matched")?);
            *counts.entry(key).or_insert(0) += 1;
        }
        Ok(Baseline { counts })
    }

    /// Findings not covered by the baseline: each baseline key absorbs
    /// as many current findings as it had occurrences; the rest are new.
    pub fn new_findings<'a>(&self, current: &'a [Finding]) -> Vec<&'a Finding> {
        let mut budget = self.counts.clone();
        current
            .iter()
            .filter(|f| {
                let key = (f.rule.to_string(), f.file.clone(), f.matched.clone());
                match budget.get_mut(&key) {
                    Some(n) if *n > 0 => {
                        *n -= 1;
                        false
                    }
                    _ => true,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: &'static str, file: &str, matched: &str, line: u32) -> Finding {
        Finding {
            rule,
            file: file.to_string(),
            line,
            matched: matched.to_string(),
            message: String::new(),
            reason: String::new(),
        }
    }

    #[test]
    fn absorbs_matching_findings_ignoring_lines() {
        let base = Baseline::parse(
            r#"{"findings":[{"rule":"panic-safety","file":"a.rs","line":3,"matched":"unwrap","message":"m"}]}"#,
        )
        .expect("parses");
        let moved = [finding("panic-safety", "a.rs", "unwrap", 99)];
        assert!(base.new_findings(&moved).is_empty());
    }

    #[test]
    fn second_occurrence_in_same_file_is_new() {
        let base = Baseline::parse(
            r#"{"findings":[{"rule":"panic-safety","file":"a.rs","line":3,"matched":"unwrap","message":"m"}]}"#,
        )
        .expect("parses");
        let two = [
            finding("panic-safety", "a.rs", "unwrap", 3),
            finding("panic-safety", "a.rs", "unwrap", 40),
        ];
        assert_eq!(base.new_findings(&two).len(), 1);
    }

    #[test]
    fn empty_baseline_reports_everything() {
        let base = Baseline::parse(r#"{"findings":[]}"#).expect("parses");
        let fs = [finding("float-eq", "b.rs", "==", 1)];
        assert_eq!(base.new_findings(&fs).len(), 1);
    }

    #[test]
    fn rejects_documents_without_findings() {
        assert!(Baseline::parse("{}").is_err());
        assert!(Baseline::parse("not json").is_err());
    }
}
