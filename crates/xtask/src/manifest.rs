//! `offline-deps`: manifest-level checks.
//!
//! The build environment has no network, so every dependency must be
//! path-based or workspace-inherited (which bottoms out in `vendor/`),
//! and vendored crates must not carry a `build.rs` that could try to
//! probe or download anything. This module parses the small subset of
//! TOML the workspace actually uses — line-oriented `[section]` /
//! `key = value` — which is all we need to tell a registry dependency
//! (`foo = "1.0"`) from a vendored one (`foo = { path = ".." }`).

use crate::rules::{Finding, RULE_OFFLINE};

/// Sections of a Cargo.toml that declare dependencies.
const DEP_SECTIONS: [&str; 4] = [
    "dependencies",
    "dev-dependencies",
    "build-dependencies",
    "workspace.dependencies",
];

/// Lints one `Cargo.toml` (workspace-relative path, file contents).
pub fn check_manifest(rel: &str, src: &str) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut in_dep_section = false;
    // Inline-table deps of the current multi-line entry, e.g.
    //   [dependencies.foo]
    //   version = "1.0"
    let mut table_dep: Option<(String, u32, bool)> = None;

    for (idx, raw) in src.lines().enumerate() {
        let line = strip_toml_comment(raw).trim().to_string();
        let lineno = (idx + 1) as u32;
        if line.is_empty() {
            continue;
        }
        if line.starts_with('[') && line.ends_with(']') {
            flush_table_dep(rel, &mut table_dep, &mut findings);
            let section = line.trim_matches(['[', ']']).trim().to_string();
            in_dep_section = DEP_SECTIONS.contains(&section.as_str());
            // `[dependencies.foo]` style multi-line dependency table.
            if let Some((sec, name)) = section.rsplit_once('.') {
                if DEP_SECTIONS.contains(&sec) {
                    table_dep = Some((name.to_string(), lineno, false));
                    in_dep_section = false;
                }
            }
            continue;
        }
        if let Some((_, _, ok)) = table_dep.as_mut() {
            if line.starts_with("path") {
                *ok = true;
            }
            continue;
        }
        if !in_dep_section {
            continue;
        }
        let Some((name, value)) = line.split_once('=') else {
            continue;
        };
        let name = name.trim();
        let value = value.trim();
        // `foo = { path = ".." }`, `foo = { workspace = true }`, and
        // the dotted form `foo.workspace = true` are all offline-safe.
        let ok = value.contains("path")
            || value.contains("workspace = true")
            || value.contains("workspace=true")
            || (name.ends_with(".workspace") && value.starts_with("true"));
        if !ok {
            findings.push(offline(
                rel,
                lineno,
                name,
                format!(
                    "dependency `{name}` is not path-based or workspace-inherited — \
                     registry deps cannot resolve offline"
                ),
            ));
        }
    }
    flush_table_dep(rel, &mut table_dep, &mut findings);
    findings
}

/// Extracts `[workspace] members` entries (possibly multi-line arrays)
/// from the root manifest, with the 1-based line each entry sits on.
/// Glob entries (`crates/*`) come back verbatim for the caller to
/// expand against the filesystem.
pub fn workspace_members(src: &str) -> Vec<(String, u32)> {
    let mut members = Vec::new();
    let mut in_workspace = false;
    let mut in_array = false;
    for (idx, raw) in src.lines().enumerate() {
        let line = strip_toml_comment(raw).trim().to_string();
        let lineno = (idx + 1) as u32;
        if line.starts_with('[') && line.ends_with(']') && !in_array {
            in_workspace = line.trim_matches(['[', ']']).trim() == "workspace";
            continue;
        }
        let rest = if in_array {
            line.as_str()
        } else if in_workspace {
            match line.split_once('=') {
                Some((key, value)) if key.trim() == "members" => {
                    in_array = true;
                    value.trim()
                }
                _ => continue,
            }
        } else {
            continue;
        };
        for piece in rest.split(',') {
            let piece = piece.trim().trim_matches(['[', ']']).trim();
            if piece.len() >= 2 && piece.starts_with('"') && piece.ends_with('"') {
                members.push((piece.trim_matches('"').to_string(), lineno));
            }
        }
        if rest.contains(']') {
            in_array = false;
        }
    }
    members
}

/// Flags `vendor/<crate>/build.rs` files.
pub fn check_vendor_build_script(rel: &str) -> Finding {
    offline(
        rel,
        1,
        "build.rs",
        "vendored crate carries a build script — vendor/ must build with no code execution at configure time".to_string(),
    )
}

fn flush_table_dep(
    rel: &str,
    table_dep: &mut Option<(String, u32, bool)>,
    findings: &mut Vec<Finding>,
) {
    if let Some((name, line, ok)) = table_dep.take() {
        if !ok {
            findings.push(offline(
                rel,
                line,
                &name,
                format!(
                    "dependency table `{name}` has no `path` key — registry deps cannot resolve offline"
                ),
            ));
        }
    }
}

fn offline(rel: &str, line: u32, matched: &str, message: String) -> Finding {
    Finding {
        rule: RULE_OFFLINE,
        file: rel.to_string(),
        line,
        matched: matched.to_string(),
        message,
        reason: String::new(),
    }
}

/// Strips a `#` comment, respecting double-quoted strings.
fn strip_toml_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}
