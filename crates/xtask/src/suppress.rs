//! `// lint:allow(<rule>): <reason>` suppression comments.
//!
//! A suppression silences findings of the named rule(s) on exactly one
//! line: its own line for a trailing comment, the next code line for a
//! standalone comment. The reason is mandatory — an allow without one
//! is itself a finding — and every suppression must fire: an unused
//! allow is reported so stale annotations cannot accumulate.

use crate::lexer::{Comment, Token};
use crate::rules::{Finding, RULE_NAMES, RULE_SUPPRESSION};

/// One parsed `lint:allow` comment.
#[derive(Debug, Clone)]
pub struct Suppression {
    /// Line of the comment itself.
    pub line: u32,
    /// Line whose findings this suppression silences.
    pub target_line: u32,
    /// Rule names inside the parentheses.
    pub rules: Vec<String>,
    /// The mandatory justification after the colon.
    pub reason: String,
    /// Whether any finding matched it.
    pub used: bool,
}

/// Extracts suppressions from a file's comments. Malformed allows
/// (missing parens, missing/empty reason, unknown rule) are returned as
/// findings of the `suppression` rule.
pub fn parse(
    file: &str,
    comments: &[Comment],
    tokens: &[Token],
) -> (Vec<Suppression>, Vec<Finding>) {
    let mut sups = Vec::new();
    let mut findings = Vec::new();
    for c in comments {
        // Only plain comments that *are* a directive count — doc
        // comments and prose that merely mentions lint:allow (this
        // module's own docs, say) are left alone.
        let body = if let Some(r) = c.text.strip_prefix("//") {
            if r.starts_with('/') || r.starts_with('!') {
                continue;
            }
            r
        } else if let Some(r) = c.text.strip_prefix("/*") {
            if r.starts_with('*') || r.starts_with('!') {
                continue;
            }
            r.trim_end_matches("*/")
        } else {
            c.text.as_str()
        };
        let Some(rest) = body.trim_start().strip_prefix("lint:allow") else {
            continue;
        };
        let bad = |msg: &str| Finding {
            rule: RULE_SUPPRESSION,
            file: file.to_string(),
            line: c.line,
            matched: "lint:allow".to_string(),
            message: msg.to_string(),
            reason: String::new(),
        };
        let Some(open) = rest.find('(') else {
            findings.push(bad("malformed lint:allow — expected `(<rule>)`"));
            continue;
        };
        if !rest[..open].trim().is_empty() {
            findings.push(bad("malformed lint:allow — expected `(<rule>)`"));
            continue;
        }
        let Some(close) = rest.find(')') else {
            findings.push(bad("malformed lint:allow — unclosed `(`"));
            continue;
        };
        let rules: Vec<String> = rest[open + 1..close]
            .split(',')
            .map(|r| r.trim().to_string())
            .filter(|r| !r.is_empty())
            .collect();
        if rules.is_empty() {
            findings.push(bad("lint:allow names no rule"));
            continue;
        }
        let mut ok = true;
        for r in &rules {
            if !RULE_NAMES.contains(&r.as_str()) {
                findings.push(bad(&format!("lint:allow names unknown rule `{r}`")));
                ok = false;
            }
        }
        if !ok {
            continue;
        }
        let after = rest[close + 1..].trim_start();
        let Some(reason) = after.strip_prefix(':') else {
            findings.push(bad(
                "lint:allow without a `: <reason>` — the reason is mandatory",
            ));
            continue;
        };
        let reason = reason.trim();
        if reason.is_empty() {
            findings.push(bad(
                "lint:allow with an empty reason — the reason is mandatory",
            ));
            continue;
        }
        let target_line = if c.own_line {
            tokens
                .iter()
                .map(|t| t.line)
                .find(|&l| l > c.line)
                .unwrap_or(c.line + 1)
        } else {
            c.line
        };
        sups.push(Suppression {
            line: c.line,
            target_line,
            rules,
            reason: reason.to_string(),
            used: false,
        });
    }
    (sups, findings)
}

/// Splits findings into (surviving, suppressed) and appends an
/// `unused lint:allow` finding for every suppression that never fired.
pub fn apply(
    file: &str,
    sups: &mut [Suppression],
    findings: Vec<Finding>,
) -> (Vec<Finding>, Vec<Finding>) {
    let mut surviving = Vec::new();
    let mut suppressed = Vec::new();
    for mut f in findings {
        let hit = sups
            .iter_mut()
            .find(|s| s.target_line == f.line && s.rules.iter().any(|r| r == f.rule));
        match hit {
            Some(s) => {
                s.used = true;
                f.reason = s.reason.clone();
                suppressed.push(f);
            }
            None => surviving.push(f),
        }
    }
    for s in sups.iter().filter(|s| !s.used) {
        surviving.push(Finding {
            rule: RULE_SUPPRESSION,
            file: file.to_string(),
            line: s.line,
            matched: "lint:allow".to_string(),
            message: format!(
                "unused lint:allow({}) — nothing to suppress on line {}",
                s.rules.join(", "),
                s.target_line
            ),
            reason: String::new(),
        });
    }
    (surviving, suppressed)
}
