//! Workspace static analysis for the RP-DBSCAN repo.
//!
//! `cargo run -p xtask -- lint` scans every first-party source file
//! with a comment- and string-aware token scanner (no external parser
//! crates — the workspace builds offline) and enforces the invariants
//! DESIGN.md documents under "Invariants & static analysis":
//! determinism (no clock reads, no unordered hash iteration on result
//! paths), panic-safety (library code returns errors), thread and lock
//! discipline, float-comparison safety, `forbid(unsafe_code)`, and
//! offline-only dependencies.
//!
//! Findings can be silenced one line at a time with
//! `// lint:allow(<rule>): <reason>`; the reason is mandatory and every
//! allow must fire, so annotations stay honest.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod atomics;
pub mod baseline;
pub mod lexer;
pub mod locks;
pub mod manifest;
pub mod report;
pub mod rules;
pub mod scope;
pub mod suppress;

use std::fs;
use std::path::{Path, PathBuf};

pub use report::LintReport;

/// Directory names never descended into.
const SKIP_DIRS: [&str; 4] = ["target", ".git", ".github", "fixtures"];

/// Runs the full lint over the workspace rooted at `root`.
pub fn run_lint(root: &Path) -> Result<LintReport, String> {
    let mut report = LintReport::default();
    let mut sources = Vec::new();
    let mut manifests = Vec::new();
    walk(root, root, &mut sources, &mut manifests)?;
    sources.sort();
    manifests.sort();

    let mut lock_fns = Vec::new();
    for rel in &sources {
        let Some(scope) = scope::classify(rel) else {
            continue;
        };
        let src = fs::read_to_string(root.join(rel)).map_err(|e| format!("read {rel}: {e}"))?;
        let outcome = rules::check_file(rel, &scope, &src);
        report.files_scanned += 1;
        report.findings.extend(outcome.findings);
        report.suppressed.extend(outcome.suppressed);
        lock_fns.extend(outcome.lock_fns);
    }

    // Workspace-wide passes. Both run after per-file suppression on
    // purpose: a lock-order cycle or an unclassified crate is a
    // structural defect, not a line to annotate away.
    report.findings.extend(locks::check_order(&lock_fns));
    report.findings.extend(scope_drift(root)?);

    for rel in &manifests {
        let src = fs::read_to_string(root.join(rel)).map_err(|e| format!("read {rel}: {e}"))?;
        report.manifests_checked += 1;
        report.findings.extend(manifest::check_manifest(rel, &src));
    }

    // Vendored build scripts are flagged even though vendor/ source is
    // otherwise out of scope: a build.rs runs at compile time.
    let vendor = root.join("vendor");
    if vendor.is_dir() {
        let mut entries: Vec<PathBuf> = fs::read_dir(&vendor)
            .map_err(|e| format!("read vendor/: {e}"))?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .collect();
        entries.sort();
        for dir in entries {
            if dir.join("build.rs").is_file() {
                let rel = format!(
                    "vendor/{}/build.rs",
                    dir.file_name().unwrap_or_default().to_string_lossy()
                );
                report
                    .findings
                    .push(manifest::check_vendor_build_script(&rel));
            }
        }
    }

    report.findings.sort_by(|a, b| {
        (&a.file, a.line, a.rule, &a.matched).cmp(&(&b.file, b.line, b.rule, &b.matched))
    });
    report.suppressed.sort_by(|a, b| {
        (&a.file, a.line, a.rule, &a.matched).cmp(&(&b.file, b.line, b.rule, &b.matched))
    });
    Ok(report)
}

/// `scope-drift`: expands the `members` globs in the root `Cargo.toml`
/// and fails when a member under `crates/` has no classification in
/// [`scope`]. PRs 5 and 7 each added a crate and had to remember the
/// silent `scope.rs` hand-edit; this makes forgetting a lint failure.
fn scope_drift(root: &Path) -> Result<Vec<rules::Finding>, String> {
    let manifest_path = root.join("Cargo.toml");
    let src =
        fs::read_to_string(&manifest_path).map_err(|e| format!("read root Cargo.toml: {e}"))?;
    let mut findings = Vec::new();
    for (member, line) in manifest::workspace_members(&src) {
        if member.starts_with("vendor") {
            continue; // vendored stand-ins are out of lint scope by design
        }
        let mut dirs = Vec::new();
        if let Some(parent) = member.strip_suffix("/*") {
            let dir = root.join(parent);
            let entries = fs::read_dir(&dir).map_err(|e| format!("read {parent}/: {e}"))?;
            for entry in entries {
                let entry = entry.map_err(|e| format!("walk {parent}/: {e}"))?;
                if entry.path().join("Cargo.toml").is_file() {
                    dirs.push(entry.file_name().to_string_lossy().into_owned());
                }
            }
        } else {
            dirs.push(
                member
                    .rsplit('/')
                    .next()
                    .unwrap_or(member.as_str())
                    .to_string(),
            );
        }
        dirs.sort();
        for dir in dirs {
            if !scope::is_known_crate(&dir) {
                findings.push(rules::Finding {
                    rule: rules::RULE_SCOPE_DRIFT,
                    file: "Cargo.toml".to_string(),
                    line,
                    matched: dir.clone(),
                    message: format!(
                        "workspace member `crates/{dir}` is not classified in \
                         xtask's scope.rs — add it to LIBRARY_CRATES or \
                         TOOL_CRATES so the lint regime covers it"
                    ),
                    reason: String::new(),
                });
            }
        }
    }
    Ok(findings)
}

/// Collects workspace-relative `.rs` and `Cargo.toml` paths.
fn walk(
    root: &Path,
    dir: &Path,
    sources: &mut Vec<String>,
    manifests: &mut Vec<String>,
) -> Result<(), String> {
    let entries = fs::read_dir(dir).map_err(|e| format!("read {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("walk {}: {e}", dir.display()))?;
        let path = entry.path();
        let name = entry.file_name().to_string_lossy().into_owned();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_str()) {
                continue;
            }
            walk(root, &path, sources, manifests)?;
            continue;
        }
        let Ok(rel) = path.strip_prefix(root) else {
            continue;
        };
        let rel = rel.to_string_lossy().replace('\\', "/");
        if name == "Cargo.toml" && !rel.starts_with("vendor/") {
            manifests.push(rel);
        } else if name.ends_with(".rs") && !rel.starts_with("vendor/") {
            sources.push(rel);
        }
    }
    Ok(())
}
