//! Maps a workspace-relative path to the rule scope that applies to it.
//!
//! The invariants the linter enforces are not uniform across the tree:
//! a library crate must never panic, but a figure-generating bench
//! binary printing wall-clock seconds is fine; the engine's timing
//! layer is the *one* place allowed to read the clock. This module
//! encodes that policy as data so every rule asks the same questions.

/// What kind of code a file holds; decides which rules apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// `src/` of a library crate (or the root `rp-dbscan` lib): full
    /// rule set — panic-safety, determinism, float-safety.
    LibrarySrc,
    /// A binary target (`src/bin/`): determinism rules apply (an
    /// annotated wall-clock print is acceptable), panic rules do not.
    Binary,
    /// `examples/`: like binaries.
    Example,
    /// The `rpdbscan-bench` crate (figure generators + criterion
    /// benches): determinism rules apply, panic rules do not.
    Bench,
    /// `tests/` and `benches/` directories: only the unsafe-code scan.
    Test,
    /// Analysis tooling (`xtask`, the `model` interleaving explorer):
    /// only unsafe/thread rules.
    Tool,
}

/// Per-file rule scope derived from its workspace-relative path.
#[derive(Debug, Clone)]
pub struct FileScope {
    /// What kind of target the file belongs to.
    pub kind: Kind,
    /// Owning crate (`rp-dbscan` for the workspace root package).
    pub crate_name: String,
    /// True for crate roots (`src/lib.rs`) that must carry
    /// `#![forbid(unsafe_code)]`.
    pub is_crate_root: bool,
    /// True for the engine's timing layer (`engine::{pool,trace,
    /// metrics}`), the only code allowed to read the clock.
    pub timing_layer: bool,
    /// True for `engine::pool`, the only code allowed to spawn threads.
    pub pool_file: bool,
}

/// Crates whose `src/` is held to the full library rule set.
pub const LIBRARY_CRATES: [&str; 14] = [
    "rp-dbscan",
    "geom",
    "grid",
    "engine",
    "core",
    "baselines",
    "data",
    "metrics",
    "plot",
    "json",
    "stream",
    "serve",
    "density",
    "store",
];

/// Crates whose result ordering is part of the paper's determinism
/// claim: `HashMap`/`HashSet` iteration there must feed an
/// order-insensitive sink or an explicit sort.
pub const ORDERED_CRATES: [&str; 6] = ["core", "stream", "grid", "serve", "density", "store"];

/// Analysis tooling exempt from the library rule set: the linter
/// itself, and the offline interleaving explorer (whose shim mutexes
/// and panicking test asserts are the whole point).
pub const TOOL_CRATES: [&str; 2] = ["model", "xtask"];

/// Is `dir` (a directory name under `crates/`) a crate this module
/// knows how to classify? The `scope-drift` rule fails the lint when a
/// workspace member is missing here, so adding a crate forces an
/// explicit decision about which rules govern it.
pub fn is_known_crate(dir: &str) -> bool {
    LIBRARY_CRATES.contains(&dir) || TOOL_CRATES.contains(&dir) || dir == "bench"
}

/// Classifies a workspace-relative path (forward slashes). `None`
/// means the file is out of scope (vendored code, rule fixtures).
pub fn classify(rel: &str) -> Option<FileScope> {
    if rel.starts_with("vendor/") || rel.split('/').any(|seg| seg == "fixtures") {
        return None;
    }
    let segs: Vec<&str> = rel.split('/').collect();
    let crate_name = if segs.first() == Some(&"crates") {
        (*segs.get(1)?).to_string()
    } else {
        "rp-dbscan".to_string()
    };
    let in_dir = |d: &str| segs.contains(&d);
    let kind = if in_dir("tests") || in_dir("benches") {
        Kind::Test
    } else if segs.first() == Some(&"examples") {
        Kind::Example
    } else if TOOL_CRATES.contains(&crate_name.as_str()) {
        Kind::Tool
    } else if crate_name == "bench" {
        Kind::Bench
    } else if rel.contains("src/bin/") {
        Kind::Binary
    } else if in_dir("src") {
        Kind::LibrarySrc
    } else {
        return None;
    };
    let is_crate_root = rel == "src/lib.rs"
        || (segs.first() == Some(&"crates")
            && segs.get(2) == Some(&"src")
            && rel.ends_with("/lib.rs")
            && segs.len() == 4);
    let timing_layer = matches!(
        rel,
        "crates/engine/src/pool.rs" | "crates/engine/src/trace.rs" | "crates/engine/src/metrics.rs"
    );
    let pool_file = rel == "crates/engine/src/pool.rs";
    Some(FileScope {
        kind,
        crate_name,
        is_crate_root,
        timing_layer,
        pool_file,
    })
}

impl FileScope {
    /// Is the full panic-safety rule in force here?
    pub fn panic_safety(&self) -> bool {
        self.kind == Kind::LibrarySrc && LIBRARY_CRATES.contains(&self.crate_name.as_str())
    }

    /// Is the clock off-limits here?
    pub fn determinism_time(&self) -> bool {
        !matches!(self.kind, Kind::Test | Kind::Tool) && !self.timing_layer
    }

    /// Is `thread::spawn` off-limits here?
    pub fn thread_discipline(&self) -> bool {
        self.kind != Kind::Test && !self.pool_file
    }

    /// Is bare float `==`/`!=` off-limits here?
    pub fn float_eq(&self) -> bool {
        self.kind == Kind::LibrarySrc
    }

    /// Is unordered hash iteration off-limits here?
    pub fn unordered_iter(&self) -> bool {
        self.kind == Kind::LibrarySrc && ORDERED_CRATES.contains(&self.crate_name.as_str())
    }

    /// Does the flow-aware lock pass track guards here?
    pub fn lock_discipline(&self) -> bool {
        self.kind == Kind::LibrarySrc && LIBRARY_CRATES.contains(&self.crate_name.as_str())
    }

    /// Must atomic `Ordering::` sites be justified here?
    pub fn atomics_discipline(&self) -> bool {
        self.kind == Kind::LibrarySrc && LIBRARY_CRATES.contains(&self.crate_name.as_str())
    }
}
