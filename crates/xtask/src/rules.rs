//! The lint rules and the per-file rule engine.
//!
//! Every rule walks the token stream produced by [`crate::lexer`] —
//! comments and literals are already out of the way — and emits
//! [`Finding`]s. Which rules run where is decided by
//! [`crate::scope::FileScope`]; see DESIGN.md §"Invariants & static
//! analysis" for each rule's rationale.

use crate::atomics;
use crate::lexer::{self, Token, TokenKind};
use crate::locks::{self, FnLocks};
use crate::scope::FileScope;
use crate::suppress;

/// Rule: library code must not panic (`unwrap`/`expect`/`panic!`/...).
pub const RULE_PANIC: &str = "panic-safety";
/// Rule: no clock reads outside the engine's timing layer.
pub const RULE_TIME: &str = "determinism-time";
/// Rule: no unordered hash iteration feeding result-ordering paths.
pub const RULE_UNORDERED: &str = "unordered-iter";
/// Rule: no thread creation outside `engine::pool`.
pub const RULE_THREAD: &str = "thread-discipline";
/// Rule: no bare `==`/`!=` against float literals.
pub const RULE_FLOAT: &str = "float-eq";
/// Rule: no `unsafe` code; crate roots carry `#![forbid(unsafe_code)]`.
pub const RULE_UNSAFE: &str = "forbid-unsafe";
/// Rule: every dependency is path-based/vendored; no vendored `build.rs`.
pub const RULE_OFFLINE: &str = "offline-deps";
/// Rule: `lint:allow` hygiene (mandatory reason, must fire).
pub const RULE_SUPPRESSION: &str = "suppression";
/// Rule: no per-call allocation inside functions marked `// lint:hot`.
pub const RULE_HOT_ALLOC: &str = "hot-path-alloc";
/// Rule: no cyclic lock order, no guard held across blocking calls.
pub const RULE_LOCK: &str = "lock-discipline";
/// Rule: every atomic `Ordering::` site justified; Relaxed gated on
/// publish paths; Acquire/Release pairing.
pub const RULE_ATOMICS: &str = "atomics-discipline";
/// Rule: every workspace member crate is classified in `scope.rs`.
pub const RULE_SCOPE_DRIFT: &str = "scope-drift";

/// All rule names, for suppression validation and `xtask rules`.
pub const RULE_NAMES: [&str; 12] = [
    RULE_PANIC,
    RULE_TIME,
    RULE_UNORDERED,
    RULE_THREAD,
    RULE_FLOAT,
    RULE_UNSAFE,
    RULE_OFFLINE,
    RULE_SUPPRESSION,
    RULE_HOT_ALLOC,
    RULE_LOCK,
    RULE_ATOMICS,
    RULE_SCOPE_DRIFT,
];

/// One-line description per rule, aligned with [`RULE_NAMES`].
pub const RULE_DESCRIPTIONS: [&str; 12] = [
    "library code must return errors, not panic: no unwrap/expect/panic!/unreachable!/todo!/unimplemented! outside tests",
    "no Instant::now/SystemTime::now outside engine::{pool,trace,metrics} — clocks feed nothing result-shaped",
    "no HashMap/HashSet iteration on result-ordering paths in core/stream/grid/serve without a sort or order-insensitive sink",
    "no thread::spawn/scope outside engine::pool — all parallelism goes through run_stage",
    "no bare ==/!= against float literals — compare with a tolerance or restructure",
    "no unsafe code anywhere; every crate root carries #![forbid(unsafe_code)]",
    "every Cargo.toml dependency is path-based or workspace-inherited; vendored crates carry no build.rs",
    "lint:allow(<rule>): <reason> — reason mandatory, unknown rules and unused allows are findings",
    "no Vec::new/vec![..]/.to_vec inside a function marked // lint:hot — hoist scratch buffers to the caller",
    "no Mutex/RwLock guard held across run_stage/channel sends/condvar waits; workspace lock acquisition order must be acyclic",
    "every atomic Ordering:: site carries // sync: <invariant>; Relaxed forbidden on publish/verify paths; Release stores pair with Acquire loads",
    "every workspace member in the root Cargo.toml is classified in scope.rs — new crates must be placed under the lint regime explicitly",
];

/// One lint finding (or, with `reason` set, one suppressed finding).
#[derive(Debug, Clone)]
pub struct Finding {
    /// Rule name.
    pub rule: &'static str,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// The token/pattern that matched (`unwrap`, `Instant::now`, ...).
    pub matched: String,
    /// Human-readable description.
    pub message: String,
    /// For suppressed findings: the justification from the allow.
    pub reason: String,
}

/// Result of linting one source file.
#[derive(Debug, Default)]
pub struct FileOutcome {
    /// Findings that survive suppression (cause a nonzero exit).
    pub findings: Vec<Finding>,
    /// Findings silenced by a `lint:allow`, with their reasons.
    pub suppressed: Vec<Finding>,
    /// Per-function lock summaries feeding the workspace-wide
    /// acquisition-order graph ([`locks::check_order`]).
    pub lock_fns: Vec<FnLocks>,
}

/// Lints one source file under the given scope.
pub fn check_file(rel: &str, scope: &FileScope, src: &str) -> FileOutcome {
    let lexed = lexer::lex(src);
    let mask = lexer::test_mask(&lexed.tokens);
    let (mut sups, mut findings) = suppress::parse(rel, &lexed.comments, &lexed.tokens);

    let t = &lexed.tokens;
    if scope.panic_safety() {
        panic_safety(rel, t, &mask, &mut findings);
    }
    if scope.determinism_time() {
        determinism_time(rel, t, &mask, &mut findings);
    }
    if scope.thread_discipline() {
        thread_discipline(rel, t, &mask, &mut findings);
    }
    if scope.float_eq() {
        float_eq(rel, t, &mask, &mut findings);
    }
    if scope.unordered_iter() {
        unordered_iter(rel, t, &mask, &mut findings);
    }
    unsafe_code(rel, t, scope, &mut findings);
    // Opt-in via the `// lint:hot` marker, so it runs in every scope.
    hot_path_alloc(rel, t, &mask, &lexed.comments, &mut findings);
    let mut lock_fns = Vec::new();
    if scope.lock_discipline() {
        lock_fns = locks::analyze_file(rel, &scope.crate_name, t, &mask, &mut findings);
    }
    if scope.atomics_discipline() {
        atomics::check(rel, t, &mask, &lexed.comments, &mut findings);
    }

    let (mut findings, suppressed) = suppress::apply(rel, &mut sups, findings);
    findings.sort_by_key(|f| (f.line, f.rule));
    FileOutcome {
        findings,
        suppressed,
        lock_fns,
    }
}

fn ident_at(t: &[Token], i: usize, text: &str) -> bool {
    t.get(i)
        .is_some_and(|tok| tok.kind == TokenKind::Ident && tok.text == text)
}

fn punct_at(t: &[Token], i: usize, text: &str) -> bool {
    t.get(i)
        .is_some_and(|tok| tok.kind == TokenKind::Punct && tok.text == text)
}

fn finding(rule: &'static str, file: &str, line: u32, matched: &str, message: String) -> Finding {
    Finding {
        rule,
        file: file.to_string(),
        line,
        matched: matched.to_string(),
        message,
        reason: String::new(),
    }
}

/// `panic-safety`: `.unwrap()`, `.expect(`, `panic!`, `unreachable!`,
/// `todo!`, `unimplemented!` in non-test library code.
fn panic_safety(file: &str, t: &[Token], mask: &[bool], out: &mut Vec<Finding>) {
    for (i, tok) in t.iter().enumerate() {
        if mask[i] || tok.kind != TokenKind::Ident {
            continue;
        }
        match tok.text.as_str() {
            "unwrap" if punct_at(t, i.wrapping_sub(1), ".") && punct_at(t, i + 1, "(") => {
                out.push(finding(
                    RULE_PANIC,
                    file,
                    tok.line,
                    "unwrap",
                    "`.unwrap()` in library code — propagate a typed error instead".into(),
                ));
            }
            "expect" if punct_at(t, i.wrapping_sub(1), ".") && punct_at(t, i + 1, "(") => {
                out.push(finding(
                    RULE_PANIC,
                    file,
                    tok.line,
                    "expect",
                    "`.expect(..)` in library code — propagate a typed error instead".into(),
                ));
            }
            name @ ("panic" | "unreachable" | "todo" | "unimplemented")
                if punct_at(t, i + 1, "!") =>
            {
                out.push(finding(
                    RULE_PANIC,
                    file,
                    tok.line,
                    &format!("{name}!"),
                    format!("`{name}!` in library code — return an error instead"),
                ));
            }
            _ => {}
        }
    }
}

/// `determinism-time`: `Instant::now` / `SystemTime::now` outside the
/// engine timing layer.
fn determinism_time(file: &str, t: &[Token], mask: &[bool], out: &mut Vec<Finding>) {
    for (i, tok) in t.iter().enumerate() {
        if mask[i] || tok.kind != TokenKind::Ident {
            continue;
        }
        if matches!(tok.text.as_str(), "Instant" | "SystemTime")
            && punct_at(t, i + 1, "::")
            && ident_at(t, i + 2, "now")
        {
            let matched = format!("{}::now", tok.text);
            out.push(finding(
                RULE_TIME,
                file,
                tok.line,
                &matched,
                format!("`{matched}` outside engine::{{pool,trace,metrics}} — use the engine's measured durations"),
            ));
        }
    }
}

/// `thread-discipline`: `thread::spawn` / `thread::scope` /
/// `thread::Builder` outside `engine::pool`.
fn thread_discipline(file: &str, t: &[Token], mask: &[bool], out: &mut Vec<Finding>) {
    for (i, tok) in t.iter().enumerate() {
        if mask[i] || tok.kind != TokenKind::Ident || tok.text != "thread" {
            continue;
        }
        if punct_at(t, i + 1, "::") {
            if let Some(next) = t.get(i + 2) {
                if matches!(next.text.as_str(), "spawn" | "scope" | "Builder") {
                    let matched = format!("thread::{}", next.text);
                    out.push(finding(
                        RULE_THREAD,
                        file,
                        tok.line,
                        &matched,
                        format!("`{matched}` outside engine::pool — run work as engine stages"),
                    ));
                }
            }
        }
    }
}

/// `float-eq`: `==`/`!=` with a float literal (or NAN/INFINITY
/// constant) on either side. A token-level approximation of "no bare
/// float equality": literal comparisons are where the bugs live.
fn float_eq(file: &str, t: &[Token], mask: &[bool], out: &mut Vec<Finding>) {
    let floaty = |tok: Option<&Token>| {
        tok.is_some_and(|tok| {
            tok.kind == TokenKind::Float
                || (tok.kind == TokenKind::Ident
                    && matches!(tok.text.as_str(), "NAN" | "INFINITY" | "NEG_INFINITY"))
        })
    };
    for (i, tok) in t.iter().enumerate() {
        if mask[i] || tok.kind != TokenKind::Punct {
            continue;
        }
        if (tok.text == "==" || tok.text == "!=")
            && (floaty(i.checked_sub(1).and_then(|j| t.get(j))) || floaty(t.get(i + 1)))
        {
            out.push(finding(
                RULE_FLOAT,
                file,
                tok.line,
                &tok.text,
                format!(
                    "bare `{}` against a float — compare with a tolerance or restructure",
                    tok.text
                ),
            ));
        }
    }
}

/// Iteration methods whose order reflects hash-table layout.
const ITER_METHODS: [&str; 9] = [
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "into_keys",
    "into_values",
    "drain",
];

/// Identifiers that make an iteration order-insensitive: sorts,
/// commutative reductions, and ordered collection targets.
const ORDER_SINKS: [&str; 22] = [
    "sort",
    "sort_unstable",
    "sort_by",
    "sort_by_key",
    "sort_unstable_by",
    "sort_unstable_by_key",
    "sum",
    "count",
    "fold",
    "all",
    "any",
    "max",
    "min",
    "max_by",
    "max_by_key",
    "min_by",
    "min_by_key",
    "len",
    "contains",
    "contains_key",
    "is_empty",
    "BTreeMap",
];

const HASH_TYPES: [&str; 4] = ["FxHashMap", "FxHashSet", "HashMap", "HashSet"];

/// `unordered-iter`: iteration over an identifier declared (in this
/// file) with a hash-map/set type, unless the statement feeds an
/// order-insensitive sink, collects into an ordered structure, or the
/// bound result is sorted within the next few statements.
fn unordered_iter(file: &str, t: &[Token], mask: &[bool], out: &mut Vec<Finding>) {
    // Pass 1: identifiers declared with a hash type — let bindings,
    // parameters, and struct fields (`name: FxHashMap<..>`, `name =
    // FxHashMap::default()`).
    let mut declared: Vec<&str> = Vec::new();
    for (i, tok) in t.iter().enumerate() {
        if tok.kind != TokenKind::Ident || !HASH_TYPES.contains(&tok.text.as_str()) {
            continue;
        }
        let mut j = i as isize - 1;
        while let Some(prev) = usize::try_from(j).ok().and_then(|j| t.get(j)) {
            match (prev.kind, prev.text.as_str()) {
                (TokenKind::Punct, "&") | (TokenKind::Ident, "mut") | (TokenKind::Lifetime, _) => {
                    j -= 1
                }
                (TokenKind::Punct, "::") => j -= 2,
                _ => break,
            }
        }
        let (Ok(colon), Ok(name)) = (usize::try_from(j), usize::try_from(j - 1)) else {
            continue;
        };
        let named = t.get(name).filter(|n| n.kind == TokenKind::Ident);
        if let Some(n) = named {
            if punct_at(t, colon, ":") || punct_at(t, colon, "=") {
                declared.push(&n.text);
            }
        }
    }
    declared.sort_unstable();
    declared.dedup();
    let is_declared = |name: &str| declared.binary_search(&name).is_ok();

    // Pass 2a: `.iter()`-style calls on a declared receiver.
    for (i, tok) in t.iter().enumerate() {
        if mask[i]
            || tok.kind != TokenKind::Ident
            || !ITER_METHODS.contains(&tok.text.as_str())
            || !punct_at(t, i.wrapping_sub(1), ".")
            || !punct_at(t, i + 1, "(")
        {
            continue;
        }
        let Some(recv) = i.checked_sub(2).and_then(|j| t.get(j)) else {
            continue;
        };
        if recv.kind != TokenKind::Ident || !is_declared(&recv.text) {
            continue;
        }
        if sink_waived(t, i) {
            continue;
        }
        let matched = format!("{}.{}", recv.text, tok.text);
        out.push(finding(
            RULE_UNORDERED,
            file,
            tok.line,
            &matched,
            format!(
                "hash iteration `{matched}()` on a result-ordering path — sort it, use a BTreeMap, or feed an order-insensitive sink"
            ),
        ));
    }

    // Pass 2b: `for x in [&]map {` over a declared identifier.
    for (i, tok) in t.iter().enumerate() {
        if mask[i] || tok.kind != TokenKind::Ident || tok.text != "for" {
            continue;
        }
        // Find `in` at depth 0, then the loop body `{` at depth 0.
        let mut depth = 0i32;
        let mut k = i + 1;
        let mut in_idx = None;
        while let Some(cur) = t.get(k) {
            match (cur.kind, cur.text.as_str()) {
                (TokenKind::Punct, "(" | "[") => depth += 1,
                (TokenKind::Punct, ")" | "]") => depth -= 1,
                (TokenKind::Punct, "{") if depth == 0 => break,
                (TokenKind::Ident, "in") if depth == 0 => {
                    in_idx = Some(k);
                }
                _ => {}
            }
            if k - i > 64 {
                break;
            }
            k += 1;
        }
        let Some(in_idx) = in_idx else { continue };
        let expr: Vec<&Token> = t[in_idx + 1..k]
            .iter()
            .filter(|e| !(e.kind == TokenKind::Punct && e.text == "&") && e.text != "mut")
            .collect();
        let name = match expr.as_slice() {
            [only] if only.kind == TokenKind::Ident => &only.text,
            [s, dot, field]
                if s.text == "self" && dot.text == "." && field.kind == TokenKind::Ident =>
            {
                &field.text
            }
            _ => continue,
        };
        if is_declared(name) {
            let matched = format!("for .. in {name}");
            out.push(finding(
                RULE_UNORDERED,
                file,
                t[in_idx].line,
                &matched,
                format!(
                    "`{matched}` iterates a hash structure in arbitrary order — sort the keys first or use a BTreeMap"
                ),
            ));
        }
    }
}

/// True when the statement containing the iteration at token `i` ends
/// in an order-insensitive sink, or binds a `let` whose result is
/// sorted within the next few statements.
fn sink_waived(t: &[Token], i: usize) -> bool {
    // Forward scan to the end of the statement.
    let mut depth = 0i32;
    let mut j = i;
    let mut stmt_end = t.len();
    while let Some(tok) = t.get(j) {
        if tok.kind == TokenKind::Punct {
            match tok.text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => {
                    depth -= 1;
                    if depth < 0 {
                        stmt_end = j;
                        break;
                    }
                }
                ";" if depth <= 0 => {
                    stmt_end = j;
                    break;
                }
                _ => {}
            }
        } else if tok.kind == TokenKind::Ident
            && (ORDER_SINKS.contains(&tok.text.as_str())
                || matches!(tok.text.as_str(), "BTreeSet" | "BinaryHeap"))
        {
            return true;
        }
        if j - i > 250 {
            break;
        }
        j += 1;
    }
    // Backward scan for a `let` binding in the same statement.
    let mut k = i;
    let mut bound: Option<&str> = None;
    while k > 0 && i - k < 48 {
        k -= 1;
        let tok = &t[k];
        if tok.kind == TokenKind::Punct && (tok.text == ";" || tok.text == "{" || tok.text == "}") {
            break;
        }
        if tok.kind == TokenKind::Ident && tok.text == "let" {
            let name_idx = if ident_at(t, k + 1, "mut") {
                k + 2
            } else {
                k + 1
            };
            bound = t
                .get(name_idx)
                .filter(|n| n.kind == TokenKind::Ident)
                .map(|n| n.text.as_str());
            break;
        }
    }
    let Some(name) = bound else { return false };
    // Look a few statements ahead for `name.sort*(` on the binding.
    let mut m = stmt_end;
    while let Some(tok) = t.get(m) {
        if m - stmt_end > 90 {
            break;
        }
        if tok.kind == TokenKind::Ident
            && tok.text == name
            && punct_at(t, m + 1, ".")
            && t.get(m + 2)
                .is_some_and(|s| s.kind == TokenKind::Ident && s.text.starts_with("sort"))
        {
            return true;
        }
        m += 1;
    }
    false
}

/// `hot-path-alloc`: per-call heap allocation (`Vec::new`, `vec![..]`,
/// `.to_vec()`) inside a function whose preceding own-line comment is
/// exactly `// lint:hot`. The marker is the opt-in: unmarked functions
/// allocate freely, marked ones are the per-point loops (region queries,
/// planned queries) where an allocation per call dominates the profile.
fn hot_path_alloc(
    file: &str,
    t: &[Token],
    mask: &[bool],
    comments: &[lexer::Comment],
    out: &mut Vec<Finding>,
) {
    for c in comments {
        if !c.own_line {
            continue;
        }
        let body = match c.text.strip_prefix("//") {
            Some(r) if !r.starts_with('/') && !r.starts_with('!') => r,
            _ => continue,
        };
        if body.trim() != "lint:hot" {
            continue;
        }
        // The marked item starts at the first token after the comment;
        // its body is the first brace-balanced block from there.
        let Some(start) = t.iter().position(|tok| tok.line > c.line) else {
            continue;
        };
        let Some(open) = (start..t.len()).find(|&j| punct_at(t, j, "{")) else {
            continue;
        };
        let mut depth = 0i32;
        let mut end = t.len();
        for (j, tok) in t.iter().enumerate().skip(open) {
            if tok.kind == TokenKind::Punct {
                match tok.text.as_str() {
                    "{" => depth += 1,
                    "}" => {
                        depth -= 1;
                        if depth == 0 {
                            end = j;
                            break;
                        }
                    }
                    _ => {}
                }
            }
        }
        for j in open..end {
            if mask[j] {
                continue;
            }
            let tok = &t[j];
            if tok.kind != TokenKind::Ident {
                continue;
            }
            let matched = match tok.text.as_str() {
                "Vec" if punct_at(t, j + 1, "::") && ident_at(t, j + 2, "new") => "Vec::new",
                "vec" if punct_at(t, j + 1, "!") => "vec!",
                "to_vec" if punct_at(t, j.wrapping_sub(1), ".") && punct_at(t, j + 1, "(") => {
                    ".to_vec()"
                }
                _ => continue,
            };
            out.push(finding(
                RULE_HOT_ALLOC,
                file,
                tok.line,
                matched,
                format!(
                    "`{matched}` allocates inside a `lint:hot` function — hoist the buffer to the caller or reuse scratch"
                ),
            ));
        }
    }
}

/// `forbid-unsafe`: any `unsafe` token (tests included), and a missing
/// `#![forbid(unsafe_code)]` on crate roots.
fn unsafe_code(file: &str, t: &[Token], scope: &FileScope, out: &mut Vec<Finding>) {
    for (i, tok) in t.iter().enumerate() {
        if tok.kind == TokenKind::Ident && tok.text == "unsafe" {
            // `forbid(unsafe_code)` mentions unsafe_code, not unsafe;
            // this match is the real keyword.
            let _ = i;
            out.push(finding(
                RULE_UNSAFE,
                file,
                tok.line,
                "unsafe",
                "`unsafe` is forbidden everywhere in this workspace".into(),
            ));
        }
    }
    if scope.is_crate_root {
        let has_forbid = t.windows(3).any(|w| {
            w[0].kind == TokenKind::Ident
                && w[0].text == "forbid"
                && w[1].text == "("
                && w[2].text == "unsafe_code"
        });
        if !has_forbid {
            out.push(finding(
                RULE_UNSAFE,
                file,
                1,
                "forbid(unsafe_code)",
                "crate root is missing `#![forbid(unsafe_code)]`".into(),
            ));
        }
    }
}
