//! `atomics-discipline`: every atomic memory-ordering choice is a
//! claim about the program's happens-before graph, and claims need
//! proofs. Three checks, all on the lexer's token stream:
//!
//! * **`// sync:` justification** — every `Ordering::{Relaxed,Acquire,
//!   Release,AcqRel,SeqCst}` site in library code must carry a
//!   `// sync: <invariant>` comment (trailing on the same line, or a
//!   standalone comment on the line above), stating *which* ordering
//!   invariant the choice relies on. `std::cmp::Ordering` variants
//!   (`Less`/`Equal`/`Greater`) never match.
//! * **Relaxed on publish/verify paths** — `Ordering::Relaxed` inside
//!   [`RELAXED_FORBIDDEN`] (the hot-swap publish path and the pool's
//!   result plumbing) is a finding unless waived with a
//!   `lint:allow(atomics-discipline): <reason>`; those files are where
//!   a misplaced Relaxed turns into a torn generation or a lost result.
//! * **Acquire/Release pairing** — per file and per atomic variable, a
//!   store with `Release` semantics paired with a `Relaxed` load (or an
//!   `Acquire` load paired with a `Relaxed` store) is flagged: the
//!   release fence synchronises nothing unless the matching load
//!   acquires, and vice versa.

use crate::lexer::{Comment, Token, TokenKind};
use crate::rules::{Finding, RULE_ATOMICS};
use std::collections::BTreeMap;

/// Files where `Ordering::Relaxed` needs an explicit waiver: the epoch
/// hot-swap publish path and the worker pool's cancellation/result
/// plumbing.
pub const RELAXED_FORBIDDEN: [&str; 2] = ["crates/engine/src/pool.rs", "crates/serve/src/swap.rs"];

/// Atomic ordering variants (distinguishes `sync::atomic::Ordering`
/// from `cmp::Ordering`).
const ATOMIC_ORDERINGS: [&str; 5] = ["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// Atomic methods that read (for pairing purposes).
const LOAD_METHODS: [&str; 1] = ["load"];

/// Atomic methods that write or read-modify-write.
const STORE_METHODS: [&str; 10] = [
    "store",
    "swap",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_nand",
    "fetch_update",
    "compare_exchange",
];

/// One atomic-ordering use site.
#[derive(Debug)]
struct Site {
    line: u32,
    ordering: &'static str,
    /// `load` / `store` / … resolved from the enclosing call; empty
    /// when the `Ordering::` token is not an argument of a recognised
    /// atomic method (e.g. passed through a helper).
    method: String,
    /// Receiver variable of the atomic call (`cancel` in
    /// `cancel.load(…)`); empty when unresolved.
    receiver: String,
}

/// Runs the atomics checks over one file.
pub fn check(file: &str, t: &[Token], mask: &[bool], comments: &[Comment], out: &mut Vec<Finding>) {
    let sites = collect_sites(t, mask);
    if sites.is_empty() {
        return;
    }
    let justified = sync_comment_lines(t, comments);
    let relaxed_forbidden = RELAXED_FORBIDDEN.contains(&file);

    for s in &sites {
        if !justified.contains(&s.line) {
            out.push(finding(
                file,
                s.line,
                &format!("Ordering::{}", s.ordering),
                format!(
                    "`Ordering::{}` without a `// sync: <invariant>` justification — state \
                     the happens-before edge this ordering provides or forgoes",
                    s.ordering
                ),
            ));
        }
        if relaxed_forbidden && s.ordering == "Relaxed" {
            out.push(finding(
                file,
                s.line,
                "Ordering::Relaxed",
                "`Ordering::Relaxed` on a publish/verify path — use Acquire/Release (or \
                 justify with lint:allow(atomics-discipline) why no data is published)"
                    .to_string(),
            ));
        }
    }

    // Pairing: group sites by receiver, compare store vs load orderings.
    let mut by_recv: BTreeMap<&str, Vec<&Site>> = BTreeMap::new();
    for s in &sites {
        if !s.receiver.is_empty() {
            by_recv.entry(&s.receiver).or_default().push(s);
        }
    }
    for (recv, sites) in by_recv {
        let releasing_store = sites.iter().any(|s| {
            STORE_METHODS.contains(&s.method.as_str())
                && matches!(s.ordering, "Release" | "AcqRel" | "SeqCst")
        });
        let acquiring_load = sites.iter().any(|s| {
            LOAD_METHODS.contains(&s.method.as_str())
                && matches!(s.ordering, "Acquire" | "AcqRel" | "SeqCst")
        });
        for s in &sites {
            if s.ordering != "Relaxed" {
                continue;
            }
            if releasing_store && LOAD_METHODS.contains(&s.method.as_str()) {
                out.push(finding(
                    file,
                    s.line,
                    &format!("{recv}.load(Relaxed)"),
                    format!(
                        "`{recv}` is stored with Release semantics elsewhere in this file but \
                         loaded Relaxed here — the release edge synchronises nothing without \
                         a matching Acquire"
                    ),
                ));
            }
            if acquiring_load && STORE_METHODS.contains(&s.method.as_str()) {
                out.push(finding(
                    file,
                    s.line,
                    &format!("{recv}.{}(Relaxed)", s.method),
                    format!(
                        "`{recv}` is loaded with Acquire semantics elsewhere in this file but \
                         written Relaxed here — the acquire edge has no release to pair with"
                    ),
                ));
            }
        }
    }
}

fn finding(file: &str, line: u32, matched: &str, message: String) -> Finding {
    Finding {
        rule: RULE_ATOMICS,
        file: file.to_string(),
        line,
        matched: matched.to_string(),
        message,
        reason: String::new(),
    }
}

/// Lines justified by a `// sync: <invariant>` comment: the comment's
/// own line (trailing) or the next code line (standalone) — the same
/// coverage contract as `lint:allow`.
fn sync_comment_lines(t: &[Token], comments: &[Comment]) -> Vec<u32> {
    let mut lines = Vec::new();
    for c in comments {
        let body = match c.text.strip_prefix("//") {
            Some(r) if !r.starts_with('/') && !r.starts_with('!') => r,
            _ => continue,
        };
        let Some(rest) = body.trim_start().strip_prefix("sync:") else {
            continue;
        };
        if rest.trim().is_empty() {
            continue; // an empty invariant justifies nothing
        }
        if c.own_line {
            if let Some(next) = t.iter().map(|tok| tok.line).find(|&l| l > c.line) {
                lines.push(next);
            }
        } else {
            lines.push(c.line);
        }
    }
    lines
}

/// Finds every atomic `Ordering::<variant>` token and resolves the
/// enclosing atomic method call and its receiver where possible.
fn collect_sites(t: &[Token], mask: &[bool]) -> Vec<Site> {
    let mut sites = Vec::new();
    for (i, tok) in t.iter().enumerate() {
        if mask[i] || tok.kind != TokenKind::Ident || tok.text != "Ordering" {
            continue;
        }
        if !(t
            .get(i + 1)
            .is_some_and(|p| p.kind == TokenKind::Punct && p.text == "::"))
        {
            continue;
        }
        let Some(variant) = t.get(i + 2).and_then(|v| {
            ATOMIC_ORDERINGS
                .iter()
                .find(|&&o| v.kind == TokenKind::Ident && v.text == o)
        }) else {
            continue;
        };
        // `cmp::Ordering::…` and `atomic::Ordering::…` both qualify the
        // token; the variant name already disambiguated them.
        let (method, receiver) = resolve_call(t, i);
        sites.push(Site {
            line: tok.line,
            ordering: variant,
            method,
            receiver,
        });
    }
    sites
}

/// Walks back from the `Ordering` token to the nearest enclosing
/// `recv.method(` whose method is a recognised atomic op, skipping at
/// most one level of argument punctuation. Returns empty strings when
/// no atomic call encloses the site.
fn resolve_call(t: &[Token], ordering_idx: usize) -> (String, String) {
    let mut depth = 0i32;
    let mut k = ordering_idx as isize - 1;
    // Walk back over path qualifiers (`atomic::Ordering`, …).
    while k >= 1
        && t[k as usize].kind == TokenKind::Punct
        && t[k as usize].text == "::"
        && t[(k - 1) as usize].kind == TokenKind::Ident
    {
        k -= 2;
    }
    while k >= 0 {
        let tok = &t[k as usize];
        if tok.kind == TokenKind::Punct {
            match tok.text.as_str() {
                ")" | "]" | "}" => depth += 1,
                "[" | "{" => depth -= 1,
                "(" => {
                    depth -= 1;
                    if depth < 0 {
                        // The call's opening paren: method ident precedes.
                        let m = (k - 1).max(0) as usize;
                        let method = t
                            .get(m)
                            .filter(|tok| tok.kind == TokenKind::Ident)
                            .map(|tok| tok.text.clone())
                            .unwrap_or_default();
                        if !LOAD_METHODS.contains(&method.as_str())
                            && !STORE_METHODS.contains(&method.as_str())
                        {
                            return (String::new(), String::new());
                        }
                        let receiver = if t
                            .get(m.wrapping_sub(1))
                            .is_some_and(|d| d.kind == TokenKind::Punct && d.text == ".")
                        {
                            receiver_name(t, m.wrapping_sub(1))
                        } else {
                            String::new()
                        };
                        return (method, receiver);
                    }
                }
                ";" if depth == 0 => break,
                _ => {}
            }
        }
        k -= 1;
    }
    (String::new(), String::new())
}

/// Nearest identifier before the `.` at `dot`, stepping over one index
/// expression (`slots[i]`).
fn receiver_name(t: &[Token], dot: usize) -> String {
    let mut k = dot as isize - 1;
    if k >= 0 && t[k as usize].kind == TokenKind::Punct && t[k as usize].text == "]" {
        let mut d = 0i32;
        while k >= 0 {
            match (t[k as usize].kind, t[k as usize].text.as_str()) {
                (TokenKind::Punct, "]") => d += 1,
                (TokenKind::Punct, "[") => {
                    d -= 1;
                    if d == 0 {
                        k -= 1;
                        break;
                    }
                }
                _ => {}
            }
            k -= 1;
        }
    }
    usize::try_from(k)
        .ok()
        .and_then(|k| t.get(k))
        .filter(|tok| tok.kind == TokenKind::Ident)
        .map(|tok| tok.text.clone())
        .unwrap_or_default()
}
