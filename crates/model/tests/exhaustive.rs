//! The acceptance gate: the explorer must exhaustively pass a
//! pinned volume of schedules over the IndexSlot and admission
//! protocols with zero invariant violations.
//!
//! Schedule counts are exact — the explorer is deterministic, so any
//! drift means the models or the explorer changed semantics, which is
//! worth a failing test either way.

use model::admission::AdmissionModel;
use model::delta::DeltaModel;
use model::explore;
use model::slot::SlotModel;

/// Combined floor the three protocols must clear (see ISSUE/DESIGN §8).
const SCHEDULE_FLOOR: u64 = 10_000;

#[test]
fn exhaustive_slot_and_admission_sweep() {
    // Three publishers offering out-of-order generations, two readers.
    let slot = explore(&SlotModel::locked(vec![2, 1, 3], 2))
        .expect("IndexSlot protocol must be race-free under every schedule");
    assert_eq!(slot.schedules, 1_752, "slot schedule count drifted");

    // Three submitters x two requests against a two-slot queue, two
    // drain cycles: exercises rejection, refill, and partial drains.
    let adm = explore(&AdmissionModel::locked(3, 2, 2, 2))
        .expect("admission protocol must keep the ticket ledger under every schedule");
    assert_eq!(adm.schedules, 89_460, "admission schedule count drifted");

    // One publisher chaining two copy-on-write delta publishes over two
    // shards, one reader dereferencing its pin outside the lock.
    let delta = explore(&DeltaModel::cow(vec![1, 2], 1, 2))
        .expect("cow delta publish must be race-free under every schedule");
    assert_eq!(delta.schedules, 21_603, "delta schedule count drifted");

    let total = slot.schedules + adm.schedules + delta.schedules;
    assert!(
        total >= SCHEDULE_FLOOR,
        "only {total} schedules explored; the acceptance floor is {SCHEDULE_FLOOR}"
    );
}

#[test]
fn hazard_variants_are_still_caught() {
    // Calibration: the same sweep sizes with the protection removed
    // must fail — locks stripped for slot and admission, copy-on-write
    // replaced by an in-place patch (locks intact!) for delta. If these
    // ever pass, the checker has gone vacuous.
    explore(&SlotModel::unlocked(vec![2, 1, 3], 2))
        .expect_err("unlocked slot must exhibit a torn or stale generation");
    explore(&AdmissionModel::unlocked_drain(3, 2, 2, 2))
        .expect_err("unlocked drain must lose a ticket");
    explore(&DeltaModel::in_place(vec![1, 2], 1, 2))
        .expect_err("in-place patching must tear a pinned generation");
}
