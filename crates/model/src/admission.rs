//! Shim model of the `serve::server` ticketed bounded-queue protocol.
//!
//! The real server admits requests under the queue mutex — capacity
//! check, ticket assignment, push — and drains by swapping the queued
//! items out under the same mutex, then serving the batch outside it.
//! The shim models exactly that choreography with submitter threads
//! and one drainer thread, each lock-protected region split into its
//! own yield points, and checks the ledger the serving layer promises:
//! **every ticket ever issued is served exactly once or still queued;
//! none is lost, none is double-served**, and tickets are served in
//! issue order.
//!
//! The hazard variant ([`AdmissionModel::unlocked_drain`]) drains the
//! way a lock-free "optimisation" would: snapshot the queue, then clear
//! it as a *separate* step with no lock held. A submitter landing
//! between the two loses its ticket — the regression test asserts the
//! explorer finds that schedule.

use crate::explore::{Protocol, Step};

/// One submitter thread: admits `remaining` requests, one lock-held
/// region per request.
#[derive(Debug, Clone)]
struct Submitter {
    remaining: u32,
    /// 0 acquire, 1 admit (capacity check + ticket + push), 2 release.
    pc: u8,
}

/// The drainer thread: runs `cycles` drain/serve rounds.
#[derive(Debug, Clone)]
struct Drainer {
    cycles: u32,
    /// 0 acquire, 1 snapshot, 2 clear+release, 3 serve.
    pc: u8,
    batch: Vec<u64>,
}

/// Explorable model of admission/drain: `submitters + 1` threads, the
/// drainer last.
#[derive(Debug)]
pub struct AdmissionModel {
    submitters: usize,
    requests_each: u32,
    capacity: usize,
    cycles: u32,
    locked_drain: bool,
}

/// Complete state of one schedule prefix.
#[derive(Debug, Clone)]
pub struct AdmissionState {
    lock_held: bool,
    queue: Vec<u64>,
    next_ticket: u64,
    rejected: u64,
    served: Vec<u64>,
    submitters: Vec<Submitter>,
    drainer: Drainer,
}

impl AdmissionModel {
    /// The shipped protocol: drain swaps the queue out under the mutex.
    pub fn locked(submitters: usize, requests_each: u32, capacity: usize, cycles: u32) -> Self {
        Self {
            submitters,
            requests_each,
            capacity,
            cycles,
            locked_drain: true,
        }
    }

    /// Hazard variant: snapshot and clear are separate unlocked steps,
    /// so an interleaved admit loses its ticket. For regression tests.
    pub fn unlocked_drain(
        submitters: usize,
        requests_each: u32,
        capacity: usize,
        cycles: u32,
    ) -> Self {
        Self {
            submitters,
            requests_each,
            capacity,
            cycles,
            locked_drain: false,
        }
    }

    /// The ledger: no ticket served twice, and every issued ticket is
    /// reachable somewhere — served, queued, or in the drain batch.
    /// (The unlocked hazard's snapshot/clear race leaves batch and
    /// queue transiently overlapping, which is fine; a ticket in *no*
    /// collection is gone for good.)
    fn ledger(&self, state: &AdmissionState) -> Result<(), String> {
        let mut served = state.served.clone();
        served.sort_unstable();
        if let Some(w) = served.windows(2).find(|w| w[0] == w[1]) {
            return Err(format!("ticket {} double-served", w[0]));
        }
        let mut all: Vec<u64> = served;
        all.extend(state.drainer.batch.iter().copied());
        all.extend(state.queue.iter().copied());
        all.sort_unstable();
        all.dedup();
        for want in 0..state.next_ticket {
            if all.binary_search(&want).is_err() {
                return Err(format!(
                    "ticket {want} lost (issued {} tickets)",
                    state.next_ticket
                ));
            }
        }
        Ok(())
    }
}

impl Protocol for AdmissionModel {
    type State = AdmissionState;

    fn init(&self) -> AdmissionState {
        AdmissionState {
            lock_held: false,
            queue: Vec::new(),
            next_ticket: 0,
            rejected: 0,
            served: Vec::new(),
            submitters: (0..self.submitters)
                .map(|_| Submitter {
                    remaining: self.requests_each,
                    pc: 0,
                })
                .collect(),
            drainer: Drainer {
                cycles: self.cycles,
                pc: 0,
                batch: Vec::new(),
            },
        }
    }

    fn threads(&self) -> usize {
        self.submitters + 1
    }

    fn step(&self, state: &mut AdmissionState, thread: usize) -> Step {
        if let Some(s) = state.submitters.get_mut(thread) {
            if s.remaining == 0 {
                return Step::Done;
            }
            return match s.pc {
                0 => {
                    if state.lock_held {
                        Step::Blocked
                    } else {
                        state.lock_held = true;
                        s.pc = 1;
                        Step::Ran
                    }
                }
                1 => {
                    if state.queue.len() >= self.capacity {
                        state.rejected += 1;
                    } else {
                        state.queue.push(state.next_ticket);
                        state.next_ticket += 1;
                    }
                    s.pc = 2;
                    Step::Ran
                }
                _ => {
                    state.lock_held = false;
                    s.remaining -= 1;
                    s.pc = 0;
                    Step::Ran
                }
            };
        }

        let locked = self.locked_drain;
        let d = &mut state.drainer;
        if d.cycles == 0 {
            return Step::Done;
        }
        match d.pc {
            0 => {
                if locked {
                    if state.lock_held {
                        return Step::Blocked;
                    }
                    state.lock_held = true;
                }
                d.pc = 1;
                Step::Ran
            }
            1 => {
                if locked {
                    // The shipped protocol: `queue.items.drain(..)` is
                    // one action under the mutex — snapshot and clear
                    // cannot be separated by an admit.
                    d.batch = std::mem::take(&mut state.queue);
                } else {
                    d.batch = state.queue.clone();
                }
                d.pc = 2;
                Step::Ran
            }
            2 => {
                if locked {
                    state.lock_held = false;
                } else {
                    // The hazard: queue entries admitted since the
                    // snapshot are wiped here without ever being served.
                    state.queue.clear();
                }
                d.pc = 3;
                Step::Ran
            }
            _ => {
                state.served.append(&mut d.batch);
                d.cycles -= 1;
                d.pc = 0;
                Step::Ran
            }
        }
    }

    fn invariant(&self, state: &AdmissionState) -> Result<(), String> {
        self.ledger(state)?;
        // Serve order must be issue order: the queue is FIFO and drain
        // takes whole prefixes, so `served` is strictly increasing.
        if state.served.windows(2).any(|w| w[0] >= w[1]) {
            return Err(format!("tickets served out of order: {:?}", state.served));
        }
        Ok(())
    }

    fn final_check(&self, state: &AdmissionState) -> Result<(), String> {
        let offered = (self.submitters as u64) * u64::from(self.requests_each);
        let admitted = state.next_ticket;
        if admitted + state.rejected != offered {
            return Err(format!(
                "{offered} requests offered but {admitted} admitted + {} rejected",
                state.rejected
            ));
        }
        // Whatever was admitted is served or still queued — never gone.
        if state.served.len() + state.queue.len() != admitted as usize {
            return Err(format!(
                "{admitted} admitted but {} served + {} queued at exit",
                state.served.len(),
                state.queue.len()
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::explore;

    #[test]
    fn locked_admission_keeps_the_ledger() {
        let stats =
            explore(&AdmissionModel::locked(2, 2, 3, 2)).expect("locked admission is race-free");
        assert_eq!(stats.schedules, 1_620);
    }

    #[test]
    fn unlocked_drain_loses_tickets() {
        let v = explore(&AdmissionModel::unlocked_drain(2, 2, 3, 2))
            .expect_err("the unlocked drain must lose a ticket");
        assert!(
            v.message.contains("lost") || v.message.contains("accounted"),
            "unexpected violation: {}",
            v.message
        );
    }
}
