//! The schedule explorer: exhaustive DFS over thread interleavings.
//!
//! A [`Protocol`] is a tiny state machine per thread; the explorer owns
//! the scheduler. From every reachable state it tries each runnable
//! thread in turn (cloning the state, depth-first), so every
//! interleaving of the threads' yield points is visited exactly once.
//! A *yield point* is one `step` call — protocols decide the atomicity
//! granularity by how much work one step performs; modelling each
//! shared-memory access as its own step is what lets the explorer
//! catch torn reads.
//!
//! The state space is a tree, not a DAG — identical states reached via
//! different prefixes are re-explored. That keeps the explorer trivially
//! correct (no hashing of states, no missed paths) at the cost of
//! redundant work, which the bounded protocols keep far below a second.

/// What a thread did when offered a step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Step {
    /// The thread advanced one yield point.
    Ran,
    /// The thread cannot advance now (e.g. waiting on a lock); the
    /// scheduler must run someone else. The state must be unchanged.
    Blocked,
    /// The thread has no steps left.
    Done,
}

/// A concurrency protocol under test.
pub trait Protocol {
    /// Full shared + per-thread state; cloned at every branch point.
    type State: Clone;

    /// The initial state.
    fn init(&self) -> Self::State;

    /// Number of model threads.
    fn threads(&self) -> usize;

    /// Advances `thread` by one yield point. Must leave `state`
    /// untouched when returning [`Step::Blocked`].
    fn step(&self, state: &mut Self::State, thread: usize) -> Step;

    /// Checked after every step; `Err` is a violation.
    fn invariant(&self, state: &Self::State) -> Result<(), String>;

    /// Checked at every leaf (all threads done).
    fn final_check(&self, state: &Self::State) -> Result<(), String>;
}

/// Successful exploration stats.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Explored {
    /// Number of distinct complete schedules (leaves) visited.
    pub schedules: u64,
    /// Total steps executed across all schedules.
    pub steps: u64,
}

/// A schedule that broke an invariant, deadlocked, or failed the final
/// check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// The thread ids stepped, in order, up to the failure.
    pub schedule: Vec<usize>,
    /// What went wrong.
    pub message: String,
}

/// Guard against protocols that never terminate: no bounded protocol
/// here needs schedules longer than this.
const MAX_SCHEDULE_LEN: usize = 256;

/// Explores every schedule of `protocol`. Returns stats when all
/// schedules uphold every invariant, or the first violating schedule.
pub fn explore<P: Protocol>(protocol: &P) -> Result<Explored, Violation> {
    let mut stats = Explored {
        schedules: 0,
        steps: 0,
    };
    let mut schedule = Vec::new();
    dfs(protocol, protocol.init(), &mut schedule, &mut stats)?;
    Ok(stats)
}

fn dfs<P: Protocol>(
    protocol: &P,
    state: P::State,
    schedule: &mut Vec<usize>,
    stats: &mut Explored,
) -> Result<(), Violation> {
    if schedule.len() > MAX_SCHEDULE_LEN {
        return Err(Violation {
            schedule: schedule.clone(),
            message: format!("schedule exceeded {MAX_SCHEDULE_LEN} steps without terminating"),
        });
    }
    let mut any_ran = false;
    let mut any_blocked = false;
    for thread in 0..protocol.threads() {
        let mut next = state.clone();
        match protocol.step(&mut next, thread) {
            Step::Done => continue,
            Step::Blocked => {
                any_blocked = true;
                continue;
            }
            Step::Ran => {
                any_ran = true;
                stats.steps += 1;
                schedule.push(thread);
                if let Err(message) = protocol.invariant(&next) {
                    return Err(Violation {
                        schedule: schedule.clone(),
                        message,
                    });
                }
                dfs(protocol, next, schedule, stats)?;
                schedule.pop();
            }
        }
    }
    if !any_ran {
        if any_blocked {
            // Every live thread is blocked: a deadlock is a violation
            // in its own right, whatever the protocol's invariants say.
            return Err(Violation {
                schedule: schedule.clone(),
                message: "deadlock: all remaining threads blocked".to_string(),
            });
        }
        stats.schedules += 1;
        if let Err(message) = protocol.final_check(&state) {
            return Err(Violation {
                schedule: schedule.clone(),
                message,
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two threads, each taking `per_thread` independent steps: the
    /// schedule count must be the binomial C(2n, n).
    struct Counter {
        per_thread: u8,
    }

    impl Protocol for Counter {
        type State = [u8; 2];
        fn init(&self) -> [u8; 2] {
            [0, 0]
        }
        fn threads(&self) -> usize {
            2
        }
        fn step(&self, state: &mut [u8; 2], thread: usize) -> Step {
            if state[thread] == self.per_thread {
                Step::Done
            } else {
                state[thread] += 1;
                Step::Ran
            }
        }
        fn invariant(&self, _: &[u8; 2]) -> Result<(), String> {
            Ok(())
        }
        fn final_check(&self, state: &[u8; 2]) -> Result<(), String> {
            if *state == [self.per_thread; 2] {
                Ok(())
            } else {
                Err("did not finish".to_string())
            }
        }
    }

    #[test]
    fn counts_interleavings_exactly() {
        // C(2,1)=2, C(4,2)=6, C(8,4)=70, C(12,6)=924.
        for (n, want) in [(1, 2), (2, 6), (4, 70), (6, 924)] {
            let got = explore(&Counter { per_thread: n }).expect("no violation");
            assert_eq!(got.schedules, want, "C(2*{n},{n})");
        }
    }

    /// A protocol whose two threads block on each other forever must be
    /// reported as a deadlock, not looped on.
    struct Stuck;

    impl Protocol for Stuck {
        type State = ();
        fn init(&self) {}
        fn threads(&self) -> usize {
            2
        }
        fn step(&self, _: &mut (), _: usize) -> Step {
            Step::Blocked
        }
        fn invariant(&self, _: &()) -> Result<(), String> {
            Ok(())
        }
        fn final_check(&self, _: &()) -> Result<(), String> {
            Ok(())
        }
    }

    #[test]
    fn reports_deadlock() {
        let v = explore(&Stuck).expect_err("deadlock must be found");
        assert!(v.message.contains("deadlock"), "{}", v.message);
    }
}
