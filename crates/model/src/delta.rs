//! Shim model of the delta-publish (copy-on-write shard patch)
//! protocol.
//!
//! `serve::ServingIndex::patch_from_stream` builds the next generation
//! *beside* the published one: untouched shards are `Arc`-shared, dirty
//! shards are rebuilt into fresh allocations, and only then does the
//! publisher flip the slot. Readers pin a generation with an `Arc` and
//! keep dereferencing it **after** releasing the slot's read lock — so
//! the protocol's safety cannot come from the lock alone. It comes from
//! copy-on-write: a published object is never mutated again.
//!
//! The shim keeps exactly the pieces that argument rests on. An index
//! object is a head counter, a tail counter, and per-shard build
//! stamps (the model analogue of `Shard::built`); `verify_shards`
//! passes when head equals tail and every shard stamp is at most the
//! head. Two wirings:
//!
//! * [`DeltaModel::cow`] — the shipped protocol. The writer chains
//!   patched publishes: read-lock to pin the base, **clone** it, stamp
//!   head / one shard / tail on the private clone, then write-lock and
//!   flip the published slot if newer. Every schedule must satisfy: a
//!   reader never observes `head != tail` or a shard stamp above the
//!   head, and the final published generation is the newest offered.
//! * [`DeltaModel::in_place`] — the hazard variant: identical steps,
//!   identical locking, but the patch mutates the *published* object
//!   instead of a clone. Lock discipline is flawless — the tear happens
//!   because the reader's pin outlives its read lock, which is exactly
//!   why the real patch path must never write through the base `Arc`.
//!   The regression tests assert the explorer *finds* the tear.

use crate::explore::{Protocol, Step};
use crate::slot::RwLockState;

/// The model analogue of one `Arc<ServingIndex>` generation: head and
/// tail generation counters plus per-shard build stamps.
#[derive(Debug, Clone)]
struct IndexObj {
    head: u64,
    tail: u64,
    shards: Vec<u64>,
}

/// The single chained publisher.
#[derive(Debug, Clone)]
struct Writer {
    /// Next position in the generation chain.
    chain_idx: usize,
    /// Program counter within the current publish; see `step`.
    pc: u8,
    /// Object index pinned as the patch base (read under the lock).
    base: usize,
    /// Object index of the private clone being patched (cow only).
    obj: usize,
}

/// One reader: pins the published object, releases the lock, then
/// verifies head / shard stamps / tail against the pin.
#[derive(Debug, Clone)]
struct Reader {
    /// 0 pin under read lock, 1 release, 2 read head, 3 read shard
    /// stamps, 4 read tail + record, 5 done.
    pc: u8,
    pin: usize,
    head: u64,
    shard_max: u64,
    /// The `(head, max shard stamp, tail)` triple this reader observed.
    recorded: Option<(u64, u64, u64)>,
}

/// Explorable model of the delta publish: one writer chaining `gens`
/// patched publishes (thread 0) plus `readers` verifying readers.
#[derive(Debug)]
pub struct DeltaModel {
    gens: Vec<u64>,
    readers: usize,
    shards: usize,
    cow: bool,
}

/// Complete state of one schedule prefix.
#[derive(Debug, Clone)]
pub struct DeltaState {
    lock: RwLockState,
    /// All generations ever materialised; grows under cow, mutated in
    /// place under the hazard variant. `published` indexes into it.
    objects: Vec<IndexObj>,
    published: usize,
    writer: Writer,
    readers: Vec<Reader>,
}

impl DeltaModel {
    /// The shipped protocol: each publish patches a private clone of
    /// the pinned base and only then flips the slot.
    pub fn cow(gens: Vec<u64>, readers: usize, shards: usize) -> Self {
        Self {
            gens,
            readers,
            shards: shards.max(1),
            cow: true,
        }
    }

    /// The hazard variant: the same steps and the same locking, but the
    /// patch writes through to the published object. Exists so the
    /// regression tests can prove the explorer catches the tear.
    pub fn in_place(gens: Vec<u64>, readers: usize, shards: usize) -> Self {
        Self {
            gens,
            readers,
            shards: shards.max(1),
            cow: false,
        }
    }

    /// The generation every schedule must end on: the largest offered.
    fn expected_final(&self) -> u64 {
        self.gens.iter().copied().max().unwrap_or(0)
    }

    fn step_writer(&self, state: &mut DeltaState) -> Step {
        let Some(&gen) = self.gens.get(state.writer.chain_idx) else {
            return Step::Done;
        };
        let shard = state.writer.chain_idx % self.shards;
        match (state.writer.pc, self.cow) {
            // Pin the base generation under the read lock.
            (0, _) => {
                if state.lock.try_read() {
                    state.writer.base = state.published;
                    state.writer.pc = 1;
                    Step::Ran
                } else {
                    Step::Blocked
                }
            }
            (1, _) => {
                state.lock.done_reading();
                state.writer.pc = 2;
                Step::Ran
            }
            // cow: materialise a private clone of the base; every patch
            // write below lands on the clone, which no reader can hold.
            (2, true) => {
                let clone = state.objects[state.writer.base].clone();
                state.objects.push(clone);
                state.writer.obj = state.objects.len() - 1;
                state.writer.pc = 3;
                Step::Ran
            }
            // hazard: "patch" the published object itself, under a
            // flawlessly held write lock — the lock cannot save the
            // reader whose pin outlived its read lock.
            (2, false) => {
                if state.lock.try_write() {
                    state.writer.obj = state.writer.base;
                    state.writer.pc = 3;
                    Step::Ran
                } else {
                    Step::Blocked
                }
            }
            (3, _) => {
                state.objects[state.writer.obj].head = gen;
                state.writer.pc = 4;
                Step::Ran
            }
            (4, _) => {
                state.objects[state.writer.obj].shards[shard] = gen;
                state.writer.pc = 5;
                Step::Ran
            }
            (5, _) => {
                state.objects[state.writer.obj].tail = gen;
                state.writer.pc = 6;
                Step::Ran
            }
            (6, true) => {
                if state.lock.try_write() {
                    state.writer.pc = 7;
                    Step::Ran
                } else {
                    Step::Blocked
                }
            }
            // Publish-if-newer flip, then release; the hazard variant
            // already holds the write lock from step 2.
            (6, false) | (7, true) => {
                if state.objects[state.published].head < gen {
                    state.published = state.writer.obj;
                }
                state.writer.pc = if self.cow { 8 } else { 7 };
                Step::Ran
            }
            (_, _) => {
                state.lock.done_writing();
                state.writer.chain_idx += 1;
                state.writer.pc = 0;
                Step::Ran
            }
        }
    }
}

impl Protocol for DeltaModel {
    type State = DeltaState;

    fn init(&self) -> DeltaState {
        DeltaState {
            lock: RwLockState::default(),
            objects: vec![IndexObj {
                head: 0,
                tail: 0,
                shards: vec![0; self.shards],
            }],
            published: 0,
            writer: Writer {
                chain_idx: 0,
                pc: 0,
                base: 0,
                obj: 0,
            },
            readers: (0..self.readers)
                .map(|_| Reader {
                    pc: 0,
                    pin: 0,
                    head: 0,
                    shard_max: 0,
                    recorded: None,
                })
                .collect(),
        }
    }

    fn threads(&self) -> usize {
        1 + self.readers
    }

    fn step(&self, state: &mut DeltaState, thread: usize) -> Step {
        if thread == 0 {
            return self.step_writer(state);
        }
        let Some(r) = state.readers.get_mut(thread - 1) else {
            return Step::Done;
        };
        match r.pc {
            0 => {
                if state.lock.try_read() {
                    r.pin = state.published;
                    r.pc = 1;
                    Step::Ran
                } else {
                    Step::Blocked
                }
            }
            1 => {
                state.lock.done_reading();
                r.pc = 2;
                Step::Ran
            }
            // Everything below dereferences the pin *outside* the lock,
            // exactly like a reader holding an `Arc<ServingIndex>`.
            2 => {
                r.head = state.objects[r.pin].head;
                r.pc = 3;
                Step::Ran
            }
            3 => {
                r.shard_max = state.objects[r.pin]
                    .shards
                    .iter()
                    .copied()
                    .max()
                    .unwrap_or(0);
                r.pc = 4;
                Step::Ran
            }
            4 => {
                let tail = state.objects[r.pin].tail;
                r.recorded = Some((r.head, r.shard_max, tail));
                r.pc = 5;
                Step::Ran
            }
            _ => Step::Done,
        }
    }

    fn invariant(&self, state: &DeltaState) -> Result<(), String> {
        for (i, r) in state.readers.iter().enumerate() {
            if let Some((head, shard_max, tail)) = r.recorded {
                if head != tail {
                    return Err(format!(
                        "torn generation: reader {i} observed head={head} tail={tail}"
                    ));
                }
                if shard_max > head {
                    return Err(format!(
                        "torn shard patch: reader {i} observed shard stamp {shard_max} \
                         above head {head}"
                    ));
                }
                let valid = head == 0 || self.gens.contains(&head);
                if !valid {
                    return Err(format!(
                        "reader {i} observed generation {head}, which was never published"
                    ));
                }
            }
        }
        Ok(())
    }

    fn final_check(&self, state: &DeltaState) -> Result<(), String> {
        let expected = self.expected_final();
        let obj = &state.objects[state.published];
        if obj.head != expected || obj.tail != expected {
            return Err(format!(
                "stale publish: final generation head={} tail={} but {} was offered",
                obj.head, obj.tail, expected
            ));
        }
        if let Some(&s) = obj.shards.iter().find(|&&s| s > obj.head) {
            return Err(format!(
                "final published object has shard stamp {s} above head {}",
                obj.head
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::explore;

    #[test]
    fn cow_patch_chain_has_no_torn_schedules() {
        let stats = explore(&DeltaModel::cow(vec![1], 1, 2)).expect("cow publish is race-free");
        assert_eq!(stats.schedules, 1_877);
    }

    #[test]
    fn in_place_patch_tears() {
        let v = explore(&DeltaModel::in_place(vec![1], 1, 2))
            .expect_err("the in-place variant must exhibit a violation");
        assert!(
            v.message.contains("torn"),
            "unexpected violation: {}",
            v.message
        );
    }
}
