//! Shim model of the `serve::swap::IndexSlot` hot-swap protocol.
//!
//! The real slot holds `RwLock<Arc<ServingIndex>>`; an index carries a
//! head generation counter (written first at construction) and a tail
//! counter (written last), and `verify_generation` returns the
//! generation only when the two agree. The shim keeps exactly the
//! pieces the protocol argument rests on: the two counters, the
//! reader/writer lock, and the publish-if-newer guard. Each
//! shared-memory access is its own yield point, so the explorer can
//! interleave a reader *between* the head and tail writes — precisely
//! the torn read the lock must exclude.
//!
//! Two wirings:
//! * [`SlotModel::locked`] — the shipped protocol. Every schedule must
//!   satisfy: readers only observe `head == tail` (no torn
//!   generation), and the final published generation is the maximum
//!   ever offered (no stale publish).
//! * [`SlotModel::unlocked`] — the hazard variant with the same steps
//!   minus the lock. The regression tests assert the explorer *finds*
//!   the torn generation and the stale publish; if it ever stops
//!   finding them, the checker has gone vacuous.

use crate::explore::{Protocol, Step};

/// Reader/writer lock state: the model analogue of `RwLock`.
#[derive(Debug, Clone, Default)]
pub struct RwLockState {
    readers: u32,
    writer: bool,
}

impl RwLockState {
    /// Acquires a shared read lock if no writer holds the lock.
    pub fn try_read(&mut self) -> bool {
        if self.writer {
            false
        } else {
            self.readers += 1;
            true
        }
    }

    /// Releases a shared read lock.
    pub fn done_reading(&mut self) {
        self.readers = self.readers.saturating_sub(1);
    }

    /// Acquires the exclusive write lock if nobody holds the lock.
    pub fn try_write(&mut self) -> bool {
        if self.writer || self.readers > 0 {
            false
        } else {
            self.writer = true;
            true
        }
    }

    /// Releases the exclusive write lock.
    pub fn done_writing(&mut self) {
        self.writer = false;
    }
}

/// One publisher: offers generation `gen` via publish-if-newer.
#[derive(Debug, Clone)]
struct Writer {
    gen: u64,
    /// Program counter: 0 acquire, 1 observe, 2 write head, 3 write
    /// tail, 4 release, 5 done. Unlocked variants skip 0 and 4.
    pc: u8,
    /// Generation observed under step 1 (the if-newer guard input).
    observed: u64,
}

/// One reader: loads the slot and verifies the generation.
#[derive(Debug, Clone)]
struct Reader {
    /// 0 acquire, 1 read head, 2 read tail, 3 release+record, 4 done.
    pc: u8,
    head: u64,
    tail: u64,
    /// The `(head, tail)` pair this reader ended up observing.
    recorded: Option<(u64, u64)>,
}

/// Explorable model of the hot-swap slot: `writers.len() + readers`
/// model threads (writers first).
#[derive(Debug)]
pub struct SlotModel {
    writer_gens: Vec<u64>,
    readers: usize,
    locked: bool,
}

/// Complete state of one schedule prefix.
#[derive(Debug, Clone)]
pub struct SlotState {
    lock: RwLockState,
    head: u64,
    tail: u64,
    writers: Vec<Writer>,
    readers: Vec<Reader>,
}

impl SlotModel {
    /// The shipped protocol: publish-if-newer under the write lock,
    /// load/verify under the read lock.
    pub fn locked(writer_gens: Vec<u64>, readers: usize) -> Self {
        Self {
            writer_gens,
            readers,
            locked: true,
        }
    }

    /// The hazard variant: identical accesses, no lock. Exists so the
    /// regression tests can prove the explorer catches the torn read.
    pub fn unlocked(writer_gens: Vec<u64>, readers: usize) -> Self {
        Self {
            writer_gens,
            readers,
            locked: false,
        }
    }

    /// The generation every schedule must end on: the largest offered.
    fn expected_final(&self) -> u64 {
        self.writer_gens.iter().copied().max().unwrap_or(0)
    }
}

impl Protocol for SlotModel {
    type State = SlotState;

    fn init(&self) -> SlotState {
        SlotState {
            lock: RwLockState::default(),
            head: 0,
            tail: 0,
            writers: self
                .writer_gens
                .iter()
                .map(|&gen| Writer {
                    gen,
                    pc: if self.locked { 0 } else { 1 },
                    observed: 0,
                })
                .collect(),
            readers: (0..self.readers)
                .map(|_| Reader {
                    pc: if self.locked { 0 } else { 1 },
                    head: 0,
                    tail: 0,
                    recorded: None,
                })
                .collect(),
        }
    }

    fn threads(&self) -> usize {
        self.writer_gens.len() + self.readers
    }

    fn step(&self, state: &mut SlotState, thread: usize) -> Step {
        if let Some(w) = state.writers.get_mut(thread) {
            return match w.pc {
                0 => {
                    if state.lock.try_write() {
                        w.pc = 1;
                        Step::Ran
                    } else {
                        Step::Blocked
                    }
                }
                1 => {
                    w.observed = state.head;
                    w.pc = 2;
                    Step::Ran
                }
                2 => {
                    // The if-newer guard: an older offer writes nothing.
                    if w.gen > w.observed {
                        state.head = w.gen;
                    }
                    w.pc = 3;
                    Step::Ran
                }
                3 => {
                    if w.gen > w.observed {
                        state.tail = w.gen;
                    }
                    w.pc = if self.locked { 4 } else { 5 };
                    Step::Ran
                }
                4 => {
                    state.lock.done_writing();
                    w.pc = 5;
                    Step::Ran
                }
                _ => Step::Done,
            };
        }
        let Some(r) = state.readers.get_mut(thread - state.writers.len()) else {
            return Step::Done;
        };
        match r.pc {
            0 => {
                if state.lock.try_read() {
                    r.pc = 1;
                    Step::Ran
                } else {
                    Step::Blocked
                }
            }
            1 => {
                r.head = state.head;
                r.pc = 2;
                Step::Ran
            }
            2 => {
                r.tail = state.tail;
                r.pc = 3;
                Step::Ran
            }
            3 => {
                if self.locked {
                    state.lock.done_reading();
                }
                r.recorded = Some((r.head, r.tail));
                r.pc = 4;
                Step::Ran
            }
            _ => Step::Done,
        }
    }

    fn invariant(&self, state: &SlotState) -> Result<(), String> {
        for (i, r) in state.readers.iter().enumerate() {
            if let Some((head, tail)) = r.recorded {
                if head != tail {
                    return Err(format!(
                        "torn generation: reader {i} observed head={head} tail={tail}"
                    ));
                }
                let valid = head == 0 || self.writer_gens.contains(&head);
                if !valid {
                    return Err(format!(
                        "reader {i} observed generation {head}, which was never published"
                    ));
                }
            }
        }
        Ok(())
    }

    fn final_check(&self, state: &SlotState) -> Result<(), String> {
        let expected = self.expected_final();
        if state.head != expected || state.tail != expected {
            return Err(format!(
                "stale publish: final generation head={} tail={} but {} was offered",
                state.head, state.tail, expected
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::explore;

    #[test]
    fn locked_slot_has_no_torn_or_stale_schedules() {
        let stats = explore(&SlotModel::locked(vec![1, 2], 1)).expect("locked slot is race-free");
        assert_eq!(stats.schedules, 6);
    }

    #[test]
    fn unlocked_slot_tears() {
        let v = explore(&SlotModel::unlocked(vec![1, 2], 1))
            .expect_err("the unlocked variant must exhibit a violation");
        assert!(
            v.message.contains("torn generation") || v.message.contains("stale publish"),
            "unexpected violation: {}",
            v.message
        );
    }
}
