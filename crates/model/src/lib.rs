//! Offline interleaving checker for the workspace's concurrency
//! protocols.
//!
//! The `xtask` lock/atomics passes prove *discipline* (no cyclic lock
//! order, justified orderings); this crate proves *protocols*: it
//! drives shim-instrumented copies of the `serve::swap::IndexSlot`
//! publish/`verify_generation` protocol, the `serve::server`
//! bounded-queue admission/drain protocol, and the copy-on-write
//! delta-publish protocol (`serve::ServingIndex::patch_from_stream`)
//! through **every** bounded schedule — a DFS over yield points with
//! 2–3 model threads — and asserts the invariants the serving layer
//! stakes its correctness on:
//!
//! * no torn generation (a reader never observes `head != tail`),
//! * no stale-generation publish (`publish_if_newer` never lets an
//!   older epoch overwrite a newer one),
//! * no ticket lost or double-served across admission and drain,
//! * no torn shard patch (a pinned generation's shard build stamps
//!   never move, even while delta publishes race the pin).
//!
//! Each protocol also has a deliberately broken *hazard* variant — the
//! same steps minus the lock, or with a non-atomic check-then-swap —
//! and regression tests assert the explorer **finds** the bug. That is
//! the calibration: a checker that passes the real protocol but cannot
//! catch the torn-generation scenario `verify_generation` was built to
//! detect would be vacuous.
//!
//! Everything is hand-rolled and deterministic: no threads are
//! spawned, no clocks read, no dependencies used. `cargo test -p
//! model` explores every schedule (~90k across the pinned sweeps) in
//! about a second.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admission;
pub mod delta;
pub mod explore;
pub mod slot;

pub use explore::{explore, Explored, Protocol, Step, Violation};
