//! Synthetic data generators.
//!
//! Each generator states which of the paper's data sets it stands in for
//! and which structural property it reproduces. All generators are
//! seed-deterministic.

use crate::normal::normal;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rpdbscan_geom::{Dataset, DatasetBuilder};
/// Configuration shared by generator presets.
#[derive(Debug, Clone, Copy)]
pub struct SynthConfig {
    /// Number of points to generate.
    pub n: usize,
    /// RNG seed.
    pub seed: u64,
}

impl SynthConfig {
    /// A config with `n` points and seed 0.
    pub fn new(n: usize) -> Self {
        Self { n, seed: 0 }
    }

    /// Overrides the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

fn builder(dim: usize, n: usize) -> DatasetBuilder {
    DatasetBuilder::with_capacity(dim, n).expect("dim >= 1") // lint:allow(panic-safety): every generator passes a literal dim >= 2
}

/// Appends one generated point. Generators always push a row of the
/// width their [`builder`] was created with, so the dimension check
/// cannot fire; the helper keeps that argument in one place.
fn push(b: &mut DatasetBuilder, row: &[f64]) {
    b.push(row)
        .map(|_| ())
        .expect("generated row width matches builder") // lint:allow(panic-safety): generators construct rows of the builder's exact width
}

/// Two interleaving half-moons with Gaussian jitter — the `Moons`
/// accuracy set (§7.5). Arbitrary-shape clusters that centroid methods
/// cannot separate but DBSCAN can.
pub fn moons(cfg: SynthConfig, noise_std: f64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut b = builder(2, cfg.n);
    for i in 0..cfg.n {
        let t = rng.gen_range(0.0..std::f64::consts::PI);
        let (x, y) = if i % 2 == 0 {
            (t.cos(), t.sin())
        } else {
            (1.0 - t.cos(), 0.5 - t.sin())
        };
        push(
            &mut b,
            &[
                normal(&mut rng, x, noise_std),
                normal(&mut rng, y, noise_std),
            ],
        );
    }
    b.build()
}

/// Isotropic Gaussian blobs — the `Blobs` accuracy set (§7.5).
pub fn blobs(cfg: SynthConfig, centers: usize, std_dev: f64, range: f64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let cs: Vec<[f64; 2]> = (0..centers.max(1))
        .map(|_| [rng.gen_range(0.0..range), rng.gen_range(0.0..range)])
        .collect();
    let mut b = builder(2, cfg.n);
    for _ in 0..cfg.n {
        let c = cs[rng.gen_range(0..cs.len())];
        push(
            &mut b,
            &[
                normal(&mut rng, c[0], std_dev),
                normal(&mut rng, c[1], std_dev),
            ],
        );
    }
    b.build()
}

/// Mixed-shape, mixed-density clusters with background noise — in the
/// spirit of the Chameleon DS data sets (§7.5): two dense blobs, a ring,
/// a sine-wave band, and ~5% uniform noise.
pub fn chameleon_like(cfg: SynthConfig) -> Dataset {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut b = builder(2, cfg.n);
    for _ in 0..cfg.n {
        let kind = rng.gen_range(0..100u32);
        let p: [f64; 2] = if kind < 25 {
            // dense blob
            [normal(&mut rng, 20.0, 2.0), normal(&mut rng, 20.0, 2.0)]
        } else if kind < 50 {
            // looser blob
            [normal(&mut rng, 70.0, 4.0), normal(&mut rng, 25.0, 4.0)]
        } else if kind < 72 {
            // ring
            let a = rng.gen_range(0.0..std::f64::consts::TAU);
            let r = normal(&mut rng, 15.0, 0.8);
            [45.0 + r * a.cos(), 70.0 + r * a.sin()]
        } else if kind < 95 {
            // sine band
            let x = rng.gen_range(0.0..100.0);
            [x, 95.0 + 4.0 * (x * 0.2).sin() + normal(&mut rng, 0.0, 0.6)]
        } else {
            // background noise
            [rng.gen_range(0.0..110.0), rng.gen_range(0.0..120.0)]
        };
        push(&mut b, &p);
    }
    b.build()
}

/// Appendix B.1's Gaussian mixture: ten multivariate Gaussians with mean
/// vectors uniform in `[0,100]^d` and inverse covariance `αI` (so each
/// component's std is `1/√α`); `alpha` is the skewness coefficient — the
/// higher, the tighter the clusters.
pub fn gaussian_mixture(cfg: SynthConfig, dim: usize, alpha: f64) -> Dataset {
    gaussian_mixture_with(cfg, dim, alpha, 10, 100.0)
}

/// [`gaussian_mixture`] with explicit component count and range.
pub fn gaussian_mixture_with(
    cfg: SynthConfig,
    dim: usize,
    alpha: f64,
    components: usize,
    range: f64,
) -> Dataset {
    assert!(alpha > 0.0, "skewness coefficient must be positive");
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let means: Vec<Vec<f64>> = (0..components.max(1))
        .map(|_| (0..dim).map(|_| rng.gen_range(0.0..range)).collect())
        .collect();
    let std_dev = 1.0 / alpha.sqrt();
    let mut b = builder(dim, cfg.n);
    let mut p = vec![0.0; dim];
    for _ in 0..cfg.n {
        let m = &means[rng.gen_range(0..means.len())];
        for (pi, &mi) in p.iter_mut().zip(m.iter()) {
            *pi = normal(&mut rng, mi, std_dev);
        }
        push(&mut b, &p);
    }
    b.build()
}

/// GeoLife stand-in (3-d, heavily skewed): ~70% of points in one dense
/// metro blob, ~28% spread over 30 distant city blobs, ~2% noise — the
/// "large proportion of users stayed in Beijing" skew that drives Figures
/// 13a/14a.
pub fn geolife_like(cfg: SynthConfig) -> Dataset {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let cities: Vec<[f64; 3]> = (0..30)
        .map(|_| {
            [
                rng.gen_range(0.0..100.0),
                rng.gen_range(0.0..100.0),
                rng.gen_range(0.0..10.0),
            ]
        })
        .collect();
    let metro = [55.0, 40.0, 5.0];
    let mut b = builder(3, cfg.n);
    for _ in 0..cfg.n {
        let kind = rng.gen_range(0..100u32);
        // The metro blob is wide enough (sigma = 2.0) to span many grid
        // cells at every ε in the ladder — the regime the paper's
        // 24.9M-point GeoLife satisfies by sheer scale, and the premise
        // pseudo random partitioning's balance rests on (§1.2.1).
        let p: [f64; 3] = if kind < 70 {
            [
                normal(&mut rng, metro[0], 2.0),
                normal(&mut rng, metro[1], 2.0),
                normal(&mut rng, metro[2], 1.0),
            ]
        } else if kind < 98 {
            let c = cities[rng.gen_range(0..cities.len())];
            [
                normal(&mut rng, c[0], 0.8),
                normal(&mut rng, c[1], 0.8),
                normal(&mut rng, c[2], 0.4),
            ]
        } else {
            [
                rng.gen_range(0.0..100.0),
                rng.gen_range(0.0..100.0),
                rng.gen_range(0.0..10.0),
            ]
        };
        push(&mut b, &p);
    }
    b.build()
}

/// Cosmo50 stand-in (3-d N-body simulation): many medium halos strung
/// along filaments plus diffuse background.
pub fn cosmo_like(cfg: SynthConfig) -> Dataset {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    // Filaments: random segments; halos chained closely along each one so
    // a filament reads as a single elongated cluster at the working ε
    // (~10 filaments ≈ the paper's ε₁₀ "around ten clusters" calibration).
    let mut halos: Vec<[f64; 3]> = Vec::new();
    for _ in 0..10 {
        let a: Vec<f64> = (0..3).map(|_| rng.gen_range(10.0..90.0)).collect();
        let d: Vec<f64> = (0..3).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let norm = (d.iter().map(|x| x * x).sum::<f64>()).sqrt().max(1e-9);
        for s in 0..8 {
            let t = s as f64 * 2.5;
            halos.push([
                a[0] + d[0] / norm * t,
                a[1] + d[1] / norm * t,
                a[2] + d[2] / norm * t,
            ]);
        }
    }
    let mut b = builder(3, cfg.n);
    for _ in 0..cfg.n {
        if rng.gen_range(0..100u32) < 90 {
            let h = halos[rng.gen_range(0..halos.len())];
            push(
                &mut b,
                &[
                    normal(&mut rng, h[0], 0.7),
                    normal(&mut rng, h[1], 0.7),
                    normal(&mut rng, h[2], 0.7),
                ],
            );
        } else {
            push(
                &mut b,
                &[
                    rng.gen_range(0.0..100.0),
                    rng.gen_range(0.0..100.0),
                    rng.gen_range(0.0..100.0),
                ],
            );
        }
    }
    b.build()
}

/// OpenStreetMap stand-in (2-d GPS traces): points densified along random
/// polyline "roads" plus town clusters — string-of-points contiguity.
pub fn osm_like(cfg: SynthConfig) -> Dataset {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    // Roads: random polylines of 4 segments each.
    let mut roads: Vec<([f64; 2], [f64; 2])> = Vec::new();
    for _ in 0..25 {
        let mut prev: [f64; 2] = [rng.gen_range(0.0..100.0), rng.gen_range(0.0..100.0)];
        for _ in 0..4 {
            let next: [f64; 2] = [
                (prev[0] + rng.gen_range(-25.0..25.0)).clamp(0.0, 100.0),
                (prev[1] + rng.gen_range(-25.0..25.0)).clamp(0.0, 100.0),
            ];
            roads.push((prev, next));
            prev = next;
        }
    }
    let towns: Vec<[f64; 2]> = (0..15)
        .map(|_| [rng.gen_range(0.0..100.0), rng.gen_range(0.0..100.0)])
        .collect();
    let mut b = builder(2, cfg.n);
    for _ in 0..cfg.n {
        let kind = rng.gen_range(0..100u32);
        let p: [f64; 2] = if kind < 70 {
            let (a, z) = roads[rng.gen_range(0..roads.len())];
            let t: f64 = rng.gen();
            [
                a[0] + t * (z[0] - a[0]) + normal(&mut rng, 0.0, 0.08),
                a[1] + t * (z[1] - a[1]) + normal(&mut rng, 0.0, 0.08),
            ]
        } else if kind < 97 {
            let c = towns[rng.gen_range(0..towns.len())];
            [normal(&mut rng, c[0], 0.5), normal(&mut rng, c[1], 0.5)]
        } else {
            [rng.gen_range(0.0..100.0), rng.gen_range(0.0..100.0)]
        };
        push(&mut b, &p);
    }
    b.build()
}

/// TeraClickLog stand-in (13-d click features): a few dozen clusters of
/// varying tightness in a mostly-empty 13-d space, plus sparse noise.
pub fn teraclick_like(cfg: SynthConfig) -> Dataset {
    const D: usize = 13;
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let centers: Vec<Vec<f64>> = (0..12)
        .map(|_| (0..D).map(|_| rng.gen_range(0.0..10_000.0)).collect())
        .collect();
    let stds: Vec<f64> = (0..12).map(|_| rng.gen_range(40.0..220.0)).collect();
    let mut b = builder(D, cfg.n);
    let mut p = vec![0.0; D];
    for _ in 0..cfg.n {
        if rng.gen_range(0..100u32) < 95 {
            let ci = rng.gen_range(0..centers.len());
            for (pi, &mi) in p.iter_mut().zip(centers[ci].iter()) {
                *pi = normal(&mut rng, mi, stds[ci]);
            }
        } else {
            for pi in p.iter_mut() {
                *pi = rng.gen_range(0.0..10_000.0);
            }
        }
        push(&mut b, &p);
    }
    b.build()
}

/// Dimension-parameterised TeraClickLog-style shape for the density-
/// backend experiments: well-separated Gaussian clusters in a
/// mostly-empty `[0, 1000]^dim` space plus a 5% uniform noise tail.
///
/// Unlike [`teraclick_like`] (fixed 13-d, wide stds), the cluster
/// spread here is tight relative to the inter-centre distance at any
/// `dim`, so an exact DBSCAN ground truth exists at a single ε across
/// dimensions — which is what the backend-accuracy comparison needs.
/// Intended for `dim ≥ 10`, where the exact grid's `(2b+1)^d`
/// neighbour window is at its worst.
pub fn hyper_teraclick_like(cfg: SynthConfig, dim: usize) -> Dataset {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let centers: Vec<Vec<f64>> = (0..8)
        .map(|_| (0..dim).map(|_| rng.gen_range(0.0..1_000.0)).collect())
        .collect();
    let mut b = builder(dim, cfg.n);
    let mut p = vec![0.0; dim];
    for _ in 0..cfg.n {
        if rng.gen_range(0..100u32) < 95 {
            let ci = rng.gen_range(0..centers.len());
            for (pi, &mi) in p.iter_mut().zip(centers[ci].iter()) {
                *pi = normal(&mut rng, mi, 6.0);
            }
        } else {
            for pi in p.iter_mut() {
                *pi = rng.gen_range(0.0..1_000.0);
            }
        }
        push(&mut b, &p);
    }
    b.build()
}

/// Uniform noise in `[0, range]^dim` — a degenerate workload for edge
/// cases and worst-case dictionaries.
pub fn uniform(cfg: SynthConfig, dim: usize, range: f64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut b = builder(dim, cfg.n);
    let mut p = vec![0.0; dim];
    for _ in 0..cfg.n {
        for pi in p.iter_mut() {
            *pi = rng.gen_range(0.0..range);
        }
        push(&mut b, &p);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_and_dims() {
        let cfg = SynthConfig::new(500);
        assert_eq!(moons(cfg, 0.05).len(), 500);
        assert_eq!(moons(cfg, 0.05).dim(), 2);
        assert_eq!(blobs(cfg, 5, 1.0, 100.0).dim(), 2);
        assert_eq!(chameleon_like(cfg).dim(), 2);
        assert_eq!(gaussian_mixture(cfg, 4, 1.0).dim(), 4);
        assert_eq!(geolife_like(cfg).dim(), 3);
        assert_eq!(cosmo_like(cfg).dim(), 3);
        assert_eq!(osm_like(cfg).dim(), 2);
        assert_eq!(teraclick_like(cfg).dim(), 13);
        assert_eq!(hyper_teraclick_like(cfg, 16).dim(), 16);
        assert_eq!(uniform(cfg, 7, 10.0).dim(), 7);
    }

    #[test]
    fn hyper_teraclick_is_seeded_and_mostly_clustered() {
        let a = hyper_teraclick_like(SynthConfig::new(2000).with_seed(3), 12);
        let b = hyper_teraclick_like(SynthConfig::new(2000).with_seed(3), 12);
        assert_eq!(a, b);
        assert_ne!(
            a,
            hyper_teraclick_like(SynthConfig::new(2000).with_seed(4), 12)
        );
        // ~95% of mass is clustered: such points have several close
        // companions, while uniform noise in [0,1000]^12 has none.
        let mut clustered = 0usize;
        let mut sampled = 0usize;
        for i in (0..a.len()).step_by(20) {
            sampled += 1;
            let p = a.point_at(i);
            let close = a
                .iter()
                .filter(|(_, q)| rpdbscan_geom::dist2(p, q) < 60.0 * 60.0)
                .count();
            if close >= 4 {
                clustered += 1;
            }
        }
        let frac = clustered as f64 / sampled as f64;
        assert!(frac > 0.85, "clustered fraction {frac}");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = geolife_like(SynthConfig::new(200).with_seed(5));
        let b = geolife_like(SynthConfig::new(200).with_seed(5));
        let c = geolife_like(SynthConfig::new(200).with_seed(6));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn geolife_skew_dominant_blob() {
        // ~70% of mass must fall within a few units of the metro centre.
        let d = geolife_like(SynthConfig::new(5000));
        let near = d
            .iter()
            .filter(|(_, p)| (p[0] - 55.0).abs() < 8.0 && (p[1] - 40.0).abs() < 8.0)
            .count() as f64
            / d.len() as f64;
        assert!(near > 0.6 && near < 0.8, "metro mass {near}");
    }

    #[test]
    fn mixture_alpha_controls_tightness() {
        // Higher alpha -> tighter clusters -> smaller average distance to
        // the nearest mixture mean. Proxy: variance of coordinates around
        // cluster structure shrinks; compare mean nearest-neighbour
        // spacing instead of full clustering.
        let loose = gaussian_mixture(SynthConfig::new(3000), 3, 1.0 / 8.0);
        let tight = gaussian_mixture(SynthConfig::new(3000), 3, 8.0);
        // Use the bounding-box-normalised average |coord - mean over that
        // component|: cheaper proxy — total variance of the data is
        // dominated by means either way, so instead measure local spread
        // via distance between consecutive generated points of the same
        // run (not meaningful) — use a direct statistic: fraction of
        // points within 1.0 of some other point's coordinates is higher
        // when tight.
        let frac_close = |d: &Dataset| {
            let mut count = 0;
            for i in (0..d.len()).step_by(10) {
                let p = d.point_at(i);
                let close = d
                    .iter()
                    .filter(|(_, q)| rpdbscan_geom::dist(p, q) < 1.0)
                    .count();
                count += close;
            }
            count
        };
        assert!(frac_close(&tight) > frac_close(&loose) * 2);
    }

    #[test]
    fn moons_occupy_expected_region() {
        let d = moons(SynthConfig::new(2000), 0.05);
        let bb = d.bounding_box().unwrap();
        assert!(bb.min()[0] > -2.0 && bb.max()[0] < 4.0);
        assert!(bb.min()[1] > -2.0 && bb.max()[1] < 3.0);
    }

    #[test]
    fn uniform_fills_range() {
        let d = uniform(SynthConfig::new(5000), 2, 10.0);
        let bb = d.bounding_box().unwrap();
        assert!(bb.min()[0] >= 0.0 && bb.max()[0] <= 10.0);
        assert!(bb.extent(0) > 9.0, "should nearly fill the range");
    }

    #[test]
    fn zero_points_ok() {
        let d = blobs(SynthConfig::new(0), 3, 1.0, 10.0);
        assert!(d.is_empty());
    }
}
