//! Reservoir sampling (Vitter's Algorithm R).
//!
//! §1.1 of the paper motivates the random split strategy partly by the
//! `O(N)` cost of reservoir sampling [Vitter 1985]; the utility is kept
//! here both for fidelity and for sub-sampling large generated workloads
//! in the experiment harness.

use rand::Rng;

/// Draws a uniform sample of up to `k` items from a stream in one pass.
///
/// Returns fewer than `k` items only when the stream is shorter than `k`.
/// The relative order of sampled items is unspecified.
pub fn reservoir_sample<T, R: Rng + ?Sized>(
    stream: impl IntoIterator<Item = T>,
    k: usize,
    rng: &mut R,
) -> Vec<T> {
    if k == 0 {
        return Vec::new();
    }
    let mut reservoir: Vec<T> = Vec::with_capacity(k);
    for (i, item) in stream.into_iter().enumerate() {
        if i < k {
            reservoir.push(item);
        } else {
            let j = rng.gen_range(0..=i);
            if j < k {
                reservoir[j] = item;
            }
        }
    }
    reservoir
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn short_stream_returns_everything() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut s = reservoir_sample(0..5, 10, &mut rng);
        s.sort_unstable();
        assert_eq!(s, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn k_zero_is_empty() {
        let mut rng = StdRng::seed_from_u64(0);
        assert!(reservoir_sample(0..100, 0, &mut rng).is_empty());
    }

    #[test]
    fn sample_size_is_k() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(reservoir_sample(0..1000, 32, &mut rng).len(), 32);
    }

    #[test]
    fn sample_is_roughly_uniform() {
        // Sample 1 from {0..10} many times: each element should appear
        // about 10% of the time.
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = [0usize; 10];
        for _ in 0..20_000 {
            let s = reservoir_sample(0..10usize, 1, &mut rng);
            counts[s[0]] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            let f = c as f64 / 20_000.0;
            assert!((f - 0.1).abs() < 0.02, "element {i} frequency {f}");
        }
    }

    #[test]
    fn no_duplicates_from_distinct_stream() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut s = reservoir_sample(0..100, 50, &mut rng);
        s.sort_unstable();
        s.dedup();
        assert_eq!(s.len(), 50);
    }
}
