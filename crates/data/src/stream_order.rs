//! Visit-order permutations for replaying a dataset as a point stream.
//!
//! The streaming subsystem (`rpdbscan-stream`) consumes data as timed
//! micro-batches; how the points of a static dataset are ordered into that
//! stream decides how much of the grid each batch dirties. Two orders are
//! provided:
//!
//! * [`shuffled_order`] — uniformly random: every batch is a thin uniform
//!   sample of the whole space, the worst case for incremental repair
//!   (each batch touches cells everywhere);
//! * [`locality_order`] — spatially clustered: points grouped by a coarse
//!   grid cell, cells visited in a seeded random order. Consecutive
//!   batches stay spatially compact, which is how real trajectory and
//!   sensor streams arrive (a GeoLife trace emits one vehicle's
//!   neighbourhood at a time, not the whole planet per second);
//! * [`sliding_order`] — a jittered spatial sweep along the first axis:
//!   arrivals drift across the space, so replaying the order through a
//!   sliding window (`SlidingWindow` in `rpdbscan-stream`)
//!   keeps a moving band of the dataset live — the tail expiring behind
//!   the front is exactly the TTL workload that exercises deletion-side
//!   repair and delta publishes.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rpdbscan_geom::Dataset;

/// Uniformly shuffled visit order over all points of `data`.
pub fn shuffled_order(data: &Dataset, seed: u64) -> Vec<u32> {
    let mut order: Vec<u32> = (0..data.len() as u32).collect();
    order.shuffle(&mut StdRng::seed_from_u64(seed));
    order
}

/// Spatially clustered visit order: points are bucketed by the coarse grid
/// cell of side `cell_side` containing them, the buckets are visited in a
/// seeded random order, and each bucket's points keep their dataset order.
///
/// # Panics
///
/// Panics if `cell_side` is not finite and positive.
pub fn locality_order(data: &Dataset, cell_side: f64, seed: u64) -> Vec<u32> {
    assert!(
        cell_side.is_finite() && cell_side > 0.0,
        "locality_order: cell_side must be finite and > 0, got {cell_side}"
    );
    let mut buckets: std::collections::HashMap<Vec<i64>, Vec<u32>> =
        std::collections::HashMap::new();
    for (id, p) in data.iter() {
        let key: Vec<i64> = p.iter().map(|v| (v / cell_side).floor() as i64).collect();
        buckets.entry(key).or_default().push(id.0);
    }
    let mut keys: Vec<Vec<i64>> = buckets.keys().cloned().collect();
    keys.sort_unstable();
    keys.shuffle(&mut StdRng::seed_from_u64(seed));
    let mut order = Vec::with_capacity(data.len());
    for k in &keys {
        order.extend_from_slice(&buckets[k]);
    }
    order
}

/// Jittered-sweep visit order: each point is keyed by its first
/// coordinate plus seeded uniform noise in `[0, jitter)`, and points
/// arrive in ascending key order (ties broken by id, so the order is a
/// total one). With `jitter = 0` this is a pure coordinate sweep; larger
/// jitter widens the arrival band so consecutive batches overlap
/// spatially instead of forming disjoint slabs.
///
/// # Panics
///
/// Panics if `jitter` is negative or not finite.
pub fn sliding_order(data: &Dataset, jitter: f64, seed: u64) -> Vec<u32> {
    assert!(
        jitter.is_finite() && jitter >= 0.0,
        "sliding_order: jitter must be finite and >= 0, got {jitter}"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut keyed: Vec<(f64, u32)> = data
        .iter()
        .map(|(id, p)| (p[0] + jitter * rng.gen::<f64>(), id.0))
        .collect();
    keyed.sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    keyed.into_iter().map(|(_, id)| id).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{blobs, SynthConfig};

    fn is_permutation(order: &[u32], n: usize) -> bool {
        let mut seen = vec![false; n];
        for &i in order {
            if (i as usize) >= n || seen[i as usize] {
                return false;
            }
            seen[i as usize] = true;
        }
        order.len() == n
    }

    #[test]
    fn shuffled_order_is_a_seeded_permutation() {
        let data = blobs(SynthConfig::new(500).with_seed(1), 3, 0.5, 20.0);
        let a = shuffled_order(&data, 7);
        let b = shuffled_order(&data, 7);
        let c = shuffled_order(&data, 8);
        assert!(is_permutation(&a, data.len()));
        assert_eq!(a, b, "same seed must reproduce the order");
        assert_ne!(a, c, "different seeds must differ");
    }

    #[test]
    fn locality_order_is_a_permutation_with_compact_prefixes() {
        let data = blobs(SynthConfig::new(600).with_seed(2), 4, 0.5, 40.0);
        let order = locality_order(&data, 5.0, 3);
        assert!(is_permutation(&order, data.len()));
        // A prefix of the locality order must span far less area than the
        // same-size prefix of a uniform shuffle: measure the bounding-box
        // diagonal of the first 10%.
        let shuffled = shuffled_order(&data, 3);
        let diag = |ids: &[u32]| {
            let (mut lo, mut hi) = ([f64::MAX; 2], [f64::MIN; 2]);
            for &i in ids {
                let p = data.point_at(i as usize);
                for d in 0..2 {
                    lo[d] = lo[d].min(p[d]);
                    hi[d] = hi[d].max(p[d]);
                }
            }
            (0..2).map(|d| (hi[d] - lo[d]).powi(2)).sum::<f64>().sqrt()
        };
        let k = data.len() / 10;
        assert!(
            diag(&order[..k]) < diag(&shuffled[..k]),
            "locality prefix spans {} vs shuffled {}",
            diag(&order[..k]),
            diag(&shuffled[..k])
        );
    }

    #[test]
    fn sliding_order_is_a_pinned_deterministic_sweep() {
        let data = blobs(SynthConfig::new(400).with_seed(9), 3, 0.5, 30.0);
        let a = sliding_order(&data, 2.0, 13);
        let b = sliding_order(&data, 2.0, 13);
        let c = sliding_order(&data, 2.0, 14);
        assert!(is_permutation(&a, data.len()));
        assert_eq!(a, b, "same seed must reproduce the order");
        assert_ne!(a, c, "different seeds must jitter differently");
        // Zero jitter is the pure coordinate sweep, independent of seed.
        let sweep = sliding_order(&data, 0.0, 13);
        assert_eq!(sweep, sliding_order(&data, 0.0, 99));
        let xs: Vec<f64> = sweep
            .iter()
            .map(|&i| data.point_at(i as usize)[0])
            .collect();
        assert!(xs.windows(2).all(|w| w[0] <= w[1]), "sweep is sorted by x");
        // Jittered arrivals still drift: the first decile sits well to
        // the left of the last one.
        let k = data.len() / 10;
        let mean = |ids: &[u32]| {
            ids.iter()
                .map(|&i| data.point_at(i as usize)[0])
                .sum::<f64>()
                / ids.len() as f64
        };
        assert!(
            mean(&a[..k]) < mean(&a[data.len() - k..]),
            "front {} must trail back {}",
            mean(&a[..k]),
            mean(&a[data.len() - k..])
        );
    }

    #[test]
    fn locality_order_is_seed_deterministic() {
        let data = blobs(SynthConfig::new(200).with_seed(5), 2, 0.5, 10.0);
        assert_eq!(
            locality_order(&data, 2.0, 11),
            locality_order(&data, 2.0, 11)
        );
    }
}
