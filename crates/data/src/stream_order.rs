//! Visit-order permutations for replaying a dataset as a point stream.
//!
//! The streaming subsystem (`rpdbscan-stream`) consumes data as timed
//! micro-batches; how the points of a static dataset are ordered into that
//! stream decides how much of the grid each batch dirties. Two orders are
//! provided:
//!
//! * [`shuffled_order`] — uniformly random: every batch is a thin uniform
//!   sample of the whole space, the worst case for incremental repair
//!   (each batch touches cells everywhere);
//! * [`locality_order`] — spatially clustered: points grouped by a coarse
//!   grid cell, cells visited in a seeded random order. Consecutive
//!   batches stay spatially compact, which is how real trajectory and
//!   sensor streams arrive (a GeoLife trace emits one vehicle's
//!   neighbourhood at a time, not the whole planet per second).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rpdbscan_geom::Dataset;

/// Uniformly shuffled visit order over all points of `data`.
pub fn shuffled_order(data: &Dataset, seed: u64) -> Vec<u32> {
    let mut order: Vec<u32> = (0..data.len() as u32).collect();
    order.shuffle(&mut StdRng::seed_from_u64(seed));
    order
}

/// Spatially clustered visit order: points are bucketed by the coarse grid
/// cell of side `cell_side` containing them, the buckets are visited in a
/// seeded random order, and each bucket's points keep their dataset order.
///
/// # Panics
///
/// Panics if `cell_side` is not finite and positive.
pub fn locality_order(data: &Dataset, cell_side: f64, seed: u64) -> Vec<u32> {
    assert!(
        cell_side.is_finite() && cell_side > 0.0,
        "locality_order: cell_side must be finite and > 0, got {cell_side}"
    );
    let mut buckets: std::collections::HashMap<Vec<i64>, Vec<u32>> =
        std::collections::HashMap::new();
    for (id, p) in data.iter() {
        let key: Vec<i64> = p.iter().map(|v| (v / cell_side).floor() as i64).collect();
        buckets.entry(key).or_default().push(id.0);
    }
    let mut keys: Vec<Vec<i64>> = buckets.keys().cloned().collect();
    keys.sort_unstable();
    keys.shuffle(&mut StdRng::seed_from_u64(seed));
    let mut order = Vec::with_capacity(data.len());
    for k in &keys {
        order.extend_from_slice(&buckets[k]);
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{blobs, SynthConfig};

    fn is_permutation(order: &[u32], n: usize) -> bool {
        let mut seen = vec![false; n];
        for &i in order {
            if (i as usize) >= n || seen[i as usize] {
                return false;
            }
            seen[i as usize] = true;
        }
        order.len() == n
    }

    #[test]
    fn shuffled_order_is_a_seeded_permutation() {
        let data = blobs(SynthConfig::new(500).with_seed(1), 3, 0.5, 20.0);
        let a = shuffled_order(&data, 7);
        let b = shuffled_order(&data, 7);
        let c = shuffled_order(&data, 8);
        assert!(is_permutation(&a, data.len()));
        assert_eq!(a, b, "same seed must reproduce the order");
        assert_ne!(a, c, "different seeds must differ");
    }

    #[test]
    fn locality_order_is_a_permutation_with_compact_prefixes() {
        let data = blobs(SynthConfig::new(600).with_seed(2), 4, 0.5, 40.0);
        let order = locality_order(&data, 5.0, 3);
        assert!(is_permutation(&order, data.len()));
        // A prefix of the locality order must span far less area than the
        // same-size prefix of a uniform shuffle: measure the bounding-box
        // diagonal of the first 10%.
        let shuffled = shuffled_order(&data, 3);
        let diag = |ids: &[u32]| {
            let (mut lo, mut hi) = ([f64::MAX; 2], [f64::MIN; 2]);
            for &i in ids {
                let p = data.point_at(i as usize);
                for d in 0..2 {
                    lo[d] = lo[d].min(p[d]);
                    hi[d] = hi[d].max(p[d]);
                }
            }
            (0..2).map(|d| (hi[d] - lo[d]).powi(2)).sum::<f64>().sqrt()
        };
        let k = data.len() / 10;
        assert!(
            diag(&order[..k]) < diag(&shuffled[..k]),
            "locality prefix spans {} vs shuffled {}",
            diag(&order[..k]),
            diag(&shuffled[..k])
        );
    }

    #[test]
    fn locality_order_is_seed_deterministic() {
        let data = blobs(SynthConfig::new(200).with_seed(5), 2, 0.5, 10.0);
        assert_eq!(
            locality_order(&data, 2.0, 11),
            locality_order(&data, 2.0, 11)
        );
    }
}
