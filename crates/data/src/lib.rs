//! Synthetic workloads, dataset IO, and sampling.
//!
//! The paper evaluates on four real-world data sets (GeoLife, Cosmo50,
//! OpenStreetMap, TeraClickLog — §7.1.3) plus three small accuracy sets
//! (Moons, Blobs, Chameleon — §7.5) and a family of Gaussian-mixture
//! synthetic sets with a tunable skewness coefficient (Appendix B.1).
//! The real data sets are not redistributable here, so [`synth`] provides
//! generators that reproduce each one's *relevant structure* (skew,
//! dimensionality, cluster shape) at configurable scale; DESIGN.md
//! documents each substitution.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod io;
pub mod normal;
pub mod sampling;
pub mod stream_order;
pub mod synth;

pub use sampling::reservoir_sample;
pub use stream_order::{locality_order, shuffled_order, sliding_order};
pub use synth::SynthConfig;
