//! Gaussian sampling via the Box–Muller transform.
//!
//! The approved dependency set includes `rand` but not `rand_distr`, so
//! the normal deviates the generators need are produced locally. The
//! polar-free Box–Muller form is exact (not an approximation) and two
//! lines long.

use rand::Rng;

/// One standard-normal deviate.
#[inline]
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // u1 ∈ (0,1] avoids ln(0).
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// A normal deviate with the given mean and standard deviation.
#[inline]
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, std_dev: f64) -> f64 {
    mean + std_dev * standard_normal(rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn moments_are_right() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean: f64 = samples.iter().sum::<f64>() / n as f64;
        let var: f64 = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "var {var}");
    }

    #[test]
    fn shifted_and_scaled() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 100_000;
        let samples: Vec<f64> = (0..n).map(|_| normal(&mut rng, 5.0, 2.0)).collect();
        let mean: f64 = samples.iter().sum::<f64>() / n as f64;
        let var: f64 = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.05);
        assert!((var - 4.0).abs() < 0.1);
    }

    #[test]
    fn tail_mass_is_gaussian() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 100_000;
        let beyond_2sigma = (0..n)
            .filter(|_| standard_normal(&mut rng).abs() > 2.0)
            .count() as f64
            / n as f64;
        // True mass outside ±2σ is ~4.55%.
        assert!((beyond_2sigma - 0.0455).abs() < 0.01, "{beyond_2sigma}");
    }
}
