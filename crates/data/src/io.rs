//! Dataset CSV IO.
//!
//! The four real data sets arrive as delimited text in the paper's
//! pipeline; this module reads/writes the same shape (one point per line,
//! coordinates separated by a delimiter, optional trailing cluster label)
//! without pulling a CSV dependency.

use rpdbscan_geom::{Dataset, DatasetBuilder};
use rpdbscan_metrics::Clustering;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;

/// IO errors with line context.
#[derive(Debug)]
pub enum IoError {
    /// Underlying filesystem error.
    Io(std::io::Error),
    /// A line failed to parse.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Description of the failure.
        message: String,
    },
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "io error: {e}"),
            IoError::Parse { line, message } => write!(f, "line {line}: {message}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

/// Streams a delimited-text file one point at a time without ever
/// materialising a [`Dataset`] — the row buffer is reused across lines,
/// so memory stays O(1) in the file size. `f` receives each parsed row;
/// an `Err(message)` it returns is surfaced as an [`IoError::Parse`]
/// carrying the line it arose on. The dimensionality is pinned by the
/// first data row; a later row of a different width is rejected here, in
/// the parse layer. Returns the number of rows delivered.
///
/// This is the ingest path for out-of-core stores: `rpdbscan ingest`
/// feeds rows straight into a `StoreWriter` through this function.
pub fn for_each_csv_row<F>(path: &Path, delimiter: char, mut f: F) -> Result<u64, IoError>
where
    F: FnMut(&[f64]) -> Result<(), String>,
{
    let file = std::fs::File::open(path)?;
    let mut reader = BufReader::new(file);
    let mut line = String::new();
    let mut row: Vec<f64> = Vec::new();
    let mut dim: Option<usize> = None;
    let mut lineno = 0usize;
    let mut rows = 0u64;
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            break;
        }
        lineno += 1;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        row.clear();
        for field in trimmed.split(delimiter) {
            let field = field.trim();
            if field.is_empty() {
                continue;
            }
            row.push(field.parse::<f64>().map_err(|e| IoError::Parse {
                line: lineno,
                message: format!("bad number {field:?}: {e}"),
            })?);
        }
        if row.is_empty() {
            continue;
        }
        let expected = *dim.get_or_insert(row.len());
        if row.len() != expected {
            return Err(IoError::Parse {
                line: lineno,
                message: format!("expected {expected} coordinates, found {}", row.len()),
            });
        }
        f(&row).map_err(|message| IoError::Parse {
            line: lineno,
            message,
        })?;
        rows += 1;
    }
    Ok(rows)
}

/// Reads a dataset from delimited text. The dimensionality is inferred
/// from the first non-empty line; `delimiter` is typically `','` or `' '`.
pub fn read_csv(path: &Path, delimiter: char) -> Result<Dataset, IoError> {
    let mut builder: Option<DatasetBuilder> = None;
    for_each_csv_row(path, delimiter, |row| {
        let b = match &mut builder {
            Some(b) => b,
            None => {
                let fresh =
                    DatasetBuilder::with_capacity(row.len(), 1024).map_err(|e| e.to_string())?;
                builder.get_or_insert(fresh)
            }
        };
        b.push(row).map(|_| ()).map_err(|e| e.to_string())
    })?;
    match builder {
        Some(b) => Ok(b.build()),
        None => Dataset::from_flat(1, vec![]).map_err(|e| IoError::Parse {
            line: 0,
            message: e.to_string(),
        }),
    }
}

/// Writes a dataset as delimited text.
pub fn write_csv(path: &Path, data: &Dataset, delimiter: char) -> Result<(), IoError> {
    let file = std::fs::File::create(path)?;
    let mut w = BufWriter::new(file);
    for (_, p) in data.iter() {
        let mut first = true;
        for v in p {
            if !first {
                write!(w, "{delimiter}")?;
            }
            write!(w, "{v}")?;
            first = false;
        }
        writeln!(w)?;
    }
    w.flush()?;
    Ok(())
}

/// Writes a dataset with a trailing cluster-label column (`-1` = noise) —
/// the D′ labeled output of Algorithm 1.
pub fn write_labeled_csv(
    path: &Path,
    data: &Dataset,
    clustering: &Clustering,
    delimiter: char,
) -> Result<(), IoError> {
    assert_eq!(data.len(), clustering.len(), "labels must cover the data");
    let file = std::fs::File::create(path)?;
    let mut w = BufWriter::new(file);
    for (id, p) in data.iter() {
        for v in p {
            write!(w, "{v}{delimiter}")?;
        }
        match clustering.labels()[id.index()] {
            Some(c) => writeln!(w, "{c}")?,
            None => writeln!(w, "-1")?,
        }
    }
    w.flush()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpfile(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("rpdbscan-io-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn round_trip() {
        let d = Dataset::from_rows(3, &[vec![1.0, 2.0, 3.0], vec![-4.5, 0.25, 1e6]]).unwrap();
        let p = tmpfile("round_trip.csv");
        write_csv(&p, &d, ',').unwrap();
        let back = read_csv(&p, ',').unwrap();
        assert_eq!(back, d);
    }

    #[test]
    fn skips_comments_and_blank_lines() {
        let p = tmpfile("comments.csv");
        std::fs::write(&p, "# header\n\n1.0,2.0\n# mid\n3.0,4.0\n").unwrap();
        let d = read_csv(&p, ',').unwrap();
        assert_eq!(d.len(), 2);
        assert_eq!(d.dim(), 2);
    }

    #[test]
    fn parse_error_reports_line() {
        let p = tmpfile("bad.csv");
        std::fs::write(&p, "1.0,2.0\n3.0,oops\n").unwrap();
        match read_csv(&p, ',') {
            Err(IoError::Parse { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn ragged_rows_rejected() {
        let p = tmpfile("ragged.csv");
        std::fs::write(&p, "1.0,2.0\n3.0\n").unwrap();
        assert!(matches!(read_csv(&p, ','), Err(IoError::Parse { .. })));
    }

    #[test]
    fn labeled_output_format() {
        let d = Dataset::from_rows(2, &[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let c = Clustering::new(vec![Some(7), None]);
        let p = tmpfile("labeled.csv");
        write_labeled_csv(&p, &d, &c, ',').unwrap();
        let text = std::fs::read_to_string(&p).unwrap();
        assert_eq!(text, "1,2,7\n3,4,-1\n");
    }

    #[test]
    fn streaming_rows_match_dataset_read() {
        let p = tmpfile("stream_rows.csv");
        std::fs::write(&p, "# head\n1.0,2.0\n\n3.5,4.5\n5.0,6.0\n").unwrap();
        let mut flat = Vec::new();
        let n = for_each_csv_row(&p, ',', |row| {
            flat.extend_from_slice(row);
            Ok(())
        })
        .unwrap();
        assert_eq!(n, 3);
        assert_eq!(flat, vec![1.0, 2.0, 3.5, 4.5, 5.0, 6.0]);
        // A callback error carries the line it arose on.
        let err = for_each_csv_row(&p, ',', |_| Err("full".into())).unwrap_err();
        match err {
            IoError::Parse { line, message } => {
                assert_eq!(line, 2);
                assert_eq!(message, "full");
            }
            other => panic!("expected Parse, got {other:?}"),
        }
        // Ragged rows are rejected by the streaming layer itself.
        let bad = tmpfile("stream_ragged.csv");
        std::fs::write(&bad, "1.0,2.0\n3.0\n").unwrap();
        assert!(matches!(
            for_each_csv_row(&bad, ',', |_| Ok(())),
            Err(IoError::Parse { line: 2, .. })
        ));
    }

    #[test]
    fn empty_file_reads_empty() {
        let p = tmpfile("empty.csv");
        std::fs::write(&p, "").unwrap();
        let d = read_csv(&p, ',').unwrap();
        assert!(d.is_empty());
    }

    #[test]
    fn whitespace_delimiter() {
        let p = tmpfile("space.csv");
        std::fs::write(&p, "1.5 2.5\n3.5 4.5\n").unwrap();
        let d = read_csv(&p, ' ').unwrap();
        assert_eq!(d.len(), 2);
        assert_eq!(d.point_at(1), &[3.5, 4.5]);
    }
}
