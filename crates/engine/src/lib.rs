//! A miniature MapReduce-style execution engine.
//!
//! The paper implements all algorithms on Apache Spark over 12 Azure VMs.
//! That substrate is unavailable here, so this crate provides the
//! equivalent abstractions the algorithms need, built from scratch:
//!
//! * **stages of tasks over partitions** ([`Engine::run_stage`]) — the
//!   unit Spark calls a stage of an RDD transformation;
//! * **broadcast variables** ([`Engine::broadcast_cost`]) — the mechanism
//!   Phase I uses to ship the two-level cell dictionary to every worker;
//! * **per-task metrics** — elapsed time per split, exactly what the
//!   paper's Spark counters provide for Figures 12/13/21.
//!
//! # Physical execution vs. the virtual cluster
//!
//! Tasks execute on a *physical* thread pool sized to the local machine,
//! and each task's wall-clock duration is measured individually. Cluster
//! behaviour is then *simulated*: the measured durations are list-scheduled
//! onto `W` **virtual workers** (FIFO, earliest-available-worker — the
//! same greedy policy Spark's scheduler effectively yields for a single
//! stage), producing a makespan that is independent of how many cores the
//! local host happens to have. Broadcast and shuffle costs are charged via
//! an explicit [`CostModel`]. This is the substitution documented in
//! DESIGN.md: relative speed-ups, load imbalance, and phase breakdowns —
//! the quantities the paper reports — survive this simulation; absolute
//! seconds do not (and are not claimed).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cost;
pub mod metrics;
pub mod pool;
pub mod stage;

pub use cost::CostModel;
pub use metrics::{EngineReport, StageMetrics};
pub use stage::{Engine, StageResult};
