//! A miniature MapReduce-style execution engine.
//!
//! The paper implements all algorithms on Apache Spark over 12 Azure VMs.
//! That substrate is unavailable here, so this crate provides the
//! equivalent abstractions the algorithms need, built from scratch:
//!
//! * **stages of tasks over partitions** ([`Engine::run_stage`]) — the
//!   unit Spark calls a stage of an RDD transformation;
//! * **broadcast variables** ([`Engine::broadcast_cost`]) — the mechanism
//!   Phase I uses to ship the two-level cell dictionary to every worker;
//! * **per-task metrics** — elapsed time per split, exactly what the
//!   paper's Spark counters provide for Figures 12/13/21.
//!
//! # Physical execution vs. the virtual cluster
//!
//! Tasks execute on a *physical* thread pool sized to the local machine,
//! and each task's wall-clock duration is measured individually. Panics
//! are caught per task, failures can be retried ([`RetryPolicy`]), and a
//! task whose retries are exhausted fails the whole stage with a
//! [`StageError`]. Cluster behaviour is then *simulated*: the measured
//! durations are placed onto `W` **virtual workers** by a pluggable
//! [`Scheduler`] ([`Fifo`] by default — the greedy policy Spark's
//! scheduler effectively yields for a single stage; [`Lpt`] and
//! [`ChunkedSteal`] are alternatives for scheduling studies), producing a
//! makespan that is independent of how many cores the local host happens
//! to have. Broadcast and shuffle costs are charged via an explicit
//! [`CostModel`], and every run leaves a [`Trace`] (one span per task on
//! its virtual lane) exportable as Chrome trace-event JSON. This is the substitution documented in
//! DESIGN.md: relative speed-ups, load imbalance, and phase breakdowns —
//! the quantities the paper reports — survive this simulation; absolute
//! seconds do not (and are not claimed).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cost;
pub mod metrics;
pub mod pool;
pub mod sched;
pub mod stage;
pub mod task;
pub mod trace;

pub use cost::CostModel;
pub use metrics::{epoch_stage_name, parse_epoch_stage, EngineReport, StageMetrics};
pub use sched::{ChunkedSteal, Fifo, Lpt, Placement, Schedule, Scheduler};
pub use stage::{Engine, StageResult};
pub use task::{RetryPolicy, StageError, TaskCtx, TaskError};
pub use trace::{NetworkEvent, NetworkKind, TaskSpan, Trace};
