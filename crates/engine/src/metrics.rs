//! Stage and engine metrics — the reproduction's stand-in for the Spark
//! counters the paper reads its elapsed times from (§7.1.5).

use crate::trace::Trace;

/// Metrics of one executed stage.
#[derive(Debug, Clone)]
pub struct StageMetrics {
    /// Stage name (e.g. `"phase2:subgraph"`).
    pub name: String,
    /// Number of tasks (splits).
    pub num_tasks: usize,
    /// Virtual workers the stage was scheduled onto.
    pub workers: usize,
    /// Scheduling policy that produced `makespan` (e.g. `"fifo"`).
    pub scheduler: String,
    /// Measured wall-clock duration of each task, seconds.
    pub task_durations: Vec<f64>,
    /// Simulated stage makespan on the virtual cluster, seconds
    /// (task durations placed by the engine's scheduler).
    pub makespan: f64,
    /// Total work: sum of task durations, seconds.
    pub work: f64,
    /// Critical path: the longest single task, seconds (tasks within a
    /// stage are independent, so this is the stage's span).
    pub span: f64,
    /// Scheduling imbalance: `makespan / max(work / workers, span)` —
    /// the ratio of achieved makespan to the theoretical lower bound
    /// (1.0 = a perfect schedule).
    pub imbalance: f64,
    /// Extra simulated network time charged to this stage, seconds.
    pub network_time: f64,
}

impl StageMetrics {
    /// Total CPU seconds across tasks (same as [`StageMetrics::work`]).
    pub fn total_cpu(&self) -> f64 {
        self.task_durations.iter().sum()
    }

    /// The paper's load-imbalance measure: slowest task time divided by
    /// fastest task time (value 1 = perfect balance, Figure 13).
    pub fn load_imbalance(&self) -> f64 {
        let mut min = f64::INFINITY;
        let mut max: f64 = 0.0;
        for &d in &self.task_durations {
            min = min.min(d);
            max = max.max(d);
        }
        if !min.is_finite() || min <= 0.0 {
            // Degenerate (no tasks, or sub-resolution timings): report the
            // neutral value rather than infinity.
            return 1.0;
        }
        max / min
    }

    /// Stage elapsed time as reported by experiments: simulated makespan
    /// plus charged network time.
    pub fn elapsed(&self) -> f64 {
        self.makespan + self.network_time
    }

    /// Lower bound on any schedule's makespan for this stage's tasks:
    /// `max(work / workers, span)`.
    pub fn makespan_lower_bound(&self) -> f64 {
        let workers = self.workers.max(1) as f64;
        (self.work / workers).max(self.span)
    }
}

/// Canonical name for a recurring streaming stage: `"epoch-{epoch}:{step}"`.
///
/// The streaming subsystem runs the same steps (ingest, repair, relabel)
/// every micro-batch; naming them per epoch keeps each occurrence a
/// distinct lane in the Chrome trace and in per-stage metrics, while the
/// shared `"epoch-"` prefix still lets
/// [`EngineReport::elapsed_with_prefix`] aggregate across the whole stream.
pub fn epoch_stage_name(epoch: u64, step: &str) -> String {
    format!("epoch-{epoch}:{step}")
}

/// Parses a stage name produced by [`epoch_stage_name`] back into its
/// `(epoch, step)` pair; `None` for non-epoch stages.
pub fn parse_epoch_stage(name: &str) -> Option<(u64, &str)> {
    let rest = name.strip_prefix("epoch-")?;
    let (num, step) = rest.split_once(':')?;
    Some((num.parse().ok()?, step))
}

/// Accumulated log of everything an [`crate::Engine`] ran.
#[derive(Debug, Clone, Default)]
pub struct EngineReport {
    /// Per-stage metrics in execution order.
    pub stages: Vec<StageMetrics>,
    /// Task spans and network events on the simulated timeline.
    pub trace: Trace,
}

impl EngineReport {
    /// Total elapsed time across all stages (stages are sequential in
    /// every algorithm reproduced here, as they are in the paper's
    /// MapReduce formulation).
    pub fn total_elapsed(&self) -> f64 {
        self.stages.iter().map(|s| s.elapsed()).sum()
    }

    /// Sum of elapsed times of stages whose name starts with `prefix` —
    /// how Figure 12's phase breakdown is assembled.
    pub fn elapsed_with_prefix(&self, prefix: &str) -> f64 {
        self.stages
            .iter()
            .filter(|s| s.name.starts_with(prefix))
            .map(|s| s.elapsed())
            .sum()
    }

    /// Worst per-stage load imbalance across stages matching `prefix`
    /// (Figure 13 reads the local-clustering stage).
    pub fn load_imbalance_with_prefix(&self, prefix: &str) -> f64 {
        self.stages
            .iter()
            .filter(|s| s.name.starts_with(prefix) && s.num_tasks > 1)
            .map(|s| s.load_imbalance())
            .fold(1.0, f64::max)
    }

    /// The run's execution trace in Chrome trace-event JSON (see
    /// [`Trace::to_chrome_json`]).
    pub fn chrome_trace_json(&self) -> String {
        self.trace.to_chrome_json()
    }

    /// Distinct streaming epochs recorded in the report (stages named by
    /// [`epoch_stage_name`]), ascending.
    pub fn epochs(&self) -> Vec<u64> {
        let mut out: Vec<u64> = self
            .stages
            .iter()
            .filter_map(|s| parse_epoch_stage(&s.name).map(|(e, _)| e))
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stage(name: &str, durs: Vec<f64>, net: f64) -> StageMetrics {
        let work: f64 = durs.iter().sum();
        let span = durs.iter().fold(0.0f64, |a, &b| a.max(b));
        StageMetrics {
            name: name.to_string(),
            num_tasks: durs.len(),
            workers: 4,
            scheduler: "fifo".to_string(),
            makespan: span,
            work,
            span,
            imbalance: 1.0,
            task_durations: durs,
            network_time: net,
        }
    }

    #[test]
    fn load_imbalance_ratio() {
        let s = stage("x", vec![1.0, 2.0, 4.0], 0.0);
        assert_eq!(s.load_imbalance(), 4.0);
    }

    #[test]
    fn load_imbalance_degenerate_is_one() {
        assert_eq!(stage("x", vec![], 0.0).load_imbalance(), 1.0);
        assert_eq!(stage("x", vec![0.0, 5.0], 0.0).load_imbalance(), 1.0);
    }

    #[test]
    fn elapsed_includes_network() {
        let s = stage("x", vec![1.0], 0.25);
        assert_eq!(s.elapsed(), 1.25);
    }

    #[test]
    fn lower_bound_is_max_of_avg_and_span() {
        // 4 workers: work 8, span 5 -> bound is the span.
        let s = stage("x", vec![5.0, 1.0, 1.0, 0.5, 0.5], 0.0);
        assert_eq!(s.makespan_lower_bound(), 5.0);
        // work 8, span 2 on 4 workers -> bound is work/workers = 2.
        let s = stage("x", vec![2.0, 2.0, 2.0, 2.0], 0.0);
        assert_eq!(s.makespan_lower_bound(), 2.0);
    }

    #[test]
    fn report_prefix_sums() {
        let r = EngineReport {
            stages: vec![
                stage("phase1:partition", vec![1.0], 0.0),
                stage("phase1:dict", vec![0.5], 0.5),
                stage("phase2:subgraph", vec![2.0], 0.0),
            ],
            trace: Trace::default(),
        };
        assert_eq!(r.elapsed_with_prefix("phase1"), 2.0);
        assert_eq!(r.elapsed_with_prefix("phase2"), 2.0);
        assert_eq!(r.total_elapsed(), 4.0);
    }

    #[test]
    fn epoch_stage_names_round_trip() {
        assert_eq!(epoch_stage_name(3, "repair"), "epoch-3:repair");
        assert_eq!(parse_epoch_stage("epoch-3:repair"), Some((3, "repair")));
        assert_eq!(parse_epoch_stage("phase2:local"), None);
        assert_eq!(parse_epoch_stage("epoch-x:repair"), None);
        assert_eq!(parse_epoch_stage("epoch-3"), None);
    }

    #[test]
    fn report_lists_distinct_epochs_in_order() {
        let r = EngineReport {
            stages: vec![
                stage("epoch-2:repair", vec![1.0], 0.0),
                stage("epoch-1:ingest", vec![1.0], 0.0),
                stage("epoch-1:repair", vec![1.0], 0.0),
                stage("phase2:local", vec![1.0], 0.0),
            ],
            trace: Trace::default(),
        };
        assert_eq!(r.epochs(), vec![1, 2]);
    }

    #[test]
    fn report_prefix_imbalance_takes_max() {
        let r = EngineReport {
            stages: vec![
                stage("phase2:a", vec![1.0, 3.0], 0.0),
                stage("phase2:b", vec![1.0, 1.5], 0.0),
                stage("phase3:c", vec![1.0, 100.0], 0.0),
            ],
            trace: Trace::default(),
        };
        assert_eq!(r.load_imbalance_with_prefix("phase2"), 3.0);
    }
}
