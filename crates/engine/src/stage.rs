//! The engine: stage execution against a virtual cluster.

use crate::cost::CostModel;
use crate::metrics::{EngineReport, StageMetrics};
use crate::pool;
use crate::sched::{Fifo, Scheduler};
use crate::task::{RetryPolicy, StageError, TaskCtx, TaskError};
use crate::trace::{NetworkEvent, NetworkKind, TaskSpan};
use std::sync::Mutex;

/// Result of running one stage: ordered task outputs plus metrics.
#[derive(Debug)]
pub struct StageResult<T> {
    /// Task outputs, in task (partition) order.
    pub outputs: Vec<T>,
    /// The stage's metrics (also appended to the engine report).
    pub metrics: StageMetrics,
}

/// Mutable engine state behind one lock: the metrics report and the
/// virtual clock the trace timeline is built on.
#[derive(Debug)]
struct EngineState {
    report: EngineReport,
    clock: f64,
}

/// A simulated cluster executing MapReduce-style stages.
///
/// `virtual_workers` controls the simulated cluster width (the paper's
/// core count); physical execution always uses the local machine fully.
/// The scheduling policy and the per-task retry policy are pluggable.
///
/// ```
/// use rpdbscan_engine::Engine;
///
/// let engine = Engine::new(4);
/// let result = engine
///     .run_stage("square", vec![1u64, 2, 3], |_ctx, x| Ok(x * x))
///     .unwrap();
/// assert_eq!(result.outputs, vec![1, 4, 9]);
/// engine.broadcast_cost("ship-dictionary", 1_000_000);
/// assert_eq!(engine.report().stages.len(), 2);
/// ```
#[derive(Debug)]
pub struct Engine {
    virtual_workers: usize,
    physical_threads: usize,
    cost: CostModel,
    scheduler: Box<dyn Scheduler>,
    retry: RetryPolicy,
    state: Mutex<EngineState>,
}

impl Engine {
    /// An engine with `virtual_workers` simulated workers and the default
    /// cost model, FIFO scheduler, and no-retry policy.
    pub fn new(virtual_workers: usize) -> Self {
        Self::with_cost_model(virtual_workers, CostModel::default())
    }

    /// An engine with an explicit cost model.
    pub fn with_cost_model(virtual_workers: usize, cost: CostModel) -> Self {
        let virtual_workers = virtual_workers.max(1);
        Self {
            virtual_workers,
            physical_threads: pool::physical_threads(),
            cost,
            scheduler: Box::new(Fifo),
            retry: RetryPolicy::none(),
            state: Mutex::new(EngineState {
                report: EngineReport {
                    stages: Vec::new(),
                    trace: crate::trace::Trace {
                        workers: virtual_workers,
                        ..Default::default()
                    },
                },
                clock: 0.0,
            }),
        }
    }

    /// Replaces the scheduling policy (builder style).
    pub fn with_scheduler(mut self, scheduler: impl Scheduler + 'static) -> Self {
        self.scheduler = Box::new(scheduler);
        self
    }

    /// Replaces the per-task retry policy (builder style).
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Number of simulated workers.
    pub fn workers(&self) -> usize {
        self.virtual_workers
    }

    /// The engine's cost model.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// Name of the active scheduling policy.
    pub fn scheduler_name(&self) -> &'static str {
        self.scheduler.name()
    }

    /// Runs one stage: applies `f` to every input (a partition) on the
    /// physical pool, measures each task, and places the measured
    /// durations onto the virtual cluster with the engine's scheduler.
    ///
    /// A task fails by returning `Err` or panicking (panics are caught,
    /// not propagated); failures are retried per the engine's
    /// [`RetryPolicy`], and the first task to exhaust its retries fails
    /// the stage — remaining tasks are cancelled and the [`StageError`]
    /// propagates to the caller.
    pub fn run_stage<I, T, F>(
        &self,
        name: &str,
        inputs: Vec<I>,
        f: F,
    ) -> Result<StageResult<T>, StageError>
    where
        I: Send + Clone,
        T: Send,
        F: Fn(&TaskCtx, I) -> Result<T, TaskError> + Sync,
    {
        let batch = pool::run_batch(
            self.physical_threads,
            name,
            self.virtual_workers,
            self.retry,
            inputs,
            f,
        )?;
        let mut durations = batch.durations;
        // Task times are reported the way Spark's counters report them —
        // including launch overhead. This also floors sub-millisecond
        // tasks so load-imbalance ratios reflect scheduling reality
        // rather than timer noise.
        for d in &mut durations {
            *d += self.cost.per_task_overhead_sec;
        }
        let schedule = self.scheduler.schedule(&durations, self.virtual_workers);
        let work: f64 = durations.iter().sum();
        let span = durations.iter().fold(0.0f64, |a, &b| a.max(b));
        let lower = (work / self.virtual_workers as f64).max(span);
        let imbalance = if lower > 0.0 {
            schedule.makespan / lower
        } else {
            1.0
        };
        let metrics = StageMetrics {
            name: name.to_string(),
            num_tasks: durations.len(),
            workers: self.virtual_workers,
            scheduler: self.scheduler.name().to_string(),
            makespan: schedule.makespan,
            work,
            span,
            imbalance,
            task_durations: durations.clone(),
            network_time: 0.0,
        };
        let mut state = self.state.lock().unwrap_or_else(|p| p.into_inner());
        let clock = state.clock;
        for (task, placement) in schedule.placements.iter().enumerate() {
            state.report.trace.spans.push(TaskSpan {
                stage: name.to_string(),
                task,
                worker: placement.worker,
                start: clock + placement.start,
                duration: durations[task],
            });
        }
        state.clock += metrics.elapsed();
        state.report.stages.push(metrics.clone());
        Ok(StageResult {
            outputs: batch.outputs,
            metrics,
        })
    }

    /// Charges the cost of broadcasting `bytes` to every worker as a
    /// zero-task stage (Phase I's dictionary broadcast).
    pub fn broadcast_cost(&self, name: &str, bytes: u64) -> f64 {
        let t = self.cost.broadcast_time(bytes, self.virtual_workers);
        self.charge_network(name, NetworkKind::Broadcast, bytes, t);
        t
    }

    /// Charges the cost of shuffling `bytes` point-to-point (Phase III's
    /// subgraph exchanges between merge rounds).
    pub fn shuffle_cost(&self, name: &str, bytes: u64) -> f64 {
        let t = self.cost.transfer_time(bytes);
        self.charge_network(name, NetworkKind::Shuffle, bytes, t);
        t
    }

    fn charge_network(&self, name: &str, kind: NetworkKind, bytes: u64, seconds: f64) {
        let mut state = self.state.lock().unwrap_or_else(|p| p.into_inner());
        let clock = state.clock;
        state.report.trace.events.push(NetworkEvent {
            name: name.to_string(),
            kind,
            bytes,
            start: clock,
            duration: seconds,
        });
        state.clock += seconds;
        state.report.stages.push(StageMetrics {
            name: name.to_string(),
            num_tasks: 0,
            workers: self.virtual_workers,
            scheduler: self.scheduler.name().to_string(),
            task_durations: Vec::new(),
            makespan: 0.0,
            work: 0.0,
            span: 0.0,
            imbalance: 1.0,
            network_time: seconds,
        });
    }

    /// Snapshot of everything run so far, trace included.
    pub fn report(&self) -> EngineReport {
        self.state
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .report
            .clone()
    }

    /// Clears accumulated metrics and trace (between experiment
    /// repetitions).
    pub fn reset(&self) {
        let mut state = self.state.lock().unwrap_or_else(|p| p.into_inner());
        state.report.stages.clear();
        state.report.trace.spans.clear();
        state.report.trace.events.clear();
        state.clock = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::Lpt;

    #[test]
    fn stage_outputs_ordered_and_logged() {
        let e = Engine::with_cost_model(4, CostModel::free());
        let r = e
            .run_stage("double", (0..10u64).collect(), |_, x| Ok(x * 2))
            .unwrap();
        assert_eq!(r.outputs, (0..10).map(|x| x * 2).collect::<Vec<_>>());
        assert_eq!(r.metrics.num_tasks, 10);
        assert_eq!(r.metrics.scheduler, "fifo");
        let rep = e.report();
        assert_eq!(rep.stages.len(), 1);
        assert_eq!(rep.stages[0].name, "double");
    }

    #[test]
    fn broadcast_and_shuffle_costs_recorded() {
        let e = Engine::new(8);
        let b = e.broadcast_cost("bc", 1_000_000);
        let s = e.shuffle_cost("sh", 500_000);
        assert!(b > 0.0 && s > 0.0);
        let rep = e.report();
        assert_eq!(rep.stages.len(), 2);
        assert!((rep.total_elapsed() - (b + s)).abs() < 1e-12);
        assert_eq!(rep.trace.events.len(), 2);
        assert_eq!(rep.trace.events[0].kind, NetworkKind::Broadcast);
        assert_eq!(rep.trace.events[1].kind, NetworkKind::Shuffle);
        // Second event starts when the first finishes.
        assert!((rep.trace.events[1].start - b).abs() < 1e-12);
    }

    #[test]
    fn reset_clears_report_and_trace() {
        let e = Engine::new(2);
        e.run_stage("x", vec![1, 2, 3], |_, v| Ok(v)).unwrap();
        e.broadcast_cost("bc", 1024);
        e.reset();
        let rep = e.report();
        assert!(rep.stages.is_empty());
        assert!(rep.trace.spans.is_empty());
        assert!(rep.trace.events.is_empty());
    }

    #[test]
    fn failing_task_fails_stage_without_abort() {
        let e = Engine::with_cost_model(4, CostModel::free());
        let err = e
            .run_stage("poisoned", (0..8u32).collect(), |_, x| {
                if x == 6 {
                    Err(TaskError::new("bad partition"))
                } else {
                    Ok(x)
                }
            })
            .unwrap_err();
        assert_eq!(err.stage, "poisoned");
        assert_eq!(err.task, 6);
        // A failed stage records no metrics.
        assert!(e.report().stages.is_empty());
        // The engine stays usable afterwards.
        let r = e.run_stage("after", vec![1u32], |_, x| Ok(x)).unwrap();
        assert_eq!(r.outputs, vec![1]);
    }

    #[test]
    fn trace_spans_cover_every_task_on_valid_lanes() {
        let e = Engine::with_cost_model(3, CostModel::free());
        e.run_stage("a", vec![(); 7], |_, ()| Ok(())).unwrap();
        e.run_stage("b", vec![(); 5], |_, ()| Ok(())).unwrap();
        let rep = e.report();
        assert_eq!(rep.trace.spans.len(), 12);
        assert!(rep.trace.spans.iter().all(|s| s.worker < 3));
        assert_eq!(rep.trace.workers, 3);
        // Stage b's spans start at or after stage a's elapsed time.
        let a_elapsed = rep.stages[0].elapsed();
        for span in rep.trace.spans.iter().filter(|s| s.stage == "b") {
            assert!(span.start >= a_elapsed - 1e-12);
        }
        let json = rep.chrome_trace_json();
        assert!(json.contains("\"ph\":\"X\""));
    }

    #[test]
    fn scheduler_is_pluggable() {
        let e = Engine::with_cost_model(2, CostModel::free()).with_scheduler(Lpt);
        assert_eq!(e.scheduler_name(), "lpt");
        let r = e.run_stage("s", vec![1, 2, 3], |_, v| Ok(v)).unwrap();
        assert_eq!(r.metrics.scheduler, "lpt");
    }

    #[test]
    fn retry_policy_is_engine_wide() {
        let e =
            Engine::with_cost_model(2, CostModel::free()).with_retry(RetryPolicy::with_attempts(2));
        let r = e
            .run_stage("flaky", vec![5u32], |ctx, x| {
                if ctx.attempt() == 1 {
                    Err(TaskError::new("transient"))
                } else {
                    Ok(x)
                }
            })
            .unwrap();
        assert_eq!(r.outputs, vec![5]);
    }

    #[test]
    fn work_span_imbalance_are_consistent() {
        let e = Engine::with_cost_model(4, CostModel::free());
        let r = e
            .run_stage("m", vec![1u64, 2, 3, 4, 5, 6, 7, 8], |_, x| {
                // Busy-wait proportional to x so durations are non-trivial.
                let start = std::time::Instant::now();
                while start.elapsed().as_micros() < x as u128 * 200 {}
                Ok(x)
            })
            .unwrap();
        let m = &r.metrics;
        assert!((m.work - m.total_cpu()).abs() < 1e-12);
        assert!(m.span <= m.work + 1e-12);
        assert!(m.makespan >= m.makespan_lower_bound() - 1e-12);
        assert!(m.imbalance >= 1.0 - 1e-9);
    }
}
