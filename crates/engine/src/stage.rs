//! The engine: stage execution against a virtual cluster.

use crate::cost::CostModel;
use crate::metrics::{EngineReport, StageMetrics};
use crate::pool;
use parking_lot::Mutex;
use std::collections::BinaryHeap;
use std::cmp::Reverse;

/// Result of running one stage: ordered task outputs plus metrics.
#[derive(Debug)]
pub struct StageResult<T> {
    /// Task outputs, in task (partition) order.
    pub outputs: Vec<T>,
    /// The stage's metrics (also appended to the engine report).
    pub metrics: StageMetrics,
}

/// A simulated cluster executing MapReduce-style stages.
///
/// `virtual_workers` controls the simulated cluster width (the paper's
/// core count); physical execution always uses the local machine fully.
///
/// ```
/// use rpdbscan_engine::Engine;
///
/// let engine = Engine::new(4);
/// let result = engine.run_stage("square", vec![1u64, 2, 3], |_, x| x * x);
/// assert_eq!(result.outputs, vec![1, 4, 9]);
/// engine.broadcast_cost("ship-dictionary", 1_000_000);
/// assert_eq!(engine.report().stages.len(), 2);
/// ```
#[derive(Debug)]
pub struct Engine {
    virtual_workers: usize,
    physical_threads: usize,
    cost: CostModel,
    report: Mutex<EngineReport>,
}

impl Engine {
    /// An engine with `virtual_workers` simulated workers and the default
    /// cost model.
    pub fn new(virtual_workers: usize) -> Self {
        Self::with_cost_model(virtual_workers, CostModel::default())
    }

    /// An engine with an explicit cost model.
    pub fn with_cost_model(virtual_workers: usize, cost: CostModel) -> Self {
        Self {
            virtual_workers: virtual_workers.max(1),
            physical_threads: pool::physical_threads(),
            cost,
            report: Mutex::new(EngineReport::default()),
        }
    }

    /// Number of simulated workers.
    pub fn workers(&self) -> usize {
        self.virtual_workers
    }

    /// The engine's cost model.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// Runs one stage: applies `f` to every input (a partition), measures
    /// each task, and schedules the measured durations onto the virtual
    /// cluster.
    pub fn run_stage<I, T, F>(&self, name: &str, inputs: Vec<I>, f: F) -> StageResult<T>
    where
        I: Send,
        T: Send,
        F: Fn(usize, I) -> T + Sync,
    {
        let (outputs, mut durations) = pool::run_batch(self.physical_threads, inputs, f);
        // Task times are reported the way Spark's counters report them —
        // including launch overhead. This also floors sub-millisecond
        // tasks so load-imbalance ratios reflect scheduling reality
        // rather than timer noise.
        for d in &mut durations {
            *d += self.cost.per_task_overhead_sec;
        }
        let makespan = simulate_makespan(&durations, self.virtual_workers, 0.0);
        let metrics = StageMetrics {
            name: name.to_string(),
            num_tasks: durations.len(),
            workers: self.virtual_workers,
            task_durations: durations,
            makespan,
            network_time: 0.0,
        };
        self.report.lock().stages.push(metrics.clone());
        StageResult { outputs, metrics }
    }

    /// Charges the cost of broadcasting `bytes` to every worker as a
    /// zero-task stage (Phase I's dictionary broadcast).
    pub fn broadcast_cost(&self, name: &str, bytes: u64) -> f64 {
        let t = self.cost.broadcast_time(bytes, self.virtual_workers);
        self.charge_network(name, t);
        t
    }

    /// Charges the cost of shuffling `bytes` point-to-point (Phase III's
    /// subgraph exchanges between merge rounds).
    pub fn shuffle_cost(&self, name: &str, bytes: u64) -> f64 {
        let t = self.cost.transfer_time(bytes);
        self.charge_network(name, t);
        t
    }

    fn charge_network(&self, name: &str, seconds: f64) {
        self.report.lock().stages.push(StageMetrics {
            name: name.to_string(),
            num_tasks: 0,
            workers: self.virtual_workers,
            task_durations: Vec::new(),
            makespan: 0.0,
            network_time: seconds,
        });
    }

    /// Snapshot of everything run so far.
    pub fn report(&self) -> EngineReport {
        self.report.lock().clone()
    }

    /// Clears accumulated metrics (between experiment repetitions).
    pub fn reset(&self) {
        self.report.lock().stages.clear();
    }
}

/// FIFO list scheduling: each task (in submission order) starts on the
/// earliest-available worker; returns the simulated makespan.
fn simulate_makespan(durations: &[f64], workers: usize, per_task_overhead: f64) -> f64 {
    if durations.is_empty() {
        return 0.0;
    }
    // Min-heap of worker available-times, keyed by f64 bits (all values
    // are non-negative finite, so the bit ordering matches numeric order).
    let mut heap: BinaryHeap<Reverse<(u64, usize)>> = (0..workers.max(1))
        .map(|w| Reverse((0u64, w)))
        .collect();
    let mut makespan = 0.0f64;
    for &d in durations {
        let Reverse((bits, w)) = heap.pop().expect("non-empty heap");
        let available = f64::from_bits(bits);
        let finish = available + d + per_task_overhead;
        makespan = makespan.max(finish);
        heap.push(Reverse((finish.to_bits(), w)));
    }
    makespan
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn makespan_single_worker_is_sum() {
        let m = simulate_makespan(&[1.0, 2.0, 3.0], 1, 0.0);
        assert!((m - 6.0).abs() < 1e-12);
    }

    #[test]
    fn makespan_many_workers_is_max() {
        let m = simulate_makespan(&[1.0, 2.0, 3.0], 8, 0.0);
        assert!((m - 3.0).abs() < 1e-12);
    }

    #[test]
    fn makespan_two_workers_fifo() {
        // FIFO on 2 workers: w0=[3], w1=[1,2] -> makespan 3.
        let m = simulate_makespan(&[3.0, 1.0, 2.0], 2, 0.0);
        assert!((m - 3.0).abs() < 1e-12);
        // Adverse order: w0=[1,3], w1=[2] -> makespan 4.
        let m = simulate_makespan(&[1.0, 2.0, 3.0], 2, 0.0);
        assert!((m - 4.0).abs() < 1e-12);
    }

    #[test]
    fn overhead_charged_per_task() {
        let m = simulate_makespan(&[1.0, 1.0], 1, 0.5);
        assert!((m - 3.0).abs() < 1e-12);
    }

    #[test]
    fn stage_outputs_ordered_and_logged() {
        let e = Engine::with_cost_model(4, CostModel::free());
        let r = e.run_stage("double", (0..10u64).collect(), |_, x| x * 2);
        assert_eq!(r.outputs, (0..10).map(|x| x * 2).collect::<Vec<_>>());
        assert_eq!(r.metrics.num_tasks, 10);
        let rep = e.report();
        assert_eq!(rep.stages.len(), 1);
        assert_eq!(rep.stages[0].name, "double");
    }

    #[test]
    fn broadcast_and_shuffle_costs_recorded() {
        let e = Engine::new(8);
        let b = e.broadcast_cost("bc", 1_000_000);
        let s = e.shuffle_cost("sh", 500_000);
        assert!(b > 0.0 && s > 0.0);
        let rep = e.report();
        assert_eq!(rep.stages.len(), 2);
        assert!((rep.total_elapsed() - (b + s)).abs() < 1e-12);
    }

    #[test]
    fn reset_clears_report() {
        let e = Engine::new(2);
        e.run_stage("x", vec![1, 2, 3], |_, v| v);
        e.reset();
        assert!(e.report().stages.is_empty());
    }

    #[test]
    fn more_workers_never_slower() {
        let durs: Vec<f64> = (0..50).map(|i| (i % 7) as f64 * 0.1 + 0.05).collect();
        let mut prev = f64::INFINITY;
        for w in [1, 2, 4, 8, 16, 64] {
            let m = simulate_makespan(&durs, w, 0.0);
            assert!(m <= prev + 1e-12, "w={w}: {m} > {prev}");
            prev = m;
        }
    }

    #[test]
    fn virtual_scaling_of_uniform_tasks_is_linear() {
        let durs = vec![1.0; 40];
        let m5 = simulate_makespan(&durs, 5, 0.0);
        let m40 = simulate_makespan(&durs, 40, 0.0);
        assert!((m5 / m40 - 8.0).abs() < 1e-9);
    }
}
