//! Task-level types of the Stage API: execution context, task errors,
//! retry policy, and the stage-level failure surfaced to drivers.

use std::any::Any;
use std::error::Error;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};

/// Execution context handed to every task closure.
///
/// Carries the identity of the running task (stage name, task index,
/// virtual worker lane, attempt number) and a cooperative cancellation
/// flag: once any task in the batch fails hard, the flag flips and
/// long-running tasks can bail out early via [`TaskCtx::is_cancelled`].
#[derive(Debug)]
pub struct TaskCtx<'a> {
    stage: &'a str,
    index: usize,
    virtual_worker: usize,
    attempt: usize,
    cancel: &'a AtomicBool,
}

impl<'a> TaskCtx<'a> {
    /// Builds a context; called by the pool for each attempt.
    pub(crate) fn new(
        stage: &'a str,
        index: usize,
        virtual_worker: usize,
        attempt: usize,
        cancel: &'a AtomicBool,
    ) -> Self {
        Self {
            stage,
            index,
            virtual_worker,
            attempt,
            cancel,
        }
    }

    /// Name of the stage this task belongs to.
    pub fn stage(&self) -> &str {
        self.stage
    }

    /// Task index within the stage (partition number), `0..num_tasks`.
    pub fn index(&self) -> usize {
        self.index
    }

    /// The virtual worker lane this task is nominally assigned to
    /// (round-robin over the simulated cluster width). Useful for
    /// per-worker seeding; the scheduler may place the measured task on
    /// a different lane in the simulated timeline.
    pub fn virtual_worker(&self) -> usize {
        self.virtual_worker
    }

    /// 1-based attempt number (`1` on the first run, `2` on the first
    /// retry, ...).
    pub fn attempt(&self) -> usize {
        self.attempt
    }

    /// True once another task in the batch has failed hard; cooperative
    /// tasks should return promptly (any `Err` is fine — the batch
    /// already failed).
    pub fn is_cancelled(&self) -> bool {
        // sync: best-effort cooperative-cancel probe — a stale `false`
        // just lets this attempt finish; no result data depends on it.
        self.cancel.load(Ordering::Relaxed)
    }
}

/// Failure of one task attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskError {
    /// Human-readable description of the failure.
    pub message: String,
}

impl TaskError {
    /// A task error with the given message.
    pub fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }

    /// Converts a caught panic payload into a task error.
    pub(crate) fn from_panic(payload: Box<dyn Any + Send>) -> Self {
        let message = if let Some(s) = payload.downcast_ref::<&str>() {
            format!("task panicked: {s}")
        } else if let Some(s) = payload.downcast_ref::<String>() {
            format!("task panicked: {s}")
        } else {
            "task panicked".to_string()
        };
        Self { message }
    }
}

impl fmt::Display for TaskError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl Error for TaskError {}

impl From<String> for TaskError {
    fn from(message: String) -> Self {
        Self { message }
    }
}

impl From<&str> for TaskError {
    fn from(message: &str) -> Self {
        Self::new(message)
    }
}

/// How many times the pool runs a failing task before giving up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per task, including the first (`1` = no retry).
    pub max_attempts: usize,
}

impl RetryPolicy {
    /// No retries: every failure is immediately hard.
    pub fn none() -> Self {
        Self { max_attempts: 1 }
    }

    /// Up to `max_attempts` total attempts per task.
    pub fn with_attempts(max_attempts: usize) -> Self {
        Self {
            max_attempts: max_attempts.max(1),
        }
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self::none()
    }
}

/// A stage that failed: the first task whose retries were exhausted.
///
/// Once a stage fails, remaining queued tasks are cancelled and the
/// error propagates to the driver (e.g. as `CoreError::Stage` out of
/// `RpDbscan::run`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageError {
    /// Name of the failing stage.
    pub stage: String,
    /// Index of the task that failed.
    pub task: usize,
    /// Attempts made before giving up.
    pub attempts: usize,
    /// The final attempt's error.
    pub error: TaskError,
}

impl fmt::Display for StageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "stage `{}` failed: task {} failed after {} attempt{}: {}",
            self.stage,
            self.task,
            self.attempts,
            if self.attempts == 1 { "" } else { "s" },
            self.error
        )
    }
}

impl Error for StageError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        Some(&self.error)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ctx_reports_identity_and_cancellation() {
        let cancel = AtomicBool::new(false);
        let ctx = TaskCtx::new("phase2:local", 3, 1, 2, &cancel);
        assert_eq!(ctx.stage(), "phase2:local");
        assert_eq!(ctx.index(), 3);
        assert_eq!(ctx.virtual_worker(), 1);
        assert_eq!(ctx.attempt(), 2);
        assert!(!ctx.is_cancelled());
        cancel.store(true, Ordering::Relaxed);
        assert!(ctx.is_cancelled());
    }

    #[test]
    fn panic_payloads_become_messages() {
        let e = TaskError::from_panic(Box::new("boom"));
        assert_eq!(e.message, "task panicked: boom");
        let e = TaskError::from_panic(Box::new("boom".to_string()));
        assert_eq!(e.message, "task panicked: boom");
        let e = TaskError::from_panic(Box::new(42u32));
        assert_eq!(e.message, "task panicked");
    }

    #[test]
    fn retry_policy_floors_at_one_attempt() {
        assert_eq!(RetryPolicy::with_attempts(0).max_attempts, 1);
        assert_eq!(RetryPolicy::default().max_attempts, 1);
    }

    #[test]
    fn stage_error_display_mentions_stage_and_task() {
        let e = StageError {
            stage: "phase3-1:merge".into(),
            task: 7,
            attempts: 3,
            error: TaskError::new("bad partition"),
        };
        let text = e.to_string();
        assert!(text.contains("phase3-1:merge"));
        assert!(text.contains("task 7"));
        assert!(text.contains("3 attempts"));
        assert!(text.contains("bad partition"));
    }
}
