//! Pluggable schedulers for the virtual cluster.
//!
//! Task durations are measured on the physical pool, then *placed* onto
//! `W` virtual workers by a [`Scheduler`]. The policy determines the
//! simulated makespan and the per-task lanes in the execution trace:
//!
//! * [`Fifo`] — earliest-available worker in submission order; the
//!   greedy policy Spark's scheduler effectively yields for one stage.
//!   This is the engine default.
//! * [`Lpt`] — longest processing time first; the classic 4/3-optimal
//!   list schedule, showing how much of Figure 13's load imbalance is
//!   scheduling artefact versus inherent skew.
//! * [`ChunkedSteal`] — contiguous chunks dealt round-robin, idle
//!   workers steal whole chunks from the most-loaded victim; models a
//!   work-stealing runtime with chunked task granularity.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fmt;

/// Where one task landed in the simulated timeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Placement {
    /// Virtual worker lane, `0..workers`.
    pub worker: usize,
    /// Start time within the stage, seconds from stage start.
    pub start: f64,
}

/// A complete stage schedule: one placement per task, plus the makespan.
#[derive(Debug, Clone, PartialEq)]
pub struct Schedule {
    /// Per-task placements, in task order.
    pub placements: Vec<Placement>,
    /// Finish time of the last task, seconds from stage start.
    pub makespan: f64,
}

impl Schedule {
    fn empty() -> Self {
        Self {
            placements: Vec::new(),
            makespan: 0.0,
        }
    }
}

/// A policy for placing measured task durations onto virtual workers.
pub trait Scheduler: fmt::Debug + Send + Sync {
    /// Short policy name recorded in [`crate::StageMetrics`].
    fn name(&self) -> &'static str;

    /// Places `durations` onto `workers` lanes.
    fn schedule(&self, durations: &[f64], workers: usize) -> Schedule;
}

/// Min-heap of `(available_time, worker)` keyed by f64 bits — all values
/// are non-negative finite, so bit order matches numeric order.
struct WorkerHeap {
    heap: BinaryHeap<Reverse<(u64, usize)>>,
}

impl WorkerHeap {
    fn new(workers: usize) -> Self {
        Self {
            heap: (0..workers.max(1)).map(|w| Reverse((0u64, w))).collect(),
        }
    }

    /// Pops the earliest-available worker.
    fn pop(&mut self) -> (f64, usize) {
        // lint:allow(panic-safety): heap is seeded with >=1 worker and every pop is paired with a push, so it is never empty
        let Reverse((bits, w)) = self.heap.pop().expect("non-empty heap");
        (f64::from_bits(bits), w)
    }

    fn push(&mut self, available: f64, worker: usize) {
        self.heap.push(Reverse((available.to_bits(), worker)));
    }
}

/// FIFO list scheduling: each task, in submission order, starts on the
/// earliest-available worker.
#[derive(Debug, Clone, Copy, Default)]
pub struct Fifo;

impl Scheduler for Fifo {
    fn name(&self) -> &'static str {
        "fifo"
    }

    fn schedule(&self, durations: &[f64], workers: usize) -> Schedule {
        if durations.is_empty() {
            return Schedule::empty();
        }
        let mut heap = WorkerHeap::new(workers);
        let mut placements = Vec::with_capacity(durations.len());
        let mut makespan = 0.0f64;
        for &d in durations {
            let (start, w) = heap.pop();
            let finish = start + d;
            makespan = makespan.max(finish);
            placements.push(Placement { worker: w, start });
            heap.push(finish, w);
        }
        Schedule {
            placements,
            makespan,
        }
    }
}

/// Longest-processing-time-first list scheduling: tasks sorted by
/// descending duration, each placed on the earliest-available worker.
#[derive(Debug, Clone, Copy, Default)]
pub struct Lpt;

impl Scheduler for Lpt {
    fn name(&self) -> &'static str {
        "lpt"
    }

    fn schedule(&self, durations: &[f64], workers: usize) -> Schedule {
        if durations.is_empty() {
            return Schedule::empty();
        }
        let mut order: Vec<usize> = (0..durations.len()).collect();
        // Stable sort keeps ties in submission order, so the schedule is
        // deterministic.
        order.sort_by(|&a, &b| durations[b].total_cmp(&durations[a]));
        let mut heap = WorkerHeap::new(workers);
        let mut placements = vec![
            Placement {
                worker: 0,
                start: 0.0
            };
            durations.len()
        ];
        let mut makespan = 0.0f64;
        for i in order {
            let (start, w) = heap.pop();
            let finish = start + durations[i];
            makespan = makespan.max(finish);
            placements[i] = Placement { worker: w, start };
            heap.push(finish, w);
        }
        Schedule {
            placements,
            makespan,
        }
    }
}

/// Chunked work stealing: tasks are grouped into contiguous chunks of
/// `chunk_size`, dealt round-robin onto workers' local queues; whenever
/// a worker runs out of local work it steals the *last* chunk from the
/// victim with the most remaining queued work.
#[derive(Debug, Clone, Copy)]
pub struct ChunkedSteal {
    /// Tasks per chunk (floored at 1).
    pub chunk_size: usize,
}

impl ChunkedSteal {
    /// A stealing scheduler with the given chunk size.
    pub fn new(chunk_size: usize) -> Self {
        Self {
            chunk_size: chunk_size.max(1),
        }
    }
}

impl Default for ChunkedSteal {
    fn default() -> Self {
        Self::new(4)
    }
}

impl Scheduler for ChunkedSteal {
    fn name(&self) -> &'static str {
        "chunked-steal"
    }

    fn schedule(&self, durations: &[f64], workers: usize) -> Schedule {
        if durations.is_empty() {
            return Schedule::empty();
        }
        let workers = workers.max(1);
        let chunk = self.chunk_size.max(1);
        // Local queues: chunk k (tasks k*chunk..) goes to worker k % W.
        let mut queues: Vec<std::collections::VecDeque<Vec<usize>>> =
            vec![std::collections::VecDeque::new(); workers];
        let mut tasks: Vec<usize> = (0..durations.len()).collect();
        let mut k = 0;
        while !tasks.is_empty() {
            let rest = tasks.split_off(chunk.min(tasks.len()));
            queues[k % workers].push_back(std::mem::replace(&mut tasks, rest));
            k += 1;
        }
        // Event simulation over worker available-times.
        let mut heap = WorkerHeap::new(workers);
        let mut placements = vec![
            Placement {
                worker: 0,
                start: 0.0
            };
            durations.len()
        ];
        let mut makespan = 0.0f64;
        loop {
            let (now, w) = heap.pop();
            // Own queue first (front: owner takes oldest chunk)...
            let chunk_tasks = if let Some(c) = queues[w].pop_front() {
                Some(c)
            } else {
                // ...otherwise steal the newest chunk from the victim
                // with the most queued tasks.
                let victim = (0..workers)
                    .max_by_key(|&v| queues[v].iter().map(Vec::len).sum::<usize>())
                    .filter(|&v| !queues[v].is_empty());
                victim.and_then(|v| queues[v].pop_back())
            };
            let Some(chunk_tasks) = chunk_tasks else {
                // This worker is done; if every queue is empty we are
                // finished once all workers have drained.
                if queues.iter().all(|q| q.is_empty()) {
                    break;
                }
                continue;
            };
            let mut t = now;
            for i in chunk_tasks {
                placements[i] = Placement {
                    worker: w,
                    start: t,
                };
                t += durations[i];
            }
            makespan = makespan.max(t);
            heap.push(t, w);
        }
        Schedule {
            placements,
            makespan,
        }
    }
}

/// Simulated FIFO makespan of `durations` on `workers` lanes — the
/// engine-default policy as a plain function.
pub fn simulate_makespan(durations: &[f64], workers: usize) -> f64 {
    Fifo.schedule(durations, workers).makespan
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_valid(sched: &Schedule, durations: &[f64], workers: usize) {
        assert_eq!(sched.placements.len(), durations.len());
        // No worker runs two tasks at once, every task fits in
        // [0, makespan].
        let mut by_worker: Vec<Vec<(f64, f64)>> = vec![Vec::new(); workers];
        for (i, p) in sched.placements.iter().enumerate() {
            assert!(p.worker < workers, "lane out of range");
            assert!(p.start >= 0.0);
            assert!(p.start + durations[i] <= sched.makespan + 1e-9);
            by_worker[p.worker].push((p.start, p.start + durations[i]));
        }
        for lane in &mut by_worker {
            lane.sort_by(|a, b| a.0.total_cmp(&b.0));
            for pair in lane.windows(2) {
                assert!(pair[0].1 <= pair[1].0 + 1e-9, "overlap on a lane");
            }
        }
    }

    #[test]
    fn fifo_matches_known_makespans() {
        assert!((simulate_makespan(&[1.0, 2.0, 3.0], 1) - 6.0).abs() < 1e-12);
        assert!((simulate_makespan(&[1.0, 2.0, 3.0], 8) - 3.0).abs() < 1e-12);
        // FIFO on 2 workers: w0=[3], w1=[1,2] -> 3; adverse order -> 4.
        assert!((simulate_makespan(&[3.0, 1.0, 2.0], 2) - 3.0).abs() < 1e-12);
        assert!((simulate_makespan(&[1.0, 2.0, 3.0], 2) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn lpt_beats_fifo_on_adverse_order() {
        let durs = [1.0, 2.0, 3.0];
        let fifo = Fifo.schedule(&durs, 2);
        let lpt = Lpt.schedule(&durs, 2);
        assert!((fifo.makespan - 4.0).abs() < 1e-12);
        assert!((lpt.makespan - 3.0).abs() < 1e-12);
        check_valid(&fifo, &durs, 2);
        check_valid(&lpt, &durs, 2);
    }

    #[test]
    fn all_policies_produce_valid_schedules() {
        let durs: Vec<f64> = (0..37)
            .map(|i| ((i * 7 + 3) % 11) as f64 * 0.1 + 0.05)
            .collect();
        for workers in [1, 2, 5, 8, 64] {
            for sched in [
                &Fifo as &dyn Scheduler,
                &Lpt,
                &ChunkedSteal::new(1),
                &ChunkedSteal::new(4),
                &ChunkedSteal::new(100),
            ] {
                let s = sched.schedule(&durs, workers);
                check_valid(&s, &durs, workers);
                let total: f64 = durs.iter().sum();
                let max = durs.iter().fold(0.0f64, |a, &b| a.max(b));
                let lower = (total / workers as f64).max(max);
                assert!(
                    s.makespan >= lower - 1e-9 && s.makespan <= total + 1e-9,
                    "{} on {workers} workers: makespan {} outside [{lower}, {total}]",
                    sched.name(),
                    s.makespan
                );
            }
        }
    }

    #[test]
    fn empty_input_yields_empty_schedule() {
        for sched in [&Fifo as &dyn Scheduler, &Lpt, &ChunkedSteal::default()] {
            let s = sched.schedule(&[], 4);
            assert!(s.placements.is_empty());
            assert_eq!(s.makespan, 0.0);
        }
    }

    #[test]
    fn chunked_steal_keeps_every_worker_busy() {
        // 8 equal tasks, 4 workers, chunk 1: perfect balance.
        let durs = vec![1.0; 8];
        let s = ChunkedSteal::new(1).schedule(&durs, 4);
        assert!((s.makespan - 2.0).abs() < 1e-12);
        // One giant chunk on worker 0: stealing rescues the idle workers
        // only at chunk granularity, so makespan stays the chunk's span.
        let s = ChunkedSteal::new(8).schedule(&durs, 4);
        assert!((s.makespan - 8.0).abs() < 1e-12);
    }

    #[test]
    fn uniform_tasks_scale_linearly() {
        let durs = vec![1.0; 40];
        let m5 = simulate_makespan(&durs, 5);
        let m40 = simulate_makespan(&durs, 40);
        assert!((m5 / m40 - 8.0).abs() < 1e-9);
    }
}
