//! Execution tracing: one span per task on the simulated timeline,
//! exportable as Chrome trace-event JSON (loadable in Perfetto or
//! `chrome://tracing`).
//!
//! Stages execute sequentially in every reproduced algorithm, so the
//! engine keeps a virtual clock that advances by each stage's elapsed
//! time; spans are placed at `clock + placement.start`. Virtual worker
//! `w` renders as thread lane `tid = w`; network events (broadcasts and
//! shuffles) render on a dedicated lane one past the last worker.

use rpdbscan_json::Value;

/// One task's occupancy of a virtual worker lane.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskSpan {
    /// Stage the task belongs to.
    pub stage: String,
    /// Task index within the stage.
    pub task: usize,
    /// Virtual worker lane the scheduler placed the task on.
    pub worker: usize,
    /// Start time on the global virtual timeline, seconds.
    pub start: f64,
    /// Measured task duration, seconds.
    pub duration: f64,
}

/// Kind of a simulated network transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetworkKind {
    /// One-to-all broadcast (Phase I dictionary shipping).
    Broadcast,
    /// Point-to-point shuffle (Phase III subgraph exchange).
    Shuffle,
}

impl NetworkKind {
    fn label(self) -> &'static str {
        match self {
            NetworkKind::Broadcast => "broadcast",
            NetworkKind::Shuffle => "shuffle",
        }
    }
}

/// One simulated network transfer on the global timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkEvent {
    /// Name of the charging stage (e.g. `"phase1-2:broadcast"`).
    pub name: String,
    /// Broadcast or shuffle.
    pub kind: NetworkKind,
    /// Bytes moved.
    pub bytes: u64,
    /// Start time on the global virtual timeline, seconds.
    pub start: f64,
    /// Charged transfer time, seconds.
    pub duration: f64,
}

/// Everything recorded about one engine run's timeline.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    /// Task spans in completion-record order.
    pub spans: Vec<TaskSpan>,
    /// Network transfers in charge order.
    pub events: Vec<NetworkEvent>,
    /// Virtual cluster width; network events render on lane `workers`.
    pub workers: usize,
}

impl Trace {
    /// Exports the trace in Chrome trace-event JSON array format.
    ///
    /// Each entry is a complete event (`"ph":"X"`) with microsecond
    /// `ts`/`dur`; `tid` is the virtual worker lane (network events use
    /// lane `workers`). Load the file in <https://ui.perfetto.dev> or
    /// `chrome://tracing`.
    pub fn to_chrome_json(&self) -> String {
        let mut entries = Vec::with_capacity(self.spans.len() + self.events.len());
        for span in &self.spans {
            let mut e = Value::object();
            e.insert("name", format!("{}[{}]", span.stage, span.task));
            e.insert("cat", "task");
            e.insert("ph", "X");
            e.insert("ts", span.start * 1e6);
            e.insert("dur", span.duration * 1e6);
            e.insert("pid", 0i64);
            e.insert("tid", span.worker);
            let mut args = Value::object();
            args.insert("stage", span.stage.as_str());
            args.insert("task", span.task);
            e.insert("args", args);
            entries.push(e);
        }
        for ev in &self.events {
            let mut e = Value::object();
            e.insert("name", ev.name.as_str());
            e.insert("cat", "network");
            e.insert("ph", "X");
            e.insert("ts", ev.start * 1e6);
            e.insert("dur", ev.duration * 1e6);
            e.insert("pid", 0i64);
            e.insert("tid", self.workers);
            let mut args = Value::object();
            args.insert("kind", ev.kind.label());
            args.insert("bytes", ev.bytes as i64);
            e.insert("args", args);
            entries.push(e);
        }
        Value::Array(entries).to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        Trace {
            spans: vec![
                TaskSpan {
                    stage: "phase2:local".into(),
                    task: 0,
                    worker: 0,
                    start: 0.0,
                    duration: 0.5,
                },
                TaskSpan {
                    stage: "phase2:local".into(),
                    task: 1,
                    worker: 1,
                    start: 0.0,
                    duration: 0.25,
                },
            ],
            events: vec![NetworkEvent {
                name: "phase1-2:broadcast".into(),
                kind: NetworkKind::Broadcast,
                bytes: 1024,
                start: 0.5,
                duration: 0.1,
            }],
            workers: 2,
        }
    }

    #[test]
    fn chrome_json_has_required_fields() {
        let json = sample().to_chrome_json();
        assert!(json.starts_with('[') && json.ends_with(']'));
        for key in [
            "\"ph\":\"X\"",
            "\"ts\":",
            "\"dur\":",
            "\"tid\":",
            "\"pid\":0",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        assert!(json.contains("\"name\":\"phase2:local[0]\""));
        assert!(json.contains("\"cat\":\"network\""));
        // Network lane is one past the last worker lane.
        assert!(json.contains("\"tid\":2"));
    }

    #[test]
    fn timestamps_are_microseconds() {
        let json = sample().to_chrome_json();
        // 0.5 s duration -> 500000 µs.
        assert!(json.contains("\"dur\":500000.0"), "{json}");
        // broadcast starts at 0.5 s -> ts 500000 µs.
        assert!(json.contains("\"ts\":500000.0"), "{json}");
    }

    #[test]
    fn empty_trace_is_empty_array() {
        assert_eq!(Trace::default().to_chrome_json(), "[]");
    }
}
