//! Physical task execution: a scoped worker pool over crossbeam channels.
//!
//! The pool's only job is to run a batch of closures on real OS threads
//! and measure each closure's wall-clock duration. Cluster semantics
//! (virtual workers, scheduling, network) live in [`crate::stage`]; this
//! module is deliberately dumb and allocation-light.

use crossbeam::channel;
use std::time::Instant;

/// Runs `f(i, input_i)` for every input on up to `threads` OS threads and
/// returns `(outputs, durations_sec)` in input order.
///
/// Panics in task closures propagate (the scope re-raises them) — a
/// clustering task that panics is a bug, not a recoverable condition.
pub fn run_batch<I, T, F>(threads: usize, inputs: Vec<I>, f: F) -> (Vec<T>, Vec<f64>)
where
    I: Send,
    T: Send,
    F: Fn(usize, I) -> T + Sync,
{
    let n = inputs.len();
    if n == 0 {
        return (Vec::new(), Vec::new());
    }
    let threads = threads.max(1).min(n);
    let (in_tx, in_rx) = channel::unbounded::<(usize, I)>();
    let (out_tx, out_rx) = channel::unbounded::<(usize, T, f64)>();
    for pair in inputs.into_iter().enumerate() {
        in_tx.send(pair).expect("queue send");
    }
    drop(in_tx);

    crossbeam::scope(|s| {
        for _ in 0..threads {
            let in_rx = in_rx.clone();
            let out_tx = out_tx.clone();
            let f = &f;
            s.spawn(move |_| {
                while let Ok((i, input)) = in_rx.recv() {
                    let start = Instant::now();
                    let out = f(i, input);
                    let dt = start.elapsed().as_secs_f64();
                    out_tx.send((i, out, dt)).expect("result send");
                }
            });
        }
        drop(out_tx);
    })
    .expect("worker panicked");

    let mut outputs: Vec<Option<T>> = (0..n).map(|_| None).collect();
    let mut durations = vec![0.0f64; n];
    for (i, out, dt) in out_rx.iter() {
        outputs[i] = Some(out);
        durations[i] = dt;
    }
    let outputs = outputs
        .into_iter()
        .map(|o| o.expect("missing task output"))
        .collect();
    (outputs, durations)
}

/// Physical parallelism available on this host.
pub fn physical_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn outputs_in_input_order() {
        let inputs: Vec<u64> = (0..100).collect();
        let (out, durs) = run_batch(4, inputs, |_, x| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
        assert_eq!(durs.len(), 100);
        assert!(durs.iter().all(|&d| d >= 0.0));
    }

    #[test]
    fn empty_batch() {
        let (out, durs) = run_batch(4, Vec::<u32>::new(), |_, x| x);
        assert!(out.is_empty());
        assert!(durs.is_empty());
    }

    #[test]
    fn single_thread_is_sequential_but_complete() {
        let counter = AtomicUsize::new(0);
        let (out, _) = run_batch(1, vec![(); 50], |i, _| {
            counter.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(counter.load(Ordering::Relaxed), 50);
        assert_eq!(out, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn index_argument_matches_position() {
        let (out, _) = run_batch(3, vec![10u64, 20, 30], |i, x| (i as u64, x));
        assert_eq!(out, vec![(0, 10), (1, 20), (2, 30)]);
    }

    #[test]
    fn many_threads_few_tasks() {
        let (out, _) = run_batch(64, vec![1, 2], |_, x| x + 1);
        assert_eq!(out, vec![2, 3]);
    }
}
