//! Physical task execution: a scoped worker pool on std threads.
//!
//! The pool's job is to run a batch of fallible task closures on real OS
//! threads, measure each task's wall-clock duration, catch panics, and
//! apply the batch's retry policy. Cluster semantics (virtual workers,
//! scheduling, network) live in [`crate::stage`]; this module is
//! deliberately dumb and allocation-light.
//!
//! Failure semantics: a task attempt fails by returning `Err` or by
//! panicking (caught via `catch_unwind` — the process does not abort).
//! Failed attempts are retried in place up to
//! [`RetryPolicy::max_attempts`]; the first task to exhaust its retries
//! flips the batch's cancellation flag — queued tasks are skipped,
//! running tasks can observe [`TaskCtx::is_cancelled`] — and the batch
//! returns that task's [`StageError`].

use crate::task::{RetryPolicy, StageError, TaskCtx, TaskError};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Successful batch execution: outputs and measured durations, both in
/// task (input) order.
#[derive(Debug)]
pub struct BatchOutput<T> {
    /// Task outputs.
    pub outputs: Vec<T>,
    /// Wall-clock duration of each task's *successful* attempt, seconds.
    pub durations: Vec<f64>,
}

/// Runs `f(ctx, input_i)` for every input on up to `threads` OS threads.
///
/// Inputs must be `Clone` so failed attempts can be retried; the final
/// permitted attempt consumes the input by move, so the default
/// no-retry policy never clones.
///
/// `virtual_workers` only seeds [`TaskCtx::virtual_worker`]
/// (round-robin); physical placement is whichever thread picks the task
/// up.
pub fn run_batch<I, T, F>(
    threads: usize,
    stage: &str,
    virtual_workers: usize,
    retry: RetryPolicy,
    inputs: Vec<I>,
    f: F,
) -> Result<BatchOutput<T>, StageError>
where
    I: Send + Clone,
    T: Send,
    F: Fn(&TaskCtx, I) -> Result<T, TaskError> + Sync,
{
    let n = inputs.len();
    if n == 0 {
        return Ok(BatchOutput {
            outputs: Vec::new(),
            durations: Vec::new(),
        });
    }
    let threads = threads.max(1).min(n);
    let virtual_workers = virtual_workers.max(1);
    let max_attempts = retry.max_attempts.max(1);

    let slots: Vec<Mutex<Option<I>>> = inputs.into_iter().map(|i| Mutex::new(Some(i))).collect();
    let results: Vec<Mutex<Option<(T, f64)>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    let cancel = AtomicBool::new(false);
    let failure: Mutex<Option<StageError>> = Mutex::new(None);

    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                // sync: `next` is a pure ticket counter — the claimed
                // slot's payload travels through slots[i]'s Mutex, whose
                // lock acquisition provides the happens-before edge.
                let i = next.fetch_add(1, Ordering::Relaxed); // lint:allow(atomics-discipline): index claim only; no data is published through `next`
                if i >= n {
                    break;
                }
                // sync: best-effort cancellation — a stale `false` only
                // runs one more task; the failure itself is published
                // under the `failure` Mutex.
                // lint:allow(atomics-discipline): advisory drain flag; result data never flows through it
                if cancel.load(Ordering::Relaxed) {
                    continue; // drain the queue without executing
                }
                let mut input = slots[i].lock().unwrap_or_else(|p| p.into_inner()).take();
                let mut attempt = 0;
                let outcome = loop {
                    attempt += 1;
                    // Clone only while retries remain; the last permitted
                    // attempt consumes the input.
                    let arg = if attempt < max_attempts {
                        input.clone()
                    } else {
                        input.take()
                    };
                    let Some(arg) = arg else {
                        break Err(TaskError::new(
                            "internal: task input missing before attempt",
                        ));
                    };
                    let ctx = TaskCtx::new(stage, i, i % virtual_workers, attempt, &cancel);
                    let start = Instant::now();
                    let ran = catch_unwind(AssertUnwindSafe(|| f(&ctx, arg)));
                    let dt = start.elapsed().as_secs_f64();
                    match ran {
                        Ok(Ok(out)) => break Ok((out, dt)),
                        Ok(Err(e)) if attempt >= max_attempts => break Err(e),
                        Err(payload) if attempt >= max_attempts => {
                            break Err(TaskError::from_panic(payload))
                        }
                        _ => {} // soft failure: retry
                    }
                };
                match outcome {
                    Ok(pair) => {
                        // Poison-tolerant: a panicking sibling worker must
                        // not escalate into a lock panic here — panics are
                        // already routed through StageError.
                        *results[i].lock().unwrap_or_else(|p| p.into_inner()) = Some(pair);
                    }
                    Err(error) => {
                        // sync: advisory cancel signal — the StageError
                        // below is published under the `failure` Mutex,
                        // which carries the ordering for its contents.
                        cancel.store(true, Ordering::Relaxed); // lint:allow(atomics-discipline): flag only triggers queue draining; failure data is Mutex-protected
                        let mut first = failure.lock().unwrap_or_else(|p| p.into_inner());
                        if first.is_none() {
                            *first = Some(StageError {
                                stage: stage.to_string(),
                                task: i,
                                attempts: attempt,
                                error,
                            });
                        }
                        break;
                    }
                }
            });
        }
    });

    if let Some(err) = failure.into_inner().unwrap_or_else(|p| p.into_inner()) {
        return Err(err);
    }
    let mut outputs = Vec::with_capacity(n);
    let mut durations = Vec::with_capacity(n);
    for (i, slot) in results.into_iter().enumerate() {
        match slot.into_inner().unwrap_or_else(|p| p.into_inner()) {
            Some((out, dt)) => {
                outputs.push(out);
                durations.push(dt);
            }
            None => {
                return Err(StageError {
                    stage: stage.to_string(),
                    task: i,
                    attempts: 0,
                    error: TaskError::new(
                        "internal: task finished with neither result nor failure",
                    ),
                })
            }
        }
    }
    Ok(BatchOutput { outputs, durations })
}

/// Physical parallelism available on this host.
pub fn physical_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    fn batch<I, T, F>(threads: usize, inputs: Vec<I>, f: F) -> Result<BatchOutput<T>, StageError>
    where
        I: Send + Clone,
        T: Send,
        F: Fn(&TaskCtx, I) -> Result<T, TaskError> + Sync,
    {
        run_batch(threads, "test", 4, RetryPolicy::none(), inputs, f)
    }

    #[test]
    fn outputs_in_input_order() {
        let inputs: Vec<u64> = (0..100).collect();
        let out = batch(4, inputs, |_, x| Ok(x * 2)).unwrap();
        assert_eq!(out.outputs, (0..100).map(|x| x * 2).collect::<Vec<_>>());
        assert_eq!(out.durations.len(), 100);
        assert!(out.durations.iter().all(|&d| d >= 0.0));
    }

    #[test]
    fn empty_batch() {
        let out = batch(4, Vec::<u32>::new(), |_, x| Ok(x)).unwrap();
        assert!(out.outputs.is_empty());
        assert!(out.durations.is_empty());
    }

    #[test]
    fn single_thread_is_sequential_but_complete() {
        let counter = AtomicUsize::new(0);
        let out = batch(1, vec![(); 50], |ctx, _| {
            counter.fetch_add(1, Ordering::Relaxed);
            Ok(ctx.index())
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::Relaxed), 50);
        assert_eq!(out.outputs, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn ctx_index_matches_position() {
        let out = batch(3, vec![10u64, 20, 30], |ctx, x| Ok((ctx.index() as u64, x))).unwrap();
        assert_eq!(out.outputs, vec![(0, 10), (1, 20), (2, 30)]);
    }

    #[test]
    fn many_threads_few_tasks() {
        let out = batch(64, vec![1, 2], |_, x| Ok(x + 1)).unwrap();
        assert_eq!(out.outputs, vec![2, 3]);
    }

    #[test]
    fn err_surfaces_as_stage_error_and_cancels() {
        let err = run_batch(
            2,
            "failing",
            4,
            RetryPolicy::none(),
            (0..64).collect::<Vec<u32>>(),
            |_, x| {
                if x == 5 {
                    Err(TaskError::new("poisoned partition"))
                } else {
                    Ok(x)
                }
            },
        )
        .unwrap_err();
        assert_eq!(err.stage, "failing");
        assert_eq!(err.task, 5);
        assert_eq!(err.attempts, 1);
        assert!(err.error.message.contains("poisoned"));
    }

    #[test]
    fn panic_is_caught_not_propagated() {
        let err = batch(4, (0..16).collect::<Vec<u32>>(), |_, x| {
            if x == 3 {
                panic!("task exploded");
            }
            Ok(x)
        })
        .unwrap_err();
        assert_eq!(err.task, 3);
        assert!(err.error.message.contains("task exploded"));
    }

    #[test]
    fn retry_recovers_transient_failures() {
        let tries = AtomicUsize::new(0);
        let out = run_batch(
            2,
            "flaky",
            4,
            RetryPolicy::with_attempts(3),
            vec![7u32],
            |ctx, x| {
                tries.fetch_add(1, Ordering::Relaxed);
                if ctx.attempt() < 3 {
                    Err(TaskError::new("transient"))
                } else {
                    Ok(x)
                }
            },
        )
        .unwrap();
        assert_eq!(out.outputs, vec![7]);
        assert_eq!(tries.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn retry_exhaustion_reports_attempt_count() {
        let err = run_batch(
            1,
            "always-bad",
            4,
            RetryPolicy::with_attempts(3),
            vec![0u32],
            |_, _: u32| -> Result<u32, TaskError> { Err(TaskError::new("permanent")) },
        )
        .unwrap_err();
        assert_eq!(err.attempts, 3);
    }

    #[test]
    fn retry_also_covers_panics() {
        let out = run_batch(
            1,
            "flaky-panic",
            4,
            RetryPolicy::with_attempts(2),
            vec![1u32],
            |ctx, x| {
                if ctx.attempt() == 1 {
                    panic!("first attempt dies");
                }
                Ok(x)
            },
        )
        .unwrap();
        assert_eq!(out.outputs, vec![1]);
    }

    #[test]
    fn cancellation_skips_queued_tasks() {
        // Single thread: task 0 fails hard, so tasks 1.. must be skipped.
        let executed = AtomicUsize::new(0);
        let err = run_batch(
            1,
            "cancelling",
            4,
            RetryPolicy::none(),
            (0..100).collect::<Vec<u32>>(),
            |_, x| {
                executed.fetch_add(1, Ordering::Relaxed);
                if x == 0 {
                    Err(TaskError::new("first task fails"))
                } else {
                    Ok(x)
                }
            },
        )
        .unwrap_err();
        assert_eq!(err.task, 0);
        assert_eq!(executed.load(Ordering::Relaxed), 1, "queued tasks ran");
    }

    #[test]
    fn virtual_worker_is_round_robin() {
        let out = run_batch(
            2,
            "lanes",
            3,
            RetryPolicy::none(),
            (0..9usize).collect::<Vec<_>>(),
            |ctx, _| Ok(ctx.virtual_worker()),
        )
        .unwrap();
        assert_eq!(out.outputs, vec![0, 1, 2, 0, 1, 2, 0, 1, 2]);
    }
}
