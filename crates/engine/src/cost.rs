//! Network/overhead cost model for the virtual cluster.
//!
//! The paper's cluster moves two kinds of bytes that a single-process
//! reproduction does not: the broadcast of the two-level cell dictionary
//! (Phase I) and the shuffle of cell subgraphs between merge rounds
//! (Phase III). Charging them through an explicit model keeps those costs
//! visible in elapsed-time figures instead of silently free.

/// Parameters of the simulated network and scheduler.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Sustained point-to-point bandwidth in bytes/second. Azure D12v2
    /// instances see roughly 1 GB/s within a region.
    pub bandwidth_bytes_per_sec: f64,
    /// Per-transfer latency in seconds.
    pub latency_sec: f64,
    /// Fixed scheduling overhead per task in seconds (Spark task launch
    /// is on the order of milliseconds; the floor also keeps
    /// sub-millisecond simulated tasks from turning timer noise into
    /// load-imbalance signal).
    pub per_task_overhead_sec: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        Self {
            bandwidth_bytes_per_sec: 1.0e9,
            latency_sec: 1.0e-3,
            per_task_overhead_sec: 2.0e-3,
        }
    }
}

impl CostModel {
    /// A model with zero network and scheduling cost — pure compute.
    pub fn free() -> Self {
        Self {
            bandwidth_bytes_per_sec: f64::INFINITY,
            latency_sec: 0.0,
            per_task_overhead_sec: 0.0,
        }
    }

    /// Time to broadcast `bytes` to `workers` receivers.
    ///
    /// Spark's torrent broadcast pipelines blocks peer-to-peer, so total
    /// time grows with `log2(workers)` rather than linearly.
    pub fn broadcast_time(&self, bytes: u64, workers: usize) -> f64 {
        if bytes == 0 {
            return 0.0;
        }
        let rounds = (workers.max(1) as f64).log2().ceil().max(1.0);
        self.latency_sec * rounds + bytes as f64 / self.bandwidth_bytes_per_sec * rounds
    }

    /// Time to move `bytes` point-to-point (one shuffle edge).
    pub fn transfer_time(&self, bytes: u64) -> f64 {
        if bytes == 0 {
            return 0.0;
        }
        self.latency_sec + bytes as f64 / self.bandwidth_bytes_per_sec
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn free_model_charges_nothing() {
        let m = CostModel::free();
        assert_eq!(m.broadcast_time(1 << 30, 40), 0.0);
        assert_eq!(m.transfer_time(1 << 30), 0.0);
        assert_eq!(m.per_task_overhead_sec, 0.0);
    }

    #[test]
    fn broadcast_grows_logarithmically_with_workers() {
        let m = CostModel::default();
        let t4 = m.broadcast_time(1_000_000, 4);
        let t16 = m.broadcast_time(1_000_000, 16);
        assert!(t16 > t4);
        // 16 workers is 4 rounds vs 2 rounds: exactly 2x under the model.
        assert!((t16 / t4 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn zero_bytes_is_free() {
        let m = CostModel::default();
        assert_eq!(m.broadcast_time(0, 10), 0.0);
        assert_eq!(m.transfer_time(0), 0.0);
    }

    #[test]
    fn transfer_includes_latency() {
        let m = CostModel {
            bandwidth_bytes_per_sec: 1000.0,
            latency_sec: 0.5,
            per_task_overhead_sec: 0.0,
        };
        assert!((m.transfer_time(1000) - 1.5).abs() < 1e-12);
    }
}
