//! Lock-discipline stress test: a task that panics mid-stage must
//! surface as a `StageError` from `run_stage`, never as a propagated
//! panic, and must not wedge the engine — the same `Engine` (same
//! internal mutexes, same pool) has to keep running stages correctly
//! afterward, under every scheduler.

use rpdbscan_engine::{ChunkedSteal, CostModel, Engine, RetryPolicy, StageError, TaskError};
use std::panic::{catch_unwind, AssertUnwindSafe};

const TASKS: usize = 64;
const ROUNDS: usize = 10;

fn engines() -> Vec<(&'static str, Engine)> {
    vec![
        ("fifo", Engine::with_cost_model(4, CostModel::free())),
        (
            "lpt",
            Engine::with_cost_model(4, CostModel::free()).with_scheduler(rpdbscan_engine::Lpt),
        ),
        (
            "chunked-steal",
            Engine::with_cost_model(4, CostModel::free()).with_scheduler(ChunkedSteal::new(3)),
        ),
    ]
}

/// Runs a stage where every `stride`-th task panics. Returns the
/// stage's result; panics escaping `run_stage` fail the test.
fn poisoned_stage(e: &Engine, round: usize, stride: usize) -> Result<Vec<usize>, StageError> {
    let caught = catch_unwind(AssertUnwindSafe(|| {
        e.run_stage(
            &format!("poison-{round}"),
            (0..TASKS).collect(),
            |_ctx, i: usize| {
                if i.is_multiple_of(stride) {
                    panic!("deliberate poison: task {i} of round {round}");
                }
                Ok(i * 2)
            },
        )
    }));
    caught
        .expect("a task panic must not escape run_stage as a panic")
        .map(|r| r.outputs)
}

#[test]
fn poisoned_tasks_fail_the_stage_without_panicking() {
    for (name, e) in engines() {
        for round in 0..ROUNDS {
            let err =
                poisoned_stage(&e, round, 7).expect_err("a panicking task must fail the stage");
            assert!(
                err.error.message.contains("deliberate poison"),
                "{name}: panic payload lost: {err}"
            );
        }
    }
}

#[test]
fn engine_survives_poisoning_and_keeps_computing() {
    for (name, e) in engines() {
        for round in 0..ROUNDS {
            // Poison round: some tasks panic while others run, so
            // worker threads die holding whatever locks they held.
            let _ = poisoned_stage(&e, round, 5);
            // Recovery round on the SAME engine: results must be
            // complete, correct, and in input order.
            let out = e
                .run_stage(
                    &format!("recover-{round}"),
                    (0..TASKS).collect(),
                    |_ctx, i| Ok(i + 1),
                )
                .unwrap_or_else(|err| panic!("{name}: engine wedged after poisoning: {err}"));
            let want: Vec<usize> = (1..=TASKS).collect();
            assert_eq!(out.outputs, want, "{name}: wrong outputs after recovery");
        }
        // Metrics/trace locks stayed usable too: every successful
        // stage recorded (failed stages abort before the metrics push).
        let report = e.report();
        assert_eq!(report.stages.len(), ROUNDS, "{name}");
        assert!(
            report.stages.iter().all(|s| s.name.starts_with("recover-")),
            "{name}"
        );
    }
}

#[test]
fn poisoning_with_retries_still_returns_a_typed_error() {
    for (name, e) in engines() {
        let e = e.with_retry(RetryPolicy::with_attempts(3));
        let err = poisoned_stage(&e, 0, 9).expect_err("persistent panics exhaust retries");
        assert_eq!(err.attempts, 3, "{name}: retries not exhausted: {err}");
    }
}

#[test]
fn mixed_error_and_panic_tasks_never_escape() {
    for (name, e) in engines() {
        let caught = catch_unwind(AssertUnwindSafe(|| {
            e.run_stage("mixed", (0..TASKS).collect(), |_ctx, i: usize| {
                match i % 3 {
                    0 => panic!("panic arm {i}"),
                    1 => Err(TaskError::new(format!("error arm {i}"))),
                    _ => Ok(i),
                }
            })
        }));
        let res = caught.expect("mixed failures must not escape run_stage");
        assert!(res.is_err(), "{name}: mixed-failure stage must fail");
    }
}
