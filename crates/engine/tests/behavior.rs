//! Behavioural integration tests for the execution engine.

use rpdbscan_engine::{
    ChunkedSteal, CostModel, Engine, Fifo, Lpt, RetryPolicy, Scheduler, TaskError,
};
use std::sync::atomic::{AtomicUsize, Ordering};

#[test]
fn tasks_actually_run_concurrently_on_multicore() {
    // With at least 2 physical threads, two tasks that each wait for the
    // other's start would deadlock if execution were sequential — instead
    // use a weaker, robust check: all tasks observe a shared counter.
    let e = Engine::new(4);
    let started = AtomicUsize::new(0);
    let r = e
        .run_stage("count", vec![(); 16], |_, ()| {
            Ok(started.fetch_add(1, Ordering::SeqCst))
        })
        .unwrap();
    assert_eq!(r.outputs.len(), 16);
    assert_eq!(started.load(Ordering::SeqCst), 16);
}

#[test]
fn task_panic_becomes_stage_error() {
    // A panicking task no longer takes the process down: the panic is
    // caught, the stage fails with an Err naming the task, and the engine
    // remains usable.
    let e = Engine::new(2);
    let err = e
        .run_stage("boom", vec![0, 1, 2], |_, x| {
            if x == 1 {
                panic!("task failure");
            }
            Ok(x)
        })
        .unwrap_err();
    assert_eq!(err.stage, "boom");
    assert_eq!(err.task, 1);
    assert!(err.error.message.contains("task failure"), "{err}");
    let r = e.run_stage("after", vec![5u32], |_, x| Ok(x)).unwrap();
    assert_eq!(r.outputs, vec![5]);
}

#[test]
fn retry_recovers_a_transient_panic() {
    let e = Engine::new(2).with_retry(RetryPolicy::with_attempts(3));
    let r = e
        .run_stage("flaky", vec![9u32], |ctx, x| {
            if ctx.attempt() < 3 {
                return Err(TaskError::new("transient"));
            }
            Ok(x)
        })
        .unwrap();
    assert_eq!(r.outputs, vec![9]);
}

/// Cancellation semantics must not depend on the configured scheduler:
/// schedulers only drive the *virtual* placement, so a hard task failure
/// has to cancel the stage identically under every policy.
fn assert_cancellation_under(scheduler: impl Scheduler + 'static) {
    let e = Engine::new(4).with_scheduler(scheduler);
    let name = e.scheduler_name();
    let executed = AtomicUsize::new(0);
    let cancelled_observed = AtomicUsize::new(0);
    let err = e
        .run_stage("doomed", (0..64).collect::<Vec<_>>(), |ctx, x: usize| {
            executed.fetch_add(1, Ordering::SeqCst);
            if x == 3 {
                return Err(TaskError::new("hard failure"));
            }
            // Tasks already in flight when the failure lands must see the
            // cancellation flag flip rather than run to completion.
            for _ in 0..200 {
                if ctx.is_cancelled() {
                    cancelled_observed.fetch_add(1, Ordering::SeqCst);
                    break;
                }
                std::thread::sleep(std::time::Duration::from_micros(50));
            }
            Ok(x)
        })
        .expect_err("stage with a hard-failing task must fail");
    assert_eq!(err.stage, "doomed", "scheduler {name}");
    assert_eq!(err.task, 3, "scheduler {name}");
    assert!(
        err.error.message.contains("hard failure"),
        "scheduler {name}"
    );
    // Queued tasks are drained unexecuted: far fewer than 64 ran.
    let ran = executed.load(Ordering::SeqCst);
    assert!(
        ran < 64,
        "scheduler {name}: all {ran} tasks ran despite failure"
    );
    // The engine stays usable, and the failed stage left no metrics.
    assert_eq!(e.report().stages.len(), 0, "scheduler {name}");
    let r = e.run_stage("after", vec![1u32], |_, x| Ok(x)).unwrap();
    assert_eq!(r.outputs, vec![1], "scheduler {name}");
}

#[test]
fn cancellation_on_failure_under_fifo() {
    assert_cancellation_under(Fifo);
}

#[test]
fn cancellation_on_failure_under_lpt() {
    assert_cancellation_under(Lpt);
}

#[test]
fn cancellation_on_failure_under_chunked_steal() {
    assert_cancellation_under(ChunkedSteal::new(4));
}

#[test]
fn metrics_reflect_task_count_and_workers() {
    let e = Engine::with_cost_model(7, CostModel::free());
    let r = e
        .run_stage("s", (0..20).collect::<Vec<_>>(), |_, x: i32| Ok(x))
        .unwrap();
    assert_eq!(r.metrics.num_tasks, 20);
    assert_eq!(r.metrics.workers, 7);
    assert_eq!(r.metrics.task_durations.len(), 20);
    assert_eq!(r.metrics.network_time, 0.0);
}

#[test]
fn virtual_makespan_shrinks_with_more_workers() {
    // Measure the same deterministic workload twice with different
    // virtual widths: the wider cluster must simulate faster even though
    // physical execution is identical.
    let work = |_: &rpdbscan_engine::TaskCtx, n: u64| {
        let mut acc = 0u64;
        for i in 0..n * 200_000 {
            acc = acc.wrapping_add(i);
        }
        Ok(acc)
    };
    let narrow = Engine::with_cost_model(1, CostModel::free());
    let wide = Engine::with_cost_model(16, CostModel::free());
    let rn = narrow.run_stage("w", vec![2u64; 16], work).unwrap();
    let rw = wide.run_stage("w", vec![2u64; 16], work).unwrap();
    assert!(
        rw.metrics.makespan < rn.metrics.makespan,
        "wide {} !< narrow {}",
        rw.metrics.makespan,
        rn.metrics.makespan
    );
}

#[test]
fn network_charges_compose_in_report() {
    let e = Engine::new(4);
    e.run_stage("a", vec![1], |_, x: i32| Ok(x)).unwrap();
    let b1 = e.broadcast_cost("bc1", 10_000_000);
    let s1 = e.shuffle_cost("sh1", 5_000_000);
    let rep = e.report();
    assert_eq!(rep.stages.len(), 3);
    let net: f64 = rep.stages.iter().map(|s| s.network_time).sum();
    assert!((net - (b1 + s1)).abs() < 1e-12);
}

#[test]
fn empty_stage_is_fine() {
    let e = Engine::new(4);
    let r = e
        .run_stage("empty", Vec::<u32>::new(), |_, x| Ok(x))
        .unwrap();
    assert!(r.outputs.is_empty());
    assert_eq!(r.metrics.makespan, 0.0);
    assert_eq!(r.metrics.load_imbalance(), 1.0);
}

#[test]
fn stage_order_preserved_in_report() {
    let e = Engine::new(2);
    for name in ["first", "second", "third"] {
        e.run_stage(name, vec![()], |_, ()| Ok(())).unwrap();
    }
    let names: Vec<String> = e.report().stages.into_iter().map(|s| s.name).collect();
    assert_eq!(names, vec!["first", "second", "third"]);
}

#[test]
fn trace_covers_all_stages_and_exports_json() {
    let e = Engine::with_cost_model(3, CostModel::free());
    e.run_stage("alpha", vec![(); 4], |_, ()| Ok(())).unwrap();
    e.broadcast_cost("beta", 1 << 20);
    e.run_stage("gamma", vec![(); 2], |_, ()| Ok(())).unwrap();
    let rep = e.report();
    assert_eq!(rep.trace.spans.len(), 6);
    assert_eq!(rep.trace.events.len(), 1);
    let json = rep.chrome_trace_json();
    for needle in [
        "\"ph\":\"X\"",
        "\"ts\":",
        "\"dur\":",
        "\"tid\":",
        "alpha[0]",
    ] {
        assert!(json.contains(needle), "missing {needle} in trace JSON");
    }
}
