//! Property tests for scheduler invariants.
//!
//! Every scheduler must produce a valid placement whose makespan lies in
//! the classic list-scheduling envelope, and adding workers must never
//! make FIFO or LPT slower on the same task set.

use proptest::prelude::*;
use rpdbscan_engine::{ChunkedSteal, Fifo, Lpt, Scheduler};

const EPS: f64 = 1e-9;

fn schedulers() -> Vec<Box<dyn Scheduler>> {
    vec![
        Box::new(Fifo),
        Box::new(Lpt),
        Box::new(ChunkedSteal::default()),
        Box::new(ChunkedSteal { chunk_size: 1 }),
    ]
}

proptest! {
    /// Any schedule's makespan is bounded below by
    /// `max(total / workers, longest task)` and above by the serial total,
    /// and every task is placed exactly once on a valid lane.
    #[test]
    fn makespan_within_envelope(
        durations in prop::collection::vec(0.0f64..10.0, 0..60),
        workers in 1usize..20,
    ) {
        let total: f64 = durations.iter().sum();
        let longest = durations.iter().fold(0.0f64, |a, &b| a.max(b));
        let lower = (total / workers as f64).max(longest);
        for sched in schedulers() {
            let plan = sched.schedule(&durations, workers);
            prop_assert_eq!(plan.placements.len(), durations.len());
            for p in &plan.placements {
                prop_assert!(p.worker < workers, "{} lane {}", sched.name(), p.worker);
                prop_assert!(p.start >= -EPS);
            }
            prop_assert!(
                plan.makespan + EPS >= lower,
                "{}: makespan {} below lower bound {}",
                sched.name(), plan.makespan, lower
            );
            prop_assert!(
                plan.makespan <= total + EPS,
                "{}: makespan {} above serial total {}",
                sched.name(), plan.makespan, total
            );
        }
    }

    /// Tasks assigned to one lane never overlap in time.
    #[test]
    fn no_overlap_within_a_lane(
        durations in prop::collection::vec(0.01f64..5.0, 1..40),
        workers in 1usize..8,
    ) {
        for sched in schedulers() {
            let plan = sched.schedule(&durations, workers);
            for w in 0..workers {
                let mut lane: Vec<(f64, f64)> = plan
                    .placements
                    .iter()
                    .enumerate()
                    .filter(|(_, p)| p.worker == w)
                    .map(|(t, p)| (p.start, p.start + durations[t]))
                    .collect();
                lane.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite start"));
                for pair in lane.windows(2) {
                    prop_assert!(
                        pair[1].0 + EPS >= pair[0].1,
                        "{}: lane {} overlap {:?}",
                        sched.name(), w, pair
                    );
                }
            }
        }
    }

    /// Growing the cluster never increases FIFO's or LPT's makespan.
    ///
    /// This holds for these two because both are deterministic
    /// earliest-available-worker list schedulers: each task starts at the
    /// current minimum lane load, which is monotonically non-increasing
    /// in the worker count for a fixed task order.
    #[test]
    fn more_workers_never_slower(
        durations in prop::collection::vec(0.0f64..10.0, 0..50),
        workers in 1usize..16,
    ) {
        for sched in [&Fifo as &dyn Scheduler, &Lpt] {
            let narrow = sched.schedule(&durations, workers).makespan;
            let wide = sched.schedule(&durations, workers + 1).makespan;
            prop_assert!(
                wide <= narrow + EPS,
                "{}: {} workers -> {}, {} workers -> {}",
                sched.name(), workers, narrow, workers + 1, wide
            );
        }
    }

    /// LPT never loses to FIFO by more than FIFO's own makespan (sanity)
    /// and both agree exactly on a single worker.
    #[test]
    fn single_worker_serialises_everything(
        durations in prop::collection::vec(0.0f64..10.0, 0..40),
    ) {
        let total: f64 = durations.iter().sum();
        for sched in schedulers() {
            let plan = sched.schedule(&durations, 1);
            prop_assert!(
                (plan.makespan - total).abs() < 1e-6,
                "{}: serial makespan {} != total {}",
                sched.name(), plan.makespan, total
            );
        }
    }
}
