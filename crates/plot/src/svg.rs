//! A tiny SVG document builder.

use std::fmt::Write as _;
use std::path::Path;

/// An in-memory SVG document with fixed pixel dimensions.
#[derive(Debug, Clone)]
pub struct SvgCanvas {
    width: f64,
    height: f64,
    body: String,
}

/// Escapes text content for inclusion in SVG.
fn escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
        .replace('"', "&quot;")
}

impl SvgCanvas {
    /// A blank canvas with a white background.
    pub fn new(width: f64, height: f64) -> Self {
        let mut c = Self {
            width,
            height,
            body: String::new(),
        };
        c.rect(0.0, 0.0, width, height, "#ffffff", None);
        c
    }

    /// Canvas width in pixels.
    pub fn width(&self) -> f64 {
        self.width
    }

    /// Canvas height in pixels.
    pub fn height(&self) -> f64 {
        self.height
    }

    /// A filled rectangle with optional stroke.
    pub fn rect(&mut self, x: f64, y: f64, w: f64, h: f64, fill: &str, stroke: Option<&str>) {
        let stroke = stroke
            .map(|s| format!(" stroke=\"{s}\""))
            .unwrap_or_default();
        let _ = writeln!(
            self.body,
            "<rect x=\"{x:.2}\" y=\"{y:.2}\" width=\"{w:.2}\" height=\"{h:.2}\" fill=\"{fill}\"{stroke}/>"
        );
    }

    /// A filled circle.
    pub fn circle(&mut self, cx: f64, cy: f64, r: f64, fill: &str) {
        let _ = writeln!(
            self.body,
            "<circle cx=\"{cx:.2}\" cy=\"{cy:.2}\" r=\"{r:.2}\" fill=\"{fill}\"/>"
        );
    }

    /// A straight line.
    pub fn line(&mut self, x1: f64, y1: f64, x2: f64, y2: f64, stroke: &str, width: f64) {
        let _ = writeln!(
            self.body,
            "<line x1=\"{x1:.2}\" y1=\"{y1:.2}\" x2=\"{x2:.2}\" y2=\"{y2:.2}\" stroke=\"{stroke}\" stroke-width=\"{width:.2}\"/>"
        );
    }

    /// An open polyline through the given points.
    pub fn polyline(&mut self, points: &[(f64, f64)], stroke: &str, width: f64) {
        if points.is_empty() {
            return;
        }
        let pts: Vec<String> = points
            .iter()
            .map(|(x, y)| format!("{x:.2},{y:.2}"))
            .collect();
        let _ = writeln!(
            self.body,
            "<polyline points=\"{}\" fill=\"none\" stroke=\"{stroke}\" stroke-width=\"{width:.2}\"/>",
            pts.join(" ")
        );
    }

    /// Text anchored at its start (or middle with `centered`).
    pub fn text(&mut self, x: f64, y: f64, size: f64, content: &str, centered: bool) {
        let anchor = if centered { "middle" } else { "start" };
        let _ = writeln!(
            self.body,
            "<text x=\"{x:.2}\" y=\"{y:.2}\" font-size=\"{size:.1}\" font-family=\"sans-serif\" text-anchor=\"{anchor}\">{}</text>",
            escape(content)
        );
    }

    /// Serialises the document.
    pub fn to_svg(&self) -> String {
        format!(
            "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{:.0}\" height=\"{:.0}\" viewBox=\"0 0 {:.0} {:.0}\">\n{}</svg>\n",
            self.width, self.height, self.width, self.height, self.body
        )
    }

    /// Writes the document to a file.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_svg())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn document_structure() {
        let mut c = SvgCanvas::new(100.0, 50.0);
        c.circle(10.0, 10.0, 2.0, "#ff0000");
        c.line(0.0, 0.0, 100.0, 50.0, "#000000", 1.0);
        c.text(5.0, 45.0, 10.0, "hello & <world>", false);
        let svg = c.to_svg();
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>\n"));
        assert!(svg.contains("<circle"));
        assert!(svg.contains("<line"));
        assert!(svg.contains("hello &amp; &lt;world&gt;"));
    }

    #[test]
    fn polyline_renders_points() {
        let mut c = SvgCanvas::new(10.0, 10.0);
        c.polyline(&[(0.0, 0.0), (5.0, 5.0)], "#00ff00", 1.5);
        assert!(c.to_svg().contains("points=\"0.00,0.00 5.00,5.00\""));
    }

    #[test]
    fn empty_polyline_is_noop() {
        let mut c = SvgCanvas::new(10.0, 10.0);
        let before = c.to_svg();
        c.polyline(&[], "#00ff00", 1.0);
        assert_eq!(before, c.to_svg());
    }

    #[test]
    fn save_round_trips() {
        let dir = std::env::temp_dir().join("rpdbscan-plot-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("t.svg");
        let c = SvgCanvas::new(20.0, 20.0);
        c.save(&p).unwrap();
        let text = std::fs::read_to_string(&p).unwrap();
        assert!(text.contains("viewBox=\"0 0 20 20\""));
    }
}
