//! Scatter and line charts over [`crate::SvgCanvas`].

use crate::svg::SvgCanvas;
use crate::{cluster_color, NOISE_COLOR};
use rpdbscan_geom::Dataset;
use rpdbscan_metrics::Clustering;
use std::path::Path;

const MARGIN: f64 = 46.0;

/// Maps a data interval to a pixel interval.
#[derive(Debug, Clone, Copy)]
struct Scale {
    d0: f64,
    d1: f64,
    p0: f64,
    p1: f64,
    log: bool,
}

impl Scale {
    fn new(d0: f64, d1: f64, p0: f64, p1: f64, log: bool) -> Self {
        let (d0, d1) = if log {
            (d0.max(1e-12).log10(), d1.max(1e-12).log10())
        } else {
            (d0, d1)
        };
        let (d0, d1) = if (d1 - d0).abs() < 1e-12 {
            (d0 - 0.5, d1 + 0.5)
        } else {
            (d0, d1)
        };
        Self {
            d0,
            d1,
            p0,
            p1,
            log,
        }
    }

    fn map(&self, v: f64) -> f64 {
        let v = if self.log { v.max(1e-12).log10() } else { v };
        self.p0 + (v - self.d0) / (self.d1 - self.d0) * (self.p1 - self.p0)
    }
}

/// A 2-d cluster scatter plot (Figures 16 and 18): points coloured by
/// cluster id, noise in grey.
#[derive(Debug)]
pub struct ScatterPlot<'a> {
    data: &'a Dataset,
    clustering: &'a Clustering,
    title: String,
    /// Point radius in pixels.
    pub point_radius: f64,
    /// Maximum points drawn (uniformly strided) to bound file size.
    pub max_points: usize,
}

impl<'a> ScatterPlot<'a> {
    /// A scatter plot of `data` (first two dimensions) coloured by
    /// `clustering`.
    pub fn new(data: &'a Dataset, clustering: &'a Clustering, title: &str) -> Self {
        assert_eq!(data.len(), clustering.len(), "labels must cover the data");
        Self {
            data,
            clustering,
            title: title.to_string(),
            point_radius: 1.2,
            max_points: 30_000,
        }
    }

    /// Renders to an SVG canvas.
    pub fn render(&self, width: f64, height: f64) -> SvgCanvas {
        let mut c = SvgCanvas::new(width, height);
        c.text(width / 2.0, 18.0, 13.0, &self.title, true);
        let Some(bb) = self.data.bounding_box() else {
            return c;
        };
        let sx = Scale::new(bb.min()[0], bb.max()[0], MARGIN, width - 12.0, false);
        let sy = Scale::new(bb.min()[1], bb.max()[1], height - MARGIN, 26.0, false);
        let stride = (self.data.len() / self.max_points.max(1)).max(1);
        for i in (0..self.data.len()).step_by(stride) {
            let p = self.data.point_at(i);
            let color = match self.clustering.labels()[i] {
                Some(id) => cluster_color(id),
                None => NOISE_COLOR,
            };
            c.circle(sx.map(p[0]), sy.map(p[1]), self.point_radius, color);
        }
        c
    }

    /// Renders and saves in one call.
    pub fn save(&self, path: &Path, width: f64, height: f64) -> std::io::Result<()> {
        self.render(width, height).save(path)
    }
}

/// One line-chart series.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// `(x, y)` samples in x order.
    pub points: Vec<(f64, f64)>,
}

/// A multi-series line chart with optional log axes (the form of
/// Figures 11, 13, 14, 15, 17, 19, 20).
#[derive(Debug, Clone)]
pub struct LineChart {
    title: String,
    x_label: String,
    y_label: String,
    series: Vec<Series>,
    /// Log-scale the y axis (Figure 11 uses log elapsed time).
    pub log_y: bool,
    /// Log-scale the x axis.
    pub log_x: bool,
}

impl LineChart {
    /// An empty chart.
    pub fn new(title: &str, x_label: &str, y_label: &str) -> Self {
        Self {
            title: title.to_string(),
            x_label: x_label.to_string(),
            y_label: y_label.to_string(),
            series: Vec::new(),
            log_y: false,
            log_x: false,
        }
    }

    /// Adds a series.
    pub fn add(&mut self, label: &str, points: Vec<(f64, f64)>) -> &mut Self {
        self.series.push(Series {
            label: label.to_string(),
            points,
        });
        self
    }

    /// Renders to an SVG canvas.
    pub fn render(&self, width: f64, height: f64) -> SvgCanvas {
        let mut c = SvgCanvas::new(width, height);
        c.text(width / 2.0, 18.0, 13.0, &self.title, true);
        let (x0, x1, y0, y1) = self.bounds();
        let sx = Scale::new(x0, x1, MARGIN, width - 120.0, self.log_x);
        let sy = Scale::new(y0, y1, height - MARGIN, 30.0, self.log_y);

        // Axes.
        c.line(
            MARGIN,
            height - MARGIN,
            width - 120.0,
            height - MARGIN,
            "#333333",
            1.0,
        );
        c.line(MARGIN, 30.0, MARGIN, height - MARGIN, "#333333", 1.0);
        c.text(
            (MARGIN + width - 120.0) / 2.0,
            height - 8.0,
            11.0,
            &self.x_label,
            true,
        );
        c.text(6.0, 24.0, 11.0, &self.y_label, false);

        // Ticks: min / max per axis (labels only; the data spans vary by
        // orders of magnitude across figures, so full grids add noise).
        c.text(MARGIN, height - MARGIN + 14.0, 9.0, &fmt_tick(x0), true);
        c.text(
            width - 120.0,
            height - MARGIN + 14.0,
            9.0,
            &fmt_tick(x1),
            true,
        );
        c.text(MARGIN - 4.0, height - MARGIN, 9.0, &fmt_tick(y0), false);
        c.text(MARGIN - 4.0, 36.0, 9.0, &fmt_tick(y1), false);

        // Series.
        for (i, s) in self.series.iter().enumerate() {
            let color = cluster_color(i as u32);
            let pts: Vec<(f64, f64)> = s
                .points
                .iter()
                .map(|&(x, y)| (sx.map(x), sy.map(y)))
                .collect();
            c.polyline(&pts, color, 1.6);
            for &(px, py) in &pts {
                c.circle(px, py, 2.4, color);
            }
            // Legend.
            let ly = 40.0 + i as f64 * 16.0;
            c.line(width - 112.0, ly, width - 96.0, ly, color, 2.0);
            c.text(width - 92.0, ly + 3.5, 10.0, &s.label, false);
        }
        c
    }

    /// Renders and saves in one call.
    pub fn save(&self, path: &Path, width: f64, height: f64) -> std::io::Result<()> {
        self.render(width, height).save(path)
    }

    fn bounds(&self) -> (f64, f64, f64, f64) {
        let mut x0 = f64::INFINITY;
        let mut x1 = f64::NEG_INFINITY;
        let mut y0 = f64::INFINITY;
        let mut y1 = f64::NEG_INFINITY;
        for s in &self.series {
            for &(x, y) in &s.points {
                x0 = x0.min(x);
                x1 = x1.max(x);
                y0 = y0.min(y);
                y1 = y1.max(y);
            }
        }
        if !x0.is_finite() {
            (0.0, 1.0, 0.0, 1.0)
        } else {
            (x0, x1, y0, y1)
        }
    }
}

fn fmt_tick(v: f64) -> String {
    // lint:allow(float-eq): exact-zero check chooses the "0" tick label; a tolerance would mislabel small ticks
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 1000.0 || v.abs() < 0.01 {
        format!("{v:.1e}")
    } else {
        format!("{v:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scatter_draws_points_and_noise() {
        let data =
            Dataset::from_rows(2, &[vec![0.0, 0.0], vec![1.0, 1.0], vec![2.0, 0.5]]).unwrap();
        let clustering = Clustering::new(vec![Some(0), Some(1), None]);
        let svg = ScatterPlot::new(&data, &clustering, "t")
            .render(200.0, 150.0)
            .to_svg();
        assert_eq!(svg.matches("<circle").count(), 3);
        assert!(svg.contains(NOISE_COLOR));
        assert!(svg.contains(cluster_color(0)));
    }

    #[test]
    fn scatter_empty_data() {
        let data = Dataset::from_flat(2, vec![]).unwrap();
        let clustering = Clustering::new(vec![]);
        let svg = ScatterPlot::new(&data, &clustering, "empty")
            .render(100.0, 100.0)
            .to_svg();
        assert!(svg.contains("empty"));
    }

    #[test]
    fn line_chart_series_and_legend() {
        let mut ch = LineChart::new("elapsed", "eps", "seconds");
        ch.add("RP", vec![(1.0, 2.0), (2.0, 1.0)]);
        ch.add("ESP", vec![(1.0, 4.0), (2.0, 8.0)]);
        let svg = ch.render(400.0, 300.0).to_svg();
        assert_eq!(svg.matches("<polyline").count(), 2);
        assert!(svg.contains(">RP<"));
        assert!(svg.contains(">ESP<"));
    }

    #[test]
    fn log_scale_orders_points() {
        let mut ch = LineChart::new("t", "x", "y");
        ch.log_y = true;
        ch.add("a", vec![(1.0, 1.0), (2.0, 10.0), (3.0, 100.0)]);
        let c = ch.render(400.0, 300.0);
        // Log y: equal ratios map to equal pixel steps. Extract circle
        // ys from the svg to verify monotone decreasing (SVG y is down).
        let svg = c.to_svg();
        let ys: Vec<f64> = svg
            .lines()
            .filter(|l| l.starts_with("<circle") && l.contains("r=\"2.40\""))
            .map(|l| {
                let cy = l.split("cy=\"").nth(1).unwrap();
                cy.split('"').next().unwrap().parse().unwrap()
            })
            .collect();
        assert_eq!(ys.len(), 3);
        assert!(ys[0] > ys[1] && ys[1] > ys[2]);
        let step1 = ys[0] - ys[1];
        let step2 = ys[1] - ys[2];
        assert!((step1 - step2).abs() < 0.5, "log spacing uneven: {ys:?}");
    }

    #[test]
    fn degenerate_single_point_series() {
        let mut ch = LineChart::new("t", "x", "y");
        ch.add("a", vec![(1.0, 1.0)]);
        let svg = ch.render(300.0, 200.0).to_svg();
        assert!(svg.contains("<polyline"));
    }
}
