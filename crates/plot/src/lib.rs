//! Minimal, dependency-free SVG charting for the experiment harness.
//!
//! The paper's figures come in two visual forms: cluster scatter plots
//! (Figures 16 and 18) and per-ε line charts (Figures 11, 13, 14, 15,
//! 17, 19, 20). This crate renders both as standalone SVG files so the
//! harness can regenerate the *pictures*, not just the numbers. It is
//! deliberately tiny: shapes, two chart types, a colour-blind-safe
//! palette — nothing configurable beyond what the figures need.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chart;
pub mod svg;

pub use chart::{LineChart, ScatterPlot, Series};
pub use svg::SvgCanvas;

/// A colour-blind-friendly categorical palette (Okabe–Ito order),
/// cycled for cluster ids beyond its length.
pub const PALETTE: [&str; 8] = [
    "#0072B2", "#E69F00", "#009E73", "#CC79A7", "#56B4E9", "#D55E00", "#F0E442", "#000000",
];

/// Colour for noise/outlier points.
pub const NOISE_COLOR: &str = "#bbbbbb";

/// Colour for cluster `id`.
pub fn cluster_color(id: u32) -> &'static str {
    PALETTE[id as usize % PALETTE.len()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn palette_cycles() {
        assert_eq!(cluster_color(0), cluster_color(8));
        assert_ne!(cluster_color(0), cluster_color(1));
    }
}
