//! Corner-case integration tests for the core pipeline, including the
//! Lemma 3.5 coarsening behaviour discovered by the property tests.

use rpdbscan_baselines::exact_dbscan;
use rpdbscan_core::{RpDbscan, RpDbscanParams};
use rpdbscan_engine::{CostModel, Engine};
use rpdbscan_geom::Dataset;
use rpdbscan_metrics::{rand_index, NoisePolicy};

fn engine() -> Engine {
    Engine::with_cost_model(2, CostModel::free())
}

fn run(data: &Dataset, eps: f64, min_pts: usize, k: usize) -> rpdbscan_core::RpDbscanOutput {
    RpDbscan::new(
        RpDbscanParams::new(eps, min_pts)
            .with_rho(0.01)
            .with_partitions(k),
    )
    .unwrap()
    .run(data, &engine())
    .unwrap()
}

/// The paper's Lemma 3.5 "fully directly reachable" rule merges two
/// clusters whenever a point of a core cell is within ε of another core
/// cell's core point — even when that shared point is itself non-core. In
/// strict DBSCAN such a border point is shared between the clusters
/// without merging them (reachability chains relay only through cores).
/// This test pins the corner case: cell-level clustering is a coarsening,
/// and this is the configuration where it is strictly coarser.
#[test]
fn lemma_3_5_merges_through_shared_border_point_in_core_cell() {
    // 1-d layout, eps = 1.0, minPts = 10, cell side = eps = 1.0:
    //   cluster A: 5 cores at 0.05 + 5 cores at -0.5 (mutually in range);
    //   bridge b at 1.0 — sees {5×A(0.95), j(0.9), self} = 7 < 10, NOT
    //     core, but reachable from A's cores; lives in cell [1,2);
    //   j at 1.9 — same cell as b; sees {10×B(0.9), b, self} = 12, core;
    //   cluster B: 10 cores at 2.8 (cell [2,3)).
    // No A core is within eps of any B core (0.05 vs 1.9 -> 1.85), so
    // exact DBSCAN yields two clusters with b a shared border point.
    let mut xs = vec![0.05f64; 5];
    xs.extend(vec![-0.5; 5]);
    xs.push(1.0); // b
    xs.push(1.9); // j
    xs.extend(vec![2.8; 10]);
    let rows: Vec<Vec<f64>> = xs.iter().map(|&x| vec![x]).collect();
    let data = Dataset::from_rows(1, &rows).unwrap();
    let exact = exact_dbscan(&data, 1.0, 10);
    assert_eq!(exact.clustering.num_clusters(), 2);
    assert!(!exact.core[10], "bridge point must not be core");
    assert!(exact.core[11], "j must be core");
    let out = run(&data, 1.0, 10, 2);
    // Cell-level clustering merges them: cell [1,2) is core (j) and
    // contains b, which is within eps of A's cores -> full edge A->B.
    assert_eq!(
        out.clustering.num_clusters(),
        1,
        "Lemma 3.5 merges through the shared border point"
    );
    // Coarsening, not splitting: every exact cluster maps into one
    // RP cluster.
    for c in 0..exact.clustering.num_clusters() as u32 {
        let rp_ids: std::collections::HashSet<_> = exact
            .clustering
            .labels()
            .iter()
            .zip(out.clustering.labels())
            .filter(|(e, _)| **e == Some(c))
            .map(|(_, r)| *r)
            .collect();
        assert_eq!(rp_ids.len(), 1, "exact cluster {c} split");
    }
}

/// When the grid is offset so the border point does NOT share a cell with
/// the second cluster's cores, the same geometry yields two clusters —
/// showing the merge above is the cell-sharing corner, not a general bug.
#[test]
fn separated_cells_keep_clusters_apart() {
    // Shift everything by 0.35: b at 1.45 sits in cell [1,2) while B's
    // cores move to {1.65, 1.75, 1.85} — still cell [1,2). Instead use a
    // bigger gap: B at {2.05, 2.15, 2.25} (cell [2,3)), b at 1.45 within
    // eps of A-core 0.55 and not within eps of... construct cleanly:
    //   A cores {0.0, 0.1, 0.2}; b at 0.9 (within eps of all A cores ->
    //   b is core actually with minPts=3!) — pick b at 1.15, B at
    //   {2.3, 2.4, 2.5}: dist(b, 2.3) = 1.15 > eps, so no bridge at all.
    let rows: Vec<Vec<f64>> = [0.0, 0.1, 0.2, 1.15, 2.3, 2.4, 2.5]
        .iter()
        .map(|&x| vec![x])
        .collect();
    let data = Dataset::from_rows(1, &rows).unwrap();
    let exact = exact_dbscan(&data, 1.0, 3);
    let out = run(&data, 1.0, 3, 2);
    assert_eq!(exact.clustering.num_clusters(), 2);
    assert_eq!(out.clustering.num_clusters(), 2);
    let ri = rand_index(
        &exact.clustering,
        &out.clustering,
        NoisePolicy::SingleCluster,
    );
    assert_eq!(ri, 1.0);
}

#[test]
fn identical_points_cluster_together() {
    let rows = vec![vec![1.0, 1.0]; 50];
    let data = Dataset::from_rows(2, &rows).unwrap();
    let out = run(&data, 0.5, 10, 4);
    assert_eq!(out.clustering.num_clusters(), 1);
    assert_eq!(out.clustering.noise_count(), 0);
}

#[test]
fn all_points_noise_with_extreme_min_pts() {
    let rows: Vec<Vec<f64>> = (0..30).map(|i| vec![i as f64, 0.0]).collect();
    let data = Dataset::from_rows(2, &rows).unwrap();
    let out = run(&data, 0.5, 100, 3);
    assert_eq!(out.clustering.noise_count(), 30);
    assert_eq!(out.stats.num_clusters, 0);
    assert!(out.stats.edges_per_round.iter().all(|&e| e == 0));
}

#[test]
fn high_dimensional_pipeline_works() {
    // 13-d, the paper's TeraClickLog dimensionality.
    let mut rows = Vec::new();
    for i in 0..60 {
        let mut p = vec![0.0; 13];
        p[0] = (i % 30) as f64 * 0.01;
        p[1] = if i < 30 { 0.0 } else { 500.0 };
        rows.push(p);
    }
    let data = Dataset::from_rows(13, &rows).unwrap();
    let out = run(&data, 2.0, 5, 3);
    assert_eq!(out.clustering.num_clusters(), 2);
    let exact = exact_dbscan(&data, 2.0, 5);
    let ri = rand_index(
        &exact.clustering,
        &out.clustering,
        NoisePolicy::SingleCluster,
    );
    assert_eq!(ri, 1.0);
}

#[test]
fn more_partitions_than_cells_is_fine() {
    let rows = vec![vec![0.0, 0.0], vec![0.05, 0.0], vec![10.0, 10.0]];
    let data = Dataset::from_rows(2, &rows).unwrap();
    let out = run(&data, 1.0, 2, 64);
    assert_eq!(out.clustering.num_clusters(), 1);
    assert_eq!(out.clustering.noise_count(), 1);
}
