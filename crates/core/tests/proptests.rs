//! Property-based tests over the RP-DBSCAN pipeline.

use proptest::prelude::*;
use rpdbscan_core::graph::{CellSubgraph, CellType, UnionFind};
use rpdbscan_core::merge::{merge_pair, tournament};
use rpdbscan_core::partition::{group_by_cell, pseudo_random_partition};
use rpdbscan_core::{RpDbscan, RpDbscanParams};
use rpdbscan_engine::{CostModel, Engine};
use rpdbscan_geom::Dataset;
use rpdbscan_grid::GridSpec;

fn dataset_strategy() -> impl Strategy<Value = Vec<Vec<f64>>> {
    prop::collection::vec(prop::collection::vec(-10.0f64..10.0, 2), 1..150)
}

/// Random subgraphs over a small cell universe with arbitrary types and
/// core-originated edges.
fn subgraph_strategy() -> impl Strategy<Value = CellSubgraph> {
    (
        prop::collection::vec(
            prop::sample::select(vec![CellType::Core, CellType::NonCore]),
            8,
        ),
        prop::collection::vec((0u32..8, 0u32..8), 0..24),
    )
        .prop_map(|(types, raw_edges)| {
            let mut g = CellSubgraph::new();
            for (i, t) in types.iter().enumerate() {
                g.set_type(i as u32, *t);
            }
            for (a, b) in raw_edges {
                if a != b && g.cell_type(a) == CellType::Core {
                    g.add_edge(a, b);
                }
            }
            g
        })
}

fn core_components(g: &CellSubgraph, n: u32) -> Vec<u32> {
    let mut uf = UnionFind::new(n as usize);
    for &(a, b) in g.edges() {
        if g.cell_type(a) == CellType::Core && g.cell_type(b) == CellType::Core {
            uf.union(a, b);
        }
    }
    // Canonicalise representatives to first-appearance order so two
    // union-finds with different internal roots compare equal.
    let mut canon = std::collections::HashMap::new();
    (0..n)
        .map(|c| {
            let r = uf.find(c);
            let next = canon.len() as u32;
            *canon.entry(r).or_insert(next)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Pseudo random partitioning is a disjoint cover with near-equal
    /// cell counts for any data and partition count.
    #[test]
    fn partitioning_disjoint_cover(
        pts in dataset_strategy(),
        k in 1usize..12,
        seed in 0u64..1000,
    ) {
        let data = Dataset::from_rows(2, &pts).unwrap();
        let spec = GridSpec::new(2, 1.0, 0.25).unwrap();
        let cells = group_by_cell(&spec, &data);
        let n_cells = cells.len();
        let parts = pseudo_random_partition(cells, k, seed);
        let total_cells: usize = parts.iter().map(|p| p.cells.len()).sum();
        prop_assert_eq!(total_cells, n_cells);
        let total_points: usize = parts.iter().map(|p| p.num_points()).sum();
        prop_assert_eq!(total_points, pts.len());
        let counts: Vec<usize> = parts.iter().map(|p| p.cells.len()).collect();
        let (mn, mx) = (counts.iter().min().unwrap(), counts.iter().max().unwrap());
        prop_assert!(mx - mn <= 1);
    }

    /// Merging preserves core-cell connectivity (edge reduction removes
    /// only redundant edges) and never loses determined vertex types.
    #[test]
    fn merge_preserves_connectivity_and_types(
        g1 in subgraph_strategy(),
        g2 in subgraph_strategy(),
    ) {
        // Reference: plain union without reduction.
        let mut union = CellSubgraph::new();
        for g in [&g1, &g2] {
            for (&c, &t) in g.types() {
                union.set_type(c, t);
            }
            for &(a, b) in g.edges() {
                union.add_edge(a, b);
            }
        }
        let merged = merge_pair(g1.clone(), g2.clone());
        // Types agree.
        for c in 0..8u32 {
            prop_assert_eq!(merged.cell_type(c), union.cell_type(c));
        }
        // Core components agree.
        prop_assert_eq!(core_components(&merged, 8), core_components(&union, 8));
        // Reduction never grows the edge set.
        prop_assert!(merged.num_edges() <= union.num_edges());
    }

    /// Tournament order never changes core-cell connectivity.
    #[test]
    fn tournament_order_invariant(graphs in prop::collection::vec(subgraph_strategy(), 1..6)) {
        let fwd = tournament(graphs.clone(), |_, _| {});
        let rev = tournament(graphs.into_iter().rev().collect(), |_, _| {});
        prop_assert_eq!(core_components(&fwd, 8), core_components(&rev, 8));
    }

    /// The full pipeline is invariant to partition count and seed: the
    /// clustering depends only on (eps, minPts, rho).
    #[test]
    fn clustering_invariant_to_partitioning(
        pts in dataset_strategy(),
        k in 1usize..10,
        seed in 0u64..100,
    ) {
        let data = Dataset::from_rows(2, &pts).unwrap();
        let engine = Engine::with_cost_model(2, CostModel::free());
        let run = |k: usize, seed: u64| {
            RpDbscan::new(
                RpDbscanParams::new(1.0, 3).with_partitions(k).with_seed(seed),
            )
            .unwrap()
            .run(&data, &engine)
            .unwrap()
            .clustering
        };
        let base = run(1, 0);
        let other = run(k, seed);
        let ri = rpdbscan_metrics::rand_index(
            &base,
            &other,
            rpdbscan_metrics::NoisePolicy::SingleCluster,
        );
        prop_assert_eq!(ri, 1.0);
    }

    /// Labels partition the points: every label is either None or a valid
    /// dense cluster id, and cluster count matches the stats.
    #[test]
    fn output_labels_are_consistent(pts in dataset_strategy()) {
        let data = Dataset::from_rows(2, &pts).unwrap();
        let engine = Engine::with_cost_model(2, CostModel::free());
        let out = RpDbscan::new(RpDbscanParams::new(1.5, 2).with_partitions(4))
            .unwrap()
            .run(&data, &engine)
            .unwrap();
        prop_assert_eq!(out.clustering.len(), pts.len());
        prop_assert_eq!(out.stats.num_clusters, out.clustering.num_clusters());
        prop_assert_eq!(out.stats.noise_points, out.clustering.noise_count());
        prop_assert_eq!(out.stats.points_processed, pts.len() as u64);
    }
}
