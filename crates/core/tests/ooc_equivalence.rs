//! The out-of-core pipeline must be bit-identical to the resident one:
//! same labels, same cluster statistics, same shared RunStats counters —
//! across dimensionality, ρ, pool budget and partition count. The pool
//! budget may change how often pages are refetched, but never what the
//! algorithm computes.

use rpdbscan_core::{OutOfCoreConfig, RpDbscan, RpDbscanParams, RunStats};
use rpdbscan_engine::{CostModel, Engine};
use rpdbscan_geom::Dataset;
use rpdbscan_grid::GridSpec;
use rpdbscan_store::{ColumnStore, StoreWriter};
use std::sync::Arc;

/// Deterministic multi-blob dataset in `dim` dimensions: three dense
/// blobs plus a sprinkling of sparse outliers, sized to span many cells.
fn blobs(dim: usize, n_per_blob: usize) -> Vec<Vec<f64>> {
    let centers: [f64; 3] = [0.0, 9.0, -7.5];
    let mut rows = Vec::new();
    for (b, &c) in centers.iter().enumerate() {
        for i in 0..n_per_blob {
            let a = (i as f64 + b as f64 * 0.37) * 0.61803398875;
            let r = 0.45 * ((i % 10) as f64 / 10.0);
            let mut row = vec![0.0; dim];
            for (d, v) in row.iter_mut().enumerate() {
                *v = c + r * (a + d as f64).cos();
            }
            rows.push(row);
        }
    }
    for i in 0..8 {
        let mut row = vec![0.0; dim];
        for (d, v) in row.iter_mut().enumerate() {
            *v = 40.0 + (i * 7 + d * 3) as f64;
        }
        rows.push(row);
    }
    rows
}

fn build_store(
    rows: &[Vec<f64>],
    dim: usize,
    eps: f64,
    rho: f64,
    page_rows: u32,
) -> Arc<ColumnStore> {
    let spec = GridSpec::new(dim, eps, rho).unwrap();
    let mut w = StoreWriter::new(spec, page_rows).unwrap();
    for row in rows {
        w.push(row).unwrap();
    }
    let dir = std::env::temp_dir().join(format!(
        "rpdbscan-equiv-{}-{dim}-{page_rows}-{}.store",
        std::process::id(),
        rows.len()
    ));
    w.finish(&dir).unwrap();
    let store = Arc::new(ColumnStore::open(&dir).unwrap());
    std::fs::remove_file(&dir).unwrap();
    store
}

/// Zeroes the OOC-only fields so the shared counters can be compared
/// against a resident run's stats directly.
fn normalized(stats: &RunStats) -> RunStats {
    let mut s = stats.clone();
    s.out_of_core = false;
    s.pool_budget_bytes = 0;
    s.pool_hits = 0;
    s.pool_misses = 0;
    s.pool_evictions = 0;
    s.pool_peak_tracked_bytes = 0;
    s.spill_bytes_written = 0;
    s.spill_bytes_read = 0;
    s.merge_peak_frontier_bytes = 0;
    s
}

#[test]
fn ooc_matches_resident_across_the_grid() {
    let eps = 1.0;
    let min_pts = 5;
    // Tiny: a handful of 64-row pages; ample: everything fits.
    let budgets: [(&str, u64); 2] = [("tiny", 3 * 64 * 8), ("ample", u64::MAX)];
    for dim in [2usize, 3] {
        let rows = blobs(dim, 60);
        let data = Dataset::from_rows(dim, &rows).unwrap();
        for rho in [1.0, 0.1] {
            let store = build_store(&rows, dim, eps, rho, 64);
            for k in [1usize, 4] {
                let params = RpDbscanParams::new(eps, min_pts)
                    .with_rho(rho)
                    .with_partitions(k);
                let engine = Engine::with_cost_model(4, CostModel::free());
                let runner = RpDbscan::new(params).unwrap();
                let resident = runner.run(&data, &engine).unwrap();
                for (tag, budget) in budgets {
                    let ooc = runner
                        .run_out_of_core(&store, &OutOfCoreConfig::new(budget), &engine)
                        .unwrap();
                    let ctx = format!("dim={dim} rho={rho} k={k} budget={tag}");
                    assert_eq!(ooc.clustering, resident.clustering, "labels diverge: {ctx}");
                    assert_eq!(
                        normalized(&ooc.stats),
                        normalized(&resident.stats),
                        "shared counters diverge: {ctx}"
                    );
                    assert!(ooc.stats.out_of_core);
                    assert_eq!(ooc.stats.pool_budget_bytes, budget);
                    assert!(
                        ooc.stats.spill_bytes_written > 0 || store.is_empty(),
                        "phase II must spill: {ctx}"
                    );
                    if k > 1 {
                        assert!(
                            ooc.stats.spill_bytes_read > 0,
                            "the tournament must stream spills back: {ctx}"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn tiny_budget_run_is_deterministic() {
    // With one worker the pin/evict/refetch sequence is a pure function
    // of the input, so even the pool counters must reproduce exactly.
    let dim = 2;
    let rows = blobs(dim, 60);
    let store = build_store(&rows, dim, 1.0, 0.1, 64);
    let params = RpDbscanParams::new(1.0, 5).with_rho(0.1).with_partitions(4);
    let runner = RpDbscan::new(params).unwrap();
    let cfg = OutOfCoreConfig::new(2 * 64 * 8);
    let engine = Engine::with_cost_model(1, CostModel::free());
    let a = runner.run_out_of_core(&store, &cfg, &engine).unwrap();
    let b = runner.run_out_of_core(&store, &cfg, &engine).unwrap();
    assert_eq!(a.clustering, b.clustering);
    assert_eq!(a.stats, b.stats);
    assert!(a.stats.pool_evictions > 0, "tiny budget must evict");
    assert!(a.stats.pool_misses > a.stats.pool_evictions / 2);
}

#[test]
fn grid_mismatch_is_a_typed_error() {
    let rows = blobs(2, 20);
    let store = build_store(&rows, 2, 1.0, 0.1, 64);
    let engine = Engine::with_cost_model(2, CostModel::free());
    for (eps, rho, field) in [(2.0, 0.1, "eps"), (1.0, 0.5, "rho")] {
        let runner = RpDbscan::new(RpDbscanParams::new(eps, 5).with_rho(rho)).unwrap();
        let err = runner
            .run_out_of_core(&store, &OutOfCoreConfig::new(1 << 20), &engine)
            .unwrap_err();
        match err {
            rpdbscan_core::CoreError::Store(rpdbscan_store::StoreError::GridMismatch {
                field: f,
                ..
            }) => assert_eq!(f, field),
            other => panic!("expected GridMismatch({field}), got {other:?}"),
        }
    }
}

#[test]
fn empty_store_clusters_nothing() {
    let spec = GridSpec::new(2, 1.0, 0.1).unwrap();
    let w = StoreWriter::new(spec, 64).unwrap();
    let path =
        std::env::temp_dir().join(format!("rpdbscan-equiv-empty-{}.store", std::process::id()));
    let stats = w.finish(&path).unwrap();
    assert_eq!(stats.points, 0);
    let store = Arc::new(ColumnStore::open(&path).unwrap());
    std::fs::remove_file(&path).unwrap();
    assert!(store.is_empty());
    let engine = Engine::with_cost_model(2, CostModel::free());
    let runner = RpDbscan::new(RpDbscanParams::new(1.0, 5).with_rho(0.1)).unwrap();
    let out = runner
        .run_out_of_core(&store, &OutOfCoreConfig::new(1 << 20), &engine)
        .unwrap();
    assert_eq!(out.clustering.len(), 0);
    assert_eq!(out.stats.num_clusters, 0);
    assert_eq!(out.stats.points_processed, 0);
}
