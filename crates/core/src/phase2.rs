//! Phase II: core marking and cell subgraph building (Algorithm 3).
//!
//! Each partition independently runs an `(ε,ρ)`-region query for every one
//! of its points against the broadcast dictionary, marks core points and
//! core cells, and emits a cell subgraph whose edges point from its core
//! cells to every cell holding a qualifying neighbour sub-cell. Successor
//! cells living in other partitions stay type-undetermined until Phase
//! III merges the knowledge in.

use crate::graph::{CellSubgraph, CellType};
use crate::partition::Partition;
use rpdbscan_engine::TaskError;
use rpdbscan_geom::{Dataset, PointId};
use rpdbscan_grid::{
    CellQueryPlan, DictionaryIndex, FxHashMap, PlannerCostModel, QueryRoute, QueryStats,
};

/// How Phase II routes each cell's region queries.
///
/// Production code uses [`QueryRouting::Auto`]: the cost model routes each
/// cell by occupancy, so dense cells amortise a [`CellQueryPlan`] while
/// sparse cells take the cheaper per-point kd path. The forced variants
/// exist for the equivalence suites and ablations — all three produce
/// bit-identical clustering output; routing is purely a performance
/// decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryRouting {
    /// Per-cell cost-model routing (the production default).
    Auto(PlannerCostModel),
    /// Force a plan for every cell regardless of occupancy.
    Planned,
    /// Force the per-point kd path everywhere — the correctness oracle
    /// the planned path is pinned against.
    Oracle,
}

impl QueryRouting {
    /// Cost-model routing calibrated for `index` — what `driver`, `stream`
    /// and `serve` all use.
    pub fn auto(index: &DictionaryIndex) -> Self {
        QueryRouting::Auto(PlannerCostModel::calibrate(index))
    }

    /// Decides the route for one cell holding `occupancy` query points.
    #[inline]
    pub fn route(&self, occupancy: usize) -> QueryRoute {
        match self {
            QueryRouting::Auto(model) => model.route(occupancy),
            QueryRouting::Planned => QueryRoute::Planned,
            QueryRouting::Oracle => QueryRoute::Kd,
        }
    }

    /// The cost-model threshold in effect (`None` for the forced modes).
    pub fn min_occupancy(&self) -> Option<u32> {
        match self {
            QueryRouting::Auto(model) => Some(model.min_occupancy),
            _ => None,
        }
    }
}

/// Output of Phase II for one partition.
#[derive(Debug, Clone)]
pub struct LocalClustering {
    /// The partition's cell subgraph.
    pub subgraph: CellSubgraph,
    /// Core points per owned core cell (needed by Phase III-2's exact
    /// distance checks on partial edges, Algorithm 4 Lines 18–23).
    pub core_points: FxHashMap<u32, Vec<PointId>>,
    /// Aggregated region-query instrumentation.
    pub stats: QueryStats,
    /// Number of region queries executed (= points in the partition).
    pub queries: u64,
}

/// Where a cell's point coordinates come from.
///
/// The resident pipeline reads them straight out of the shared
/// [`Dataset`]; the out-of-core pipeline gathers them through the buffer
/// pool into a row-major scratch buffer first. Both feed the same
/// [`LocalBuilder`], so Algorithm 3's decisions — and therefore the
/// clustering output — are bit-identical between the two.
#[derive(Debug, Clone, Copy)]
pub enum PointSource<'a> {
    /// Coordinates live in the shared dataset, addressed by point id.
    Dataset(&'a Dataset),
    /// Coordinates were gathered row-major: the cell's `j`-th point (in
    /// the same order as the id slice handed to
    /// [`LocalBuilder::process_cell`]) occupies `rows[j*dim..(j+1)*dim]`.
    Rows(&'a [f64]),
}

impl PointSource<'_> {
    /// Coordinates of the cell's `j`-th point, whose id is `pid`.
    #[inline]
    fn point(&self, dim: usize, j: usize, pid: PointId) -> &[f64] {
        match self {
            PointSource::Dataset(data) => data.point(pid),
            PointSource::Rows(rows) => &rows[j * dim..(j + 1) * dim],
        }
    }
}

/// Incremental Algorithm 3 state: feed cells one at a time with
/// [`Self::process_cell`], then [`Self::finish`]. Holds the partition's
/// accumulating subgraph plus all query scratch, so processing a cell
/// allocates nothing in steady state regardless of the point source.
#[derive(Debug)]
pub struct LocalBuilder {
    subgraph: CellSubgraph,
    core_points: FxHashMap<u32, Vec<PointId>>,
    stats: QueryStats,
    queries: u64,
    // Scratch buffers reused across all points of the partition.
    neighbors: Vec<u32>,
    r: rpdbscan_grid::RegionQueryResult,
    center: Vec<f64>,
}

impl LocalBuilder {
    /// A fresh builder for one partition under `index`'s grid.
    pub fn new(index: &DictionaryIndex) -> LocalBuilder {
        LocalBuilder {
            subgraph: CellSubgraph::new(),
            core_points: FxHashMap::default(),
            stats: QueryStats::default(),
            queries: 0,
            neighbors: Vec::new(),
            r: rpdbscan_grid::RegionQueryResult::default(),
            center: vec![0.0; index.spec().dim()],
        }
    }

    /// Runs Algorithm 3's per-cell body: region-query every point of the
    /// cell, mark core points, and (for a core cell) add successor edges.
    ///
    /// `ids` lists the cell's point ids; `source` resolves the `j`-th
    /// id's coordinates. A cell absent from the broadcast dictionary is
    /// an internal-consistency violation reported as a [`TaskError`].
    pub fn process_cell(
        &mut self,
        index: &DictionaryIndex,
        min_pts: usize,
        routing: QueryRouting,
        coord: &rpdbscan_grid::CellCoord,
        ids: &[PointId],
        source: PointSource<'_>,
    ) -> Result<(), TaskError> {
        let dim = index.spec().dim();
        let cell_idx = index.dict().index_of(coord).ok_or_else(|| {
            TaskError::new(format!(
                "partition cell {coord} missing from broadcast dictionary"
            ))
        })?;
        self.neighbors.clear();
        let mut is_core_cell = false;
        let plan = match routing.route(ids.len()) {
            QueryRoute::Planned => {
                self.stats.cells_routed_planned += 1;
                let plan = CellQueryPlan::build(index, cell_idx);
                // Build cost is charged once per cell, not once per point.
                self.stats.merge(plan.build_stats());
                Some(plan)
            }
            QueryRoute::Kd => {
                self.stats.cells_routed_kd += 1;
                None
            }
        };
        for (j, &pid) in ids.iter().enumerate() {
            let p = source.point(dim, j, pid);
            match &plan {
                Some(plan) => plan.query_into(p, &mut self.r),
                None => index.region_query_cells_scratch(p, &mut self.r, &mut self.center),
            }
            self.stats.merge(&self.r.stats);
            self.queries += 1;
            if self.r.density >= min_pts as u64 {
                // p is a core point (Line 9–10); its cell is core (11–12)
                // and all cells holding one of its (ε,ρ)-neighbour
                // sub-cells are reachable successors (13–16).
                is_core_cell = true;
                self.core_points.entry(cell_idx).or_default().push(pid);
                for &nc in &self.r.neighbor_cells {
                    if nc != cell_idx {
                        self.neighbors.push(nc);
                    }
                }
            }
        }
        self.subgraph.set_type(
            cell_idx,
            if is_core_cell {
                CellType::Core
            } else {
                CellType::NonCore
            },
        );
        if is_core_cell {
            self.neighbors.sort_unstable();
            self.neighbors.dedup();
            for &nc in &self.neighbors {
                self.subgraph.add_edge(cell_idx, nc);
            }
        }
        Ok(())
    }

    /// The partition's finished local clustering.
    pub fn finish(self) -> LocalClustering {
        LocalClustering {
            subgraph: self.subgraph,
            core_points: self.core_points,
            stats: self.stats,
            queries: self.queries,
        }
    }
}

/// Runs Algorithm 3 on one partition.
///
/// `index` is the broadcast dictionary; `data` provides point coordinates
/// (in the real system the partition physically holds them — ids suffice
/// here because the dataset is shared read-only memory).
///
/// `routing` decides per cell whether a [`CellQueryPlan`] is built (and
/// every point of the cell answered through it — the kd-tree candidate
/// search and sub-cell centre materialisation amortised over the cell's
/// points) or each point runs the plain per-point `region_query`. The
/// clustering output is identical on every route; the decision is
/// recorded in the returned stats (`cells_routed_planned` /
/// `cells_routed_kd`).
///
/// Runs inside a `run_stage` task; a partition cell absent from the
/// broadcast dictionary is an internal-consistency violation reported as
/// a [`TaskError`] so it flows through the engine's failure path.
pub fn build_local_clustering(
    partition: &Partition,
    data: &Dataset,
    index: &DictionaryIndex,
    min_pts: usize,
    routing: QueryRouting,
) -> Result<LocalClustering, TaskError> {
    let mut builder = LocalBuilder::new(index);
    for cell in &partition.cells {
        builder.process_cell(
            index,
            min_pts,
            routing,
            &cell.coord,
            &cell.points,
            PointSource::Dataset(data),
        )?;
    }
    Ok(builder.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::EdgeType;
    use crate::partition::{group_by_cell, pseudo_random_partition};
    use rpdbscan_grid::{CellDictionary, GridSpec};

    /// A line of 10 points spaced 0.1 apart plus one far outlier.
    fn line_world() -> (GridSpec, Dataset) {
        let spec = GridSpec::new(2, 0.5, 0.01).unwrap();
        let mut rows: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64 * 0.1, 0.0]).collect();
        rows.push(vec![50.0, 50.0]);
        (spec, Dataset::from_rows(2, &rows).unwrap())
    }

    fn setup(spec: &GridSpec, data: &Dataset, k: usize) -> (Vec<Partition>, DictionaryIndex) {
        let cells = group_by_cell(spec, data);
        let parts = pseudo_random_partition(cells, k, 0);
        let dict = CellDictionary::build_from_points(spec.clone(), data.iter().map(|(_, p)| p));
        (parts, DictionaryIndex::new(dict, 1 << 16))
    }

    #[test]
    fn dense_line_marks_core_outlier_does_not() {
        let (spec, data) = line_world();
        let (parts, index) = setup(&spec, &data, 1);
        let local =
            build_local_clustering(&parts[0], &data, &index, 4, QueryRouting::Planned).unwrap();
        // Some interior cell must be core; the outlier's cell must not be.
        let outlier_cell = index.dict().index_of(&spec.cell_of(&[50.0, 50.0])).unwrap();
        assert_eq!(local.subgraph.cell_type(outlier_cell), CellType::NonCore);
        let n_core = local
            .subgraph
            .types()
            .values()
            .filter(|&&t| t == CellType::Core)
            .count();
        assert!(n_core >= 1);
        // With minPts=4 and 0.1 spacing, eps=0.5 covers >= 4 neighbours
        // for interior points, so core points exist.
        assert!(!local.core_points.is_empty());
    }

    #[test]
    fn single_partition_edges_are_all_determined() {
        let (spec, data) = line_world();
        let (parts, index) = setup(&spec, &data, 1);
        let local =
            build_local_clustering(&parts[0], &data, &index, 4, QueryRouting::Planned).unwrap();
        assert!(local.subgraph.is_global());
        let (_, _, undet) = local.subgraph.edge_type_counts();
        assert_eq!(undet, 0);
    }

    #[test]
    fn multi_partition_leaves_cross_edges_undetermined() {
        let (spec, data) = line_world();
        let (parts, index) = setup(&spec, &data, 3);
        let mut any_undetermined = false;
        for part in &parts {
            let local =
                build_local_clustering(part, &data, &index, 4, QueryRouting::Planned).unwrap();
            let (_, _, undet) = local.subgraph.edge_type_counts();
            if undet > 0 {
                any_undetermined = true;
            }
        }
        assert!(
            any_undetermined,
            "a 10-point chain split 3 ways must produce cross-partition edges"
        );
    }

    #[test]
    fn min_pts_one_everything_with_a_point_is_core() {
        let (spec, data) = line_world();
        let (parts, index) = setup(&spec, &data, 1);
        let local =
            build_local_clustering(&parts[0], &data, &index, 1, QueryRouting::Planned).unwrap();
        for (&cell, &t) in local.subgraph.types().iter() {
            assert_eq!(t, CellType::Core, "cell {cell} not core at minPts=1");
        }
    }

    #[test]
    fn huge_min_pts_nothing_is_core() {
        let (spec, data) = line_world();
        let (parts, index) = setup(&spec, &data, 1);
        let local =
            build_local_clustering(&parts[0], &data, &index, 1000, QueryRouting::Planned).unwrap();
        assert!(local.core_points.is_empty());
        assert_eq!(local.subgraph.num_edges(), 0);
        for &t in local.subgraph.types().values() {
            assert_eq!(t, CellType::NonCore);
        }
    }

    #[test]
    fn edges_originate_from_core_cells_only() {
        let (spec, data) = line_world();
        let (parts, index) = setup(&spec, &data, 1);
        let local =
            build_local_clustering(&parts[0], &data, &index, 4, QueryRouting::Planned).unwrap();
        for &(from, _) in local.subgraph.edges() {
            assert_eq!(local.subgraph.cell_type(from), CellType::Core);
        }
        // Derived edge types must never be Undetermined here (one
        // partition) and never panic.
        for &(from, to) in local.subgraph.edges() {
            let t = local.subgraph.edge_type(from, to);
            assert_ne!(t, EdgeType::Undetermined);
        }
    }

    #[test]
    fn planner_and_oracle_paths_agree_exactly() {
        let (spec, data) = line_world();
        for k in [1, 3] {
            let (parts, index) = setup(&spec, &data, k);
            for part in &parts {
                for min_pts in [1, 4, 1000] {
                    let oracle =
                        build_local_clustering(part, &data, &index, min_pts, QueryRouting::Oracle)
                            .unwrap();
                    assert_eq!(oracle.stats.plan_hits, 0);
                    assert_eq!(oracle.stats.cells_routed_planned, 0);
                    // Every routing mode must agree with the oracle
                    // bit-for-bit — routing is a pure performance choice.
                    for routing in [
                        QueryRouting::Planned,
                        QueryRouting::auto(&index),
                        QueryRouting::Auto(PlannerCostModel { min_occupancy: 2 }),
                    ] {
                        let routed =
                            build_local_clustering(part, &data, &index, min_pts, routing).unwrap();
                        assert_eq!(routed.queries, oracle.queries);
                        assert_eq!(routed.core_points, oracle.core_points);
                        assert_eq!(routed.subgraph.types(), oracle.subgraph.types());
                        assert_eq!(routed.subgraph.edges(), oracle.subgraph.edges());
                        // Per-point counters are bit-identical; only the
                        // amortised candidate/sub-dictionary counters differ.
                        assert_eq!(routed.stats.cells_full, oracle.stats.cells_full);
                        assert_eq!(routed.stats.cells_partial, oracle.stats.cells_partial);
                        assert_eq!(
                            routed.stats.subcells_reported,
                            oracle.stats.subcells_reported
                        );
                        // Routing decisions are fully accounted for.
                        assert_eq!(
                            routed.stats.cells_routed_planned + routed.stats.cells_routed_kd,
                            part.cells.len() as u32,
                            "every cell gets exactly one routing decision"
                        );
                        assert_eq!(
                            routed.stats.cells_routed_planned, routed.stats.plans_built,
                            "one plan per planned-routed cell"
                        );
                        if routing == QueryRouting::Planned {
                            assert_eq!(routed.stats.plan_hits, routed.queries as u32);
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn query_counts_match_point_count() {
        let (spec, data) = line_world();
        let (parts, index) = setup(&spec, &data, 2);
        let total: u64 = parts
            .iter()
            .map(|p| {
                build_local_clustering(p, &data, &index, 4, QueryRouting::auto(&index))
                    .unwrap()
                    .queries
            })
            .sum();
        assert_eq!(total, data.len() as u64);
    }
}
