//! Phase III-1: progressive graph merging (Algorithm 4, first part).
//!
//! Cell subgraphs merge pairwise in a tournament (Figure 9a). Each match
//! (1) unions the two graphs (Definition 6.2, promoting undetermined
//! vertices), (2) re-derives edge types from the enlarged type knowledge
//! (§6.1.3), and (3) removes redundant full edges by keeping only a
//! spanning forest over core cells (§6.1.4) — full-edge direction is
//! irrelevant, and one path between core cells preserves the graph's
//! expressive power while shrinking shuffle volume round over round
//! (Figure 17).

use crate::graph::{CellSubgraph, CellType, UnionFind};
use rpdbscan_grid::FxHashMap;

/// Merges two cell subgraphs and reduces redundant full edges.
pub fn merge_pair(g1: CellSubgraph, g2: CellSubgraph) -> CellSubgraph {
    let (mut types, mut edges) = g1.into_parts();
    let (t2, e2) = g2.into_parts();
    // Definition 6.2: vertex union with promotion of undetermined cells.
    for (cell, t) in t2 {
        let entry = types.entry(cell).or_insert(CellType::Undetermined);
        *entry = (*entry).max(t);
    }
    // Edge union (E1 ∩ E2 = ∅ holds under pseudo random partitioning, but
    // the set union is also correct when it does not).
    edges.extend(e2);
    reduce_redundant_full_edges(CellSubgraph::from_parts(types, edges))
}

/// Removes full edges that close cycles among core cells, keeping one
/// spanning forest (found in linear time with union-find, equivalent to
/// the DFS/BFS-with-hashing formulation the paper cites). Partial and
/// undetermined edges always survive.
pub fn reduce_redundant_full_edges(g: CellSubgraph) -> CellSubgraph {
    let (types, edges) = g.into_parts();
    // Dense renaming of core cells for the union-find.
    let mut core_ids: Vec<u32> = types
        .iter()
        .filter(|(_, &t)| t == CellType::Core)
        .map(|(&c, _)| c)
        .collect();
    core_ids.sort_unstable();
    let dense: FxHashMap<u32, u32> = core_ids
        .iter()
        .enumerate()
        .map(|(i, &c)| (c, i as u32))
        .collect();
    let mut uf = UnionFind::new(core_ids.len());

    // Deterministic edge order so merges are reproducible run-to-run.
    let mut sorted: Vec<(u32, u32)> = edges.into_iter().collect();
    sorted.sort_unstable();

    let is_core = |c: u32| types.get(&c) == Some(&CellType::Core);
    let mut kept: Vec<(u32, u32)> = Vec::with_capacity(sorted.len());
    for (a, b) in sorted {
        if is_core(a) && is_core(b) {
            // Full edge: normalise direction, keep only forest edges.
            let (x, y) = if a <= b { (a, b) } else { (b, a) };
            if uf.union(dense[&x], dense[&y]) {
                kept.push((x, y));
            }
        } else {
            kept.push((a, b));
        }
    }
    CellSubgraph::from_parts(types, kept.into_iter().collect())
}

/// Sequential tournament over any number of subgraphs; `on_round(round,
/// edges_remaining)` fires after every parallel round (round numbering
/// matches Figure 17: the caller reports round 0 itself as the pre-merge
/// total). The driver runs the same schedule through the engine; this
/// helper serves tests and single-threaded use.
pub fn tournament(
    mut graphs: Vec<CellSubgraph>,
    mut on_round: impl FnMut(usize, usize),
) -> CellSubgraph {
    if graphs.is_empty() {
        return CellSubgraph::new();
    }
    let mut round = 0;
    while graphs.len() > 1 {
        round += 1;
        let mut next = Vec::with_capacity(graphs.len() / 2 + 1);
        let mut it = graphs.into_iter();
        while let Some(g1) = it.next() {
            match it.next() {
                Some(g2) => next.push(merge_pair(g1, g2)),
                None => next.push(g1),
            }
        }
        graphs = next;
        let edges: usize = graphs.iter().map(|g| g.num_edges()).sum();
        on_round(round, edges);
    }
    // lint:allow(panic-safety): empty input returns early above and the loop ends at exactly one graph
    graphs.pop().expect("non-empty tournament")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::EdgeType;

    fn core_chain(ids: &[u32]) -> CellSubgraph {
        let mut g = CellSubgraph::new();
        for &c in ids {
            g.set_type(c, CellType::Core);
        }
        for w in ids.windows(2) {
            g.add_edge(w[0], w[1]);
        }
        g
    }

    #[test]
    fn merge_promotes_undetermined_vertices() {
        let mut g1 = CellSubgraph::new();
        g1.set_type(0, CellType::Core);
        g1.add_edge(0, 1); // 1 unknown to g1
        let mut g2 = CellSubgraph::new();
        g2.set_type(1, CellType::NonCore);
        let m = merge_pair(g1, g2);
        assert_eq!(m.cell_type(1), CellType::NonCore);
        assert_eq!(m.edge_type(0, 1), EdgeType::Partial);
        assert!(m.is_global());
    }

    #[test]
    fn cycle_of_full_edges_is_reduced_to_spanning_tree() {
        let mut g = CellSubgraph::new();
        for c in 0..4 {
            g.set_type(c, CellType::Core);
        }
        // 4-cycle plus a chord: 5 full edges, spanning tree needs 3.
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(2, 3);
        g.add_edge(3, 0);
        g.add_edge(0, 2);
        let r = reduce_redundant_full_edges(g);
        assert_eq!(r.num_edges(), 3);
        // Connectivity preserved: all four cells in one component.
        let mut uf = UnionFind::new(4);
        for &(a, b) in r.edges() {
            uf.union(a, b);
        }
        let root = uf.find(0);
        for c in 1..4 {
            assert_eq!(uf.find(c), root);
        }
    }

    #[test]
    fn reverse_duplicate_full_edges_collapse() {
        let mut g = CellSubgraph::new();
        g.set_type(0, CellType::Core);
        g.set_type(1, CellType::Core);
        g.add_edge(0, 1);
        g.add_edge(1, 0);
        let r = reduce_redundant_full_edges(g);
        assert_eq!(r.num_edges(), 1, "anti-parallel full edges are one path");
    }

    #[test]
    fn partial_and_undetermined_edges_survive_reduction() {
        let mut g = CellSubgraph::new();
        g.set_type(0, CellType::Core);
        g.set_type(1, CellType::NonCore);
        g.add_edge(0, 1); // partial
        g.add_edge(0, 7); // undetermined (7 unknown)
        let r = reduce_redundant_full_edges(g);
        assert_eq!(r.num_edges(), 2);
    }

    #[test]
    fn tournament_merges_everything() {
        // Five chains over disjoint-but-overlapping id ranges.
        let graphs = vec![
            core_chain(&[0, 1, 2]),
            core_chain(&[2, 3]),
            core_chain(&[3, 4]),
            core_chain(&[4, 5]),
            core_chain(&[5, 0]),
        ];
        let mut rounds = Vec::new();
        let g = tournament(graphs, |r, e| rounds.push((r, e)));
        // ceil(log2(5)) = 3 rounds
        assert_eq!(rounds.len(), 3);
        assert!(g.is_global());
        // 6 distinct core cells in one component: spanning tree has 5 edges.
        assert_eq!(g.num_edges(), 5);
        // Edge counts must be non-increasing across rounds.
        for w in rounds.windows(2) {
            assert!(w[1].1 <= w[0].1);
        }
    }

    #[test]
    fn tournament_single_graph_is_identity() {
        let g = core_chain(&[0, 1]);
        let edges_before = g.num_edges();
        let out = tournament(vec![g], |_, _| panic!("no rounds expected"));
        assert_eq!(out.num_edges(), edges_before);
    }

    #[test]
    fn tournament_empty_input() {
        let g = tournament(vec![], |_, _| {});
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn merge_is_deterministic() {
        let make = || {
            let mut g1 = CellSubgraph::new();
            for c in 0..6 {
                g1.set_type(c, CellType::Core);
            }
            for a in 0..6 {
                for b in 0..6 {
                    if a != b {
                        g1.add_edge(a, b);
                    }
                }
            }
            let g2 = core_chain(&[6, 0]);
            merge_pair(g1, g2)
        };
        let a = make();
        let b = make();
        let mut ea: Vec<_> = a.edges().iter().collect();
        let mut eb: Vec<_> = b.edges().iter().collect();
        ea.sort_unstable();
        eb.sort_unstable();
        assert_eq!(ea, eb);
    }

    #[test]
    fn merge_order_does_not_change_connectivity() {
        // Associativity at the clustering level: any merge order yields
        // the same core-cell components.
        let parts = vec![
            core_chain(&[0, 1]),
            core_chain(&[1, 2]),
            core_chain(&[3, 4]),
            core_chain(&[2, 3]),
        ];
        let components = |g: &CellSubgraph| {
            let mut uf = UnionFind::new(5);
            for &(a, b) in g.edges() {
                if g.cell_type(a) == CellType::Core && g.cell_type(b) == CellType::Core {
                    uf.union(a, b);
                }
            }
            (0..5u32).map(|c| uf.find(c)).collect::<Vec<_>>()
        };
        let fwd = tournament(parts.clone(), |_, _| {});
        let rev = tournament(parts.into_iter().rev().collect(), |_, _| {});
        // All five cells end up connected either way.
        let cf = components(&fwd);
        let cr = components(&rev);
        assert!(cf.iter().all(|&r| r == cf[0]));
        assert!(cr.iter().all(|&r| r == cr[0]));
    }
}
