//! Algorithm parameters.

/// Which density backend answers the core-point/neighbourhood decision
/// of Phase II.
///
/// The paper's pipeline hard-codes the exact `(ε,ρ)`-region query
/// against the broadcast cell dictionary. In high dimensions the grid
/// collapses (sub-cell counts and `(2b+1)^d` neighbour windows grow
/// exponentially in `d`), so the `rpdbscan-density` crate offers two
/// approximate estimators from the literature behind the same
/// parameter surface. This enum is only the *selection*; the
/// implementations live in `rpdbscan-density` (`backend_for`), and the
/// batch driver here runs the exact backend only — [`crate::RpDbscan::new`]
/// rejects approximate kinds with
/// [`crate::CoreError::UnsupportedBackend`] so a mis-routed selection
/// fails loudly instead of silently clustering with the wrong
/// semantics.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum DensityBackendKind {
    /// The paper's exact `(ε,ρ)`-region query over the cell dictionary
    /// (bit-identical to every pre-backend release).
    #[default]
    Exact,
    /// Mutual-kNN-graph density à la KNN-DBSCAN (arXiv 2009.04552):
    /// a point is core when it keeps at least `minPts − 1` *mutual*
    /// kNN neighbours within ε.
    MutualKnn {
        /// Neighbours per point in the kNN graph. Must be ≥ 1; choose
        /// `k ≥ minPts` or nothing can ever reach core density.
        k: usize,
    },
    /// Sampled-core-point estimation à la DBSCAN++ (arXiv 1810.13105):
    /// the full region query runs only on an `s`-fraction uniform
    /// sample of points; everything else classifies against the
    /// discovered cores.
    SampledCore {
        /// Fraction of points sampled as core candidates, in `(0, 1]`.
        sample_frac: f64,
    },
}

impl DensityBackendKind {
    /// Short stable tag (`exact` / `knn` / `sampled`) used by stats
    /// structs, the CLI, and bench output.
    pub fn name(&self) -> &'static str {
        match self {
            DensityBackendKind::Exact => "exact",
            DensityBackendKind::MutualKnn { .. } => "knn",
            DensityBackendKind::SampledCore { .. } => "sampled",
        }
    }

    /// `true` for the exact grid backend — the only kind the batch
    /// driver, the streaming epoch path, and the serving index accept.
    pub fn is_exact(&self) -> bool {
        matches!(self, DensityBackendKind::Exact)
    }
}

/// Parameters of an RP-DBSCAN run (Algorithm 1's inputs plus the
/// dictionary-memory knob of §4.2.2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RpDbscanParams {
    /// DBSCAN neighbourhood radius ε.
    pub eps: f64,
    /// DBSCAN density threshold `minPts` (the paper fixes 100 for the
    /// large data sets; small examples use smaller values).
    pub min_pts: usize,
    /// Approximation rate ρ of Definition 4.1. The paper's default is
    /// 0.01, which produced clustering identical to exact DBSCAN on every
    /// accuracy data set (Table 4).
    pub rho: f64,
    /// Number of pseudo random partitions `k` (one per task/split).
    pub num_partitions: usize,
    /// Maximum root+leaf entries per sub-dictionary — the per-worker
    /// memory budget driving dictionary defragmentation. `u64::MAX`
    /// disables fragmentation.
    pub subdict_capacity: u64,
    /// RNG seed for the random cell-to-partition assignment; fixed so runs
    /// are reproducible.
    pub seed: u64,
    /// Testing support: the Phase II task for this partition index panics,
    /// exercising task-failure propagation end to end (a poisoned
    /// partition must surface as an `Err`, not a process abort).
    pub inject_fault: Option<usize>,
    /// Density backend answering the Phase II core-point decision.
    /// Defaults to [`DensityBackendKind::Exact`]; approximate kinds are
    /// executed by `rpdbscan-density`, not the batch driver here.
    pub density_backend: DensityBackendKind,
}

impl RpDbscanParams {
    /// Parameters with the paper's defaults: ρ = 0.01, one partition per
    /// worker decided later, unfragmented dictionary, seed 0.
    pub fn new(eps: f64, min_pts: usize) -> Self {
        Self {
            eps,
            min_pts,
            rho: 0.01,
            num_partitions: 8,
            subdict_capacity: 1 << 20,
            seed: 0,
            inject_fault: None,
            density_backend: DensityBackendKind::Exact,
        }
    }

    /// Sets the approximation rate ρ.
    pub fn with_rho(mut self, rho: f64) -> Self {
        self.rho = rho;
        self
    }

    /// Sets the number of partitions `k`.
    pub fn with_partitions(mut self, k: usize) -> Self {
        self.num_partitions = k;
        self
    }

    /// Sets the sub-dictionary capacity.
    pub fn with_subdict_capacity(mut self, cap: u64) -> Self {
        self.subdict_capacity = cap;
        self
    }

    /// Sets the partitioning RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Makes the Phase II task for partition `index` panic (testing
    /// support for failure-propagation coverage).
    pub fn with_injected_fault(mut self, index: usize) -> Self {
        self.inject_fault = Some(index);
        self
    }

    /// Selects the density backend for the Phase II core-point decision.
    pub fn with_density_backend(mut self, backend: DensityBackendKind) -> Self {
        self.density_backend = backend;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chains() {
        let p = RpDbscanParams::new(0.5, 10)
            .with_rho(0.05)
            .with_partitions(16)
            .with_subdict_capacity(128)
            .with_seed(9);
        assert_eq!(p.eps, 0.5);
        assert_eq!(p.min_pts, 10);
        assert_eq!(p.rho, 0.05);
        assert_eq!(p.num_partitions, 16);
        assert_eq!(p.subdict_capacity, 128);
        assert_eq!(p.seed, 9);
    }

    #[test]
    fn default_rho_is_papers() {
        assert_eq!(RpDbscanParams::new(1.0, 100).rho, 0.01);
    }

    #[test]
    fn default_backend_is_exact() {
        let p = RpDbscanParams::new(1.0, 100);
        assert!(p.density_backend.is_exact());
        assert_eq!(p.density_backend.name(), "exact");
    }

    #[test]
    fn backend_builder_and_names() {
        let knn = RpDbscanParams::new(1.0, 10)
            .with_density_backend(DensityBackendKind::MutualKnn { k: 16 });
        assert_eq!(knn.density_backend.name(), "knn");
        assert!(!knn.density_backend.is_exact());
        let sampled = RpDbscanParams::new(1.0, 10)
            .with_density_backend(DensityBackendKind::SampledCore { sample_frac: 0.2 });
        assert_eq!(sampled.density_backend.name(), "sampled");
        assert!(!sampled.density_backend.is_exact());
    }
}
