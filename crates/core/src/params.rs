//! Algorithm parameters.

/// Parameters of an RP-DBSCAN run (Algorithm 1's inputs plus the
/// dictionary-memory knob of §4.2.2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RpDbscanParams {
    /// DBSCAN neighbourhood radius ε.
    pub eps: f64,
    /// DBSCAN density threshold `minPts` (the paper fixes 100 for the
    /// large data sets; small examples use smaller values).
    pub min_pts: usize,
    /// Approximation rate ρ of Definition 4.1. The paper's default is
    /// 0.01, which produced clustering identical to exact DBSCAN on every
    /// accuracy data set (Table 4).
    pub rho: f64,
    /// Number of pseudo random partitions `k` (one per task/split).
    pub num_partitions: usize,
    /// Maximum root+leaf entries per sub-dictionary — the per-worker
    /// memory budget driving dictionary defragmentation. `u64::MAX`
    /// disables fragmentation.
    pub subdict_capacity: u64,
    /// RNG seed for the random cell-to-partition assignment; fixed so runs
    /// are reproducible.
    pub seed: u64,
    /// Testing support: the Phase II task for this partition index panics,
    /// exercising task-failure propagation end to end (a poisoned
    /// partition must surface as an `Err`, not a process abort).
    pub inject_fault: Option<usize>,
}

impl RpDbscanParams {
    /// Parameters with the paper's defaults: ρ = 0.01, one partition per
    /// worker decided later, unfragmented dictionary, seed 0.
    pub fn new(eps: f64, min_pts: usize) -> Self {
        Self {
            eps,
            min_pts,
            rho: 0.01,
            num_partitions: 8,
            subdict_capacity: 1 << 20,
            seed: 0,
            inject_fault: None,
        }
    }

    /// Sets the approximation rate ρ.
    pub fn with_rho(mut self, rho: f64) -> Self {
        self.rho = rho;
        self
    }

    /// Sets the number of partitions `k`.
    pub fn with_partitions(mut self, k: usize) -> Self {
        self.num_partitions = k;
        self
    }

    /// Sets the sub-dictionary capacity.
    pub fn with_subdict_capacity(mut self, cap: u64) -> Self {
        self.subdict_capacity = cap;
        self
    }

    /// Sets the partitioning RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Makes the Phase II task for partition `index` panic (testing
    /// support for failure-propagation coverage).
    pub fn with_injected_fault(mut self, index: usize) -> Self {
        self.inject_fault = Some(index);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chains() {
        let p = RpDbscanParams::new(0.5, 10)
            .with_rho(0.05)
            .with_partitions(16)
            .with_subdict_capacity(128)
            .with_seed(9);
        assert_eq!(p.eps, 0.5);
        assert_eq!(p.min_pts, 10);
        assert_eq!(p.rho, 0.05);
        assert_eq!(p.num_partitions, 16);
        assert_eq!(p.subdict_capacity, 128);
        assert_eq!(p.seed, 9);
    }

    #[test]
    fn default_rho_is_papers() {
        assert_eq!(RpDbscanParams::new(1.0, 100).rho, 0.01);
    }
}
