//! Phase III-2: point labeling (Algorithm 4, second part; Lemma 3.5).
//!
//! The global cell graph's spanning trees over core cells *are* the
//! clusters (Figure 10b). Points in core cells inherit their cell's
//! cluster directly (the fully-direct branch of Lemma 3.5); points in
//! non-core cells are checked individually against the core points of
//! their predecessor cells with an exact ε distance test (the
//! partially-direct branch), and points matching nothing are outliers.

use crate::graph::{CellSubgraph, CellType, UnionFind};
use crate::partition::Partition;
use rpdbscan_engine::TaskError;
use rpdbscan_geom::{dist2, Dataset, PointId};
use rpdbscan_grid::FxHashMap;
use rpdbscan_metrics::Clustering;

/// Cluster assignment at the cell level: each core cell's cluster id.
#[derive(Debug, Clone)]
pub struct GlobalClusters {
    /// Cluster id per core cell (dictionary index → dense cluster id).
    pub cluster_of_cell: FxHashMap<u32, u32>,
    /// Number of clusters.
    pub num_clusters: usize,
}

/// Extracts clusters from the global cell graph: connected components of
/// core cells under full edges (each spanning tree of Figure 10b is the
/// maximal set of core cells forming one cluster).
pub fn extract_clusters(g: &CellSubgraph) -> GlobalClusters {
    let mut core_ids: Vec<u32> = g
        .types()
        .iter()
        .filter(|(_, &t)| t == CellType::Core)
        .map(|(&c, _)| c)
        .collect();
    core_ids.sort_unstable();
    let dense: FxHashMap<u32, u32> = core_ids
        .iter()
        .enumerate()
        .map(|(i, &c)| (c, i as u32))
        .collect();
    let mut uf = UnionFind::new(core_ids.len());
    for &(a, b) in g.edges() {
        if g.cell_type(a) == CellType::Core && g.cell_type(b) == CellType::Core {
            uf.union(dense[&a], dense[&b]);
        }
    }
    // Dense cluster ids in order of first appearance over sorted cells.
    let mut cluster_of_root: FxHashMap<u32, u32> = FxHashMap::default();
    let mut cluster_of_cell: FxHashMap<u32, u32> = FxHashMap::default();
    for &cell in &core_ids {
        let root = uf.find(dense[&cell]);
        let next = cluster_of_root.len() as u32;
        let cid = *cluster_of_root.entry(root).or_insert(next);
        cluster_of_cell.insert(cell, cid);
    }
    GlobalClusters {
        num_clusters: cluster_of_root.len(),
        cluster_of_cell,
    }
}

/// Everything Phase III-2 labeling reads from the merged global graph,
/// derived once and shared read-only across the per-partition label
/// tasks (both the resident and out-of-core drivers label against this
/// same bundle).
#[derive(Debug, Clone)]
pub struct LabelSupport {
    /// The merged global cell graph.
    pub global: CellSubgraph,
    /// Cluster id per core cell.
    pub clusters: GlobalClusters,
    /// Predecessor core cells per non-core cell.
    pub preds: FxHashMap<u32, Vec<u32>>,
}

impl LabelSupport {
    /// Extracts clusters and the predecessor map from the global graph.
    pub fn build(global: CellSubgraph) -> LabelSupport {
        let clusters = extract_clusters(&global);
        let preds = predecessor_map(&global);
        LabelSupport {
            global,
            clusters,
            preds,
        }
    }
}

/// Predecessor core cells of every non-core cell: the `PC` set of
/// Algorithm 4, Line 18, read off the global graph's partial edges.
pub fn predecessor_map(g: &CellSubgraph) -> FxHashMap<u32, Vec<u32>> {
    let mut preds: FxHashMap<u32, Vec<u32>> = FxHashMap::default();
    for &(a, b) in g.edges() {
        if g.cell_type(a) == CellType::Core && g.cell_type(b) == CellType::NonCore {
            preds.entry(b).or_default().push(a);
        }
    }
    for v in preds.values_mut() {
        v.sort_unstable();
        v.dedup();
    }
    preds
}

/// Labels the points of one partition from the global graph
/// (Algorithm 4, Lines 10–23). Returns `(point, label)` pairs; `None`
/// labels are outliers.
///
/// Runs inside a `run_stage` task, so internal-consistency violations
/// (a partition cell absent from the dictionary, an undetermined cell
/// in a supposedly global graph) surface as [`TaskError`]s and flow
/// through the engine's failure path instead of panicking a worker.
#[allow(clippy::too_many_arguments)]
pub fn label_partition(
    partition: &Partition,
    g: &CellSubgraph,
    clusters: &GlobalClusters,
    preds: &FxHashMap<u32, Vec<u32>>,
    core_points: &FxHashMap<u32, Vec<PointId>>,
    dict: &rpdbscan_grid::CellDictionary,
    data: &Dataset,
    eps: f64,
) -> Result<Vec<(PointId, Option<u32>)>, TaskError> {
    let eps2 = eps * eps;
    let mut out = Vec::with_capacity(partition.num_points());
    for cell in &partition.cells {
        let idx = dict.index_of(&cell.coord).ok_or_else(|| {
            TaskError::new(format!(
                "partition cell {} missing from dictionary",
                cell.coord
            ))
        })?;
        match g.cell_type(idx) {
            CellType::Core => {
                // All points of a core cell share its cluster (Lines 13–16).
                let cid = clusters.cluster_of_cell[&idx];
                for &p in &cell.points {
                    out.push((p, Some(cid)));
                }
            }
            CellType::NonCore => {
                // Border points: exact check against predecessor core
                // points (Lines 18–23); first qualifying predecessor wins,
                // as in sequential DBSCAN's first-come assignment. The
                // predecessors are visited in cell-coordinate order, which
                // depends only on the data — not on partition count, seed,
                // or dictionary build order — so ambiguous border points
                // resolve identically across runs and across the batch and
                // streaming pipelines.
                let empty = Vec::new();
                let mut pred_cells = preds.get(&idx).unwrap_or(&empty).clone();
                pred_cells.sort_unstable_by(|a, b| dict.entry(*a).coord.cmp(&dict.entry(*b).coord));
                for &q in &cell.points {
                    let qc = data.point(q);
                    let mut label = None;
                    'search: for &pc in &pred_cells {
                        if let Some(cores) = core_points.get(&pc) {
                            for &p in cores {
                                if dist2(data.point(p), qc) <= eps2 {
                                    label = Some(clusters.cluster_of_cell[&pc]);
                                    break 'search;
                                }
                            }
                        }
                    }
                    out.push((q, label));
                }
            }
            CellType::Undetermined => {
                return Err(TaskError::new(format!(
                    "global graph contains undetermined cell {idx}"
                )));
            }
        }
    }
    Ok(out)
}

/// Assembles per-partition label lists into one [`Clustering`] over `n`
/// points.
pub fn assemble_clustering(n: usize, parts: Vec<Vec<(PointId, Option<u32>)>>) -> Clustering {
    let mut clustering = Clustering::all_noise(n);
    for part in parts {
        for (pid, label) in part {
            clustering.labels_mut()[pid.index()] = label;
        }
    }
    clustering
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::merge::tournament;
    use crate::partition::{group_by_cell, pseudo_random_partition};
    use crate::phase2::{build_local_clustering, QueryRouting};
    use rpdbscan_grid::{CellDictionary, DictionaryIndex, GridSpec};

    /// End-to-end mini pipeline (partition → phase2 → merge → label) used
    /// by the labeling tests.
    fn run_pipeline(
        rows: &[Vec<f64>],
        eps: f64,
        min_pts: usize,
        k: usize,
    ) -> (Clustering, GlobalClusters) {
        let data = Dataset::from_rows(2, rows).unwrap();
        let spec = GridSpec::new(2, eps, 0.01).unwrap();
        let cells = group_by_cell(&spec, &data);
        let parts = pseudo_random_partition(cells, k, 0);
        let dict = CellDictionary::build_from_points(spec.clone(), data.iter().map(|(_, p)| p));
        let index = DictionaryIndex::new(dict, 1 << 16);
        let locals: Vec<_> = parts
            .iter()
            .map(|p| {
                build_local_clustering(p, &data, &index, min_pts, QueryRouting::auto(&index))
                    .unwrap()
            })
            .collect();
        let mut core_points: FxHashMap<u32, Vec<PointId>> = FxHashMap::default();
        let mut graphs = Vec::new();
        for l in locals {
            for (c, pts) in l.core_points {
                core_points.entry(c).or_default().extend(pts);
            }
            graphs.push(l.subgraph);
        }
        let g = tournament(graphs, |_, _| {});
        assert!(g.is_global());
        let clusters = extract_clusters(&g);
        let preds = predecessor_map(&g);
        let labeled: Vec<_> = parts
            .iter()
            .map(|p| {
                label_partition(
                    p,
                    &g,
                    &clusters,
                    &preds,
                    &core_points,
                    index.dict(),
                    &data,
                    eps,
                )
                .unwrap()
            })
            .collect();
        (assemble_clustering(data.len(), labeled), clusters)
    }

    fn blob(cx: f64, cy: f64, n: usize, spread: f64) -> Vec<Vec<f64>> {
        // Deterministic ring-ish blob, dense enough to be core.
        (0..n)
            .map(|i| {
                let a = i as f64 * 0.61803398875;
                let r = spread * (i % 10) as f64 / 10.0;
                vec![cx + r * a.cos(), cy + r * a.sin()]
            })
            .collect()
    }

    #[test]
    fn two_blobs_two_clusters_outlier_noise() {
        let mut rows = blob(0.0, 0.0, 60, 0.3);
        rows.extend(blob(10.0, 10.0, 60, 0.3));
        rows.push(vec![50.0, -50.0]);
        for k in [1, 2, 5] {
            let (c, g) = run_pipeline(&rows, 1.0, 5, k);
            assert_eq!(g.num_clusters, 2, "k={k}");
            assert_eq!(c.num_clusters(), 2, "k={k}");
            assert_eq!(c.noise_count(), 1, "k={k}");
            // Points of the same blob share a label.
            let l0 = c.labels()[0];
            assert!((0..60).all(|i| c.labels()[i] == l0));
            let l1 = c.labels()[60];
            assert!((60..120).all(|i| c.labels()[i] == l1));
            assert_ne!(l0, l1);
        }
    }

    #[test]
    fn partition_count_does_not_change_labels() {
        let mut rows = blob(0.0, 0.0, 50, 0.4);
        rows.extend(blob(6.0, -3.0, 50, 0.4));
        let (c1, _) = run_pipeline(&rows, 0.8, 5, 1);
        let (c8, _) = run_pipeline(&rows, 0.8, 5, 8);
        // Same clustering up to label permutation: compare via Rand index.
        let ri =
            rpdbscan_metrics::rand_index(&c1, &c8, rpdbscan_metrics::NoisePolicy::SingleCluster);
        assert_eq!(ri, 1.0);
    }

    #[test]
    fn border_points_join_via_partial_edges() {
        // A dense blob plus a single border point within eps of the blob
        // edge but itself not core.
        let mut rows = blob(0.0, 0.0, 60, 0.3);
        rows.push(vec![0.9, 0.0]); // within eps=1.0 of blob's core points
        let (c, _) = run_pipeline(&rows, 1.0, 5, 3);
        let border = c.labels()[60];
        assert!(border.is_some(), "border point must be labeled");
        assert_eq!(border, c.labels()[0]);
    }

    #[test]
    fn all_noise_when_min_pts_too_high() {
        let rows = blob(0.0, 0.0, 20, 2.0);
        let (c, g) = run_pipeline(&rows, 0.1, 50, 2);
        assert_eq!(g.num_clusters, 0);
        assert_eq!(c.noise_count(), 20);
    }

    #[test]
    fn extract_clusters_counts_isolated_core_cells() {
        let mut g = CellSubgraph::new();
        g.set_type(0, CellType::Core);
        g.set_type(5, CellType::Core);
        g.set_type(9, CellType::NonCore);
        let c = extract_clusters(&g);
        assert_eq!(c.num_clusters, 2);
        assert_ne!(c.cluster_of_cell[&0], c.cluster_of_cell[&5]);
        assert!(!c.cluster_of_cell.contains_key(&9));
    }

    #[test]
    fn predecessor_map_collects_partial_edges_only() {
        let mut g = CellSubgraph::new();
        g.set_type(0, CellType::Core);
        g.set_type(1, CellType::Core);
        g.set_type(2, CellType::NonCore);
        g.add_edge(0, 1); // full
        g.add_edge(0, 2); // partial
        g.add_edge(1, 2); // partial
        let p = predecessor_map(&g);
        assert_eq!(p.len(), 1);
        assert_eq!(p[&2], vec![0, 1]);
    }
}
