//! The RP-DBSCAN driver: Algorithm 1 staged through the execution engine.
//!
//! Stage names carry the phase prefixes Figure 12's breakdown reads:
//! `phase1-1` (pseudo random partitioning), `phase1-2` (dictionary
//! building + broadcast), `phase2` (cell graph construction), `phase3-1`
//! (progressive merging), `phase3-2` (point labeling).

use crate::graph::CellSubgraph;
use crate::label::{assemble_clustering, extract_clusters, label_partition, predecessor_map};
use crate::merge::merge_pair;
use crate::params::RpDbscanParams;
use crate::partition::{pseudo_random_partition, CellPoints, Partition};
use crate::phase2::{build_local_clustering, QueryRouting};
use crate::CoreError;
use rpdbscan_engine::Engine;
use rpdbscan_geom::{Dataset, PointId};
use rpdbscan_grid::{
    CellCoord, CellDictionary, CellEntry, DictionaryIndex, FxHashMap, GridSpec, QueryStats,
};
use rpdbscan_metrics::Clustering;
/// Measured facts about a completed run (feeds Tables 5/7 and Figures
/// 12/13/14/17).
#[derive(Debug, Clone, PartialEq)]
pub struct RunStats {
    /// Density backend that answered the Phase II core-point decision
    /// (`exact` for every run of this driver; the approximate backends
    /// report through `rpdbscan-density`'s own stats).
    pub backend: &'static str,
    /// Non-empty cells in the dictionary.
    pub dict_cells: usize,
    /// Non-empty sub-cells in the dictionary.
    pub dict_subcells: usize,
    /// Analytical dictionary size (Lemma 4.3), bits.
    pub dict_size_bits: u64,
    /// Actual broadcast payload, bytes.
    pub dict_wire_bytes: u64,
    /// Edges after each merge round; index 0 is the pre-merge total
    /// (Figure 17 / Table 7).
    pub edges_per_round: Vec<usize>,
    /// Total points processed across all splits — always exactly `N` for
    /// RP-DBSCAN (Figure 14).
    pub points_processed: u64,
    /// Clusters found.
    pub num_clusters: usize,
    /// Outlier count.
    pub noise_points: usize,
    /// Partitions used.
    pub num_partitions: usize,
    /// Aggregated region-query counters.
    pub query_subdicts_skipped: u64,
    /// Aggregated region-query counters.
    pub query_subdicts_visited: u64,
    /// Aggregated region-query counters.
    pub query_cells_candidate: u64,
    /// Phase II cell query plans built (one per partition cell the cost
    /// model routed through the planner).
    pub query_plans_built: u64,
    /// Region queries answered through a memoized cell plan.
    pub query_plan_hits: u64,
    /// Cells answered purely from a plan's precomputed sub-cell sums —
    /// no per-point distance test at all.
    pub query_cells_planned_full: u64,
    /// Partition cells the cost model routed through the memoized
    /// planner (occupancy at or above the break-even threshold).
    pub query_cells_routed_planned: u64,
    /// Partition cells the cost model routed through the per-point kd
    /// path.
    pub query_cells_routed_kd: u64,
    /// The cost model's break-even occupancy for this run — cells below
    /// it can never be planned (calibrated once per dictionary build).
    pub route_min_occupancy: u32,
    /// True when the run streamed cells from a column store instead of a
    /// resident dataset. Every field below is zero on resident runs.
    pub out_of_core: bool,
    /// The buffer pool's byte budget.
    pub pool_budget_bytes: u64,
    /// Page pins answered from cache.
    pub pool_hits: u64,
    /// Page pins that read from disk.
    pub pool_misses: u64,
    /// Pages evicted by the pool.
    pub pool_evictions: u64,
    /// High-water mark of bytes the pool tracked at once — the scale
    /// bench asserts this stays within the budget.
    pub pool_peak_tracked_bytes: u64,
    /// Bytes written to Phase II→III spill files.
    pub spill_bytes_written: u64,
    /// Bytes read back from spill files during the tournament merge.
    pub spill_bytes_read: u64,
    /// High-water mark of bytes any single spill-merge frontier held in
    /// memory (merged type table + survivor edges + union-find).
    pub merge_peak_frontier_bytes: u64,
}

/// A finished clustering plus its statistics.
#[derive(Debug, Clone)]
pub struct RpDbscanOutput {
    /// Point labels (None = outlier).
    pub clustering: Clustering,
    /// Run statistics.
    pub stats: RunStats,
}

/// The RP-DBSCAN algorithm, configured once and runnable on any dataset.
#[derive(Debug, Clone)]
pub struct RpDbscan {
    params: RpDbscanParams,
}

impl RpDbscan {
    /// Validates the parameters and builds a runner.
    ///
    /// This driver executes the exact grid backend only: an approximate
    /// [`crate::DensityBackendKind`] selection is rejected here with
    /// [`CoreError::UnsupportedBackend`] — `rpdbscan-density`'s
    /// `backend_for` is the dispatcher that runs every kind.
    pub fn new(params: RpDbscanParams) -> Result<Self, CoreError> {
        if params.min_pts == 0 {
            return Err(CoreError::InvalidMinPts(0));
        }
        if params.num_partitions == 0 {
            return Err(CoreError::InvalidPartitions(0));
        }
        validate_backend_config(&params.density_backend)?;
        if !params.density_backend.is_exact() {
            return Err(CoreError::UnsupportedBackend(params.density_backend.name()));
        }
        // eps/rho validity is checked by GridSpec at run time (needs dim),
        // but fail fast on obviously bad values here.
        GridSpec::new(1, params.eps, params.rho)?;
        Ok(Self { params })
    }

    /// The configured parameters.
    pub fn params(&self) -> &RpDbscanParams {
        &self.params
    }

    /// Convenience entry point for library users who don't care about the
    /// cluster simulation: runs on an internal engine sized to the local
    /// machine with a zero-cost network model and returns only the
    /// clustering output.
    ///
    /// ```
    /// use rpdbscan_core::{RpDbscan, RpDbscanParams};
    /// use rpdbscan_geom::Dataset;
    ///
    /// let rows: Vec<Vec<f64>> = (0..50).map(|i| vec![i as f64 * 0.05, 0.0]).collect();
    /// let data = Dataset::from_rows(2, &rows).unwrap();
    /// let out = RpDbscan::new(RpDbscanParams::new(0.2, 3))
    ///     .unwrap()
    ///     .run_local(&data)
    ///     .unwrap();
    /// assert_eq!(out.clustering.num_clusters(), 1);
    /// ```
    pub fn run_local(&self, data: &Dataset) -> Result<RpDbscanOutput, CoreError> {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let engine = Engine::with_cost_model(workers, rpdbscan_engine::CostModel::free());
        self.run(data, &engine)
    }

    /// Runs the full three-phase algorithm on `data` using `engine`.
    pub fn run(&self, data: &Dataset, engine: &Engine) -> Result<RpDbscanOutput, CoreError> {
        let p = &self.params;
        let spec = GridSpec::new(data.dim(), p.eps, p.rho)?;
        let k = p.num_partitions;

        // ---- Phase I-1: pseudo random partitioning -------------------
        // Parallel cell grouping over point ranges, then the seeded
        // random deal of whole cells to partitions.
        let chunks = point_ranges(data.len(), k);
        let grouped = engine.run_stage("phase1-1:group-by-cell", chunks, |_ctx, (lo, hi)| {
            Ok(group_range_by_cell(&spec, data, lo, hi))
        })?;
        let cells = merge_cell_groups(grouped.outputs);
        let parts = pseudo_random_partition(cells, k, p.seed);
        // Dealing cells to partitions moves every point to its worker
        // exactly once; charge the same per-point shuffle the region-split
        // baselines pay for their (duplicated) redistribution.
        let point_bytes = (data.dim() * 4) as u64;
        engine.shuffle_cost("phase1-1:shuffle", data.len() as u64 * point_bytes);

        // ---- Phase I-2: cell dictionary building + broadcast ----------
        let part_refs: Vec<&Partition> = parts.iter().collect();
        let entries =
            engine.run_stage("phase1-2:dictionary", part_refs.clone(), |_ctx, part| {
                Ok(part
                    .cells
                    .iter()
                    .map(|c| {
                        CellEntry::from_points(
                            &spec,
                            c.coord.clone(),
                            c.points.iter().map(|&id| data.point(id)),
                        )
                    })
                    .collect::<Vec<_>>())
            })?;
        let dict =
            CellDictionary::from_entries(spec.clone(), entries.outputs.into_iter().flatten());
        let wire_bytes = dict.encode().len() as u64;
        engine.broadcast_cost("phase1-2:broadcast", wire_bytes);
        let dict_cells = dict.num_cells();
        let dict_subcells = dict.num_sub_cells();
        let dict_size_bits = dict.size_bits();
        let index = DictionaryIndex::new(dict, p.subdict_capacity);

        // ---- Phase II: cell graph construction ------------------------
        // Calibrated once per dictionary build; each partition cell then
        // routes itself between the memoized planner and the kd path.
        let routing = QueryRouting::auto(&index);
        let locals =
            engine.run_stage("phase2:local-clustering", part_refs.clone(), |ctx, part| {
                if Some(ctx.index()) == p.inject_fault {
                    // lint:allow(panic-safety): deliberate fault-injection hook; the engine's panic recovery is what is under test
                    panic!("injected fault in partition {}", ctx.index());
                }
                build_local_clustering(part, data, &index, p.min_pts, routing)
            })?;
        let mut query_stats = QueryStats::default();
        let mut core_points: FxHashMap<u32, Vec<PointId>> = FxHashMap::default();
        let mut graphs: Vec<CellSubgraph> = Vec::with_capacity(k);
        let mut points_processed = 0u64;
        for local in locals.outputs {
            query_stats.merge(&local.stats);
            points_processed += local.queries;
            for (c, pts) in local.core_points {
                core_points.entry(c).or_default().extend(pts);
            }
            graphs.push(local.subgraph);
        }

        // ---- Phase III-1: progressive graph merging --------------------
        let mut edges_per_round = vec![graphs.iter().map(|g| g.num_edges()).sum::<usize>()];
        let mut round = 0;
        while graphs.len() > 1 {
            round += 1;
            // Shuffle: every second subgraph moves to its match's worker.
            let moved_bytes: u64 = graphs
                .iter()
                .skip(1)
                .step_by(2)
                .map(|g| g.wire_bytes())
                .sum();
            engine.shuffle_cost(&format!("phase3-1:shuffle-round-{round}"), moved_bytes);
            let mut pairs: Vec<(CellSubgraph, Option<CellSubgraph>)> = Vec::new();
            let mut it = graphs.into_iter();
            while let Some(g1) = it.next() {
                pairs.push((g1, it.next()));
            }
            let merged = engine.run_stage(
                &format!("phase3-1:merge-round-{round}"),
                pairs,
                |_ctx, (g1, g2)| {
                    Ok(match g2 {
                        Some(g2) => merge_pair(g1, g2),
                        None => g1,
                    })
                },
            )?;
            graphs = merged.outputs;
            edges_per_round.push(graphs.iter().map(|g| g.num_edges()).sum());
        }
        let global = graphs.pop().unwrap_or_default();
        debug_assert!(global.is_global(), "undetermined cells after full merge");

        // ---- Phase III-2: point labeling -------------------------------
        let clusters = extract_clusters(&global);
        let preds = predecessor_map(&global);
        let labeled = engine.run_stage("phase3-2:labeling", part_refs, |_ctx, part| {
            label_partition(
                part,
                &global,
                &clusters,
                &preds,
                &core_points,
                index.dict(),
                data,
                p.eps,
            )
        })?;
        let clustering = assemble_clustering(data.len(), labeled.outputs);

        let stats = RunStats {
            backend: p.density_backend.name(),
            dict_cells,
            dict_subcells,
            dict_size_bits,
            dict_wire_bytes: wire_bytes,
            edges_per_round,
            points_processed,
            num_clusters: clusters.num_clusters,
            noise_points: clustering.noise_count(),
            num_partitions: k,
            query_subdicts_skipped: query_stats.subdicts_skipped as u64,
            query_subdicts_visited: query_stats.subdicts_visited as u64,
            query_cells_candidate: query_stats.cells_candidate as u64,
            query_plans_built: query_stats.plans_built as u64,
            query_plan_hits: query_stats.plan_hits as u64,
            query_cells_planned_full: query_stats.cells_planned_full as u64,
            query_cells_routed_planned: query_stats.cells_routed_planned as u64,
            query_cells_routed_kd: query_stats.cells_routed_kd as u64,
            route_min_occupancy: routing.min_occupancy().unwrap_or(0),
            out_of_core: false,
            pool_budget_bytes: 0,
            pool_hits: 0,
            pool_misses: 0,
            pool_evictions: 0,
            pool_peak_tracked_bytes: 0,
            spill_bytes_written: 0,
            spill_bytes_read: 0,
            merge_peak_frontier_bytes: 0,
        };
        Ok(RpDbscanOutput { clustering, stats })
    }
}

/// Validates a backend selection's knobs (any kind — the density crate
/// dispatcher calls this too, so range checks live in exactly one place).
pub fn validate_backend_config(kind: &crate::DensityBackendKind) -> Result<(), CoreError> {
    match kind {
        crate::DensityBackendKind::Exact => Ok(()),
        crate::DensityBackendKind::MutualKnn { k } => {
            if *k == 0 {
                return Err(CoreError::InvalidBackendConfig {
                    backend: kind.name(),
                    reason: "k must be >= 1",
                });
            }
            Ok(())
        }
        crate::DensityBackendKind::SampledCore { sample_frac } => {
            if !(*sample_frac > 0.0 && *sample_frac <= 1.0) {
                return Err(CoreError::InvalidBackendConfig {
                    backend: kind.name(),
                    reason: "sample_frac must be in (0, 1]",
                });
            }
            Ok(())
        }
    }
}

/// Splits `0..n` into `k` near-equal ranges (last may be short).
fn point_ranges(n: usize, k: usize) -> Vec<(usize, usize)> {
    let k = k.max(1);
    let step = n.div_ceil(k).max(1);
    (0..n)
        .step_by(step)
        .map(|lo| (lo, (lo + step).min(n)))
        .collect()
}

/// Groups one range of points by cell (the Map of Algorithm 2).
fn group_range_by_cell(
    spec: &GridSpec,
    data: &Dataset,
    lo: usize,
    hi: usize,
) -> FxHashMap<CellCoord, Vec<PointId>> {
    let mut out: FxHashMap<CellCoord, Vec<PointId>> = FxHashMap::default();
    for i in lo..hi {
        let id = PointId(i as u32);
        out.entry(spec.cell_of(data.point(id)))
            .or_default()
            .push(id);
    }
    out
}

/// Combines per-range groupings into the global cell list (the Reduce of
/// Algorithm 2), ordered deterministically.
fn merge_cell_groups(groups: Vec<FxHashMap<CellCoord, Vec<PointId>>>) -> Vec<CellPoints> {
    let mut merged: FxHashMap<CellCoord, Vec<PointId>> = FxHashMap::default();
    for g in groups {
        for (coord, pts) in g {
            merged.entry(coord).or_default().extend(pts);
        }
    }
    let mut cells: Vec<CellPoints> = merged
        .into_iter()
        .map(|(coord, points)| CellPoints { coord, points })
        .collect();
    cells.sort_unstable_by(|a, b| a.coord.cmp(&b.coord));
    cells
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpdbscan_engine::CostModel;

    fn blob(cx: f64, cy: f64, n: usize, spread: f64) -> Vec<Vec<f64>> {
        (0..n)
            .map(|i| {
                let a = i as f64 * 0.61803398875;
                let r = spread * (i % 10) as f64 / 10.0;
                vec![cx + r * a.cos(), cy + r * a.sin()]
            })
            .collect()
    }

    fn two_blob_data() -> Dataset {
        let mut rows = blob(0.0, 0.0, 80, 0.4);
        rows.extend(blob(12.0, -7.0, 80, 0.4));
        rows.push(vec![-40.0, 40.0]);
        Dataset::from_rows(2, &rows).unwrap()
    }

    #[test]
    fn end_to_end_two_clusters() {
        let data = two_blob_data();
        let params = RpDbscanParams::new(1.0, 5).with_partitions(6);
        let engine = Engine::with_cost_model(6, CostModel::free());
        let out = RpDbscan::new(params).unwrap().run(&data, &engine).unwrap();
        assert_eq!(out.clustering.num_clusters(), 2);
        assert_eq!(out.clustering.noise_count(), 1);
        assert_eq!(out.stats.points_processed, data.len() as u64);
        assert!(out.stats.dict_cells > 0);
        assert!(out.stats.edges_per_round.len() >= 2);
    }

    #[test]
    fn stage_report_has_all_phases() {
        let data = two_blob_data();
        let engine = Engine::new(4);
        let params = RpDbscanParams::new(1.0, 5).with_partitions(4);
        RpDbscan::new(params).unwrap().run(&data, &engine).unwrap();
        let rep = engine.report();
        for prefix in ["phase1-1", "phase1-2", "phase2", "phase3-1", "phase3-2"] {
            assert!(
                rep.stages.iter().any(|s| s.name.starts_with(prefix)),
                "missing stage {prefix}"
            );
        }
        assert!(rep.total_elapsed() > 0.0);
    }

    #[test]
    fn edge_counts_decrease_monotonically() {
        let data = two_blob_data();
        let engine = Engine::with_cost_model(8, CostModel::free());
        let params = RpDbscanParams::new(1.0, 5).with_partitions(8);
        let out = RpDbscan::new(params).unwrap().run(&data, &engine).unwrap();
        let e = &out.stats.edges_per_round;
        for w in e.windows(2) {
            assert!(w[1] <= w[0], "{e:?}");
        }
    }

    #[test]
    fn validation_errors() {
        assert!(RpDbscan::new(RpDbscanParams::new(1.0, 0)).is_err());
        assert!(RpDbscan::new(RpDbscanParams::new(1.0, 5).with_partitions(0)).is_err());
        assert!(RpDbscan::new(RpDbscanParams::new(-1.0, 5)).is_err());
        assert!(RpDbscan::new(RpDbscanParams::new(1.0, 5).with_rho(0.0)).is_err());
    }

    #[test]
    fn approximate_backends_are_rejected_typed() {
        use crate::params::DensityBackendKind;
        let knn = RpDbscanParams::new(1.0, 5)
            .with_density_backend(DensityBackendKind::MutualKnn { k: 8 });
        assert_eq!(
            RpDbscan::new(knn).unwrap_err(),
            CoreError::UnsupportedBackend("knn")
        );
        let sampled = RpDbscanParams::new(1.0, 5)
            .with_density_backend(DensityBackendKind::SampledCore { sample_frac: 0.5 });
        assert_eq!(
            RpDbscan::new(sampled).unwrap_err(),
            CoreError::UnsupportedBackend("sampled")
        );
        // Bad knobs are caught before the kind check, for every kind.
        let bad_k = RpDbscanParams::new(1.0, 5)
            .with_density_backend(DensityBackendKind::MutualKnn { k: 0 });
        assert!(matches!(
            RpDbscan::new(bad_k).unwrap_err(),
            CoreError::InvalidBackendConfig { backend: "knn", .. }
        ));
        for frac in [0.0, -0.1, 1.5, f64::NAN] {
            let bad = RpDbscanParams::new(1.0, 5)
                .with_density_backend(DensityBackendKind::SampledCore { sample_frac: frac });
            assert!(
                matches!(
                    RpDbscan::new(bad).unwrap_err(),
                    CoreError::InvalidBackendConfig {
                        backend: "sampled",
                        ..
                    }
                ),
                "frac={frac}"
            );
        }
    }

    #[test]
    fn run_stats_carry_the_backend_tag() {
        let data = two_blob_data();
        let engine = Engine::with_cost_model(4, CostModel::free());
        let out = RpDbscan::new(RpDbscanParams::new(1.0, 5))
            .unwrap()
            .run(&data, &engine)
            .unwrap();
        assert_eq!(out.stats.backend, "exact");
    }

    #[test]
    fn empty_dataset_is_fine() {
        let data = Dataset::from_flat(2, vec![]).unwrap();
        let engine = Engine::new(2);
        let out = RpDbscan::new(RpDbscanParams::new(1.0, 5))
            .unwrap()
            .run(&data, &engine)
            .unwrap();
        assert_eq!(out.clustering.len(), 0);
        assert_eq!(out.stats.num_clusters, 0);
    }

    #[test]
    fn single_point_is_noise_unless_min_pts_one() {
        let data = Dataset::from_rows(2, &[vec![1.0, 1.0]]).unwrap();
        let engine = Engine::new(2);
        let out = RpDbscan::new(RpDbscanParams::new(1.0, 5))
            .unwrap()
            .run(&data, &engine)
            .unwrap();
        assert_eq!(out.clustering.noise_count(), 1);
        let out = RpDbscan::new(RpDbscanParams::new(1.0, 1))
            .unwrap()
            .run(&data, &engine)
            .unwrap();
        assert_eq!(out.clustering.num_clusters(), 1);
    }

    #[test]
    fn results_independent_of_partition_count_and_seed() {
        let data = two_blob_data();
        let engine = Engine::with_cost_model(4, CostModel::free());
        let base = RpDbscan::new(RpDbscanParams::new(1.0, 5).with_partitions(1))
            .unwrap()
            .run(&data, &engine)
            .unwrap();
        for (k, seed) in [(3, 0), (7, 9), (16, 123)] {
            let out = RpDbscan::new(
                RpDbscanParams::new(1.0, 5)
                    .with_partitions(k)
                    .with_seed(seed),
            )
            .unwrap()
            .run(&data, &engine)
            .unwrap();
            let ri = rpdbscan_metrics::rand_index(
                &base.clustering,
                &out.clustering,
                rpdbscan_metrics::NoisePolicy::SingleCluster,
            );
            assert_eq!(ri, 1.0, "k={k} seed={seed}");
        }
    }

    #[test]
    fn routed_planner_engages_and_accounts_every_cell() {
        // The always-on routed planner: dense blob cells amortise a plan,
        // the lone outlier's cell takes the kd path, and the routing
        // counters account for every occupied cell exactly once. (The
        // bit-exactness of planned vs kd output is pinned by the phase2
        // and planned-equivalence suites; here we check the driver's
        // routing bookkeeping end to end.)
        let data = two_blob_data();
        let engine = Engine::with_cost_model(4, CostModel::free());
        let mut first: Option<rpdbscan_metrics::Clustering> = None;
        for (k, cap) in [(1, u64::MAX), (5, 32), (9, 8)] {
            let params = RpDbscanParams::new(1.0, 5)
                .with_partitions(k)
                .with_subdict_capacity(cap);
            let out = RpDbscan::new(params).unwrap().run(&data, &engine).unwrap();
            let s = &out.stats;
            // Every occupied cell got exactly one routing decision
            // (partitions hold disjoint cell sets).
            assert_eq!(
                s.query_cells_routed_planned + s.query_cells_routed_kd,
                s.dict_cells as u64,
                "k={k} cap={cap}"
            );
            // One plan per planned-routed cell, none elsewhere.
            assert_eq!(s.query_plans_built, s.query_cells_routed_planned);
            // The dense blobs clear the break-even threshold; the
            // outlier's singleton cell cannot (floor is ≥ 8).
            assert!(s.query_cells_routed_planned >= 1, "k={k} cap={cap}");
            assert!(s.query_cells_routed_kd >= 1, "k={k} cap={cap}");
            assert_eq!(
                s.route_min_occupancy,
                rpdbscan_grid::PlannerCostModel::from_dim(2).min_occupancy
            );
            // Routing never changes the output.
            match &first {
                None => first = Some(out.clustering.clone()),
                Some(c) => assert_eq!(&out.clustering, c, "k={k} cap={cap}"),
            }
        }
    }

    #[test]
    fn subdict_capacity_does_not_change_clustering() {
        let data = two_blob_data();
        let engine = Engine::with_cost_model(4, CostModel::free());
        let a = RpDbscan::new(RpDbscanParams::new(1.0, 5).with_subdict_capacity(u64::MAX))
            .unwrap()
            .run(&data, &engine)
            .unwrap();
        let b = RpDbscan::new(RpDbscanParams::new(1.0, 5).with_subdict_capacity(8))
            .unwrap()
            .run(&data, &engine)
            .unwrap();
        assert_eq!(a.clustering, b.clustering);
    }

    #[test]
    fn injected_panic_surfaces_as_stage_error() {
        let data = two_blob_data();
        let engine = Engine::new(4);
        let params = RpDbscanParams::new(1.0, 5)
            .with_partitions(4)
            .with_injected_fault(1);
        let err = RpDbscan::new(params)
            .unwrap()
            .run(&data, &engine)
            .unwrap_err();
        match err {
            CoreError::Stage(e) => {
                assert_eq!(e.stage, "phase2:local-clustering");
                assert!(e.to_string().contains("injected fault"), "{e}");
            }
            other => panic!("expected Stage error, got {other:?}"),
        }
        // The engine survives the failure and can run the same data again.
        let ok = RpDbscan::new(RpDbscanParams::new(1.0, 5).with_partitions(4))
            .unwrap()
            .run(&data, &engine)
            .unwrap();
        assert_eq!(ok.clustering.num_clusters(), 2);
    }

    #[test]
    fn point_ranges_cover() {
        assert_eq!(point_ranges(10, 3), vec![(0, 4), (4, 8), (8, 10)]);
        assert_eq!(point_ranges(0, 3), Vec::<(usize, usize)>::new());
        assert_eq!(point_ranges(2, 8), vec![(0, 1), (1, 2)]);
    }
}
