//! Phase I-1: pseudo random partitioning (Algorithm 2, first part).
//!
//! Points are grouped into cells, and whole *cells* are distributed to
//! partitions uniformly at random — retaining DBSCAN's need for local
//! contiguity (everything in one cell is mutually within ε) while getting
//! the load balance of a random split (Figure 2). Every cell lands in
//! exactly one partition, so no point is ever duplicated: the total number
//! of points processed equals `N` exactly (Figure 14's RP-DBSCAN series).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rpdbscan_geom::{Dataset, PointId};
use rpdbscan_grid::{CellCoord, FxHashMap, GridSpec};

/// The points of one cell, kept together through partitioning.
#[derive(Debug, Clone)]
pub struct CellPoints {
    /// The cell's lattice coordinate.
    pub coord: CellCoord,
    /// Ids of the points inside the cell.
    pub points: Vec<PointId>,
}

/// One pseudo random partition: a set of whole cells.
#[derive(Debug, Clone)]
pub struct Partition {
    /// Partition id in `0..k`.
    pub id: usize,
    /// Member cells with their points.
    pub cells: Vec<CellPoints>,
}

impl Partition {
    /// Total number of points in the partition.
    pub fn num_points(&self) -> usize {
        self.cells.iter().map(|c| c.points.len()).sum()
    }
}

/// Groups the data set's points by cell.
///
/// This is Algorithm 2's first Map/Reduce pair (`emit(cid, p)` then
/// aggregation by cell id); here it is a single hash-grouping pass.
pub fn group_by_cell(spec: &GridSpec, data: &Dataset) -> Vec<CellPoints> {
    let mut by_cell: FxHashMap<CellCoord, Vec<PointId>> = FxHashMap::default();
    for (id, p) in data.iter() {
        by_cell.entry(spec.cell_of(p)).or_default().push(id);
    }
    let mut cells: Vec<CellPoints> = by_cell
        .into_iter()
        .map(|(coord, points)| CellPoints { coord, points })
        .collect();
    // Deterministic order before the seeded shuffle.
    cells.sort_unstable_by(|a, b| a.coord.cmp(&b.coord));
    cells
}

/// The seeded shuffle + round-robin deal at the heart of
/// [`pseudo_random_partition`], generic over the item being dealt.
///
/// The resident pipeline deals [`CellPoints`]; the out-of-core pipeline
/// deals directory cell *indices*. Because `StdRng::seed_from_u64` plus
/// `shuffle` depend only on the seed and the item count, both pipelines
/// deal the same-length, same-order cell list identically — the anchor
/// of their bit-for-bit output equivalence.
pub fn pseudo_random_deal<T>(items: Vec<T>, k: usize, seed: u64) -> Vec<Vec<T>> {
    assert!(k >= 1, "need at least one partition");
    let mut items = items;
    let mut rng = StdRng::seed_from_u64(seed);
    items.shuffle(&mut rng);
    let mut parts: Vec<Vec<T>> = (0..k)
        .map(|_| Vec::with_capacity(items.len() / k + 1))
        .collect();
    for (i, item) in items.into_iter().enumerate() {
        parts[i % k].push(item);
    }
    parts
}

/// Distributes cells over `k` partitions uniformly at random
/// (Algorithm 2, Lines 5–11: a random key per cell, then aggregation by
/// key). A seeded shuffle followed by round-robin dealing realises the
/// paper's "partitions of the same size" with cell counts equal to ±1.
pub fn pseudo_random_partition(cells: Vec<CellPoints>, k: usize, seed: u64) -> Vec<Partition> {
    pseudo_random_deal(cells, k, seed)
        .into_iter()
        .enumerate()
        .map(|(id, cells)| Partition { id, cells })
        .collect()
}

/// Ablation variant: *true* random partitioning of individual points
/// (Figure 1b without the cell trick). Cells are split across partitions,
/// so each partition re-derives its own (partial) cells. Used by the
/// ablation bench to show why the pseudo variant is needed.
pub fn true_random_partition(
    spec: &GridSpec,
    data: &Dataset,
    k: usize,
    seed: u64,
) -> Vec<Partition> {
    assert!(k >= 1, "need at least one partition");
    let mut ids: Vec<PointId> = data.ids().collect();
    let mut rng = StdRng::seed_from_u64(seed);
    ids.shuffle(&mut rng);
    let mut parts = Vec::with_capacity(k);
    for pid in 0..k {
        let slice: Vec<PointId> = ids[pid..].iter().step_by(k).copied().collect();
        let mut by_cell: FxHashMap<CellCoord, Vec<PointId>> = FxHashMap::default();
        for id in slice {
            by_cell
                .entry(spec.cell_of(data.point(id)))
                .or_default()
                .push(id);
        }
        let mut cells: Vec<CellPoints> = by_cell
            .into_iter()
            .map(|(coord, points)| CellPoints { coord, points })
            .collect();
        cells.sort_unstable_by(|a, b| a.coord.cmp(&b.coord));
        parts.push(Partition { id: pid, cells });
    }
    parts
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    fn data(n: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let flat: Vec<f64> = (0..n * 2).map(|_| rng.gen_range(0.0..50.0)).collect();
        Dataset::from_flat(2, flat).unwrap()
    }

    fn spec() -> GridSpec {
        GridSpec::new(2, 1.0, 0.5).unwrap()
    }

    #[test]
    fn grouping_covers_every_point_once() {
        let d = data(500, 1);
        let cells = group_by_cell(&spec(), &d);
        let total: usize = cells.iter().map(|c| c.points.len()).sum();
        assert_eq!(total, 500);
        let mut seen = vec![false; 500];
        for c in &cells {
            for p in &c.points {
                assert!(!seen[p.index()], "point duplicated");
                seen[p.index()] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn grouped_points_really_share_the_cell() {
        let d = data(300, 2);
        let s = spec();
        for c in group_by_cell(&s, &d) {
            for p in &c.points {
                assert_eq!(s.cell_of(d.point(*p)), c.coord);
            }
        }
    }

    #[test]
    fn partitions_are_disjoint_and_cover() {
        let d = data(400, 3);
        let cells = group_by_cell(&spec(), &d);
        let n_cells = cells.len();
        let parts = pseudo_random_partition(cells, 7, 42);
        assert_eq!(parts.len(), 7);
        let total_cells: usize = parts.iter().map(|p| p.cells.len()).sum();
        assert_eq!(total_cells, n_cells);
        let total_points: usize = parts.iter().map(|p| p.num_points()).sum();
        assert_eq!(total_points, 400, "duplication must be exactly zero");
    }

    #[test]
    fn cell_counts_differ_by_at_most_one() {
        let d = data(1000, 4);
        let cells = group_by_cell(&spec(), &d);
        let parts = pseudo_random_partition(cells, 6, 0);
        let counts: Vec<usize> = parts.iter().map(|p| p.cells.len()).collect();
        let min = counts.iter().min().unwrap();
        let max = counts.iter().max().unwrap();
        assert!(max - min <= 1, "{counts:?}");
    }

    #[test]
    fn partitioning_is_seed_deterministic() {
        let d = data(200, 5);
        let a = pseudo_random_partition(group_by_cell(&spec(), &d), 4, 7);
        let b = pseudo_random_partition(group_by_cell(&spec(), &d), 4, 7);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.cells.len(), y.cells.len());
            for (cx, cy) in x.cells.iter().zip(&y.cells) {
                assert_eq!(cx.coord, cy.coord);
            }
        }
    }

    #[test]
    fn different_seeds_differ() {
        let d = data(300, 6);
        let a = pseudo_random_partition(group_by_cell(&spec(), &d), 4, 1);
        let b = pseudo_random_partition(group_by_cell(&spec(), &d), 4, 2);
        let same = a.iter().zip(&b).all(|(x, y)| {
            x.cells.len() == y.cells.len()
                && x.cells
                    .iter()
                    .zip(&y.cells)
                    .all(|(cx, cy)| cx.coord == cy.coord)
        });
        assert!(!same, "shuffle appears seed-independent");
    }

    #[test]
    fn single_partition_keeps_everything() {
        let d = data(100, 7);
        let parts = pseudo_random_partition(group_by_cell(&spec(), &d), 1, 0);
        assert_eq!(parts.len(), 1);
        assert_eq!(parts[0].num_points(), 100);
    }

    #[test]
    fn true_random_covers_and_may_split_cells() {
        let d = data(600, 8);
        let s = spec();
        let parts = true_random_partition(&s, &d, 5, 3);
        let total: usize = parts.iter().map(|p| p.num_points()).sum();
        assert_eq!(total, 600);
        // Point-level balance is near-exact by construction.
        for p in &parts {
            assert!((p.num_points() as i64 - 120).abs() <= 1);
        }
    }
}
