//! RP-DBSCAN: Random Partitioning DBSCAN (SIGMOD'18) — the core algorithm.
//!
//! The algorithm clusters a data set with DBSCAN semantics in three
//! MapReduce phases (Algorithm 1 of the paper):
//!
//! 1. **Data partitioning** ([`partition`]) — *pseudo random partitioning*
//!    distributes grid cells (not points) uniformly at random over `k`
//!    partitions, then builds and broadcasts the two-level cell dictionary
//!    summarising the whole data set.
//! 2. **Cell graph construction** ([`phase2`]) — every partition answers
//!    `(ε,ρ)`-region queries against the broadcast dictionary to mark core
//!    points/cells and emit a *cell subgraph* of directly-reachable cell
//!    pairs.
//! 3. **Cell graph merging** ([`merge`], [`label`]) — subgraphs merge in a
//!    parallel tournament with progressive edge-type detection and
//!    redundant-full-edge reduction; points are then labeled from the
//!    global cell graph (Lemma 3.5).
//!
//! The high-level entry point is [`RpDbscan`]:
//!
//! ```
//! use rpdbscan_core::{RpDbscan, RpDbscanParams};
//! use rpdbscan_engine::Engine;
//! use rpdbscan_geom::Dataset;
//!
//! // two tight blobs and one outlier
//! let mut rows = Vec::new();
//! for i in 0..40 {
//!     let t = i as f64 * 0.01;
//!     rows.push(vec![t, t]);
//!     rows.push(vec![10.0 + t, 10.0 - t]);
//! }
//! rows.push(vec![100.0, 100.0]);
//! let data = Dataset::from_rows(2, &rows).unwrap();
//!
//! let params = RpDbscanParams::new(1.0, 5).with_partitions(4).with_rho(0.01);
//! let engine = Engine::new(4);
//! let out = RpDbscan::new(params).unwrap().run(&data, &engine).unwrap();
//! assert_eq!(out.clustering.num_clusters(), 2);
//! assert_eq!(out.clustering.noise_count(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod driver;
pub mod graph;
pub mod label;
pub mod merge;
pub mod ooc;
pub mod params;
pub mod partition;
pub mod phase2;
pub mod repair;

pub use driver::{validate_backend_config, RpDbscan, RpDbscanOutput, RunStats};
pub use graph::{CellSubgraph, CellType, EdgeType};
pub use ooc::OutOfCoreConfig;
pub use params::{DensityBackendKind, RpDbscanParams};
pub use partition::{pseudo_random_deal, CellPoints, Partition};
pub use phase2::{LocalBuilder, PointSource, QueryRouting};
pub use repair::{
    assign_border_point, cell_contribution, contribution_delta, recompute_cell, sub_diff,
    CellRepair, SubDiff,
};

/// Errors from the RP-DBSCAN driver.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// Grid construction rejected the `(d, ε, ρ)` combination.
    Grid(rpdbscan_grid::GridError),
    /// `minPts` must be at least 1.
    InvalidMinPts(usize),
    /// The number of partitions must be at least 1.
    InvalidPartitions(usize),
    /// Input dimensionality disagrees with a previous configuration.
    DimensionMismatch {
        /// Expected dimensionality.
        expected: usize,
        /// Dataset dimensionality.
        got: usize,
    },
    /// An engine stage failed: a task returned an error or panicked and
    /// exhausted its retries (e.g. a poisoned partition).
    Stage(rpdbscan_engine::StageError),
    /// The batch driver only runs the exact grid backend; approximate
    /// density backends are dispatched by `rpdbscan-density`. The
    /// payload is the rejected backend's tag (`knn` / `sampled`).
    UnsupportedBackend(&'static str),
    /// A density-backend knob is out of range (e.g. `k = 0` or a sample
    /// fraction outside `(0, 1]`).
    InvalidBackendConfig {
        /// The rejected backend's tag.
        backend: &'static str,
        /// What was wrong with its configuration.
        reason: &'static str,
    },
    /// The out-of-core pipeline hit a column-store error: a corrupt or
    /// truncated store file, a grid-parameter mismatch between the store
    /// header and the run's parameters, or a spill IO failure.
    Store(rpdbscan_store::StoreError),
}

impl std::fmt::Display for CoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoreError::Grid(e) => write!(f, "grid error: {e}"),
            CoreError::InvalidMinPts(m) => write!(f, "minPts must be >= 1, got {m}"),
            CoreError::InvalidPartitions(k) => write!(f, "partitions must be >= 1, got {k}"),
            CoreError::DimensionMismatch { expected, got } => {
                write!(f, "dimension mismatch: expected {expected}, got {got}")
            }
            CoreError::Stage(e) => write!(f, "{e}"),
            CoreError::UnsupportedBackend(b) => write!(
                f,
                "the batch driver only runs the exact grid backend; \
                 run the `{b}` backend through rpdbscan-density's backend_for"
            ),
            CoreError::InvalidBackendConfig { backend, reason } => {
                write!(f, "invalid `{backend}` backend configuration: {reason}")
            }
            CoreError::Store(e) => write!(f, "store error: {e}"),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<rpdbscan_grid::GridError> for CoreError {
    fn from(e: rpdbscan_grid::GridError) -> Self {
        CoreError::Grid(e)
    }
}

impl From<rpdbscan_engine::StageError> for CoreError {
    fn from(e: rpdbscan_engine::StageError) -> Self {
        CoreError::Stage(e)
    }
}

impl From<rpdbscan_store::StoreError> for CoreError {
    fn from(e: rpdbscan_store::StoreError) -> Self {
        CoreError::Store(e)
    }
}
