//! Cell graphs (Definition 5.8).
//!
//! Vertices are cells (identified by their dictionary index), typed core /
//! non-core / undetermined; edges run from core cells to reachable cells.
//! An edge's type is *derived* from its endpoint types — full when both
//! ends are core, partial when the successor is non-core, undetermined
//! when the successor's type is not yet known — so progressive edge-type
//! detection (§6.1.3) is simply re-reading edges after vertex types merge.

use rpdbscan_grid::{FxHashMap, FxHashSet};
/// Vertex type of a cell in a cell (sub)graph.
///
/// Ordered so that `max` implements Definition 6.2's promotion: a
/// determined type always wins over [`CellType::Undetermined`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum CellType {
    /// The cell lives in a partition this graph has not seen yet.
    Undetermined,
    /// Determined: the cell has no core point.
    NonCore,
    /// Determined: the cell has at least one core point (Definition 3.2).
    Core,
}

/// Edge type derived from endpoint cell types (Definition 5.8).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeType {
    /// Fully directly reachable: both cells core (Definition 3.3).
    Full,
    /// Partially directly reachable: successor non-core (Definition 3.4).
    Partial,
    /// Successor type unknown in this graph.
    Undetermined,
}

/// A cell (sub)graph: typed cells plus directed reachability edges.
#[derive(Debug, Clone, Default)]
pub struct CellSubgraph {
    /// Determined vertex types; absent cells are `Undetermined`.
    types: FxHashMap<u32, CellType>,
    /// Directed edges `(from, to)`. `from` is always a core cell of the
    /// originating partition. Full edges are normalised to
    /// `(min, max)` once both endpoints are known core (direction is
    /// irrelevant for them, §6.1.3).
    edges: FxHashSet<(u32, u32)>,
}

impl CellSubgraph {
    /// An empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets (or promotes) the type of a cell.
    ///
    /// Promotion follows Definition 6.2: `Undetermined` never overwrites a
    /// determined type. Conflicting determined types cannot arise under
    /// pseudo random partitioning (cells are partition-disjoint); under the
    /// true-random ablation a cell may be marked core by one partition and
    /// non-core by another, and core wins because core-ness is an
    /// existential property of the whole data set.
    pub fn set_type(&mut self, cell: u32, t: CellType) {
        if t == CellType::Undetermined {
            return;
        }
        let entry = self.types.entry(cell).or_insert(CellType::Undetermined);
        *entry = (*entry).max(t);
    }

    /// The type of a cell (`Undetermined` when unknown).
    pub fn cell_type(&self, cell: u32) -> CellType {
        self.types
            .get(&cell)
            .copied()
            .unwrap_or(CellType::Undetermined)
    }

    /// Adds a directed edge from a core cell.
    pub fn add_edge(&mut self, from: u32, to: u32) {
        debug_assert_ne!(from, to, "self edges are never stored");
        self.edges.insert((from, to));
    }

    /// The edge set.
    pub fn edges(&self) -> &FxHashSet<(u32, u32)> {
        &self.edges
    }

    /// Determined vertex types.
    pub fn types(&self) -> &FxHashMap<u32, CellType> {
        &self.types
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Derives an edge's current type (§6.1.3).
    pub fn edge_type(&self, from: u32, to: u32) -> EdgeType {
        debug_assert_ne!(
            self.cell_type(from),
            CellType::NonCore,
            "edges must originate from core cells"
        );
        match (self.cell_type(from), self.cell_type(to)) {
            (CellType::Core, CellType::Core) => EdgeType::Full,
            (CellType::Core, CellType::NonCore) => EdgeType::Partial,
            _ => EdgeType::Undetermined,
        }
    }

    /// Counts edges by current type — `(full, partial, undetermined)`.
    pub fn edge_type_counts(&self) -> (usize, usize, usize) {
        let mut counts = (0, 0, 0);
        // lint:allow(unordered-iter): tallying only — the three counters are order-insensitive
        for &(a, b) in &self.edges {
            match self.edge_type(a, b) {
                EdgeType::Full => counts.0 += 1,
                EdgeType::Partial => counts.1 += 1,
                EdgeType::Undetermined => counts.2 += 1,
            }
        }
        counts
    }

    /// `true` when every vertex type is determined (a *global* cell graph
    /// in the sense of Definition 6.1 — no undetermined cells or edges).
    pub fn is_global(&self) -> bool {
        self.edges.iter().all(|&(a, b)| {
            self.cell_type(a) != CellType::Undetermined
                && self.cell_type(b) != CellType::Undetermined
        })
    }

    /// Estimated wire size in bytes when shuffled between workers: one
    /// `(u32, u8)` per typed vertex and two `u32` per edge.
    pub fn wire_bytes(&self) -> u64 {
        (self.types.len() * 5 + self.edges.len() * 8) as u64
    }

    /// Consumes helpers for the merge phase.
    pub(crate) fn into_parts(self) -> (FxHashMap<u32, CellType>, FxHashSet<(u32, u32)>) {
        (self.types, self.edges)
    }

    /// Rebuilds from parts (merge phase).
    pub(crate) fn from_parts(
        types: FxHashMap<u32, CellType>,
        edges: FxHashSet<(u32, u32)>,
    ) -> Self {
        Self { types, edges }
    }
}

/// A weighted quick-union disjoint-set over dense `u32` ids, used for
/// both redundant-edge reduction (§6.1.4) and final cluster extraction
/// (spanning trees of Figure 10b).
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<u32>,
    rank: Vec<u8>,
}

impl UnionFind {
    /// `n` singleton sets.
    pub fn new(n: usize) -> Self {
        Self {
            parent: (0..n as u32).collect(),
            rank: vec![0; n],
        }
    }

    /// Representative of `x`'s set (path halving).
    pub fn find(&mut self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            let gp = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = gp;
            x = gp;
        }
        x
    }

    /// Unions the sets of `a` and `b`; returns `true` when they were
    /// previously distinct (i.e. the edge is part of the spanning forest).
    pub fn union(&mut self, a: u32, b: u32) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (ra, rb) = if self.rank[ra as usize] < self.rank[rb as usize] {
            (rb, ra)
        } else {
            (ra, rb)
        };
        self.parent[rb as usize] = ra;
        if self.rank[ra as usize] == self.rank[rb as usize] {
            self.rank[ra as usize] += 1;
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_promotion_follows_definition_6_2() {
        let mut g = CellSubgraph::new();
        g.set_type(1, CellType::Undetermined);
        assert_eq!(g.cell_type(1), CellType::Undetermined);
        g.set_type(1, CellType::NonCore);
        assert_eq!(g.cell_type(1), CellType::NonCore);
        g.set_type(1, CellType::Undetermined); // never demotes
        assert_eq!(g.cell_type(1), CellType::NonCore);
        g.set_type(1, CellType::Core); // ablation promotion path
        assert_eq!(g.cell_type(1), CellType::Core);
    }

    #[test]
    fn edge_types_derive_from_endpoints() {
        let mut g = CellSubgraph::new();
        g.set_type(0, CellType::Core);
        g.set_type(1, CellType::Core);
        g.set_type(2, CellType::NonCore);
        g.add_edge(0, 1);
        g.add_edge(0, 2);
        g.add_edge(0, 3); // 3 unknown
        assert_eq!(g.edge_type(0, 1), EdgeType::Full);
        assert_eq!(g.edge_type(0, 2), EdgeType::Partial);
        assert_eq!(g.edge_type(0, 3), EdgeType::Undetermined);
        assert_eq!(g.edge_type_counts(), (1, 1, 1));
        assert!(!g.is_global());
        g.set_type(3, CellType::NonCore);
        assert!(g.is_global());
    }

    #[test]
    fn duplicate_edges_collapse() {
        let mut g = CellSubgraph::new();
        g.set_type(0, CellType::Core);
        g.add_edge(0, 1);
        g.add_edge(0, 1);
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn union_find_spanning_forest() {
        let mut uf = UnionFind::new(5);
        assert!(uf.union(0, 1));
        assert!(uf.union(1, 2));
        assert!(!uf.union(0, 2), "cycle edge must be rejected");
        assert!(uf.union(3, 4));
        assert_eq!(uf.find(0), uf.find(2));
        assert_ne!(uf.find(0), uf.find(3));
    }

    #[test]
    fn union_find_many_elements() {
        let mut uf = UnionFind::new(1000);
        for i in 0..999u32 {
            assert!(uf.union(i, i + 1));
        }
        assert_eq!(uf.find(0), uf.find(999));
    }

    #[test]
    fn wire_bytes_scale_with_content() {
        let mut g = CellSubgraph::new();
        assert_eq!(g.wire_bytes(), 0);
        g.set_type(0, CellType::Core);
        g.add_edge(0, 1);
        assert_eq!(g.wire_bytes(), 5 + 8);
    }
}
