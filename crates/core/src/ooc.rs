//! The out-of-core driver: Algorithm 1 over a paged column store.
//!
//! [`RpDbscan::run_out_of_core`] runs the same three phases as
//! [`RpDbscan::run`], but point coordinates never live in memory as a
//! whole: Phase I-2's dictionary build and Phase II's region queries
//! gather one cell at a time through a byte-budgeted
//! [`BufferPool`], and Phase III-1 merges cell graphs through spill
//! files — each partition's subgraph is serialized to disk after Phase
//! II, and every tournament match streams two spill files against each
//! other, holding only the merged type table and the survivor edge list
//! (the *frontier*) in memory.
//!
//! The output is bit-identical to the resident pipeline on the same
//! parameters, by construction rather than by accident:
//!
//! * the store's row order (cell coordinate, then original id) equals
//!   the resident pipeline's `merge_cell_groups` order, so the seeded
//!   shuffle in [`pseudo_random_deal`] deals the same cells to the same
//!   partitions;
//! * Phase II feeds the shared [`LocalBuilder`] the same ids and the
//!   same (bit-exact, round-tripped through the file) coordinates in
//!   the same order;
//! * the spill merge consumes edges in the same sorted order the
//!   resident `merge_pair` sorts them into, so the union-find keeps the
//!   same spanning forest.
//!
//! The equivalence suite pins all of this across dimensions, densities,
//! budgets and partition counts.

use crate::driver::{RpDbscan, RpDbscanOutput, RunStats};
use crate::graph::{CellSubgraph, CellType, UnionFind};
use crate::label::{assemble_clustering, LabelSupport};
use crate::partition::pseudo_random_deal;
use crate::phase2::{LocalBuilder, PointSource, QueryRouting};
use crate::CoreError;
use rpdbscan_engine::{Engine, TaskError};
use rpdbscan_geom::PointId;
use rpdbscan_grid::{CellDictionary, CellEntry, DictionaryIndex, FxHashMap, FxHashSet, QueryStats};
use rpdbscan_store::{BufferPool, ColumnStore, SpillDir, SpillHandle, SpillReader, StoreError};
use std::path::PathBuf;
use std::sync::Arc;

/// A spilled per-partition cell graph: its file handle plus edge count.
type SpilledGraph = (SpillHandle, usize);

/// Knobs of the out-of-core pipeline.
#[derive(Debug, Clone)]
pub struct OutOfCoreConfig {
    /// Buffer pool byte budget. The pool evicts towards it and only
    /// overshoots when every cached page is pinned at once, so the
    /// effective floor is one page per worker plus one.
    pub mem_budget_bytes: u64,
    /// Where spill files go (the system temp directory when `None`).
    /// The directory the run creates underneath is removed at the end.
    pub spill_dir: Option<PathBuf>,
}

impl OutOfCoreConfig {
    /// A config with the given pool budget, spilling under the system
    /// temp directory.
    pub fn new(mem_budget_bytes: u64) -> Self {
        OutOfCoreConfig {
            mem_budget_bytes,
            spill_dir: None,
        }
    }

    /// Redirects spill files under `dir`.
    pub fn with_spill_dir(mut self, dir: PathBuf) -> Self {
        self.spill_dir = Some(dir);
        self
    }
}

impl RpDbscan {
    /// Runs the full three-phase algorithm against a column store,
    /// keeping coordinate residency bounded by `cfg.mem_budget_bytes`.
    ///
    /// The store must have been ingested with the same `(ε, ρ)` the
    /// runner was configured with — the grid assignment of points to
    /// cells is baked into the store's row order, so a mismatch is a
    /// typed error ([`StoreError::GridMismatch`]), not a silent
    /// reclustering under different parameters.
    pub fn run_out_of_core(
        &self,
        store: &Arc<ColumnStore>,
        cfg: &OutOfCoreConfig,
        engine: &Engine,
    ) -> Result<RpDbscanOutput, CoreError> {
        let p = self.params();
        for (field, stored, requested) in [("eps", store.eps(), p.eps), ("rho", store.rho(), p.rho)]
        {
            if stored.to_bits() != requested.to_bits() {
                return Err(CoreError::Store(StoreError::GridMismatch {
                    field,
                    store: stored,
                    requested,
                }));
            }
        }
        let spec = store.spec().clone();
        let dim = store.dim();
        let k = p.num_partitions;
        let pool = BufferPool::new(Arc::clone(store), cfg.mem_budget_bytes);
        let spill = SpillDir::create(cfg.spill_dir.as_deref())?;

        // ---- Phase I-1: pseudo random partitioning -------------------
        // The directory *is* the grouped cell list (built at ingest, in
        // the same sorted order the resident pipeline produces), so
        // partitioning deals directory indices instead of point vectors.
        let dir_indices: Vec<u32> = (0..store.cells().len() as u32).collect();
        let parts: Vec<Vec<u32>> = pseudo_random_deal(dir_indices, k, p.seed);
        let point_bytes = (dim * 4) as u64;
        engine.shuffle_cost("phase1-1:shuffle", store.len() * point_bytes);

        // ---- Phase I-2: cell dictionary building + broadcast ----------
        let part_refs: Vec<&[u32]> = parts.iter().map(|v| v.as_slice()).collect();
        let entries =
            engine.run_stage("phase1-2:dictionary", part_refs.clone(), |_ctx, part| {
                let mut coords: Vec<f64> = Vec::new();
                let mut out = Vec::with_capacity(part.len());
                for &ci in part {
                    let meta = &pool.store().cells()[ci as usize];
                    pool.gather_coords(meta.row_start, meta.row_count, &mut coords)
                        .map_err(task_err)?;
                    out.push(CellEntry::from_points(
                        &spec,
                        meta.coord.clone(),
                        coords.chunks_exact(dim.max(1)),
                    ));
                }
                Ok(out)
            })?;
        let dict =
            CellDictionary::from_entries(spec.clone(), entries.outputs.into_iter().flatten());
        let wire_bytes = dict.encode().len() as u64;
        engine.broadcast_cost("phase1-2:broadcast", wire_bytes);
        let dict_cells = dict.num_cells();
        let dict_subcells = dict.num_sub_cells();
        let dict_size_bits = dict.size_bits();
        let index = DictionaryIndex::new(dict, p.subdict_capacity);

        // ---- Phase II: cell graph construction, spilled ---------------
        let routing = QueryRouting::auto(&index);
        let locals =
            engine.run_stage("phase2:local-clustering", part_refs.clone(), |ctx, part| {
                if Some(ctx.index()) == p.inject_fault {
                    // lint:allow(panic-safety): deliberate fault-injection hook; the engine's panic recovery is what is under test
                    panic!("injected fault in partition {}", ctx.index());
                }
                let mut builder = LocalBuilder::new(&index);
                let mut coords: Vec<f64> = Vec::new();
                let mut ids: Vec<u32> = Vec::new();
                let mut pids: Vec<PointId> = Vec::new();
                for &ci in part {
                    let meta = &pool.store().cells()[ci as usize];
                    pool.gather_coords(meta.row_start, meta.row_count, &mut coords)
                        .map_err(task_err)?;
                    pool.gather_ids(meta.row_start, meta.row_count, &mut ids)
                        .map_err(task_err)?;
                    pids.clear();
                    pids.extend(ids.iter().map(|&i| PointId(i)));
                    builder.process_cell(
                        &index,
                        p.min_pts,
                        routing,
                        &meta.coord,
                        &pids,
                        PointSource::Rows(&coords),
                    )?;
                }
                let local = builder.finish();
                let (handle, edges) = spill_subgraph(&spill, &local.subgraph).map_err(task_err)?;
                Ok((handle, edges, local.core_points, local.stats, local.queries))
            })?;
        let mut query_stats = QueryStats::default();
        let mut core_points: FxHashMap<u32, Vec<PointId>> = FxHashMap::default();
        let mut handles: Vec<SpilledGraph> = Vec::with_capacity(k);
        let mut points_processed = 0u64;
        for (handle, edges, cores, stats, queries) in locals.outputs {
            query_stats.merge(&stats);
            points_processed += queries;
            for (c, pts) in cores {
                core_points.entry(c).or_default().extend(pts);
            }
            handles.push((handle, edges));
        }

        // ---- Phase III-1: progressive merging over spill files --------
        let mut edges_per_round = vec![handles.iter().map(|(_, e)| e).sum::<usize>()];
        let mut merge_peak_frontier = 0u64;
        let mut round = 0;
        while handles.len() > 1 {
            round += 1;
            let moved_bytes: u64 = handles
                .iter()
                .skip(1)
                .step_by(2)
                .map(|(h, _)| h.bytes())
                .sum();
            engine.shuffle_cost(&format!("phase3-1:shuffle-round-{round}"), moved_bytes);
            let mut pairs: Vec<(SpilledGraph, Option<SpilledGraph>)> = Vec::new();
            let mut it = handles.into_iter();
            while let Some(h1) = it.next() {
                pairs.push((h1, it.next()));
            }
            let merged = engine.run_stage(
                &format!("phase3-1:merge-round-{round}"),
                pairs,
                |_ctx, (h1, h2)| {
                    Ok(match h2 {
                        Some(h2) => merge_spill_pair(&spill, &h1.0, &h2.0).map_err(task_err)?,
                        None => (h1.0, h1.1, 0),
                    })
                },
            )?;
            handles = Vec::with_capacity(merged.outputs.len());
            for (handle, edges, frontier) in merged.outputs {
                merge_peak_frontier = merge_peak_frontier.max(frontier);
                handles.push((handle, edges));
            }
            edges_per_round.push(handles.iter().map(|(_, e)| e).sum());
        }
        let global = match handles.pop() {
            Some((handle, _)) => {
                let g = read_spill_graph(&spill, &handle)?;
                spill.remove(&handle)?;
                g
            }
            None => CellSubgraph::new(),
        };
        debug_assert!(global.is_global(), "undetermined cells after full merge");

        // ---- Phase III-2: point labeling -------------------------------
        let supports = LabelSupport::build(global);
        let eps2 = p.eps * p.eps;
        let labeled = engine.run_stage("phase3-2:labeling", part_refs, |_ctx, part| {
            label_ooc_partition(part, &pool, &index, &supports, &core_points, eps2)
        })?;
        let clustering = assemble_clustering(store.len() as usize, labeled.outputs);

        let pool_stats = pool.stats();
        let spill_stats = spill.stats();
        let stats = RunStats {
            backend: p.density_backend.name(),
            dict_cells,
            dict_subcells,
            dict_size_bits,
            dict_wire_bytes: wire_bytes,
            edges_per_round,
            points_processed,
            num_clusters: supports.clusters.num_clusters,
            noise_points: clustering.noise_count(),
            num_partitions: k,
            query_subdicts_skipped: query_stats.subdicts_skipped as u64,
            query_subdicts_visited: query_stats.subdicts_visited as u64,
            query_cells_candidate: query_stats.cells_candidate as u64,
            query_plans_built: query_stats.plans_built as u64,
            query_plan_hits: query_stats.plan_hits as u64,
            query_cells_planned_full: query_stats.cells_planned_full as u64,
            query_cells_routed_planned: query_stats.cells_routed_planned as u64,
            query_cells_routed_kd: query_stats.cells_routed_kd as u64,
            route_min_occupancy: routing.min_occupancy().unwrap_or(0),
            out_of_core: true,
            pool_budget_bytes: pool_stats.budget_bytes,
            pool_hits: pool_stats.hits,
            pool_misses: pool_stats.misses,
            pool_evictions: pool_stats.evictions,
            pool_peak_tracked_bytes: pool_stats.peak_tracked_bytes,
            spill_bytes_written: spill_stats.bytes_written,
            spill_bytes_read: spill_stats.bytes_read,
            merge_peak_frontier_bytes: merge_peak_frontier,
        };
        Ok(RpDbscanOutput { clustering, stats })
    }
}

/// Converts a store-layer failure inside an engine task into the
/// engine's task-failure currency.
fn task_err(e: StoreError) -> TaskError {
    TaskError::new(e.to_string())
}

/// Labels one out-of-core partition: core cells inherit their cluster,
/// border points run the exact ε check against predecessor core points
/// gathered through the pool (Algorithm 4, Lines 10–23 — the same walk
/// as `label_partition`, with the store standing in for the dataset).
fn label_ooc_partition(
    part: &[u32],
    pool: &BufferPool,
    index: &DictionaryIndex,
    supports: &LabelSupport,
    core_points: &FxHashMap<u32, Vec<PointId>>,
    eps2: f64,
) -> Result<Vec<(PointId, Option<u32>)>, TaskError> {
    let store = pool.store();
    let dict = index.dict();
    let dim = store.dim();
    let mut out = Vec::new();
    let mut ids: Vec<u32> = Vec::new();
    let mut coords: Vec<f64> = Vec::new();
    let mut core_ids: Vec<u32> = Vec::new();
    let mut core_rows: Vec<u64> = Vec::new();
    // Gathered coordinates of each predecessor cell's core points, keyed
    // by dictionary cell index — border cells near the same core cell
    // share one gather.
    let mut core_coord_cache: FxHashMap<u32, Vec<f64>> = FxHashMap::default();
    for &ci in part {
        let meta = &store.cells()[ci as usize];
        let idx = dict.index_of(&meta.coord).ok_or_else(|| {
            TaskError::new(format!(
                "partition cell {} missing from dictionary",
                meta.coord
            ))
        })?;
        pool.gather_ids(meta.row_start, meta.row_count, &mut ids)
            .map_err(task_err)?;
        match supports.global.cell_type(idx) {
            CellType::Core => {
                let cid = supports.clusters.cluster_of_cell[&idx];
                for &i in &ids {
                    out.push((PointId(i), Some(cid)));
                }
            }
            CellType::NonCore => {
                pool.gather_coords(meta.row_start, meta.row_count, &mut coords)
                    .map_err(task_err)?;
                let empty = Vec::new();
                let mut pred_cells = supports.preds.get(&idx).unwrap_or(&empty).clone();
                pred_cells.sort_unstable_by(|a, b| dict.entry(*a).coord.cmp(&dict.entry(*b).coord));
                // Gather every predecessor's core coordinates up front so
                // the per-point loop below is pure arithmetic.
                for &pc in &pred_cells {
                    if core_coord_cache.contains_key(&pc) {
                        continue;
                    }
                    let cores = match core_points.get(&pc) {
                        Some(c) => c,
                        None => continue,
                    };
                    core_ids.clear();
                    core_ids.extend(cores.iter().map(|p| p.0));
                    let pcoord = &dict.entry(pc).coord;
                    let pmeta = store
                        .cells()
                        .binary_search_by(|m| m.coord.cmp(pcoord))
                        .map(|i| &store.cells()[i])
                        .map_err(|_| {
                            TaskError::new(format!(
                                "predecessor cell {pcoord} missing from store directory"
                            ))
                        })?;
                    pool.rows_of_ids(pmeta.row_start, pmeta.row_count, &core_ids, &mut core_rows)
                        .map_err(task_err)?;
                    let mut gathered = Vec::new();
                    pool.gather_rows_coords(&core_rows, &mut gathered)
                        .map_err(task_err)?;
                    core_coord_cache.insert(pc, gathered);
                }
                for (j, &i) in ids.iter().enumerate() {
                    let qc = &coords[j * dim..(j + 1) * dim];
                    let mut label = None;
                    'search: for &pc in &pred_cells {
                        if let Some(pcoords) = core_coord_cache.get(&pc) {
                            for pcc in pcoords.chunks_exact(dim) {
                                if rpdbscan_geom::dist2(pcc, qc) <= eps2 {
                                    label = Some(supports.clusters.cluster_of_cell[&pc]);
                                    break 'search;
                                }
                            }
                        }
                    }
                    out.push((PointId(i), label));
                }
            }
            CellType::Undetermined => {
                return Err(TaskError::new(format!(
                    "global graph contains undetermined cell {idx}"
                )));
            }
        }
    }
    Ok(out)
}

/// Serializes a cell subgraph to a spill file: a sorted `(cell, type)`
/// table, then a sorted edge list. Sorting here is what lets the merge
/// stream both inputs without re-sorting — and it is the *same* order
/// the resident `merge_pair` sorts into, keeping the union-find walks
/// identical.
fn spill_subgraph(spill: &SpillDir, g: &CellSubgraph) -> Result<(SpillHandle, usize), StoreError> {
    let mut types: Vec<(u32, CellType)> = g.types().iter().map(|(&c, &t)| (c, t)).collect();
    types.sort_unstable_by_key(|&(c, _)| c);
    let mut edges: Vec<(u32, u32)> = g.edges().iter().copied().collect();
    edges.sort_unstable();
    let mut w = spill.writer()?;
    w.write_u64(types.len() as u64)?;
    // lint:allow(unordered-iter): `types` was sorted above — the spill file is written in ascending cell order
    for (c, t) in types {
        w.write_u32(c)?;
        w.write_u8(encode_type(t))?;
    }
    w.write_u64(edges.len() as u64)?;
    let n_edges = edges.len();
    // lint:allow(unordered-iter): `edges` was sorted two lines up — the spill file is written in ascending order
    for (a, b) in edges {
        w.write_u32(a)?;
        w.write_u32(b)?;
    }
    Ok((w.finish()?, n_edges))
}

fn encode_type(t: CellType) -> u8 {
    match t {
        CellType::Undetermined => 0,
        CellType::NonCore => 1,
        CellType::Core => 2,
    }
}

fn decode_type(v: u8) -> Result<CellType, StoreError> {
    match v {
        0 => Ok(CellType::Undetermined),
        1 => Ok(CellType::NonCore),
        2 => Ok(CellType::Core),
        other => Err(StoreError::Corrupt {
            what: "spill cell type",
            detail: format!("unknown tag {other}"),
        }),
    }
}

/// One tournament match over spill files: streams both inputs, merges
/// their type tables (max promotion, Definition 6.2), classifies edges
/// against the merged types in globally sorted order, keeps one spanning
/// forest over core cells (§6.1.4), writes the survivors to a new spill
/// file and deletes the inputs. Returns the output handle, its edge
/// count, and the frontier high-water mark in bytes (merged type table +
/// union-find + survivor list — the only per-match memory).
fn merge_spill_pair(
    spill: &SpillDir,
    h1: &SpillHandle,
    h2: &SpillHandle,
) -> Result<(SpillHandle, usize, u64), StoreError> {
    let mut r1 = spill.open(h1)?;
    let mut r2 = spill.open(h2)?;

    // Merged type table: 2-way sorted merge with max promotion on ties.
    let n1 = r1.read_u64()?;
    let n2 = r2.read_u64()?;
    let mut types: Vec<(u32, CellType)> = Vec::with_capacity((n1 + n2) as usize);
    {
        let mut s1 = TypeStream::new(&mut r1, n1);
        let mut s2 = TypeStream::new(&mut r2, n2);
        let mut a = s1.next()?;
        let mut b = s2.next()?;
        loop {
            match (a, b) {
                (Some((ca, ta)), Some((cb, tb))) => {
                    if ca < cb {
                        types.push((ca, ta));
                        a = s1.next()?;
                    } else if cb < ca {
                        types.push((cb, tb));
                        b = s2.next()?;
                    } else {
                        types.push((ca, ta.max(tb)));
                        a = s1.next()?;
                        b = s2.next()?;
                    }
                }
                (Some(x), None) => {
                    types.push(x);
                    a = s1.next()?;
                }
                (None, Some(x)) => {
                    types.push(x);
                    b = s2.next()?;
                }
                (None, None) => break,
            }
        }
    }
    let type_of = |cell: u32| -> CellType {
        match types.binary_search_by_key(&cell, |&(c, _)| c) {
            Ok(i) => types[i].1,
            Err(_) => CellType::Undetermined,
        }
    };
    let core_ids: Vec<u32> = types
        // lint:allow(unordered-iter): `types` is a sorted Vec here; this walk preserves ascending cell order
        .iter()
        .filter(|&&(_, t)| t == CellType::Core)
        .map(|&(c, _)| c)
        .collect();
    let dense: FxHashMap<u32, u32> = core_ids
        .iter()
        .enumerate()
        .map(|(i, &c)| (c, i as u32))
        .collect();
    let mut uf = UnionFind::new(core_ids.len());

    // Edge union in globally sorted order (the inputs are sorted, so a
    // 2-way merge with dedup replays the resident sort-then-walk), with
    // redundant-full-edge reduction inline.
    let m1 = r1.read_u64()?;
    let m2 = r2.read_u64()?;
    let mut kept: Vec<(u32, u32)> = Vec::new();
    {
        let mut s1 = EdgeStream::new(&mut r1, m1);
        let mut s2 = EdgeStream::new(&mut r2, m2);
        let mut a = s1.next()?;
        let mut b = s2.next()?;
        while a.is_some() || b.is_some() {
            let e = match (a, b) {
                (Some(ea), Some(eb)) => {
                    if ea < eb {
                        a = s1.next()?;
                        ea
                    } else if eb < ea {
                        b = s2.next()?;
                        eb
                    } else {
                        a = s1.next()?;
                        b = s2.next()?;
                        ea
                    }
                }
                (Some(ea), None) => {
                    a = s1.next()?;
                    ea
                }
                (None, Some(eb)) => {
                    b = s2.next()?;
                    eb
                }
                (None, None) => break,
            };
            let (x, y) = e;
            if type_of(x) == CellType::Core && type_of(y) == CellType::Core {
                let (lo, hi) = if x <= y { (x, y) } else { (y, x) };
                if uf.union(dense[&lo], dense[&hi]) {
                    kept.push((lo, hi));
                }
            } else {
                kept.push(e);
            }
        }
    }
    // Direction normalisation can reorder; restore the canonical order
    // the next round's streams rely on.
    kept.sort_unstable();
    kept.dedup();

    let frontier_bytes = (types.len() * 5 + core_ids.len() * 17 + kept.len() * 8) as u64;

    drop(r1);
    drop(r2);
    let mut w = spill.writer()?;
    w.write_u64(types.len() as u64)?;
    // lint:allow(unordered-iter): `types` is the merge of two sorted streams — already in ascending cell order
    for &(c, t) in &types {
        w.write_u32(c)?;
        w.write_u8(encode_type(t))?;
    }
    w.write_u64(kept.len() as u64)?;
    for &(x, y) in &kept {
        w.write_u32(x)?;
        w.write_u32(y)?;
    }
    let handle = w.finish()?;
    spill.remove(h1)?;
    spill.remove(h2)?;
    Ok((handle, kept.len(), frontier_bytes))
}

/// Reads a whole spill graph back into memory (only ever done for the
/// final merged graph, whose size Figure 17's reduction keeps small).
fn read_spill_graph(spill: &SpillDir, handle: &SpillHandle) -> Result<CellSubgraph, StoreError> {
    let mut r = spill.open(handle)?;
    let n = r.read_u64()?;
    let mut types: FxHashMap<u32, CellType> = FxHashMap::default();
    for _ in 0..n {
        let c = r.read_u32()?;
        let t = decode_type(r.read_u8()?)?;
        types.insert(c, t);
    }
    let m = r.read_u64()?;
    let mut edges: FxHashSet<(u32, u32)> = FxHashSet::default();
    for _ in 0..m {
        let a = r.read_u32()?;
        let b = r.read_u32()?;
        edges.insert((a, b));
    }
    Ok(CellSubgraph::from_parts(types, edges))
}

/// Counted reader over a spill file's type section.
struct TypeStream<'a> {
    r: &'a mut SpillReader,
    left: u64,
}

impl<'a> TypeStream<'a> {
    fn new(r: &'a mut SpillReader, n: u64) -> Self {
        TypeStream { r, left: n }
    }

    fn next(&mut self) -> Result<Option<(u32, CellType)>, StoreError> {
        if self.left == 0 {
            return Ok(None);
        }
        self.left -= 1;
        let c = self.r.read_u32()?;
        let t = decode_type(self.r.read_u8()?)?;
        Ok(Some((c, t)))
    }
}

/// Counted reader over a spill file's edge section.
struct EdgeStream<'a> {
    r: &'a mut SpillReader,
    left: u64,
}

impl<'a> EdgeStream<'a> {
    fn new(r: &'a mut SpillReader, n: u64) -> Self {
        EdgeStream { r, left: n }
    }

    fn next(&mut self) -> Result<Option<(u32, u32)>, StoreError> {
        if self.left == 0 {
            return Ok(None);
        }
        self.left -= 1;
        let a = self.r.read_u32()?;
        let b = self.r.read_u32()?;
        Ok(Some((a, b)))
    }
}
