//! Scoped graph repair for incremental clustering.
//!
//! The batch pipeline (Phase II, [`crate::phase2`]) recomputes core status
//! and successor edges for *every* cell. The streaming subsystem
//! (`rpdbscan-stream`) only needs that computation for the cells an
//! insert/remove batch actually disturbed — a cell's core status and edges
//! depend solely on `(ε,ρ)`-region queries of its own points, so a cell
//! farther than ε from every changed cell (measured box-to-box, see
//! `GridSpec::cell_min_dist2`) is untouched. This module exposes the
//! per-cell repair step and the scoped border-point relabeling check so the
//! stream crate reuses exactly the batch semantics instead of duplicating
//! them.
//!
//! Everything here is keyed by [`CellCoord`] rather than dictionary index:
//! dictionary indices shift as cells appear and disappear across epochs,
//! while coordinates are stable for the lifetime of a cell.

use rpdbscan_geom::dist2;
use rpdbscan_grid::{
    CellCoord, CellQueryPlan, DictionaryIndex, GridSpec, QueryStats, RegionQueryResult,
    SubCellEntry, SubCellIdx,
};

/// Re-derived state of one cell after a mutation epoch: the output of
/// Algorithm 3's per-cell loop, expressed in stable cell coordinates.
#[derive(Debug, Clone, PartialEq)]
pub struct CellRepair {
    /// Whether the cell holds at least one core point.
    pub is_core: bool,
    /// Caller-supplied ids of the cell's core points (subset of the input
    /// `points`, in input order).
    pub core_points: Vec<u32>,
    /// Coordinates of every *other* cell holding an `(ε,ρ)`-neighbour
    /// sub-cell of some core point — the cell's successors in the cell
    /// graph. Sorted and deduplicated.
    pub neighbors: Vec<CellCoord>,
    /// `(ε,ρ)`-region density of each input point, in input order — the
    /// quantity compared against `minPts`. Streaming callers cache these
    /// so later epochs can apply per-cell deltas instead of re-querying.
    pub densities: Vec<u64>,
    /// Aggregated region-query instrumentation for the repair.
    pub stats: QueryStats,
}

/// Recomputes one cell's core status, core-point set, and successor edges
/// against the current dictionary — the unit of work of a streaming repair
/// stage.
///
/// `points` are opaque caller ids (the stream crate's point slots);
/// `point_of` resolves an id to its coordinates. The dictionary behind
/// `index` must already reflect the epoch's mutations.
pub fn recompute_cell<'a, F>(
    index: &DictionaryIndex,
    coord: &CellCoord,
    points: &[u32],
    point_of: F,
    min_pts: usize,
) -> CellRepair
where
    F: Fn(u32) -> &'a [f64],
{
    recompute_cell_planned(index, coord, points, point_of, min_pts, None)
}

/// [`recompute_cell`] with an optional per-cell query plan: when `plan` is
/// given (a [`CellQueryPlan`] built for `coord` against the same epoch's
/// `index`), every point query is answered through it instead of the plain
/// `region_query`. Results are identical; the plan just amortises the
/// candidate search over the cell's points.
pub fn recompute_cell_planned<'a, F>(
    index: &DictionaryIndex,
    coord: &CellCoord,
    points: &[u32],
    point_of: F,
    min_pts: usize,
    plan: Option<&CellQueryPlan>,
) -> CellRepair
where
    F: Fn(u32) -> &'a [f64],
{
    let dict = index.dict();
    let self_idx = dict.index_of(coord);
    let mut core_points = Vec::new();
    let mut densities = Vec::with_capacity(points.len());
    let mut neighbor_idx: Vec<u32> = Vec::new();
    let mut stats = QueryStats::default();
    let mut r = RegionQueryResult::default();
    let mut scratch = vec![0.0; index.spec().dim()];
    for &id in points {
        match plan {
            Some(plan) => plan.query_into(point_of(id), &mut r),
            None => index.region_query_cells_scratch(point_of(id), &mut r, &mut scratch),
        }
        stats.merge(&r.stats);
        densities.push(r.density);
        if r.density >= min_pts as u64 {
            core_points.push(id);
            for &nc in &r.neighbor_cells {
                if Some(nc) != self_idx {
                    neighbor_idx.push(nc);
                }
            }
        }
    }
    neighbor_idx.sort_unstable();
    neighbor_idx.dedup();
    let mut neighbors: Vec<CellCoord> = neighbor_idx
        .into_iter()
        .map(|i| dict.entry(i).coord.clone())
        .collect();
    neighbors.sort_unstable();
    CellRepair {
        is_core: !core_points.is_empty(),
        core_points,
        neighbors,
        densities,
        stats,
    }
}

/// The `(ε,ρ)`-density one cell contributes to a query point: the summed
/// counts of its sub-cells whose centres lie within ε of `q` — the
/// per-cell inner step of [`DictionaryIndex::region_query`], with the same
/// containment fast paths, extracted so streaming deltas reproduce the
/// full query's arithmetic exactly.
///
/// `scratch` must be a `dim`-sized buffer; it keeps the loop
/// allocation-free.
pub fn cell_contribution(
    spec: &GridSpec,
    q: &[f64],
    coord: &CellCoord,
    subs: &[SubCellEntry],
    scratch: &mut [f64],
) -> u64 {
    if subs.is_empty() {
        return 0;
    }
    let eps2 = spec.eps() * spec.eps();
    let (min_d2, max_d2) = spec.cell_dist2_bounds(coord, q);
    if min_d2 > eps2 {
        return 0;
    }
    if max_d2 <= eps2 {
        return subs.iter().map(|s| s.count as u64).sum();
    }
    let mut sum = 0;
    for s in subs {
        spec.sub_center_into(coord, s.idx, scratch);
        if dist2(q, scratch) <= eps2 {
            sum += s.count as u64;
        }
    }
    sum
}

/// The signed sub-cell population change of one cell across an epoch,
/// produced by [`sub_diff`]. A micro-batch touches a handful of sub-cells
/// even in dense cells, so `entries` stays tiny where the full sub list can
/// run to hundreds — which is what makes per-point density deltas cheap.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SubDiff {
    /// `Σ (new − old)` over all sub-cells: the cell's total count change.
    pub total: i64,
    /// `(sub-cell index, new − old count)` for every sub-cell whose count
    /// changed, sorted by index.
    pub entries: Vec<(SubCellIdx, i64)>,
    /// Sub-cells that went from unoccupied to occupied. A count increase
    /// of an already-occupied sub-cell cannot create a cell-graph edge
    /// (qualification is geometric), so these are the only sub-cells that
    /// can.
    pub added: Vec<SubCellIdx>,
    /// Sub-cells that went from occupied to unoccupied — the only
    /// sub-cells whose loss can break an existing edge.
    pub removed: Vec<SubCellIdx>,
}

/// Sorted-merge diff of a cell's sub lists before and after an epoch. Both
/// inputs must be sorted by sub-cell index (the dictionary invariant).
pub fn sub_diff(old: &[SubCellEntry], new: &[SubCellEntry]) -> SubDiff {
    let mut diff = SubDiff::default();
    let (mut i, mut j) = (0, 0);
    while i < old.len() || j < new.len() {
        let (idx, d) = match (old.get(i), new.get(j)) {
            (Some(a), Some(b)) if a.idx == b.idx => {
                let d = b.count as i64 - a.count as i64;
                i += 1;
                j += 1;
                (a.idx, d)
            }
            (Some(a), Some(b)) if a.idx < b.idx => {
                i += 1;
                diff.removed.push(a.idx);
                (a.idx, -(a.count as i64))
            }
            (Some(_) | None, Some(b)) => {
                j += 1;
                diff.added.push(b.idx);
                (b.idx, b.count as i64)
            }
            (Some(a), None) => {
                i += 1;
                diff.removed.push(a.idx);
                (a.idx, -(a.count as i64))
            }
            // Dead under the loop condition (one side is always Some);
            // ending the merge beats panicking if that ever changes.
            (None, None) => break,
        };
        if d != 0 {
            diff.total += d;
            diff.entries.push((idx, d));
        }
    }
    diff
}

/// The change in [`cell_contribution`] implied by a sub-cell diff:
/// exactly `cell_contribution(new) − cell_contribution(old)`, branch for
/// branch. Both calls see the same `(min_d2, max_d2)` bounds for a given
/// `(coord, q)`, so the fast paths short-circuit identically, and in the
/// partially-contained case unchanged sub-cells cancel term by term —
/// only the (few) diff entries need a centre test.
pub fn contribution_delta(
    spec: &GridSpec,
    q: &[f64],
    coord: &CellCoord,
    diff: &SubDiff,
    scratch: &mut [f64],
) -> i64 {
    if diff.entries.is_empty() {
        return 0;
    }
    let eps2 = spec.eps() * spec.eps();
    let (min_d2, max_d2) = spec.cell_dist2_bounds(coord, q);
    if min_d2 > eps2 {
        return 0;
    }
    if max_d2 <= eps2 {
        return diff.total;
    }
    let mut sum = 0;
    for &(idx, d) in &diff.entries {
        spec.sub_center_into(coord, idx, scratch);
        if dist2(q, scratch) <= eps2 {
            sum += d;
        }
    }
    sum
}

/// The exact-ε border check of Algorithm 4 (Lines 18–23), scoped to one
/// point: scans predecessor core cells in the given order and returns the
/// index of the first one holding a core point within ε of `q`, or `None`
/// if the point is an outlier.
///
/// Callers pass `preds` sorted by cell coordinate so the winner matches the
/// batch pipeline's deterministic tie-break in
/// [`crate::label::label_partition`].
pub fn assign_border_point<'a, F>(
    q: &[f64],
    preds: &[(&CellCoord, &[u32])],
    point_of: F,
    eps: f64,
) -> Option<usize>
where
    F: Fn(u32) -> &'a [f64],
{
    let eps2 = eps * eps;
    for (i, (_, cores)) in preds.iter().enumerate() {
        if cores.iter().any(|&p| dist2(point_of(p), q) <= eps2) {
            return Some(i);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpdbscan_grid::{CellDictionary, GridSpec};

    fn world() -> (GridSpec, Vec<Vec<f64>>) {
        let spec = GridSpec::new(2, 0.5, 0.01).unwrap();
        let rows: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64 * 0.1, 0.0]).collect();
        (spec, rows)
    }

    #[test]
    fn recompute_matches_phase2_on_static_data() {
        use crate::partition::group_by_cell;
        use crate::phase2::{build_local_clustering, QueryRouting};
        let (spec, rows) = world();
        let data = rpdbscan_geom::Dataset::from_rows(2, &rows).unwrap();
        let dict = CellDictionary::build_from_points(spec.clone(), data.iter().map(|(_, p)| p));
        let index = DictionaryIndex::single(dict);
        let cells = group_by_cell(&spec, &data);
        let part = crate::partition::Partition {
            id: 0,
            cells: cells.clone(),
        };
        let local =
            build_local_clustering(&part, &data, &index, 4, QueryRouting::auto(&index)).unwrap();
        for cell in &cells {
            let ids: Vec<u32> = cell.points.iter().map(|p| p.0).collect();
            let rep = recompute_cell(
                &index,
                &cell.coord,
                &ids,
                |id| data.point(rpdbscan_geom::PointId(id)),
                4,
            );
            let idx = index.dict().index_of(&cell.coord).unwrap();
            let batch_core = local
                .core_points
                .get(&idx)
                .map(|v| v.iter().map(|p| p.0).collect::<Vec<_>>())
                .unwrap_or_default();
            assert_eq!(rep.core_points, batch_core, "cell {}", cell.coord);
            assert_eq!(
                rep.is_core,
                local.subgraph.cell_type(idx) == crate::graph::CellType::Core
            );
            // Edges out of this cell in the batch graph equal the repair's
            // neighbor set, translated to coordinates.
            let mut batch_nbrs: Vec<CellCoord> = local
                .subgraph
                .edges()
                .iter()
                .filter(|&&(a, _)| a == idx)
                .map(|&(_, b)| index.dict().entry(b).coord.clone())
                .collect();
            batch_nbrs.sort_unstable();
            assert_eq!(rep.neighbors, batch_nbrs, "cell {}", cell.coord);
        }
    }

    #[test]
    fn planned_recompute_matches_oracle_recompute() {
        let (spec, rows) = world();
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let dict = CellDictionary::build_from_points(spec.clone(), refs);
        let index = DictionaryIndex::single(dict);
        let point_of = |id: u32| rows[id as usize].as_slice();
        let mut by_cell: Vec<(CellCoord, Vec<u32>)> = Vec::new();
        for (i, p) in rows.iter().enumerate() {
            let c = spec.cell_of(p);
            match by_cell.iter_mut().find(|(cc, _)| *cc == c) {
                Some((_, v)) => v.push(i as u32),
                None => by_cell.push((c, vec![i as u32])),
            }
        }
        for (coord, ids) in &by_cell {
            let idx = index.dict().index_of(coord).unwrap();
            let plan = CellQueryPlan::build(&index, idx);
            let planned = recompute_cell_planned(&index, coord, ids, point_of, 4, Some(&plan));
            let oracle = recompute_cell(&index, coord, ids, point_of, 4);
            assert_eq!(planned.is_core, oracle.is_core);
            assert_eq!(planned.core_points, oracle.core_points);
            assert_eq!(planned.neighbors, oracle.neighbors);
            assert_eq!(planned.densities, oracle.densities);
        }
    }

    #[test]
    fn empty_cell_repairs_to_noncore() {
        let (spec, rows) = world();
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let dict = CellDictionary::build_from_points(spec, refs);
        let index = DictionaryIndex::single(dict);
        let rep = recompute_cell(
            &index,
            &CellCoord::new([100, 100]),
            &[],
            |_| unreachable!("no points"),
            4,
        );
        assert!(!rep.is_core);
        assert!(rep.core_points.is_empty());
        assert!(rep.neighbors.is_empty());
    }

    #[test]
    fn contributions_sum_to_region_query_density() {
        let (spec, rows) = world();
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let dict = CellDictionary::build_from_points(spec.clone(), refs);
        let index = DictionaryIndex::single(dict.clone());
        let mut scratch = vec![0.0; 2];
        for q in &rows {
            let full = index.region_query_cells(q);
            let total: u64 = dict
                .cells()
                .iter()
                .map(|e| cell_contribution(&spec, q, &e.coord, &e.subs, &mut scratch))
                .sum();
            assert_eq!(total, full.density, "q = {q:?}");
        }
    }

    #[test]
    fn contribution_delta_matches_full_difference() {
        let (spec, rows) = world();
        let old_refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let old_dict = CellDictionary::build_from_points(spec.clone(), old_refs);
        // New population: drop the first three points, add a few others —
        // cells appear, disappear, and shift counts.
        let added = [vec![0.05, 0.0], vec![2.0, 0.0], vec![0.9, 0.02]];
        let new_rows: Vec<&[f64]> = rows[3..]
            .iter()
            .chain(added.iter())
            .map(|r| r.as_slice())
            .collect();
        let new_dict = CellDictionary::build_from_points(spec.clone(), new_rows);
        let no_subs: &[SubCellEntry] = &[];
        let mut coords: Vec<CellCoord> = old_dict
            .cells()
            .iter()
            .chain(new_dict.cells())
            .map(|e| e.coord.clone())
            .collect();
        coords.sort_unstable();
        coords.dedup();
        let mut scratch = vec![0.0; 2];
        for c in &coords {
            let old = old_dict.get(c).map_or(no_subs, |e| e.subs.as_slice());
            let new = new_dict.get(c).map_or(no_subs, |e| e.subs.as_slice());
            let diff = sub_diff(old, new);
            // added/removed are exactly the occupancy flips.
            let occupancy =
                |subs: &[SubCellEntry], idx| subs.iter().any(|s| s.idx == idx && s.count > 0);
            for &(idx, _) in &diff.entries {
                assert_eq!(
                    diff.added.contains(&idx),
                    !occupancy(old, idx) && occupancy(new, idx)
                );
                assert_eq!(
                    diff.removed.contains(&idx),
                    occupancy(old, idx) && !occupancy(new, idx)
                );
            }
            for q in rows.iter().chain(added.iter()) {
                let want = cell_contribution(&spec, q, c, new, &mut scratch) as i64
                    - cell_contribution(&spec, q, c, old, &mut scratch) as i64;
                let got = contribution_delta(&spec, q, c, &diff, &mut scratch);
                assert_eq!(got, want, "cell {c}, q = {q:?}");
            }
        }
        // Identical lists diff to nothing.
        let e = &old_dict.cells()[0];
        assert_eq!(sub_diff(&e.subs, &e.subs), SubDiff::default());
    }

    #[test]
    fn border_assignment_first_qualifying_wins() {
        let a = CellCoord::new([0, 0]);
        let b = CellCoord::new([1, 0]);
        let pts = [vec![0.0, 0.0], vec![0.5, 0.0], vec![10.0, 0.0]];
        let point_of = |id: u32| pts[id as usize].as_slice();
        let a_cores: &[u32] = &[0];
        let b_cores: &[u32] = &[1, 2];
        let preds: Vec<(&CellCoord, &[u32])> = vec![(&a, a_cores), (&b, b_cores)];
        // q within eps of cores of both cells: the first listed cell wins.
        assert_eq!(
            assign_border_point(&[0.3, 0.0], &preds, point_of, 0.6),
            Some(0)
        );
        // q within eps of only the second cell's cores.
        assert_eq!(
            assign_border_point(&[0.8, 0.0], &preds, point_of, 0.4),
            Some(1)
        );
        // q near nothing.
        assert_eq!(
            assign_border_point(&[5.0, 5.0], &preds, point_of, 0.5),
            None
        );
    }
}
