//! Incremental micro-batch clustering over the RP-DBSCAN batch pipeline.
//!
//! The paper's pipeline is strictly batch: every run rebuilds the cell
//! dictionary, the cell graph, and all labels. Its data structures are
//! nonetheless naturally incremental — an inserted or deleted point
//! perturbs exactly one cell's densities (Definitions 3.1, 4.1–4.2), and a
//! cell's core status and successor edges depend only on `(ε,ρ)`-region
//! queries of its own points, so nothing farther than ε from a changed
//! cell (box-to-box, `GridSpec::cell_min_dist2`) can be affected.
//!
//! [`StreamingRpDbscan`] exploits that locality: it keeps a long-lived
//! mutable dictionary, per-cell graph state, and point labels, accepts
//! [`StreamingRpDbscan::insert_batch`] / [`StreamingRpDbscan::remove_batch`]
//! micro-batches, and repairs only the *dirty region* of each batch —
//! the changed cells plus every occupied cell within ε of one. Connected
//! components and the labels of affected border points are then re-resolved,
//! and [`StreamingRpDbscan::snapshot`] exposes a consistent epoch view.
//!
//! Each micro-batch executes as engine stages named
//! `epoch-{n}:{ingest,repair,relabel}` (see
//! `rpdbscan_engine::epoch_stage_name`), so streaming inherits Stage API
//! v2's retry/cancellation, pluggable schedulers, per-task metrics, and
//! Chrome-trace lanes for free.
//!
//! The headline invariant, enforced by this crate's property tests: after
//! *any* interleaving of insert and delete batches, the clustering equals
//! `RpDbscan::run_local` on the surviving points (Rand index 1.0) with the
//! same parameters.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rpdbscan_core::repair::{
    assign_border_point, cell_contribution, contribution_delta, recompute_cell_planned, sub_diff,
    CellRepair, SubDiff,
};
use rpdbscan_core::RpDbscanParams;
use rpdbscan_engine::{epoch_stage_name, CostModel, Engine, EngineReport, StageError};
use rpdbscan_geom::{dist2, Dataset};
use rpdbscan_grid::{
    CellCoord, CellDictionary, DecodeError, DictionaryIndex, FxHashMap, FxHashSet, GridError,
    GridSpec, PlanCache, PlannerCostModel, QueryRoute, QueryStats, RegionQueryResult, SubCellEntry,
};
use rpdbscan_metrics::Clustering;

mod window;
pub use window::SlidingWindow;

/// Stable identifier of a point in the stream: assigned by
/// [`StreamingRpDbscan::insert_batch`], consumed by
/// [`StreamingRpDbscan::remove_batch`]. Slots of removed points are
/// recycled for later insertions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StreamPointId(pub u32);

/// Errors from the streaming layer.
#[derive(Debug, Clone, PartialEq)]
pub enum StreamError {
    /// Grid construction rejected the `(d, ε, ρ)` combination.
    Grid(GridError),
    /// `minPts` must be at least 1.
    InvalidMinPts(usize),
    /// A batch's flat coordinate buffer is not a multiple of the
    /// dimensionality, or a row has the wrong width.
    DimensionMismatch {
        /// Configured dimensionality.
        expected: usize,
        /// Offending length.
        got: usize,
    },
    /// A batch coordinate is NaN or infinite.
    NonFinite {
        /// Index of the offending point within the batch.
        index: usize,
    },
    /// A removal referenced an id that is not live (never issued, already
    /// removed, or repeated within the batch).
    UnknownPoint(u32),
    /// The streaming epoch path repairs dirty regions with the exact
    /// `(ε,ρ)`-region query; an approximate density backend selection
    /// (`knn` / `sampled`) has no incremental repair story yet and is
    /// rejected at construction. The payload is the rejected backend's
    /// tag.
    UnsupportedBackend(&'static str),
    /// An engine stage failed (a task panicked and exhausted its
    /// retries). The ingest stage runs before any state mutation, so an
    /// ingest failure leaves the stream untouched.
    Stage(StageError),
    /// A serialized cell dictionary failed to decode (truncated buffer,
    /// bad magic, corrupt header, or inconsistent densities).
    Dictionary(DecodeError),
    /// A decoded cell dictionary was built over a different grid than
    /// this stream's `(d, ε, ρ)` configuration.
    DictionaryMismatch {
        /// This stream's `(dim, eps, rho)`.
        expected: (usize, f64, f64),
        /// The decoded dictionary's `(dim, eps, rho)`.
        got: (usize, f64, f64),
    },
    /// A sliding window must admit at least one point.
    InvalidWindow,
}

impl std::fmt::Display for StreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamError::Grid(e) => write!(f, "grid error: {e}"),
            StreamError::InvalidMinPts(m) => write!(f, "minPts must be >= 1, got {m}"),
            StreamError::DimensionMismatch { expected, got } => {
                write!(
                    f,
                    "dimension mismatch: expected multiple of {expected}, got {got}"
                )
            }
            StreamError::NonFinite { index } => {
                write!(f, "batch point {index} has a non-finite coordinate")
            }
            StreamError::UnknownPoint(id) => write!(f, "point id {id} is not live"),
            StreamError::UnsupportedBackend(b) => write!(
                f,
                "streaming only supports the exact density backend; \
                 `{b}` has no incremental repair path"
            ),
            StreamError::Stage(e) => write!(f, "{e}"),
            StreamError::Dictionary(e) => write!(f, "corrupt dictionary: {e}"),
            StreamError::DictionaryMismatch { expected, got } => write!(
                f,
                "dictionary grid mismatch: stream is (dim={}, eps={}, rho={}), \
                 dictionary is (dim={}, eps={}, rho={})",
                expected.0, expected.1, expected.2, got.0, got.1, got.2
            ),
            StreamError::InvalidWindow => {
                write!(f, "sliding window must admit at least one point")
            }
        }
    }
}

impl std::error::Error for StreamError {}

impl From<GridError> for StreamError {
    fn from(e: GridError) -> Self {
        StreamError::Grid(e)
    }
}

impl From<StageError> for StreamError {
    fn from(e: StageError) -> Self {
        StreamError::Stage(e)
    }
}

impl From<DecodeError> for StreamError {
    fn from(e: DecodeError) -> Self {
        StreamError::Dictionary(e)
    }
}

/// Counters describing the streaming state and the most recent epoch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamStats {
    /// Density backend the epoch repair path runs on — always `exact`
    /// today (approximate backends are rejected at construction), but
    /// carried so routing counters stay attributable per backend in
    /// mixed reports.
    pub backend: &'static str,
    /// Number of live points.
    pub live_points: usize,
    /// Number of occupied cells.
    pub num_cells: usize,
    /// Number of clusters at the latest epoch.
    pub num_clusters: usize,
    /// Cells whose densities the latest batch changed.
    pub last_changed_cells: usize,
    /// Cells repaired in the latest epoch (changed cells plus their
    /// ε-neighbourhood).
    pub last_dirty_cells: usize,
    /// Non-core cells whose border points were re-labeled in the latest
    /// epoch.
    pub last_relabeled_cells: usize,
    /// Total cells repaired across all epochs.
    pub total_repaired_cells: u64,
    /// Total points ever inserted.
    pub total_inserted: u64,
    /// Total points ever removed.
    pub total_removed: u64,
    /// Query plans built across all epochs (changed cells the cost model
    /// routed through the Phase II planner).
    pub plans_built: u64,
    /// Plan-cache hits across all epochs (a cell planned more than once
    /// within the same epoch).
    pub plan_hits: u64,
    /// Plans dropped because their cell was dirtied by a later epoch
    /// (dictionary indices are epoch-scoped, so a dirtied cell's plan must
    /// be rebuilt before reuse).
    pub plans_invalidated: u64,
    /// Changed cells the cost model routed through the planner, across
    /// all epochs (occupancy at or above the break-even threshold).
    pub cells_routed_planned: u64,
    /// Changed cells the cost model routed through the per-point kd
    /// path, across all epochs.
    pub cells_routed_kd: u64,
    /// The cost model's break-even occupancy (recalibrated each repair
    /// epoch against the compacted dictionary; structural, so it only
    /// changes if the dimensionality model does).
    pub route_min_occupancy: u32,
}

impl Default for StreamStats {
    fn default() -> Self {
        StreamStats {
            backend: "exact",
            live_points: 0,
            num_cells: 0,
            num_clusters: 0,
            last_changed_cells: 0,
            last_dirty_cells: 0,
            last_relabeled_cells: 0,
            total_repaired_cells: 0,
            total_inserted: 0,
            total_removed: 0,
            plans_built: 0,
            plan_hits: 0,
            plans_invalidated: 0,
            cells_routed_planned: 0,
            cells_routed_kd: 0,
            route_min_occupancy: 0,
        }
    }
}

/// A consistent view of the clustering at one epoch.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// The epoch this snapshot reflects (one epoch per applied batch).
    pub epoch: u64,
    /// Live point ids, ascending; row `i` of `labels` is the label of
    /// `ids[i]`. Matches the row order of [`StreamingRpDbscan::dataset`].
    pub ids: Vec<StreamPointId>,
    /// Cluster labels (`None` = noise), one per live point.
    pub labels: Clustering,
    /// Counters at this epoch.
    pub stats: StreamStats,
    /// Cells whose serve-visible state the snapshot's epoch changed,
    /// sorted by coordinate — see [`Snapshot::dirty_cells`].
    pub dirty: Vec<CellCoord>,
}

impl Snapshot {
    /// The snapshot's version: the epoch it reflects. Two snapshots taken
    /// without an intervening batch share one version, so a hot-swap
    /// publisher can compare versions and skip republishing an unchanged
    /// epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The cells whose exported state ([`StreamingRpDbscan::export_cell`])
    /// this epoch changed, sorted by coordinate — including cells the
    /// batch emptied entirely. An incremental index publisher rebuilds
    /// only these; for deltas spanning more than one epoch use
    /// [`StreamingRpDbscan::dirty_cells_since`]. Cluster-id *renumbering*
    /// is deliberately out of scope (ids are reassigned globally every
    /// epoch), so a delta consumer additionally compares its stored ids
    /// against [`StreamingRpDbscan::cell_cluster`].
    pub fn dirty_cells(&self) -> &[CellCoord] {
        &self.dirty
    }
}

/// Read-only per-cell state exported for downstream index builders (the
/// serving layer's [`Snapshot`]→index handoff): everything an external
/// reader needs to reproduce Phase III's label resolution for this
/// epoch, keyed by stable cell coordinates.
#[derive(Debug, Clone)]
pub struct CellExport {
    /// The cell's coordinate.
    pub coord: CellCoord,
    /// Cluster id when the cell is core, `None` for non-core cells.
    pub cluster: Option<u32>,
    /// For non-core cells: the predecessor core cells of the cell graph's
    /// partial edges, sorted by coordinate (the deterministic border
    /// tie-break order). Empty for core cells.
    pub preds: Vec<CellCoord>,
    /// Flat coordinates of the cell's core points (`dim` values per
    /// point) — the operands of the exact ε border checks.
    pub core_coords: Vec<f64>,
}

/// Per-cell incremental state: the streaming equivalent of one vertex of
/// the batch pipeline's cell graph, keyed by coordinate rather than
/// dictionary index (indices shift across epochs; coordinates do not).
#[derive(Debug, Clone, Default)]
struct CellState {
    /// Live point slots in this cell (insertion order).
    points: Vec<u32>,
    /// Subset of `points` that are core points.
    core_points: Vec<u32>,
    /// Whether the cell holds at least one core point.
    is_core: bool,
    /// Successor cells of this (core) cell, sorted by coordinate.
    neighbors: Vec<CellCoord>,
}

/// Output of one cell's repair: the full re-derived state, or — for
/// unchanged cells whose core set and edges both held — just the
/// refreshed density caches, which the apply step can absorb without
/// touching the graph or the relabel set.
enum Repair {
    Full(CellRepair),
    DensityOnly(Vec<u64>),
}

/// Long-lived incremental RP-DBSCAN state; see the crate docs.
///
/// ```
/// use rpdbscan_core::RpDbscanParams;
/// use rpdbscan_stream::StreamingRpDbscan;
///
/// let params = RpDbscanParams::new(1.0, 4);
/// let mut s = StreamingRpDbscan::new(2, params).unwrap();
/// // A tight 2×5 grid of points: one cluster.
/// let mut batch = Vec::new();
/// for i in 0..5 {
///     batch.extend([i as f64 * 0.3, 0.0]);
///     batch.extend([i as f64 * 0.3, 0.3]);
/// }
/// let ids = s.insert_batch(&batch).unwrap();
/// assert_eq!(ids.len(), 10);
/// let snap = s.snapshot();
/// assert_eq!(snap.epoch, 1);
/// assert_eq!(snap.labels.num_clusters(), 1);
/// // Removing one half leaves the other clustered.
/// s.remove_batch(&ids[..5]).unwrap();
/// assert_eq!(s.snapshot().labels.len(), 5);
/// ```
#[derive(Debug)]
pub struct StreamingRpDbscan {
    params: RpDbscanParams,
    spec: GridSpec,
    engine: Engine,
    dim: usize,
    /// Slot-major flat coordinates; slot `s` occupies
    /// `coords[s*dim .. (s+1)*dim]`. Slots of removed points are recycled.
    coords: Vec<f64>,
    live: Vec<bool>,
    /// Cached `(ε,ρ)`-region density per live slot, kept current by the
    /// repair stage: full region queries for changed cells, per-cell
    /// deltas for cells that merely sit within ε of one.
    density: Vec<u64>,
    free: Vec<u32>,
    n_live: usize,
    /// Incrementally maintained two-level cell dictionary — always equal
    /// to a fresh build over the live points.
    dict: CellDictionary,
    cells: FxHashMap<CellCoord, CellState>,
    /// Reverse adjacency for border labeling: non-core cell → its core
    /// predecessor cells, sorted by coordinate (the batch pipeline's
    /// deterministic tie-break order). Maintained incrementally from
    /// repair diffs.
    preds: FxHashMap<CellCoord, Vec<CellCoord>>,
    /// Cluster id per core cell, rebuilt each epoch from the cached edges.
    cluster_of_cell: FxHashMap<CellCoord, u32>,
    num_clusters: usize,
    /// Winning predecessor core cell per labeled border point slot.
    /// Stored as a coordinate so cluster renumbering between epochs never
    /// invalidates it; resolved to a cluster id at snapshot time.
    border_label: FxHashMap<u32, CellCoord>,
    /// Memoized per-cell query plans for the repair stage. Plans embed
    /// epoch-scoped dictionary indices, so the cache is flushed (and dirty
    /// cells' plans counted as invalidated) at the start of every epoch.
    plan_cache: PlanCache,
    /// Last epoch each cell's *serve-visible* record changed: its point
    /// membership, core set, successor edges, or predecessor list.
    /// Coordinates of removed cells keep their removal epoch, so a delta
    /// consumer that last synced at epoch `e` recovers every difference
    /// from [`Self::dirty_cells_since`]. Density-only repairs are absent
    /// on purpose — cached per-point densities are never exported.
    touched_epoch: FxHashMap<CellCoord, u64>,
    /// Per-epoch stamp lists for the most recent epochs (front = oldest
    /// kept, back = current) — a materialised fast path for
    /// head-chasing `dirty_cells_since` queries (an incremental publish
    /// a few epochs behind), which would otherwise scan the whole
    /// `touched_epoch` map on every publish.
    recent_dirty: std::collections::VecDeque<(u64, Vec<CellCoord>)>,
    /// Per-epoch removed point slots, same retention as `recent_dirty`:
    /// the delta a label consumer needs to drop rows without rescanning.
    recent_removed: std::collections::VecDeque<(u64, Vec<u32>)>,
    /// Per-epoch slots whose `border_label` entry effectively changed
    /// (inserted, rehomed, or cleared), same retention as `recent_dirty`.
    /// Together with the dirty-cell and removed deltas this closes the
    /// label-delta story: a border point's label can move even when its
    /// own cell's exported record does not.
    recent_label_moves: std::collections::VecDeque<(u64, Vec<u32>)>,
    /// Slots removed by the batch being applied, staged for
    /// `recent_removed` when the repair epoch materialises its deltas.
    pending_removed: Vec<u32>,
    epoch: u64,
    stats: StreamStats,
}

impl StreamingRpDbscan {
    /// Creates an empty streaming state for `dim`-dimensional points with
    /// a machine-sized engine (free cost model), mirroring
    /// `RpDbscan::run_local`.
    pub fn new(dim: usize, params: RpDbscanParams) -> Result<Self, StreamError> {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        Self::with_engine(
            dim,
            params,
            Engine::with_cost_model(workers, CostModel::free()),
        )
    }

    /// Creates an empty streaming state running its stages on `engine`.
    pub fn with_engine(
        dim: usize,
        params: RpDbscanParams,
        engine: Engine,
    ) -> Result<Self, StreamError> {
        if params.min_pts < 1 {
            return Err(StreamError::InvalidMinPts(params.min_pts));
        }
        if !params.density_backend.is_exact() {
            return Err(StreamError::UnsupportedBackend(
                params.density_backend.name(),
            ));
        }
        let spec = GridSpec::new(dim, params.eps, params.rho)?;
        let dict = CellDictionary::build_from_points(spec.clone(), std::iter::empty());
        Ok(Self {
            params,
            spec,
            engine,
            dim,
            coords: Vec::new(),
            live: Vec::new(),
            density: Vec::new(),
            free: Vec::new(),
            n_live: 0,
            dict,
            cells: FxHashMap::default(),
            preds: FxHashMap::default(),
            cluster_of_cell: FxHashMap::default(),
            num_clusters: 0,
            border_label: FxHashMap::default(),
            plan_cache: PlanCache::new(),
            touched_epoch: FxHashMap::default(),
            recent_dirty: std::collections::VecDeque::new(),
            recent_removed: std::collections::VecDeque::new(),
            recent_label_moves: std::collections::VecDeque::new(),
            pending_removed: Vec::new(),
            epoch: 0,
            stats: StreamStats::default(),
        })
    }

    /// The configured parameters.
    pub fn params(&self) -> &RpDbscanParams {
        &self.params
    }

    /// The grid the stream clusters over.
    pub fn spec(&self) -> &GridSpec {
        &self.spec
    }

    /// Serializes the current cell dictionary in the broadcast wire
    /// format (`CellDictionary::encode`), e.g. to persist alongside the
    /// labels for a later compatibility check.
    pub fn encode_dictionary(&self) -> Vec<u8> {
        self.dict.encode()
    }

    /// Decodes `bytes` as a broadcast cell dictionary and checks it was
    /// built over this stream's exact grid.
    ///
    /// Corrupt input surfaces as [`StreamError::Dictionary`] (truncated
    /// buffer, bad magic, corrupt header, inconsistent densities); a
    /// well-formed dictionary for a different `(d, ε, ρ)` surfaces as
    /// [`StreamError::DictionaryMismatch`]. On success the decoded
    /// dictionary is returned for inspection.
    pub fn check_dictionary(&self, bytes: &[u8]) -> Result<CellDictionary, StreamError> {
        let dict = CellDictionary::decode(bytes)?;
        let (ours, theirs) = (&self.spec, dict.spec());
        // Bitwise float equality on purpose: the wire format round-trips
        // eps/rho exactly, so any difference means a different grid.
        let same = ours.dim() == theirs.dim()
            && ours.eps().to_bits() == theirs.eps().to_bits()
            && ours.rho().to_bits() == theirs.rho().to_bits();
        if !same {
            return Err(StreamError::DictionaryMismatch {
                expected: (ours.dim(), ours.eps(), ours.rho()),
                got: (theirs.dim(), theirs.eps(), theirs.rho()),
            });
        }
        Ok(dict)
    }

    /// Number of live points.
    pub fn len(&self) -> usize {
        self.n_live
    }

    /// Whether the stream holds no live points.
    pub fn is_empty(&self) -> bool {
        self.n_live == 0
    }

    /// The current epoch (number of applied batches).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The engine running the streaming stages.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// The engine's accumulated report — streaming epochs appear as
    /// `epoch-{n}:{step}` stages (metrics, trace lanes).
    pub fn report(&self) -> EngineReport {
        self.engine.report()
    }

    /// Inserts a micro-batch given as a flat coordinate buffer
    /// (`dim` values per point) and advances one epoch. Returns the
    /// assigned id of each inserted point, in batch order.
    pub fn insert_batch(&mut self, flat: &[f64]) -> Result<Vec<StreamPointId>, StreamError> {
        if !flat.len().is_multiple_of(self.dim) {
            return Err(StreamError::DimensionMismatch {
                expected: self.dim,
                got: flat.len(),
            });
        }
        if let Some(bad) = flat.iter().position(|v| !v.is_finite()) {
            return Err(StreamError::NonFinite {
                index: bad / self.dim,
            });
        }
        let n = flat.len() / self.dim;
        self.epoch += 1;

        // Stage 1 — ingest: grid-locate the batch in parallel.
        let coords_of = self.run_ingest(flat)?;

        // Apply serially: allocate slots, update the point store, the
        // per-cell membership lists, and the dictionary densities.
        let mut ids = Vec::with_capacity(n);
        for (i, coord) in coords_of.iter().enumerate() {
            let p = &flat[i * self.dim..(i + 1) * self.dim];
            let slot = match self.free.pop() {
                Some(s) => {
                    self.coords[s as usize * self.dim..(s as usize + 1) * self.dim]
                        .copy_from_slice(p);
                    self.live[s as usize] = true;
                    s
                }
                None => {
                    let s = self.live.len() as u32;
                    self.coords.extend_from_slice(p);
                    self.live.push(true);
                    self.density.push(0);
                    s
                }
            };
            self.cells
                .entry(coord.clone())
                .or_default()
                .points
                .push(slot);
            ids.push(StreamPointId(slot));
        }
        self.n_live += n;
        self.stats.total_inserted += n as u64;
        let old_subs = self.capture_subs(coords_of.iter());
        let changed = self
            .dict
            .insert_points((0..n).map(|i| &flat[i * self.dim..(i + 1) * self.dim]));
        let new_slots: FxHashSet<u32> = ids.iter().map(|&StreamPointId(s)| s).collect();

        self.run_repair_epoch(changed, old_subs, new_slots)?;
        Ok(ids)
    }

    /// Snapshots the sub-cell entries of the given cells *before* a
    /// dictionary mutation, so the repair stage can compute each
    /// neighbour's density delta (new minus old contribution).
    fn capture_subs<'a>(
        &self,
        coords: impl Iterator<Item = &'a CellCoord>,
    ) -> FxHashMap<CellCoord, Vec<SubCellEntry>> {
        let mut old_subs: FxHashMap<CellCoord, Vec<SubCellEntry>> = FxHashMap::default();
        for c in coords {
            if !old_subs.contains_key(c) {
                let subs = self.dict.get(c).map(|e| e.subs.clone()).unwrap_or_default();
                old_subs.insert(c.clone(), subs);
            }
        }
        old_subs
    }

    /// Inserts a micro-batch of row vectors (convenience wrapper over
    /// [`Self::insert_batch`]).
    pub fn insert_rows(&mut self, rows: &[Vec<f64>]) -> Result<Vec<StreamPointId>, StreamError> {
        let mut flat = Vec::with_capacity(rows.len() * self.dim);
        for r in rows {
            if r.len() != self.dim {
                return Err(StreamError::DimensionMismatch {
                    expected: self.dim,
                    got: r.len(),
                });
            }
            flat.extend_from_slice(r);
        }
        self.insert_batch(&flat)
    }

    /// Removes a micro-batch of previously inserted points and advances
    /// one epoch. Ids must be live and distinct; on error nothing is
    /// applied.
    pub fn remove_batch(&mut self, ids: &[StreamPointId]) -> Result<(), StreamError> {
        // Validate before mutating anything.
        let mut seen: FxHashSet<u32> = FxHashSet::default();
        for &StreamPointId(s) in ids {
            if (s as usize) >= self.live.len() || !self.live[s as usize] || !seen.insert(s) {
                return Err(StreamError::UnknownPoint(s));
            }
        }
        self.epoch += 1;

        // Stage 1 — ingest: grid-locate the doomed points in parallel.
        let flat: Vec<f64> = ids
            .iter()
            .flat_map(|&StreamPointId(s)| {
                self.coords[s as usize * self.dim..(s as usize + 1) * self.dim]
                    .iter()
                    .copied()
            })
            .collect();
        let coords_of = self.run_ingest(&flat)?;

        // Apply serially.
        let old_subs = self.capture_subs(coords_of.iter());
        let changed = self
            .dict
            .remove_points((0..ids.len()).map(|i| &flat[i * self.dim..(i + 1) * self.dim]));
        for (&StreamPointId(s), coord) in ids.iter().zip(coords_of.iter()) {
            let state = self
                .cells
                .get_mut(coord)
                .expect("live point's cell missing from state"); // lint:allow(panic-safety): ids were validated live above, and every live point's cell has a CellState by the insert-path invariant
            state.points.retain(|&p| p != s);
            self.live[s as usize] = false;
            self.free.push(s);
            self.border_label.remove(&s);
            self.pending_removed.push(s);
        }
        self.n_live -= ids.len();
        self.stats.total_removed += ids.len() as u64;

        self.run_repair_epoch(changed, old_subs, FxHashSet::default())
    }

    /// A consistent labeled view of the live points at the current epoch.
    pub fn snapshot(&self) -> Snapshot {
        let mut ids = Vec::with_capacity(self.n_live);
        let mut labels = Vec::with_capacity(self.n_live);
        for (s, &alive) in self.live.iter().enumerate() {
            if !alive {
                continue;
            }
            let slot = s as u32;
            let p = &self.coords[s * self.dim..(s + 1) * self.dim];
            let coord = self.spec.cell_of(p);
            let state = &self.cells[&coord];
            let label = if state.is_core {
                Some(self.cluster_of_cell[&coord])
            } else {
                self.border_label.get(&slot).map(|winner| {
                    *self
                        .cluster_of_cell
                        .get(winner)
                        .expect("border label points at a non-core cell") // lint:allow(panic-safety): repair only records border winners that are core cells, and every core cell gets a cluster id in the same pass
                })
            };
            ids.push(StreamPointId(slot));
            labels.push(label);
        }
        Snapshot {
            epoch: self.epoch,
            ids,
            labels: Clustering::new(labels),
            stats: self.stats,
            dirty: self.dirty_cells_since(self.epoch.saturating_sub(1)),
        }
    }

    /// Cells whose serve-visible state changed *after* `epoch`
    /// (exclusive), sorted by coordinate. Includes cells that have since
    /// been emptied — the consumer sees them vanish from
    /// [`Self::export_cell`] — and cells whose cluster id moved: ids are
    /// sticky across epochs, and the component rebuild stamps exactly
    /// the cells whose id changed.
    pub fn dirty_cells_since(&self, epoch: u64) -> Vec<CellCoord> {
        // Head-chasing consumer: every epoch after `epoch` is still in
        // the recent-stamp deque (one entry per repair epoch), so the
        // answer is a concatenation of a few small lists instead of a
        // scan over every cell ever touched.
        let covered = self
            .recent_dirty
            .front()
            .is_some_and(|&(first, _)| first <= epoch + 1)
            && self
                .recent_dirty
                .back()
                .is_some_and(|&(last, _)| last == self.epoch);
        if covered {
            let mut out: Vec<CellCoord> = self
                .recent_dirty
                .iter()
                .filter(|&&(e, _)| e > epoch)
                .flat_map(|(_, v)| v.iter().cloned())
                .collect();
            out.sort_unstable();
            out.dedup();
            return out;
        }
        let mut out: Vec<CellCoord> = self
            .touched_epoch
            .iter()
            .filter(|&(_, &e)| e > epoch)
            .map(|(c, _)| c.clone())
            .collect();
        out.sort_unstable();
        out
    }

    /// Per-point label rows at the current epoch: `(id, label)` for every
    /// live point, equal as a set to [`Self::snapshot`]'s `ids`/`labels`
    /// pairing but computed by walking the cell table instead of
    /// re-deriving every point's cell — the cheap form delta consumers
    /// use. Row order is unspecified.
    pub fn export_label_rows(&self) -> Vec<(u32, Option<u32>)> {
        let mut out = Vec::with_capacity(self.n_live);
        // lint:allow(unordered-iter): rows land in id-keyed maps and additive folds downstream, so emission order is immaterial
        for (coord, state) in &self.cells {
            self.append_cell_rows(coord, state, &mut out);
        }
        out
    }

    /// Appends the current `(id, label)` rows of the cell at `coord`
    /// (no-op when the cell is unoccupied) — the per-cell unit of
    /// [`Self::export_label_rows`], for delta consumers that only
    /// relabel the cells named by [`Self::dirty_cells_since`].
    pub fn cell_label_rows(&self, coord: &CellCoord, out: &mut Vec<(u32, Option<u32>)>) {
        if let Some(state) = self.cells.get(coord) {
            self.append_cell_rows(coord, state, out);
        }
    }

    fn append_cell_rows(
        &self,
        coord: &CellCoord,
        state: &CellState,
        out: &mut Vec<(u32, Option<u32>)>,
    ) {
        if state.is_core {
            let cid = self.cluster_of_cell[coord];
            for &p in &state.points {
                out.push((p, Some(cid)));
            }
        } else {
            for &p in &state.points {
                let label = self.border_label.get(&p).map(|winner| {
                    *self
                        .cluster_of_cell
                        .get(winner)
                        .expect("border label points at a non-core cell") // lint:allow(panic-safety): repair only records border winners that are core cells, and every core cell gets a cluster id in the same pass
                });
                out.push((p, label));
            }
        }
    }

    /// The current label of the live point in `slot` (`Some(None)` is a
    /// live noise point), or `None` when the slot is free.
    pub fn label_of_point(&self, slot: u32) -> Option<Option<u32>> {
        if !self.is_live(slot) {
            return None;
        }
        let p = &self.coords[slot as usize * self.dim..(slot as usize + 1) * self.dim];
        let coord = self.spec.cell_of(p);
        let state = self.cells.get(&coord)?;
        if state.is_core {
            Some(self.cluster_of_cell.get(&coord).copied())
        } else {
            Some(self.border_label.get(&slot).map(|winner| {
                *self
                    .cluster_of_cell
                    .get(winner)
                    .expect("border label points at a non-core cell") // lint:allow(panic-safety): repair only records border winners that are core cells, and every core cell gets a cluster id in the same pass
            }))
        }
    }

    /// Whether `slot` currently holds a live point.
    pub fn is_live(&self, slot: u32) -> bool {
        self.live.get(slot as usize).copied().unwrap_or(false)
    }

    /// The current border assignments as `(slot, winning core cell)`
    /// pairs, one per labeled border point, in unspecified order.
    pub fn border_winners(&self) -> impl Iterator<Item = (u32, &CellCoord)> + '_ {
        // lint:allow(unordered-iter): order is documented unspecified; the delta-publish consumer feeds an id-keyed map
        self.border_label.iter().map(|(&s, c)| (s, c))
    }

    /// Point slots removed *after* `epoch` (exclusive), sorted and
    /// deduped, or `None` when the retained per-epoch deltas no longer
    /// reach back that far. A returned slot may have been reused by a
    /// later insert — callers pick between "drop the row" and "relabel"
    /// by [`Self::is_live`].
    pub fn removed_since(&self, epoch: u64) -> Option<Vec<u32>> {
        Self::recent_slots_since(&self.recent_removed, epoch, self.epoch)
    }

    /// Slots whose border-label entry effectively changed *after*
    /// `epoch` (exclusive), sorted and deduped, or `None` when the
    /// retained deltas don't reach back that far. Together with
    /// [`Self::dirty_cells_since`] and [`Self::removed_since`] this is a
    /// complete account of label movement: a border point's label can
    /// move without its own cell's exported record changing.
    pub fn label_moves_since(&self, epoch: u64) -> Option<Vec<u32>> {
        Self::recent_slots_since(&self.recent_label_moves, epoch, self.epoch)
    }

    /// Cluster id of the core cell at `coord` under the current epoch's
    /// numbering (`None` when the cell is unoccupied or non-core).
    pub fn cell_cluster(&self, coord: &CellCoord) -> Option<u32> {
        self.cluster_of_cell.get(coord).copied()
    }

    /// The live points as a [`Dataset`], in [`Self::snapshot`]'s row
    /// order — so a batch `RpDbscan::run_local` over it is directly
    /// comparable with the snapshot's labels.
    pub fn dataset(&self) -> Dataset {
        let mut flat = Vec::with_capacity(self.n_live * self.dim);
        for (s, &alive) in self.live.iter().enumerate() {
            if alive {
                flat.extend_from_slice(&self.coords[s * self.dim..(s + 1) * self.dim]);
            }
        }
        // lint:allow(panic-safety): flat is built as n_live rows of exactly dim coordinates, and dim >= 1 is checked at construction
        Dataset::from_flat(self.dim, flat).expect("live points form a valid dataset")
    }

    /// The incrementally maintained cell dictionary (always equal to a
    /// fresh build over the live points).
    pub fn dictionary(&self) -> &CellDictionary {
        &self.dict
    }

    /// Exports the per-cell clustering state for the current epoch,
    /// sorted by cell coordinate. This is the handoff an external index
    /// builder (the serving layer) needs to resolve labels exactly as
    /// Phase III does: core cells carry their cluster id, non-core cells
    /// carry their sorted predecessor core cells, and every cell carries
    /// its core points' coordinates for the exact ε border checks.
    pub fn export_cells(&self) -> Vec<CellExport> {
        let mut coords: Vec<&CellCoord> = self.cells.keys().collect();
        coords.sort_unstable();
        coords
            .into_iter()
            .filter_map(|coord| self.export_cell(coord))
            .collect()
    }

    /// Exports one cell's serving record at the current epoch, or `None`
    /// when the cell is unoccupied — the per-cell counterpart of
    /// [`Self::export_cells`] for delta consumers that only rebuild the
    /// cells named by [`Self::dirty_cells_since`].
    pub fn export_cell(&self, coord: &CellCoord) -> Option<CellExport> {
        let state = self.cells.get(coord)?;
        let cluster = if state.is_core {
            self.cluster_of_cell.get(coord).copied()
        } else {
            None
        };
        let preds = if state.is_core {
            Vec::new()
        } else {
            self.preds.get(coord).cloned().unwrap_or_default()
        };
        let mut core_coords = Vec::with_capacity(state.core_points.len() * self.dim);
        for &s in &state.core_points {
            core_coords.extend_from_slice(
                &self.coords[s as usize * self.dim..(s as usize + 1) * self.dim],
            );
        }
        Some(CellExport {
            coord: coord.clone(),
            cluster,
            preds,
            core_coords,
        })
    }

    /// Splits `items` into at most `2 × physical threads` chunks for stage
    /// fan-out.
    fn chunked<T: Clone>(&self, items: &[T]) -> Vec<Vec<T>> {
        if items.is_empty() {
            return Vec::new();
        }
        let want = (self.engine.workers() * 2).max(1);
        let chunk = items.len().div_ceil(want);
        items.chunks(chunk).map(|c| c.to_vec()).collect()
    }

    /// Stage `epoch-{n}:ingest` — grid-locates a flat batch in parallel
    /// and returns one cell coordinate per point.
    fn run_ingest(&self, flat: &[f64]) -> Result<Vec<CellCoord>, StageError> {
        let dim = self.dim;
        let n = flat.len() / dim;
        let ranges: Vec<(usize, usize)> = {
            let idx: Vec<usize> = (0..n).collect();
            self.chunked(&idx)
                .into_iter()
                .map(|c| (c[0], c[c.len() - 1] + 1))
                .collect()
        };
        let spec = &self.spec;
        let name = epoch_stage_name(self.epoch, "ingest");
        let result = self
            .engine
            .run_stage(&name, ranges, |_, (lo, hi): (usize, usize)| {
                Ok((lo..hi)
                    .map(|i| spec.cell_of(&flat[i * dim..(i + 1) * dim]))
                    .collect::<Vec<CellCoord>>())
            })?;
        Ok(result.outputs.into_iter().flatten().collect())
    }

    /// The dirty region of a batch: every occupied cell within ε
    /// (box-to-box) of a changed cell, paired with the changed cells
    /// within ε of it (the sources of its density deltas). Uses lattice
    /// box enumeration when the `(2B+1)^d` window is smaller than a scan
    /// over all occupied cells, the scan otherwise; both apply the exact
    /// `cell_min_dist2 ≤ ε²` test, so the result is identical.
    fn dirty_region(&self, changed: &[CellCoord]) -> Vec<(CellCoord, Vec<CellCoord>)> {
        let eps2 = self.spec.eps() * self.spec.eps();
        // Slightly inflated bound: repairing an unaffected cell is a
        // no-op, missing an affected one is a correctness bug.
        let eps2_bound = eps2 * (1.0 + 1e-9);
        let mut dirty: FxHashMap<CellCoord, Vec<CellCoord>> = FxHashMap::default();
        let mut pair = |changed: &CellCoord, occupied: CellCoord| {
            dirty.entry(occupied).or_default().push(changed.clone());
        };
        // (|δ|−1)·side ≤ ε per dimension bounds the offset window:
        // |δ| ≤ 1 + ε/side = 1 + √d.
        let b = 1 + (self.dim as f64).sqrt().ceil() as i64;
        let window = (2 * b + 1).checked_pow(self.dim as u32);
        let box_cost = window.and_then(|w| w.checked_mul(changed.len() as i64));
        let scan_cost = (self.cells.len() * changed.len()) as i64;
        match box_cost {
            Some(cost) if cost <= scan_cost => {
                let mut offset = vec![-b; self.dim];
                for c in changed {
                    offset.fill(-b);
                    'enumerate: loop {
                        let cand = CellCoord::new(
                            c.coords().iter().zip(offset.iter()).map(|(&x, &d)| x + d),
                        );
                        if self.cells.contains_key(&cand)
                            && self.spec.cell_min_dist2(c, &cand) <= eps2_bound
                        {
                            pair(c, cand);
                        }
                        for slot in offset.iter_mut() {
                            *slot += 1;
                            if *slot <= b {
                                continue 'enumerate;
                            }
                            *slot = -b;
                        }
                        break;
                    }
                }
            }
            _ => {
                // lint:allow(unordered-iter): pairs accumulate into dirty, whose values and keys are both sorted before use below
                for cand in self.cells.keys() {
                    for c in changed {
                        if self.spec.cell_min_dist2(c, cand) <= eps2_bound {
                            pair(c, cand.clone());
                        }
                    }
                }
            }
        }
        for sources in dirty.values_mut() {
            sources.sort_unstable();
        }
        let mut cells: Vec<(CellCoord, Vec<CellCoord>)> = dirty.into_iter().collect();
        cells.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        cells
    }

    /// Repairs the dirty region of one epoch: recompute core status and
    /// edges for dirty cells (stage `repair`), refresh the reverse
    /// predecessor adjacency, re-extract connected components, and
    /// re-label the border points whose predecessors changed (stage
    /// `relabel`).
    ///
    /// Changed cells (those that gained or lost points) get a full
    /// per-point region-query recomputation. The remaining dirty cells —
    /// unchanged cells within ε of a changed one — are repaired by
    /// *deltas*: each cached point density is adjusted by the changed
    /// cells' new-minus-old sub-cell contributions, and only edges toward
    /// changed cells are rechecked. The delta arithmetic reuses the region
    /// query's own per-cell step ([`cell_contribution`]), and densities
    /// are exact `u64` counts, so the result is identical to a full
    /// recomputation.
    fn run_repair_epoch(
        &mut self,
        changed: Vec<CellCoord>,
        old_subs: FxHashMap<CellCoord, Vec<SubCellEntry>>,
        new_slots: FxHashSet<u32>,
    ) -> Result<(), StreamError> {
        self.stats.last_changed_cells = changed.len();
        let dirty = self.dirty_region(&changed);
        self.stats.last_dirty_cells = dirty.len();
        self.stats.total_repaired_cells += dirty.len() as u64;
        let changed_set: FxHashSet<CellCoord> = changed.iter().cloned().collect();

        // The dictionary must be compact (no empty cells) before it backs
        // region queries: empty entries would still contribute vertices.
        self.dict.compact();
        let index = DictionaryIndex::single(self.dict.clone());

        // Plans embed this epoch's dictionary indices: drop every cached
        // plan (counting invalidations for dirtied cells), then prebuild a
        // plan for each changed cell that will run full region queries —
        // the cells holding this batch's new points — *if* the cost model
        // says the cell's occupancy amortises a plan build; sparse cells
        // stay on the per-point kd path. The parallel repair stage reads
        // the cache through `PlanCache::get` only.
        // lint:allow(unordered-iter): dirty is a sorted Vec here (the name shadows dirty_region's map), and begin_epoch only removes coords from a set and counts — order-insensitive
        self.plan_cache.begin_epoch(dirty.iter().map(|(c, _)| c));
        let model = PlannerCostModel::calibrate(&index);
        self.stats.route_min_occupancy = model.min_occupancy;
        for c in &changed {
            let Some(state) = self.cells.get(c) else {
                continue; // the batch emptied this cell
            };
            if !state.points.iter().any(|p| new_slots.contains(p)) {
                continue; // removal-only change: no full queries to plan for
            }
            match model.route(state.points.len()) {
                QueryRoute::Planned => {
                    self.stats.cells_routed_planned += 1;
                    let _ = self.plan_cache.get_or_build(&index, c);
                }
                QueryRoute::Kd => self.stats.cells_routed_kd += 1,
            }
        }

        // One sub-cell diff per changed cell: cached densities then move by
        // `contribution_delta` over these few entries instead of two full
        // sub-list passes per (point, changed cell) pair.
        let sub_diffs: FxHashMap<CellCoord, SubDiff> = changed
            .iter()
            .map(|y| {
                let old = old_subs.get(y).map_or(&[] as &[SubCellEntry], |v| v);
                let new = self.dict.get(y).map_or(&[] as &[SubCellEntry], |e| &e.subs);
                (y.clone(), sub_diff(old, new))
            })
            .collect();

        // Stage 2 — repair: per-cell core/edge recomputation in parallel.
        let repairs = {
            let cells = &self.cells;
            let coords = &self.coords;
            let density = &self.density;
            let spec = &self.spec;
            let dim = self.dim;
            let min_pts = self.params.min_pts as u64;
            let changed_set = &changed_set;
            let sub_diffs = &sub_diffs;
            let new_slots = &new_slots;
            let plans = &self.plan_cache;
            let name = epoch_stage_name(self.epoch, "repair");
            let empty: &[u32] = &[];
            let no_cells: &[CellCoord] = &[];
            let no_subs: &[SubCellEntry] = &[];
            self.engine
                .run_stage(
                    &name,
                    self.chunked(&dirty),
                    |_, chunk: Vec<(CellCoord, Vec<CellCoord>)>| {
                        let point_of =
                            |slot: u32| &coords[slot as usize * dim..(slot as usize + 1) * dim];
                        let eps2 = spec.eps() * spec.eps();
                        // Does sub-cell `s` of cell `y` lie within ε of
                        // some point in `ids`? Same per-(cell, point)
                        // bounds fast paths as the region query, so
                        // qualification decisions stay identical.
                        let sub_hits =
                            |y: &CellCoord,
                             s: rpdbscan_grid::SubCellIdx,
                             ids: &[u32],
                             scratch: &mut [f64]| {
                                ids.iter().any(|&p| {
                                    let q = point_of(p);
                                    let (lo, hi) = spec.cell_dist2_bounds(y, q);
                                    if lo > eps2 {
                                        return false;
                                    }
                                    if hi <= eps2 {
                                        return true;
                                    }
                                    spec.sub_center_into(y, s, scratch);
                                    dist2(q, scratch) <= eps2
                                })
                            };
                        // Ground-truth edge test: some point in `ids`
                        // reports a current sub-cell of `y`.
                        let edge_rescan = |y: &CellCoord, ids: &[u32], scratch: &mut [f64]| {
                            let subs = index.dict().get(y).map_or(no_subs, |e| &e.subs);
                            ids.iter().any(|&p| {
                                cell_contribution(spec, point_of(p), y, subs, scratch) > 0
                            })
                        };
                        let mut scratch = vec![0.0; dim];
                        let mut query = RegionQueryResult::default();
                        let mut srcs: Vec<&SubDiff> = Vec::new();
                        let mut dlt_buf: Vec<i64> = Vec::new();
                        let mut out: Vec<(CellCoord, Repair)> = Vec::with_capacity(chunk.len());
                        for (c, sources) in chunk {
                            let pts = cells.get(&c).map_or(empty, |s| s.points.as_slice());
                            srcs.clear();
                            srcs.extend(sources.iter().map(|y| &sub_diffs[y]));
                            if changed_set.contains(&c) {
                                // The cell's own point set changed. New
                                // points get full region queries (they have
                                // no cached density); surviving points get
                                // density deltas. Edges come from three
                                // sources: the queries of new and
                                // newly-promoted core points, the previous
                                // edge list (a surviving core's
                                // qualification against an unchanged cell
                                // is static), and the sub-cell diffs of
                                // changed cells.
                                let self_idx = index.dict().index_of(&c);
                                // Prebuilt plan for this cell's full
                                // queries (None when the planner is off or
                                // the cell holds no new point).
                                let plan = plans.get(&c);
                                let (old_core_list, state_nbrs) =
                                    cells.get(&c).map_or((empty, no_cells), |s| {
                                        (s.core_points.as_slice(), s.neighbors.as_slice())
                                    });
                                let old_core_set: FxHashSet<u32> =
                                    old_core_list.iter().copied().collect();
                                let mut densities: Vec<u64> = Vec::with_capacity(pts.len());
                                let mut stats = QueryStats::default();
                                let mut new_neighbor_idx: Vec<u32> = Vec::new();
                                for &p in pts {
                                    let q = point_of(p);
                                    if new_slots.contains(&p) {
                                        match plan {
                                            Some(plan) => plan.query_into(q, &mut query),
                                            None => index.region_query_cells_into(q, &mut query),
                                        }
                                        stats.merge(&query.stats);
                                        densities.push(query.density);
                                        if query.density >= min_pts {
                                            for &nc in &query.neighbor_cells {
                                                if Some(nc) != self_idx {
                                                    new_neighbor_idx.push(nc);
                                                }
                                            }
                                        }
                                    } else {
                                        let mut d = density[p as usize] as i64;
                                        for (y, diff) in sources.iter().zip(srcs.iter()) {
                                            d += contribution_delta(spec, q, y, diff, &mut scratch);
                                        }
                                        densities.push(d as u64);
                                    }
                                }
                                let core_points: Vec<u32> = pts
                                    .iter()
                                    .zip(densities.iter())
                                    .filter(|(_, &d)| d >= min_pts)
                                    .map(|(&p, _)| p)
                                    .collect();
                                // Newly-promoted pre-existing cores have no
                                // cached edge information either: query them
                                // in full (rare — promotion needs a density
                                // crossing exactly this epoch).
                                for (&p, &d) in pts.iter().zip(densities.iter()) {
                                    if d >= min_pts
                                        && !new_slots.contains(&p)
                                        && !old_core_set.contains(&p)
                                    {
                                        match plan {
                                            Some(plan) => plan.query_into(point_of(p), &mut query),
                                            None => index
                                                .region_query_cells_into(point_of(p), &mut query),
                                        }
                                        stats.merge(&query.stats);
                                        for &nc in &query.neighbor_cells {
                                            if Some(nc) != self_idx {
                                                new_neighbor_idx.push(nc);
                                            }
                                        }
                                    }
                                }
                                let survivors: Vec<u32> = core_points
                                    .iter()
                                    .copied()
                                    .filter(|p| old_core_set.contains(p))
                                    .collect();
                                let core_now: FxHashSet<u32> =
                                    core_points.iter().copied().collect();
                                let lost_any = old_core_list.iter().any(|p| !core_now.contains(p));
                                new_neighbor_idx.sort_unstable();
                                new_neighbor_idx.dedup();
                                let mut neighbors: Vec<CellCoord> = new_neighbor_idx
                                    .into_iter()
                                    .map(|i| index.dict().entry(i).coord.clone())
                                    .collect();
                                neighbors.sort_unstable();
                                // Previous edges: carried by surviving cores
                                // unless the target changed (its vacated
                                // sub-cells decide) or this cell lost cores
                                // (survivors must re-qualify).
                                for t in state_nbrs {
                                    if survivors.is_empty() || neighbors.binary_search(t).is_ok() {
                                        continue;
                                    }
                                    let keep =
                                        if changed_set.contains(t) {
                                            if lost_any {
                                                edge_rescan(t, &survivors, &mut scratch)
                                            } else {
                                                let diff = &sub_diffs[t];
                                                !diff.removed.iter().any(|&s| {
                                                    sub_hits(t, s, &survivors, &mut scratch)
                                                }) || edge_rescan(t, &survivors, &mut scratch)
                                            }
                                        } else if lost_any {
                                            edge_rescan(t, &survivors, &mut scratch)
                                        } else {
                                            true
                                        };
                                    if keep {
                                        let i = neighbors.binary_search(t).unwrap_err();
                                        neighbors.insert(i, t.clone());
                                    }
                                }
                                // Edges toward changed cells can also appear
                                // when a newly occupied sub-cell lands
                                // within ε of a surviving core.
                                if !survivors.is_empty() {
                                    for y in &sources {
                                        if *y == c
                                            || neighbors.binary_search(y).is_ok()
                                            || state_nbrs.binary_search(y).is_ok()
                                        {
                                            continue;
                                        }
                                        let diff = &sub_diffs[y];
                                        if diff
                                            .added
                                            .iter()
                                            .any(|&s| sub_hits(y, s, &survivors, &mut scratch))
                                        {
                                            let i = neighbors.binary_search(y).unwrap_err();
                                            neighbors.insert(i, y.clone());
                                        }
                                    }
                                }
                                out.push((
                                    c,
                                    Repair::Full(CellRepair {
                                        is_core: !core_points.is_empty(),
                                        core_points,
                                        neighbors,
                                        densities,
                                        stats,
                                    }),
                                ));
                                continue;
                            }
                            // Delta repair: points unchanged; densities move
                            // by the changed neighbours' contribution diffs.
                            let state = &cells[&c];
                            dlt_buf.clear();
                            let mut density_changed = false;
                            for &p in pts {
                                let q = point_of(p);
                                let mut dlt = 0i64;
                                for (y, diff) in sources.iter().zip(srcs.iter()) {
                                    dlt += contribution_delta(spec, q, y, diff, &mut scratch);
                                }
                                if dlt != 0 {
                                    density_changed = true;
                                }
                                dlt_buf.push(dlt);
                            }
                            if density_changed {
                                // The core set changes iff a density crossed
                                // the minPts threshold; then the cell's
                                // edges are a union over *core* points'
                                // queries, so edges toward unchanged cells
                                // may flip too — recompute in full.
                                let crossed = pts.iter().zip(dlt_buf.iter()).any(|(&p, &dlt)| {
                                    let d = density[p as usize];
                                    (d >= min_pts) != ((d as i64 + dlt) as u64 >= min_pts)
                                });
                                if crossed {
                                    // Unchanged cells are never prebuilt, so
                                    // the plan lookup misses and this runs
                                    // the oracle path — the planned variant
                                    // keeps one code path either way.
                                    let rep = recompute_cell_planned(
                                        &index,
                                        &c,
                                        pts,
                                        point_of,
                                        min_pts as usize,
                                        plans.get(&c),
                                    );
                                    out.push((c, Repair::Full(rep)));
                                    continue;
                                }
                            }
                            // Core set unchanged: edges toward unchanged
                            // cells are unchanged; an edge toward a changed
                            // cell can only appear through a newly occupied
                            // sub-cell or break through a vacated one.
                            let cores = state.core_points.as_slice();
                            let mut edge_ops: Vec<(bool, &CellCoord)> = Vec::new();
                            for (y, diff) in sources.iter().zip(srcs.iter()) {
                                match state.neighbors.binary_search(y) {
                                    Ok(_) => {
                                        if !diff.removed.is_empty()
                                            && diff
                                                .removed
                                                .iter()
                                                .any(|&s| sub_hits(y, s, cores, &mut scratch))
                                            && !edge_rescan(y, cores, &mut scratch)
                                        {
                                            edge_ops.push((false, y));
                                        }
                                    }
                                    Err(_) => {
                                        if !cores.is_empty()
                                            && !diff.added.is_empty()
                                            && diff
                                                .added
                                                .iter()
                                                .any(|&s| sub_hits(y, s, cores, &mut scratch))
                                        {
                                            edge_ops.push((true, y));
                                        }
                                    }
                                }
                            }
                            if edge_ops.is_empty() {
                                if density_changed {
                                    let densities: Vec<u64> = pts
                                        .iter()
                                        .zip(dlt_buf.iter())
                                        .map(|(&p, &dlt)| (density[p as usize] as i64 + dlt) as u64)
                                        .collect();
                                    out.push((c, Repair::DensityOnly(densities)));
                                }
                                continue;
                            }
                            let mut neighbors = state.neighbors.clone();
                            for (insert, y) in edge_ops {
                                match neighbors.binary_search(y) {
                                    Err(i) if insert => neighbors.insert(i, y.clone()),
                                    Ok(i) if !insert => {
                                        neighbors.remove(i);
                                    }
                                    _ => {}
                                }
                            }
                            let densities: Vec<u64> = pts
                                .iter()
                                .zip(dlt_buf.iter())
                                .map(|(&p, &dlt)| (density[p as usize] as i64 + dlt) as u64)
                                .collect();
                            out.push((
                                c,
                                Repair::Full(CellRepair {
                                    is_core: !cores.is_empty(),
                                    core_points: cores.to_vec(),
                                    neighbors,
                                    densities,
                                    stats: QueryStats::default(),
                                }),
                            ));
                        }
                        Ok(out)
                    },
                )?
                .outputs
        };

        // Apply repairs: diff each cell's outgoing edges to update the
        // reverse predecessor map and collect the label-dirty set — the
        // non-core cells whose predecessor lists or predecessor core
        // points may have changed.
        let mut label_dirty: FxHashSet<CellCoord> = FxHashSet::default();
        // Cells whose *exported* record actually changed this epoch: a
        // strict subset of `label_dirty`, which also holds cells that
        // merely need their border labels re-checked. Only this subset
        // is stamped into `touched_epoch` — stamping all of
        // `label_dirty` would dirty the whole ε-repair region and sink
        // the serving layer's incremental publish.
        let mut serve_dirty: FxHashSet<CellCoord> = FxHashSet::default();
        // Slots whose border-label entry effectively changes this epoch,
        // for the `recent_label_moves` delta.
        let mut label_moves: Vec<u32> = Vec::new();
        // Cells on the receiving end of an edge flip. Whether that flip
        // is serve-visible depends on the target's *final* core status
        // this epoch (a core cell exports an empty predecessor list), so
        // the decision is deferred until every repair has been applied.
        let mut pred_targets: FxHashSet<CellCoord> = FxHashSet::default();
        for (coord, rep) in repairs.into_iter().flatten() {
            let rep = match rep {
                Repair::Full(r) => r,
                Repair::DensityOnly(densities) => {
                    // Core set and edges held: only the cached densities
                    // moved, so neither the graph nor any label can change.
                    if let Some(state) = self.cells.get(&coord) {
                        for (&p, &d) in state.points.iter().zip(densities.iter()) {
                            self.density[p as usize] = d;
                        }
                    }
                    continue;
                }
            };
            let state = self.cells.entry(coord.clone()).or_default();
            let core_changed = state.core_points != rep.core_points;
            if core_changed {
                serve_dirty.insert(coord.clone());
            }
            let old_targets: Vec<CellCoord> = if state.is_core {
                std::mem::take(&mut state.neighbors)
            } else {
                Vec::new()
            };
            let new_targets: Vec<CellCoord> = if rep.is_core {
                rep.neighbors.clone()
            } else {
                Vec::new()
            };
            if rep.is_core {
                // Core-cell points are labeled through their cell; stale
                // border assignments must not linger.
                for &p in &state.points {
                    if self.border_label.remove(&p).is_some() {
                        label_moves.push(p);
                    }
                }
            }
            for (&p, &d) in state.points.iter().zip(rep.densities.iter()) {
                self.density[p as usize] = d;
            }
            state.is_core = rep.is_core;
            state.core_points = rep.core_points;
            state.neighbors = rep.neighbors;
            label_dirty.insert(coord.clone());
            // Sorted-merge diff of old vs new successor lists.
            let (mut i, mut j) = (0, 0);
            while i < old_targets.len() || j < new_targets.len() {
                let ord = match (old_targets.get(i), new_targets.get(j)) {
                    (Some(a), Some(b)) => a.cmp(b),
                    (Some(_), None) => std::cmp::Ordering::Less,
                    (None, Some(_)) => std::cmp::Ordering::Greater,
                    // Dead under the loop condition (one side is always
                    // Some); ending the merge beats panicking.
                    (None, None) => break,
                };
                match ord {
                    std::cmp::Ordering::Less => {
                        // Edge coord → old_targets[i] disappeared.
                        let t = &old_targets[i];
                        if let Some(v) = self.preds.get_mut(t) {
                            if let Ok(k) = v.binary_search(&coord) {
                                v.remove(k);
                            }
                            if v.is_empty() {
                                self.preds.remove(t);
                            }
                        }
                        label_dirty.insert(t.clone());
                        pred_targets.insert(t.clone());
                        i += 1;
                    }
                    std::cmp::Ordering::Greater => {
                        // Edge coord → new_targets[j] appeared.
                        let t = &new_targets[j];
                        let v = self.preds.entry(t.clone()).or_default();
                        if let Err(k) = v.binary_search(&coord) {
                            v.insert(k, coord.clone());
                        }
                        label_dirty.insert(t.clone());
                        pred_targets.insert(t.clone());
                        j += 1;
                    }
                    std::cmp::Ordering::Equal => {
                        // Edge kept — the target needs relabeling only if
                        // this predecessor's core point set moved.
                        if core_changed {
                            label_dirty.insert(old_targets[i].clone());
                        }
                        i += 1;
                        j += 1;
                    }
                }
            }
        }

        // Drop emptied cells (only changed cells can lose their last
        // point). Every cell within ε of one was dirty, so no surviving
        // neighbor or predecessor list references them.
        let emptied: Vec<CellCoord> = changed_set
            .iter()
            .filter(|c| self.cells.get(*c).is_some_and(|s| s.points.is_empty()))
            .cloned()
            .collect();
        for c in &emptied {
            self.cells.remove(c);
            self.preds.remove(c);
            label_dirty.remove(c);
        }

        // An edge flip only shows up in the *target's* exported record
        // when the target ends the epoch non-core (core cells export an
        // empty predecessor list, and their cluster-id movements are
        // stamped by `rebuild_components`). Core targets whose core set
        // itself moved are already in `serve_dirty`; emptied targets are
        // covered by `changed_set`.
        // lint:allow(unordered-iter): targets land in a set, so visit order is immaterial
        for t in pred_targets {
            if self.cells.get(&t).is_some_and(|s| !s.is_core) {
                serve_dirty.insert(t);
            }
        }

        // Stamp the serve-visible delta of this epoch: every cell whose
        // core set or predecessor list actually moved (`serve_dirty`)
        // plus every cell whose dictionary entry moved (`changed_set`,
        // which also covers the cells just emptied). Cells the repair
        // merely re-checked stay unstamped — their exported record is
        // unchanged. Cluster-id movements are stamped separately by
        // `rebuild_components`.
        // lint:allow(unordered-iter): epoch stamps land in a map keyed by the same coords, so insertion order is immaterial
        for c in serve_dirty.iter().chain(changed_set.iter()) {
            self.touched_epoch.insert(c.clone(), self.epoch);
        }

        // Re-extract connected components of core cells over the cached
        // edges (serial integer pass; deletions can split clusters, so a
        // scoped union is not sound — the global pass is).
        self.rebuild_components();

        // Stage 3 — relabel: exact-ε border checks for the label-dirty
        // non-core cells.
        let mut targets: Vec<CellCoord> = label_dirty
            .into_iter()
            .filter(|c| self.cells.get(c).is_some_and(|s| !s.is_core))
            .collect();
        targets.sort_unstable();
        self.stats.last_relabeled_cells = targets.len();
        let assignments = {
            let cells = &self.cells;
            let preds = &self.preds;
            let coords = &self.coords;
            let dim = self.dim;
            let eps = self.params.eps;
            let name = epoch_stage_name(self.epoch, "relabel");
            self.engine
                .run_stage(&name, self.chunked(&targets), |_, chunk: Vec<CellCoord>| {
                    let mut out: Vec<(u32, Option<CellCoord>)> = Vec::new();
                    let empty: Vec<CellCoord> = Vec::new();
                    for c in &chunk {
                        let state = &cells[c];
                        let pred_cells: Vec<(&CellCoord, &[u32])> = preds
                            .get(c)
                            .unwrap_or(&empty)
                            .iter()
                            .map(|p| (p, cells[p].core_points.as_slice()))
                            .collect();
                        for &slot in &state.points {
                            let q = &coords[slot as usize * dim..(slot as usize + 1) * dim];
                            let win = assign_border_point(
                                q,
                                &pred_cells,
                                |s| &coords[s as usize * dim..(s as usize + 1) * dim],
                                eps,
                            );
                            out.push((slot, win.map(|k| pred_cells[k].0.clone())));
                        }
                    }
                    Ok(out)
                })?
                .outputs
        };
        for (slot, winner) in assignments.into_iter().flatten() {
            match winner {
                Some(c) => {
                    if self.border_label.insert(slot, c.clone()) != Some(c) {
                        label_moves.push(slot);
                    }
                }
                None => {
                    if self.border_label.remove(&slot).is_some() {
                        label_moves.push(slot);
                    }
                }
            }
        }

        // Materialise this epoch's stamps for the head-chasing
        // `dirty_cells_since` fast path (one map scan per epoch here
        // instead of one per publish; publishes more than
        // `RECENT_DIRTY_EPOCHS` epochs behind fall back to the map).
        const RECENT_DIRTY_EPOCHS: usize = 8;
        let mut last: Vec<CellCoord> = self
            .touched_epoch
            .iter()
            .filter(|&(_, &e)| e == self.epoch)
            .map(|(c, _)| c.clone())
            .collect();
        last.sort_unstable();
        self.recent_dirty.push_back((self.epoch, last));
        while self.recent_dirty.len() > RECENT_DIRTY_EPOCHS {
            self.recent_dirty.pop_front();
        }
        let removed = std::mem::take(&mut self.pending_removed);
        self.recent_removed.push_back((self.epoch, removed));
        while self.recent_removed.len() > RECENT_DIRTY_EPOCHS {
            self.recent_removed.pop_front();
        }
        label_moves.sort_unstable();
        label_moves.dedup();
        self.recent_label_moves.push_back((self.epoch, label_moves));
        while self.recent_label_moves.len() > RECENT_DIRTY_EPOCHS {
            self.recent_label_moves.pop_front();
        }

        self.stats.live_points = self.n_live;
        self.stats.num_cells = self.cells.len();
        self.stats.num_clusters = self.num_clusters;
        let plan_stats = self.plan_cache.stats();
        self.stats.plans_built = plan_stats.built;
        self.stats.plan_hits = plan_stats.hits;
        self.stats.plans_invalidated = plan_stats.invalidated;
        Ok(())
    }

    /// Concatenation of a per-epoch slot-delta deque over `(epoch, now]`,
    /// sorted and deduped, or `None` when the deque no longer covers the
    /// requested range (every repair epoch pushes one entry, so coverage
    /// means the front entry is at or before `epoch + 1` and the back is
    /// current).
    fn recent_slots_since(
        deque: &std::collections::VecDeque<(u64, Vec<u32>)>,
        epoch: u64,
        now: u64,
    ) -> Option<Vec<u32>> {
        let covered = deque.front().is_some_and(|&(first, _)| first <= epoch + 1)
            && deque.back().is_some_and(|&(last, _)| last == now);
        covered.then(|| {
            let mut out: Vec<u32> = deque
                .iter()
                .filter(|&&(e, _)| e > epoch)
                .flat_map(|(_, v)| v.iter().copied())
                .collect();
            out.sort_unstable();
            out.dedup();
            out
        })
    }

    /// Rebuilds `cluster_of_cell` from the cached core-core adjacency.
    ///
    /// Cluster ids are *sticky* across epochs: each component keeps the
    /// previous id of its first member (coordinate order) that both had
    /// an id last epoch and whose id no earlier component claimed; only
    /// components that can't (brand-new ones, or the losing halves of a
    /// split) draw fresh ids, the smallest unclaimed ones. An insertion
    /// therefore renumbers the clusters it actually touches instead of
    /// shifting every id after it — which is what keeps the serving
    /// layer's delta publish proportional to the real change: every cell
    /// whose id *did* move is stamped into the epoch's dirty set here.
    fn rebuild_components(&mut self) {
        let mut core: Vec<&CellCoord> = self
            .cells
            .iter()
            .filter(|(_, s)| s.is_core)
            .map(|(c, _)| c)
            .collect();
        core.sort_unstable();
        let dense: FxHashMap<&CellCoord, u32> = core
            .iter()
            .enumerate()
            .map(|(i, &c)| (c, i as u32))
            .collect();
        let mut uf = rpdbscan_core::graph::UnionFind::new(core.len());
        for &c in &core {
            for n in &self.cells[c].neighbors {
                if let Some(&j) = dense.get(n) {
                    uf.union(dense[c], j);
                }
            }
        }
        // First pass, in coordinate order: each component claims the
        // first previous id among its members that is still unclaimed.
        let mut cluster_of_root: FxHashMap<u32, u32> = FxHashMap::default();
        let mut claimed = FxHashSet::default();
        let mut root_order: Vec<u32> = Vec::new();
        for &c in &core {
            let root = uf.find(dense[c]);
            if !cluster_of_root.contains_key(&root) {
                root_order.push(root);
            }
            if let std::collections::hash_map::Entry::Vacant(slot) = cluster_of_root.entry(root) {
                if let Some(&prev) = self.cluster_of_cell.get(c) {
                    if claimed.insert(prev) {
                        slot.insert(prev);
                    }
                }
            }
        }
        // Second pass: unclaimed components (new, or split losers) take
        // the smallest free ids in first-member coordinate order.
        let mut next_free = 0u32;
        for root in root_order {
            if cluster_of_root.contains_key(&root) {
                continue;
            }
            while claimed.contains(&next_free) {
                next_free += 1;
            }
            claimed.insert(next_free);
            cluster_of_root.insert(root, next_free);
        }
        let mut cluster_of_cell: FxHashMap<CellCoord, u32> = FxHashMap::default();
        for &c in &core {
            let cid = cluster_of_root[&uf.find(dense[c])];
            cluster_of_cell.insert(c.clone(), cid);
        }
        // Stamp every id movement into the epoch's dirty set: cells
        // whose id changed or that just became core, and cells that
        // stopped being core. The serving layer's incremental publish
        // reads these stamps instead of re-scanning every record.
        // lint:allow(unordered-iter): stamps land in a map keyed by the same coords, so visit order is immaterial
        for (c, &cid) in &cluster_of_cell {
            if self.cluster_of_cell.get(c) != Some(&cid) {
                self.touched_epoch.insert(c.clone(), self.epoch);
            }
        }
        for c in self.cluster_of_cell.keys() {
            if !cluster_of_cell.contains_key(c) {
                self.touched_epoch.insert(c.clone(), self.epoch);
            }
        }
        self.num_clusters = cluster_of_root.len();
        self.cluster_of_cell = cluster_of_cell;
    }
}
