//! Sliding-window ingestion: the TTL workload that makes deletion-side
//! repair matter.
//!
//! [`SlidingWindow`] wraps a [`StreamingRpDbscan`] and bounds the number
//! of live points: each [`SlidingWindow::push_batch`] inserts at the
//! front of the arrival order and expires the oldest points past the
//! window through the existing exact [`StreamingRpDbscan::remove_batch`]
//! path (the Ester et al. 1998 incremental-DBSCAN lineage — insertions
//! *and* deletions maintained exactly). One push therefore advances one
//! or two epochs, and the wrapped stream's snapshot always equals a
//! batch run over exactly the surviving points.

use crate::{StreamError, StreamPointId, StreamingRpDbscan};
use std::collections::VecDeque;

/// A [`StreamingRpDbscan`] with sliding-window expiry; see the module
/// docs.
#[derive(Debug)]
pub struct SlidingWindow {
    stream: StreamingRpDbscan,
    window: usize,
    /// Live ids in arrival order: front = oldest (next to expire). Slot
    /// recycling keeps each live id in the queue exactly once.
    arrivals: VecDeque<StreamPointId>,
    last_expired: usize,
}

impl SlidingWindow {
    /// Wraps `stream`, keeping at most `window` live points. The stream's
    /// current live points (if any) count as the oldest arrivals, in id
    /// order. A zero window is rejected with
    /// [`StreamError::InvalidWindow`].
    pub fn new(stream: StreamingRpDbscan, window: usize) -> Result<Self, StreamError> {
        if window == 0 {
            return Err(StreamError::InvalidWindow);
        }
        let arrivals: VecDeque<StreamPointId> = stream.snapshot().ids.into_iter().collect();
        let mut w = Self {
            stream,
            window,
            arrivals,
            last_expired: 0,
        };
        w.expire_excess()?;
        Ok(w)
    }

    /// Inserts a micro-batch (flat coordinates, `dim` values per point)
    /// at the front of the window, then expires the oldest points beyond
    /// the window bound. Returns the inserted ids in batch order;
    /// [`Self::last_expired`] reports how many points the push evicted.
    pub fn push_batch(&mut self, flat: &[f64]) -> Result<Vec<StreamPointId>, StreamError> {
        let ids = self.stream.insert_batch(flat)?;
        self.arrivals.extend(ids.iter().copied());
        self.expire_excess()?;
        Ok(ids)
    }

    fn expire_excess(&mut self) -> Result<(), StreamError> {
        let excess = self.arrivals.len().saturating_sub(self.window);
        self.last_expired = excess;
        if excess > 0 {
            let expired: Vec<StreamPointId> = self.arrivals.drain(..excess).collect();
            self.stream.remove_batch(&expired)?;
        }
        Ok(())
    }

    /// The wrapped stream (snapshots, exports, delta accessors).
    pub fn stream(&self) -> &StreamingRpDbscan {
        &self.stream
    }

    /// Number of live points (at most the window bound).
    pub fn len(&self) -> usize {
        self.stream.len()
    }

    /// Whether the window holds no live points.
    pub fn is_empty(&self) -> bool {
        self.stream.is_empty()
    }

    /// The configured window bound.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Points the most recent push (or construction) expired.
    pub fn last_expired(&self) -> usize {
        self.last_expired
    }

    /// Unwraps the window, returning the stream with its current live
    /// set.
    pub fn into_stream(self) -> StreamingRpDbscan {
        self.stream
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpdbscan_core::{RpDbscan, RpDbscanParams};
    use rpdbscan_metrics::{rand_index, NoisePolicy};

    fn line(lo: usize, hi: usize) -> Vec<f64> {
        (lo..hi).flat_map(|i| [i as f64 * 0.2, 0.0]).collect()
    }

    #[test]
    fn zero_window_is_rejected() {
        let s = StreamingRpDbscan::new(2, RpDbscanParams::new(1.0, 3)).unwrap();
        assert_eq!(
            SlidingWindow::new(s, 0).err(),
            Some(StreamError::InvalidWindow)
        );
    }

    #[test]
    fn pushes_expire_the_oldest_points_exactly() {
        let s = StreamingRpDbscan::new(2, RpDbscanParams::new(1.0, 3)).unwrap();
        let mut w = SlidingWindow::new(s, 20).unwrap();
        let first = w.push_batch(&line(0, 15)).unwrap();
        assert_eq!(w.len(), 15);
        assert_eq!(w.last_expired(), 0);
        w.push_batch(&line(15, 30)).unwrap();
        // 30 arrivals against a 20-point window: the 10 oldest go.
        assert_eq!(w.len(), 20);
        assert_eq!(w.last_expired(), 10);
        let live: Vec<StreamPointId> = w.stream().snapshot().ids;
        for id in &first[..10] {
            assert!(!live.contains(id), "expired id {id:?} still live");
        }
        for id in &first[10..] {
            assert!(live.contains(id), "surviving id {id:?} was expired");
        }
    }

    #[test]
    fn windowed_snapshot_matches_a_batch_run_over_the_survivors() {
        let params = RpDbscanParams::new(1.0, 3);
        let s = StreamingRpDbscan::new(2, params).unwrap();
        let mut w = SlidingWindow::new(s, 25).unwrap();
        // Slide far enough that every point of the first pushes expires,
        // including a push larger than the window itself.
        for (lo, hi) in [(0, 10), (10, 40), (40, 55)] {
            w.push_batch(&line(lo, hi)).unwrap();
        }
        assert_eq!(w.len(), 25);
        let snap = w.stream().snapshot();
        let batch = RpDbscan::new(params)
            .unwrap()
            .run_local(&w.stream().dataset())
            .unwrap();
        assert_eq!(
            rand_index(&snap.labels, &batch.clustering, NoisePolicy::SingleCluster),
            1.0
        );
    }
}
