//! The streaming subsystem's headline invariant: after any interleaving of
//! insert/remove micro-batches, the incremental clustering equals a fresh
//! batch `RpDbscan::run_local` over the surviving points — Rand index 1.0,
//! not merely "close".

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rpdbscan_core::{RpDbscan, RpDbscanParams};
use rpdbscan_data::synth::{blobs, gaussian_mixture_with, moons, SynthConfig};
use rpdbscan_geom::Dataset;
use rpdbscan_metrics::{rand_index, NoisePolicy};
use rpdbscan_stream::{StreamPointId, StreamingRpDbscan};

/// Replays `data` into a stream as a random interleaving of insert and
/// remove batches (driven by `seed`), checking after every applied batch
/// that the snapshot equals the batch algorithm over the live points.
fn check_random_interleaving(data: &Dataset, params: RpDbscanParams, seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut order: Vec<usize> = (0..data.len()).collect();
    order.shuffle(&mut rng);
    let mut s = StreamingRpDbscan::new(data.dim(), params).expect("valid stream params");
    let mut live: Vec<StreamPointId> = Vec::new();
    let mut next = 0usize;
    let mut applied = 0usize;
    while next < order.len() || applied < 6 {
        let do_remove = !live.is_empty() && (next >= order.len() || rng.gen_range(0..10) < 4);
        if do_remove {
            let k = rng.gen_range(1..=live.len().min(40));
            let mut doomed = Vec::with_capacity(k);
            for _ in 0..k {
                let i = rng.gen_range(0..live.len());
                doomed.push(live.swap_remove(i));
            }
            s.remove_batch(&doomed).expect("remove live ids");
        } else {
            let k = rng.gen_range(1..=(order.len() - next).min(60));
            let mut flat = Vec::with_capacity(k * data.dim());
            for &i in &order[next..next + k] {
                flat.extend_from_slice(data.point_at(i));
            }
            next += k;
            live.extend(s.insert_batch(&flat).expect("insert batch"));
        }
        applied += 1;

        let current = s.dataset();
        assert_eq!(current.len(), live.len());
        let snap = s.snapshot();
        assert_eq!(snap.epoch, applied as u64);
        if current.is_empty() {
            continue;
        }
        let batch = RpDbscan::new(params)
            .expect("valid params")
            .run_local(&current)
            .expect("batch run succeeds");
        let ri = rand_index(&snap.labels, &batch.clustering, NoisePolicy::SingleCluster);
        assert_eq!(
            ri,
            1.0,
            "epoch {} ({} live points): stream diverged from batch",
            snap.epoch,
            current.len()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn moons_interleavings_match_batch(seed in 0u64..10_000) {
        let data = moons(SynthConfig::new(220).with_seed(seed), 0.05);
        let params = RpDbscanParams::new(0.2, 4);
        check_random_interleaving(&data, params, seed);
    }

    #[test]
    fn blobs_interleavings_match_batch(seed in 0u64..10_000) {
        let data = blobs(SynthConfig::new(240).with_seed(seed.wrapping_add(1)), 3, 1.0, 40.0);
        let params = RpDbscanParams::new(1.0, 5);
        check_random_interleaving(&data, params, seed);
    }

    #[test]
    fn gaussian_mixture_interleavings_match_batch(seed in 0u64..10_000) {
        let data = gaussian_mixture_with(
            SynthConfig::new(240).with_seed(seed.wrapping_add(2)),
            3,
            1.0,
            4,
            30.0,
        );
        let params = RpDbscanParams::new(1.2, 5);
        check_random_interleaving(&data, params, seed);
    }
}

/// Two dense blocks joined by a two-row bridge: removing the bridge must
/// split the cluster, re-inserting it must merge the halves back — and at
/// every stage the stream must agree with the batch algorithm.
#[test]
fn bridge_removal_splits_and_reinsertion_merges() {
    let params = RpDbscanParams::new(0.5, 4);
    let block = |x0: f64| -> Vec<f64> {
        let mut v = Vec::new();
        for i in 0..5 {
            for j in 0..3 {
                v.extend([x0 + i as f64 * 0.3, j as f64 * 0.3]);
            }
        }
        v
    };
    let bridge: Vec<f64> = {
        let mut v = Vec::new();
        let mut x = 1.5;
        while x < 4.75 {
            v.extend([x, 0.0]);
            v.extend([x, 0.3]);
            x += 0.3;
        }
        v
    };

    let mut s = StreamingRpDbscan::new(2, params).unwrap();
    s.insert_batch(&block(0.0)).unwrap();
    s.insert_batch(&block(4.8)).unwrap();
    let check = |s: &StreamingRpDbscan| {
        let snap = s.snapshot();
        let batch = RpDbscan::new(params)
            .unwrap()
            .run_local(&s.dataset())
            .unwrap();
        let ri = rand_index(&snap.labels, &batch.clustering, NoisePolicy::SingleCluster);
        assert_eq!(ri, 1.0, "epoch {}", snap.epoch);
        snap.labels.num_clusters()
    };
    assert_eq!(check(&s), 2, "separated blocks are two clusters");

    let bridge_ids = s.insert_batch(&bridge).unwrap();
    assert_eq!(check(&s), 1, "the bridge merges the blocks");

    s.remove_batch(&bridge_ids).unwrap();
    assert_eq!(check(&s), 2, "removing the bridge splits the cluster");

    s.insert_batch(&bridge).unwrap();
    assert_eq!(check(&s), 1, "re-inserting the bridge merges again");
}

/// Draining the stream completely and refilling it must work: slot reuse,
/// dictionary compaction, and component rebuilds all get exercised.
#[test]
fn drain_and_refill() {
    let params = RpDbscanParams::new(1.0, 4);
    let data = blobs(SynthConfig::new(120).with_seed(9), 2, 0.8, 20.0);
    let mut s = StreamingRpDbscan::new(2, params).unwrap();
    let ids = s.insert_batch(data.flat()).unwrap();
    s.remove_batch(&ids).unwrap();
    assert!(s.is_empty());
    assert_eq!(s.snapshot().labels.len(), 0);
    let ids2 = s.insert_batch(data.flat()).unwrap();
    assert_eq!(ids2.len(), data.len());
    let batch = RpDbscan::new(params)
        .unwrap()
        .run_local(&s.dataset())
        .unwrap();
    let ri = rand_index(
        &s.snapshot().labels,
        &batch.clustering,
        NoisePolicy::SingleCluster,
    );
    assert_eq!(ri, 1.0);
}

/// Input validation: malformed batches are rejected without mutating the
/// stream.
#[test]
fn invalid_batches_are_rejected() {
    use rpdbscan_stream::StreamError;
    let mut s = StreamingRpDbscan::new(2, RpDbscanParams::new(1.0, 4)).unwrap();
    // Ragged flat buffer.
    assert!(matches!(
        s.insert_batch(&[1.0, 2.0, 3.0]),
        Err(StreamError::DimensionMismatch { .. })
    ));
    // Non-finite coordinate.
    assert!(matches!(
        s.insert_batch(&[0.0, f64::NAN]),
        Err(StreamError::NonFinite { index: 0 })
    ));
    // Unknown and repeated removals.
    let ids = s.insert_batch(&[0.0, 0.0, 1.0, 1.0]).unwrap();
    assert!(matches!(
        s.remove_batch(&[StreamPointId(99)]),
        Err(StreamError::UnknownPoint(99))
    ));
    assert!(matches!(
        s.remove_batch(&[ids[0], ids[0]]),
        Err(StreamError::UnknownPoint(_))
    ));
    // Failed validation left the points alone.
    assert_eq!(s.len(), 2);
    // min_pts = 0 rejected at construction.
    assert!(matches!(
        StreamingRpDbscan::new(2, RpDbscanParams::new(1.0, 0)),
        Err(StreamError::InvalidMinPts(0))
    ));
}

/// Query-plan lifecycle across epochs: a dense cell's plan is built when
/// the cell first runs full region queries, dropped (counted as
/// invalidated) when a later batch dirties the cell, and rebuilt against
/// the new dictionary on next use. Sparse cells never plan at all — the
/// cost model routes them to the kd path.
#[test]
fn dirtied_cell_plan_is_invalidated_and_rebuilt() {
    let params = RpDbscanParams::new(1.0, 3);
    let mut s = StreamingRpDbscan::new(2, params).unwrap();
    // Batch 1: a tight 12-point clump inside one cell (side = 1/√2 ≈
    // 0.707) — occupancy clears the cost model's break-even floor, so
    // the repair epoch plans the cell.
    let b1: Vec<f64> = (0..12).flat_map(|i| [i as f64 * 0.05, 0.0]).collect();
    s.insert_batch(&b1).unwrap();
    let after1 = s.snapshot().stats;
    assert!(
        after1.plans_built >= 1,
        "dense first batch must plan its cell"
    );
    assert!(after1.cells_routed_planned >= 1);
    assert!(
        after1.route_min_occupancy >= 8,
        "break-even floor missing from stats"
    );
    assert_eq!(after1.plans_invalidated, 0);
    // Batch 2 dirties the same cell: the epoch-1 plan embeds stale
    // dictionary indices, so it must be invalidated and a fresh plan
    // built for the new epoch.
    s.insert_batch(&[0.02, 0.01]).unwrap();
    let after2 = s.snapshot().stats;
    assert!(after2.plans_invalidated >= 1, "dirtied cell keeps its plan");
    assert!(after2.plans_built > after1.plans_built, "plan not rebuilt");
    // A sparse stream (occupancy below break-even) never builds a plan —
    // the cost model routes its cells to the kd path structurally — and
    // the clustering is identical to a dense-equivalent batch run.
    let mut sparse = StreamingRpDbscan::new(2, params).unwrap();
    let b_sparse: Vec<f64> = (0..5).flat_map(|i| [i as f64 * 0.05, 0.0]).collect();
    sparse.insert_batch(&b_sparse).unwrap();
    sparse.insert_batch(&[0.02, 0.01]).unwrap();
    let stats = sparse.snapshot().stats;
    assert_eq!(stats.plans_built, 0, "sparse cells must route kd");
    assert_eq!(stats.cells_routed_planned, 0);
    assert!(stats.cells_routed_kd >= 1);
    assert_eq!(stats.plans_invalidated, 0);
    let batch = RpDbscan::new(params)
        .unwrap()
        .run_local(&sparse.dataset())
        .unwrap();
    let ri = rand_index(
        &sparse.snapshot().labels,
        &batch.clustering,
        NoisePolicy::SingleCluster,
    );
    assert_eq!(ri, 1.0, "kd-routed stream diverged from batch");
}
