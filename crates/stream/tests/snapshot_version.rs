//! Snapshot versioning: `Snapshot::epoch()` is a stable version marker
//! that only moves when a batch is applied, so hot-swap publishers can
//! skip republishing unchanged epochs.

use rpdbscan_core::{DensityBackendKind, RpDbscanParams};
use rpdbscan_stream::{StreamError, StreamPointId, StreamingRpDbscan};

fn grid_batch(n: usize) -> Vec<f64> {
    let mut flat = Vec::with_capacity(n * 2);
    for i in 0..n {
        flat.extend([(i % 8) as f64 * 0.3, (i / 8) as f64 * 0.3]);
    }
    flat
}

#[test]
fn repeated_snapshots_share_a_version() {
    let params = RpDbscanParams::new(1.0, 4);
    let mut s = StreamingRpDbscan::new(2, params).unwrap();
    let ids = s.insert_batch(&grid_batch(32)).unwrap();

    let a = s.snapshot();
    let b = s.snapshot();
    assert_eq!(a.epoch(), b.epoch(), "no batch ran between snapshots");
    assert_eq!(a.epoch, a.epoch(), "accessor mirrors the public field");
    assert_eq!(a.ids, b.ids);
    assert_eq!(a.labels.labels(), b.labels.labels());

    // Each applied batch advances the version by exactly one — inserts
    // and removals alike.
    let after_insert = {
        s.insert_batch(&[10.0, 10.0]).unwrap();
        s.snapshot().epoch()
    };
    assert_eq!(after_insert, a.epoch() + 1);

    let removed: Vec<StreamPointId> = ids[..4].to_vec();
    s.remove_batch(&removed).unwrap();
    let after_remove = s.snapshot().epoch();
    assert_eq!(after_remove, after_insert + 1);

    // And again: quiescent snapshots stay on the new version.
    assert_eq!(s.snapshot().epoch(), after_remove);
}

#[test]
fn export_cells_is_sorted_and_covers_every_occupied_cell() {
    let params = RpDbscanParams::new(1.0, 4);
    let mut s = StreamingRpDbscan::new(2, params).unwrap();
    s.insert_batch(&grid_batch(40)).unwrap();
    // A lone far-away point: a non-core occupied cell with no preds.
    s.insert_batch(&[100.0, 100.0]).unwrap();

    let cells = s.export_cells();
    assert!(!cells.is_empty());
    for w in cells.windows(2) {
        assert!(w[0].coord < w[1].coord, "exports sorted by coordinate");
    }
    let n_core_pts: usize = cells.iter().map(|c| c.core_coords.len() / 2).sum();
    assert!(n_core_pts > 0, "the dense grid has core points");
    for c in &cells {
        if c.cluster.is_some() {
            assert!(c.preds.is_empty(), "core cells carry no preds");
            assert!(!c.core_coords.is_empty());
        } else {
            assert!(
                c.core_coords.is_empty(),
                "non-core cells have no core points"
            );
            for w in c.preds.windows(2) {
                assert!(w[0] < w[1], "preds sorted by coordinate");
            }
        }
    }
}

#[test]
fn approximate_backends_are_rejected_at_construction() {
    for kind in [
        DensityBackendKind::MutualKnn { k: 10 },
        DensityBackendKind::SampledCore { sample_frac: 0.2 },
    ] {
        let params = RpDbscanParams::new(1.0, 4).with_density_backend(kind);
        let err = StreamingRpDbscan::new(2, params).unwrap_err();
        assert_eq!(err, StreamError::UnsupportedBackend(kind.name()));
        assert!(err.to_string().contains("exact density backend"), "{err}");
    }
}

#[test]
fn stream_stats_carry_the_backend_tag() {
    let mut s = StreamingRpDbscan::new(2, RpDbscanParams::new(1.0, 4)).unwrap();
    s.insert_batch(&grid_batch(16)).unwrap();
    assert_eq!(s.snapshot().stats.backend, "exact");
}
