//! Typed error propagation for serialized cell dictionaries: corrupt or
//! incompatible input must surface as `StreamError` values, never panics.

use rpdbscan_core::RpDbscanParams;
use rpdbscan_grid::DecodeError;
use rpdbscan_stream::{StreamError, StreamingRpDbscan};

fn stream_with_points() -> StreamingRpDbscan {
    let mut s = StreamingRpDbscan::new(2, RpDbscanParams::new(1.0, 3)).unwrap();
    let mut batch = Vec::new();
    for i in 0..12 {
        batch.extend([(i % 4) as f64 * 0.3, (i / 4) as f64 * 0.3]);
    }
    s.insert_batch(&batch).unwrap();
    s
}

#[test]
fn encoded_dictionary_round_trips() {
    let s = stream_with_points();
    let bytes = s.encode_dictionary();
    let dict = s.check_dictionary(&bytes).expect("own dictionary is valid");
    assert!(dict.num_cells() > 0);
}

#[test]
fn truncated_dictionary_is_a_typed_error() {
    let s = stream_with_points();
    let bytes = s.encode_dictionary();
    for cut in [1, bytes.len() / 3, bytes.len() - 1] {
        match s.check_dictionary(&bytes[..cut]) {
            Err(StreamError::Dictionary(e)) => {
                assert!(
                    matches!(e, DecodeError::Truncated | DecodeError::BadMagic),
                    "cut at {cut}: unexpected decode error {e:?}"
                );
            }
            other => panic!("cut at {cut}: expected Dictionary error, got {other:?}"),
        }
    }
}

#[test]
fn garbage_dictionary_is_a_typed_error() {
    let s = stream_with_points();
    assert!(matches!(
        s.check_dictionary(b"not a dictionary at all"),
        Err(StreamError::Dictionary(DecodeError::BadMagic))
    ));
    assert!(matches!(
        s.check_dictionary(&[]),
        Err(StreamError::Dictionary(DecodeError::Truncated))
    ));
}

#[test]
fn mismatched_grid_is_reported_with_both_specs() {
    let s = stream_with_points();
    let other = {
        let mut o = StreamingRpDbscan::new(2, RpDbscanParams::new(2.0, 3)).unwrap();
        o.insert_batch(&[0.0, 0.0, 0.1, 0.1, 0.2, 0.0]).unwrap();
        o.encode_dictionary()
    };
    match s.check_dictionary(&other) {
        Err(StreamError::DictionaryMismatch { expected, got }) => {
            assert_eq!(expected.0, 2);
            assert_eq!(got.0, 2);
            assert!(
                expected.1 != got.1,
                "eps should differ: {expected:?} {got:?}"
            );
        }
        other => panic!("expected DictionaryMismatch, got {other:?}"),
    }
}

#[test]
fn error_messages_name_the_failure() {
    let s = stream_with_points();
    let msg = s.check_dictionary(&[]).unwrap_err().to_string();
    assert!(msg.contains("corrupt dictionary"), "{msg}");
    assert!(msg.contains("truncated"), "{msg}");
}
