//! Streaming epochs must be observable through the engine's instrumentation:
//! every micro-batch runs as named recurring stages (`epoch-{n}:{step}`)
//! that show up in both the stage metrics and the Chrome trace export.

use rpdbscan_core::RpDbscanParams;
use rpdbscan_engine::parse_epoch_stage;
use rpdbscan_stream::{StreamPointId, StreamingRpDbscan};

fn grid_batch(x0: f64, n: usize) -> Vec<f64> {
    let mut v = Vec::with_capacity(n * 2);
    for i in 0..n {
        v.extend([x0 + (i % 8) as f64 * 0.4, (i / 8) as f64 * 0.4]);
    }
    v
}

#[test]
fn epochs_appear_as_named_recurring_stages() {
    let mut s = StreamingRpDbscan::new(2, RpDbscanParams::new(0.6, 4)).unwrap();
    let ids = s.insert_batch(&grid_batch(0.0, 40)).unwrap();
    s.insert_batch(&grid_batch(10.0, 40)).unwrap();
    let doomed: Vec<StreamPointId> = ids[..10].to_vec();
    s.remove_batch(&doomed).unwrap();

    let report = s.report();
    assert_eq!(report.epochs(), vec![1, 2, 3], "one epoch per micro-batch");

    // Each epoch records the same recurring steps, disambiguated by number.
    let mut steps_by_epoch = vec![Vec::new(); 4];
    for stage in &report.stages {
        let (epoch, step) = parse_epoch_stage(&stage.name)
            .unwrap_or_else(|| panic!("stage `{}` is not epoch-scoped", stage.name));
        steps_by_epoch[epoch as usize].push(step.to_string());
    }
    for (epoch, steps) in steps_by_epoch.iter().enumerate().skip(1) {
        for step in ["ingest", "repair", "relabel"] {
            assert!(
                steps.iter().any(|s| s == step),
                "epoch {epoch} missing step `{step}`: {steps:?}"
            );
        }
    }

    // And the Chrome trace export carries the same names on its spans.
    let trace = report.chrome_trace_json();
    for needle in [
        "epoch-1:ingest",
        "epoch-1:repair",
        "epoch-2:ingest",
        "epoch-2:repair",
        "epoch-3:ingest",
        "epoch-3:repair",
    ] {
        assert!(trace.contains(needle), "trace missing `{needle}`");
    }
}
