//! Chunked distance kernel over flat structure-of-arrays centre buffers.
//!
//! Every hot region-query loop in the workspace used to hand-roll the same
//! scan: walk a flat `f64` buffer of candidate coordinates (dim-strided),
//! compute `dist2` against one query point, and compare against `eps²`.
//! This module is the single shared implementation of that scan, shaped so
//! the autovectoriser can lift it into SIMD lanes:
//!
//! * candidates are processed in fixed-width chunks of [`LANES`] with one
//!   independent `f64` accumulator per lane — no loop-carried dependency
//!   across candidates, so the per-dimension inner loop vectorises;
//! * the threshold comparison produces a per-lane boolean mask that the
//!   caller consumes (count, sum, or early-exit) without branching inside
//!   the accumulation loop;
//! * nothing here allocates — callers bring slices and closures.
//!
//! # Bit-exactness contract
//!
//! For every candidate `k`, the accumulated value compared against `eps2`
//! is produced by the *identical* floating-point operation sequence as
//! [`crate::distance::dist2`]`(q, &centers[k*dim..(k+1)*dim])`: squared
//! per-dimension differences added in increasing dimension order. Each lane
//! owns exactly one candidate, so chunking changes *which* candidates are
//! in flight concurrently, never the order of additions *within* a
//! candidate. Every predicate evaluated here is therefore bit-identical to
//! the scalar loop it replaces, and integer reductions over the mask
//! (candidate counts, density sums) are order-insensitive. This is what
//! lets the planned-vs-oracle and serve equivalence suites pin results
//! bit-for-bit across kernel adoption.

use crate::distance::dist2;

/// Number of candidates accumulated concurrently per chunk.
///
/// Eight `f64` accumulators fill one AVX-512 register or two AVX2
/// registers; the tail shorter than a chunk falls back to the scalar
/// [`dist2`] path, which is bit-identical per candidate anyway.
pub const LANES: usize = 8;

/// Invokes `hit(k)` for every candidate `k` (in increasing order) whose
/// squared distance to `q` is `<= eps2`.
///
/// `centers` is a flat dim-strided buffer holding `centers.len() / dim`
/// candidates. `dim` must be non-zero and divide `centers.len()`, and
/// `q.len()` must equal `dim` (debug-asserted).
// lint:hot
#[inline]
pub fn for_each_within(q: &[f64], centers: &[f64], dim: usize, eps2: f64, hit: impl FnMut(usize)) {
    debug_assert!(dim > 0, "zero-dimensional kernel scan");
    debug_assert_eq!(q.len(), dim, "query dimension mismatch in kernel scan");
    debug_assert_eq!(centers.len() % dim, 0, "ragged centre buffer");
    // One dispatch per scan: monomorphic bodies for the common low
    // dimensions give the autovectoriser fixed strides for both the
    // chunk loop and the sub-chunk tail. Identical per-candidate FP
    // order in every arm — see the bit-exactness contract above.
    match dim {
        2 => scan_fixed::<2>(q, centers, eps2, hit),
        3 => scan_fixed::<3>(q, centers, eps2, hit),
        4 => scan_fixed::<4>(q, centers, eps2, hit),
        _ => scan_dyn(q, centers, dim, eps2, hit),
    }
}

/// [`for_each_within`] with the dimension known at compile time.
// lint:hot
#[inline]
fn scan_fixed<const DIM: usize>(q: &[f64], centers: &[f64], eps2: f64, mut hit: impl FnMut(usize)) {
    let n = centers.len() / DIM;
    let chunks = n / LANES;
    for c in 0..chunks {
        let base = c * LANES;
        let mask = chunk_mask_fixed::<DIM>(q, &centers[base * DIM..(base + LANES) * DIM], eps2);
        for (l, &m) in mask.iter().enumerate() {
            if m {
                hit(base + l);
            }
        }
    }
    for k in chunks * LANES..n {
        // Same squared-difference sum as `dist2`, increasing dimension
        // order, with a compile-time trip count.
        let mut acc = 0.0;
        for a in 0..DIM {
            let d = q[a] - centers[k * DIM + a];
            acc += d * d;
        }
        if acc <= eps2 {
            hit(k);
        }
    }
}

// lint:hot
#[inline]
fn scan_dyn(q: &[f64], centers: &[f64], dim: usize, eps2: f64, mut hit: impl FnMut(usize)) {
    let n = centers.len() / dim;
    let chunks = n / LANES;
    for c in 0..chunks {
        let base = c * LANES;
        let mask = chunk_mask(q, &centers[base * dim..(base + LANES) * dim], dim, eps2);
        for (l, &m) in mask.iter().enumerate() {
            if m {
                hit(base + l);
            }
        }
    }
    for k in chunks * LANES..n {
        if dist2(q, &centers[k * dim..(k + 1) * dim]) <= eps2 {
            hit(k);
        }
    }
}

/// Counts the candidates within `eps2` of `q` and sums their `u32`
/// weights, returning `(hits, weight_sum)`.
///
/// This is the region-query density reduction: `weights[k]` is the point
/// count of sub-cell `k`, and the sum is the `(ε,ρ)`-region density
/// contribution of the tested sub-cells. Integer sums are associative, so
/// the chunked evaluation order cannot change the result.
// lint:hot
#[inline]
pub fn sum_within_u32(
    q: &[f64],
    centers: &[f64],
    dim: usize,
    eps2: f64,
    weights: &[u32],
) -> (u32, u64) {
    debug_assert_eq!(
        centers.len(),
        weights.len() * dim,
        "weights/centres length mismatch"
    );
    let mut hits = 0u32;
    let mut sum = 0u64;
    for_each_within(q, centers, dim, eps2, |k| {
        hits += 1;
        sum += weights[k] as u64;
    });
    (hits, sum)
}

/// Sums the `u64` weights of candidates within `eps2` of `q`.
///
/// Same reduction as [`sum_within_u32`] for callers whose counts are
/// already widened (the serving layer's sub-cell records).
// lint:hot
#[inline]
pub fn sum_within_u64(q: &[f64], centers: &[f64], dim: usize, eps2: f64, weights: &[u64]) -> u64 {
    debug_assert_eq!(
        centers.len(),
        weights.len() * dim,
        "weights/centres length mismatch"
    );
    let mut sum = 0u64;
    for_each_within(q, centers, dim, eps2, |k| sum += weights[k]);
    sum
}

/// Returns `true` if any candidate lies within `eps2` of `q`.
///
/// Scans chunk-at-a-time and exits after the first chunk containing a hit;
/// existence is order-insensitive, so the early exit cannot change the
/// answer relative to a full scalar scan.
// lint:hot
#[inline]
pub fn any_within(q: &[f64], centers: &[f64], dim: usize, eps2: f64) -> bool {
    debug_assert!(dim > 0, "zero-dimensional kernel scan");
    debug_assert_eq!(q.len(), dim, "query dimension mismatch in kernel scan");
    debug_assert_eq!(centers.len() % dim, 0, "ragged centre buffer");
    match dim {
        2 => any_fixed::<2>(q, centers, eps2),
        3 => any_fixed::<3>(q, centers, eps2),
        4 => any_fixed::<4>(q, centers, eps2),
        _ => any_dyn(q, centers, dim, eps2),
    }
}

/// [`any_within`] with the dimension known at compile time.
// lint:hot
#[inline]
fn any_fixed<const DIM: usize>(q: &[f64], centers: &[f64], eps2: f64) -> bool {
    let n = centers.len() / DIM;
    let chunks = n / LANES;
    for c in 0..chunks {
        let base = c * LANES;
        let mask = chunk_mask_fixed::<DIM>(q, &centers[base * DIM..(base + LANES) * DIM], eps2);
        if mask.iter().any(|&m| m) {
            return true;
        }
    }
    for k in chunks * LANES..n {
        let mut acc = 0.0;
        for a in 0..DIM {
            let d = q[a] - centers[k * DIM + a];
            acc += d * d;
        }
        if acc <= eps2 {
            return true;
        }
    }
    false
}

// lint:hot
#[inline]
fn any_dyn(q: &[f64], centers: &[f64], dim: usize, eps2: f64) -> bool {
    let n = centers.len() / dim;
    let chunks = n / LANES;
    for c in 0..chunks {
        let base = c * LANES;
        let mask = chunk_mask(q, &centers[base * dim..(base + LANES) * dim], dim, eps2);
        if mask.iter().any(|&m| m) {
            return true;
        }
    }
    for k in chunks * LANES..n {
        if dist2(q, &centers[k * dim..(k + 1) * dim]) <= eps2 {
            return true;
        }
    }
    false
}

/// Accumulates one full chunk of `LANES` candidates and returns the
/// per-lane `dist2 <= eps2` mask.
///
/// `block` holds exactly `LANES * dim` coordinates. Dimensions advance in
/// the outer loop and lanes in the inner loop, so each lane adds its
/// squared differences in the same order as the scalar [`dist2`] — the
/// accumulated value per candidate is bit-identical.
// lint:hot
#[inline]
fn chunk_mask(q: &[f64], block: &[f64], dim: usize, eps2: f64) -> [bool; LANES] {
    let mut acc = [0.0f64; LANES];
    for (a, &qa) in q.iter().enumerate() {
        for (l, acc_l) in acc.iter_mut().enumerate() {
            let d = block[l * dim + a] - qa;
            *acc_l += d * d;
        }
    }
    finish_mask(acc, eps2)
}

/// [`chunk_mask`] with the dimension known at compile time: the loads
/// are fixed-stride, so the lane loop lifts into SIMD. Each lane still
/// adds its squared differences in increasing dimension order — the
/// accumulated value per candidate is unchanged down to the last bit.
// lint:hot
#[inline]
fn chunk_mask_fixed<const DIM: usize>(q: &[f64], block: &[f64], eps2: f64) -> [bool; LANES] {
    let mut acc = [0.0f64; LANES];
    for (a, &qa) in q.iter().enumerate().take(DIM) {
        for (l, acc_l) in acc.iter_mut().enumerate() {
            let d = block[l * DIM + a] - qa;
            *acc_l += d * d;
        }
    }
    finish_mask(acc, eps2)
}

// lint:hot
#[inline]
fn finish_mask(acc: [f64; LANES], eps2: f64) -> [bool; LANES] {
    let mut mask = [false; LANES];
    for (l, m) in mask.iter_mut().enumerate() {
        *m = acc[l] <= eps2;
    }
    mask
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-random coordinates with awkward magnitudes so
    /// float rounding differences (if any existed) would surface.
    fn synth(n: usize, dim: usize, seed: u64) -> Vec<f64> {
        let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
        let mut out = Vec::with_capacity(n * dim);
        for _ in 0..n * dim {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            // Spread over [-8, 8) with plenty of mantissa noise.
            out.push((state as f64 / u64::MAX as f64) * 16.0 - 8.0);
        }
        out
    }

    fn scalar_hits(q: &[f64], centers: &[f64], dim: usize, eps2: f64) -> Vec<usize> {
        (0..centers.len() / dim)
            .filter(|&k| dist2(q, &centers[k * dim..(k + 1) * dim]) <= eps2)
            .collect()
    }

    #[test]
    fn kernel_matches_scalar_scan_bit_for_bit() {
        for dim in 1..=5 {
            // Lengths straddling chunk boundaries: empty, sub-chunk, exact
            // multiples, and ragged tails.
            for n in [0, 1, 7, 8, 9, 15, 16, 17, 64, 101] {
                let centers = synth(n, dim, (dim * 1000 + n) as u64);
                let q = synth(1, dim, 77);
                for eps2 in [0.0, 1.0, 25.0, 150.0, f64::INFINITY] {
                    let expect = scalar_hits(&q, &centers, dim, eps2);
                    let mut got = Vec::new();
                    for_each_within(&q, &centers, dim, eps2, |k| got.push(k));
                    assert_eq!(got, expect, "dim={dim} n={n} eps2={eps2}");
                    assert_eq!(
                        any_within(&q, &centers, dim, eps2),
                        !expect.is_empty(),
                        "any_within diverged: dim={dim} n={n} eps2={eps2}"
                    );
                }
            }
        }
    }

    #[test]
    fn kernel_threshold_is_inclusive_like_dist2() {
        // A candidate at exactly eps must be reported — same inclusive
        // comparison as the scalar path.
        let centers = [3.0, 4.0, 100.0, 100.0];
        let mut got = Vec::new();
        for_each_within(&[0.0, 0.0], &centers, 2, 25.0, |k| got.push(k));
        assert_eq!(got, vec![0]);
    }

    #[test]
    fn weighted_sums_match_scalar_reduction() {
        let dim = 3;
        let n = 43; // 5 full chunks + tail of 3
        let centers = synth(n, dim, 9);
        let q = synth(1, dim, 4);
        let w32: Vec<u32> = (0..n as u32).map(|i| i * 3 + 1).collect();
        let w64: Vec<u64> = w32.iter().map(|&w| w as u64 * 7).collect();
        let eps2 = 40.0;
        let hits = scalar_hits(&q, &centers, dim, eps2);
        let expect32: u64 = hits.iter().map(|&k| w32[k] as u64).sum();
        let expect64: u64 = hits.iter().map(|&k| w64[k]).sum();
        assert_eq!(
            sum_within_u32(&q, &centers, dim, eps2, &w32),
            (hits.len() as u32, expect32)
        );
        assert_eq!(sum_within_u64(&q, &centers, dim, eps2, &w64), expect64);
    }

    #[test]
    fn empty_buffer_is_a_no_op() {
        assert!(!any_within(&[0.5], &[], 1, f64::INFINITY));
        assert_eq!(sum_within_u64(&[0.5], &[], 1, f64::INFINITY, &[]), 0);
    }
}
