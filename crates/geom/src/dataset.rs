//! Flat, structure-of-arrays point storage.
//!
//! A [`Dataset`] keeps all coordinates in one contiguous `Vec<f64>`
//! (row-major: point `i` occupies `coords[i*dim .. (i+1)*dim]`). This keeps
//! the per-point overhead at zero words — important because the experiments
//! stream millions of points — and makes sequential scans cache-friendly.

use crate::{Aabb, GeomError};
/// Identifier of a point inside a [`Dataset`].
///
/// Stored as `u32` rather than `usize` to halve the footprint of the large
/// id-keyed side tables built by the clustering phases (cluster labels,
/// core flags, partition assignments).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PointId(pub u32);

impl PointId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for PointId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// An immutable collection of `d`-dimensional points in flat storage.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    dim: usize,
    coords: Vec<f64>,
}

impl Dataset {
    /// Creates a dataset from a flat coordinate buffer.
    ///
    /// `coords.len()` must be a multiple of `dim`.
    pub fn from_flat(dim: usize, coords: Vec<f64>) -> Result<Self, GeomError> {
        if dim == 0 {
            return Err(GeomError::ZeroDimension);
        }
        if !coords.len().is_multiple_of(dim) {
            return Err(GeomError::DimensionMismatch {
                expected: dim,
                got: coords.len() % dim,
            });
        }
        if coords.len() / dim > u32::MAX as usize {
            return Err(GeomError::TooManyPoints);
        }
        Ok(Self { dim, coords })
    }

    /// Creates a dataset from row slices.
    pub fn from_rows(dim: usize, rows: &[Vec<f64>]) -> Result<Self, GeomError> {
        let mut b = DatasetBuilder::new(dim)?;
        for r in rows {
            b.push(r)?;
        }
        Ok(b.build())
    }

    /// Dimensionality of each point.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of points.
    #[inline]
    pub fn len(&self) -> usize {
        self.coords.len() / self.dim
    }

    /// `true` when the dataset holds no points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.coords.is_empty()
    }

    /// Coordinates of point `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[inline]
    pub fn point(&self, id: PointId) -> &[f64] {
        let i = id.index() * self.dim;
        &self.coords[i..i + self.dim]
    }

    /// Coordinates of the point at positional index `i`.
    #[inline]
    pub fn point_at(&self, i: usize) -> &[f64] {
        &self.coords[i * self.dim..(i + 1) * self.dim]
    }

    /// The raw flat coordinate buffer.
    #[inline]
    pub fn flat(&self) -> &[f64] {
        &self.coords
    }

    /// Iterates `(PointId, &[f64])` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (PointId, &[f64])> + '_ {
        (0..self.len()).map(move |i| (PointId(i as u32), self.point_at(i)))
    }

    /// All point ids in order.
    pub fn ids(&self) -> impl Iterator<Item = PointId> {
        (0..self.len() as u32).map(PointId)
    }

    /// The tight axis-aligned bounding box of all points, or `None` when
    /// empty.
    pub fn bounding_box(&self) -> Option<Aabb> {
        if self.is_empty() {
            return None;
        }
        let mut bb = Aabb::point(self.point_at(0));
        for i in 1..self.len() {
            bb.expand(self.point_at(i));
        }
        Some(bb)
    }

    /// Builds a sub-dataset containing the given points, in the given
    /// order. Useful for extracting a data partition.
    pub fn gather(&self, ids: &[PointId]) -> Dataset {
        let mut coords = Vec::with_capacity(ids.len() * self.dim);
        for &id in ids {
            coords.extend_from_slice(self.point(id));
        }
        Dataset {
            dim: self.dim,
            coords,
        }
    }

    /// Approximate in-memory size of the raw coordinates in bytes, counting
    /// each coordinate as a 32-bit float exactly as the paper's storage
    /// model (Lemma 4.3) does. Used as the denominator of Table 5's
    /// "dictionary size as a fraction of the data" metric.
    pub fn paper_size_bytes(&self) -> usize {
        self.coords.len() * 4
    }
}

/// Incremental [`Dataset`] constructor.
#[derive(Debug, Clone)]
pub struct DatasetBuilder {
    dim: usize,
    coords: Vec<f64>,
}

impl DatasetBuilder {
    /// Creates a builder for `dim`-dimensional points.
    pub fn new(dim: usize) -> Result<Self, GeomError> {
        if dim == 0 {
            return Err(GeomError::ZeroDimension);
        }
        Ok(Self {
            dim,
            coords: Vec::new(),
        })
    }

    /// Creates a builder with room for `n` points.
    pub fn with_capacity(dim: usize, n: usize) -> Result<Self, GeomError> {
        let mut b = Self::new(dim)?;
        b.coords.reserve(n * dim);
        Ok(b)
    }

    /// Appends one point.
    pub fn push(&mut self, p: &[f64]) -> Result<PointId, GeomError> {
        if p.len() != self.dim {
            return Err(GeomError::DimensionMismatch {
                expected: self.dim,
                got: p.len(),
            });
        }
        let id = self.coords.len() / self.dim;
        if id > u32::MAX as usize {
            return Err(GeomError::TooManyPoints);
        }
        self.coords.extend_from_slice(p);
        Ok(PointId(id as u32))
    }

    /// Number of points pushed so far.
    pub fn len(&self) -> usize {
        self.coords.len() / self.dim
    }

    /// `true` when nothing has been pushed.
    pub fn is_empty(&self) -> bool {
        self.coords.is_empty()
    }

    /// Finalises the dataset.
    pub fn build(self) -> Dataset {
        Dataset {
            dim: self.dim,
            coords: self.coords,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Dataset {
        Dataset::from_flat(2, vec![0.0, 0.0, 1.0, 1.0, -2.0, 3.0]).unwrap()
    }

    #[test]
    fn from_flat_validates_multiple_of_dim() {
        assert!(matches!(
            Dataset::from_flat(3, vec![1.0, 2.0]),
            Err(GeomError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn zero_dim_rejected() {
        assert_eq!(Dataset::from_flat(0, vec![]), Err(GeomError::ZeroDimension));
        assert!(DatasetBuilder::new(0).is_err());
    }

    #[test]
    fn point_access_and_len() {
        let d = sample();
        assert_eq!(d.len(), 3);
        assert_eq!(d.dim(), 2);
        assert_eq!(d.point(PointId(1)), &[1.0, 1.0]);
        assert_eq!(d.point_at(2), &[-2.0, 3.0]);
    }

    #[test]
    fn iter_yields_ids_in_order() {
        let d = sample();
        let ids: Vec<u32> = d.iter().map(|(id, _)| id.0).collect();
        assert_eq!(ids, vec![0, 1, 2]);
    }

    #[test]
    fn bounding_box_is_tight() {
        let d = sample();
        let bb = d.bounding_box().unwrap();
        assert_eq!(bb.min(), &[-2.0, 0.0]);
        assert_eq!(bb.max(), &[1.0, 3.0]);
    }

    #[test]
    fn bounding_box_empty_is_none() {
        let d = Dataset::from_flat(2, vec![]).unwrap();
        assert!(d.bounding_box().is_none());
        assert!(d.is_empty());
    }

    #[test]
    fn builder_round_trips() {
        let mut b = DatasetBuilder::with_capacity(3, 2).unwrap();
        b.push(&[1.0, 2.0, 3.0]).unwrap();
        let id = b.push(&[4.0, 5.0, 6.0]).unwrap();
        assert_eq!(id, PointId(1));
        assert_eq!(b.len(), 2);
        let d = b.build();
        assert_eq!(d.point(id), &[4.0, 5.0, 6.0]);
    }

    #[test]
    fn builder_rejects_wrong_dim() {
        let mut b = DatasetBuilder::new(2).unwrap();
        assert!(b.push(&[1.0]).is_err());
    }

    #[test]
    fn gather_extracts_partition() {
        let d = sample();
        let sub = d.gather(&[PointId(2), PointId(0)]);
        assert_eq!(sub.len(), 2);
        assert_eq!(sub.point_at(0), &[-2.0, 3.0]);
        assert_eq!(sub.point_at(1), &[0.0, 0.0]);
    }

    #[test]
    fn paper_size_counts_f32_bytes() {
        let d = sample();
        assert_eq!(d.paper_size_bytes(), 3 * 2 * 4);
    }
}
