//! Euclidean distance helpers over coordinate slices.
//!
//! The paper (Scope, §1.3) fixes the distance measure to Euclidean, so the
//! whole workspace funnels through these two functions. They are written to
//! auto-vectorise: a straight sum over `zip`ped slices with no bounds-check
//! surprises.

/// Squared Euclidean distance between two coordinate slices.
///
/// Prefer this over [`dist`] whenever the caller only compares against a
/// threshold — squaring the threshold once avoids a `sqrt` per candidate,
/// which dominates region-query inner loops.
///
/// # Panics
///
/// Debug-asserts that both slices have equal length; in release builds the
/// shorter length wins (standard `zip` semantics), which is never exercised
/// by this workspace because all points flow through [`crate::Dataset`].
#[inline]
pub fn dist2(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len(), "dimension mismatch in dist2");
    let mut acc = 0.0;
    for (x, y) in a.iter().zip(b.iter()) {
        let d = x - y;
        acc += d * d;
    }
    acc
}

/// Euclidean distance between two coordinate slices.
#[inline]
pub fn dist(a: &[f64], b: &[f64]) -> f64 {
    dist2(a, b).sqrt()
}

/// Returns `true` if `a` and `b` lie within `eps` of each other.
///
/// Uses the squared form internally; `eps` must be non-negative.
#[inline]
pub fn within(a: &[f64], b: &[f64], eps: f64) -> bool {
    debug_assert!(eps >= 0.0);
    dist2(a, b) <= eps * eps
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dist2_matches_hand_computation() {
        assert_eq!(dist2(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
        assert_eq!(dist(&[0.0, 0.0], &[3.0, 4.0]), 5.0);
    }

    #[test]
    fn dist_zero_for_identical_points() {
        let p = [1.5, -2.5, 3.25];
        assert_eq!(dist2(&p, &p), 0.0);
        assert_eq!(dist(&p, &p), 0.0);
    }

    #[test]
    fn within_is_inclusive() {
        assert!(within(&[0.0], &[2.0], 2.0));
        assert!(!within(&[0.0], &[2.0 + 1e-9], 2.0));
    }

    #[test]
    fn dist_is_symmetric() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [-4.0, 0.5, 9.0, 2.0];
        assert_eq!(dist2(&a, &b), dist2(&b, &a));
    }

    #[test]
    fn one_dimensional_distance() {
        assert_eq!(dist(&[-3.0], &[4.0]), 7.0);
    }
}
