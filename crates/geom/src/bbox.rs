//! Axis-aligned bounding boxes.
//!
//! Used in three places in the reproduction:
//!
//! * the minimum bounding rectangle (MBR, Definition 5.9) of a
//!   sub-dictionary, consulted by the skipping rule of Lemma 5.10;
//! * the binary-space-partitioning defragmentation of the dictionary
//!   (§4.2.2), which recursively splits boxes;
//! * the region-split baselines, whose partitions are boxes grown by ε.

/// A `d`-dimensional axis-aligned bounding box (closed on all sides).
#[derive(Debug, Clone, PartialEq)]
pub struct Aabb {
    min: Vec<f64>,
    max: Vec<f64>,
}

impl Aabb {
    /// A degenerate box containing exactly `p`.
    pub fn point(p: &[f64]) -> Self {
        Self {
            min: p.to_vec(),
            max: p.to_vec(),
        }
    }

    /// A box from explicit corners.
    ///
    /// # Panics
    ///
    /// Panics if the corners disagree in length or `min > max` in any
    /// dimension.
    pub fn new(min: Vec<f64>, max: Vec<f64>) -> Self {
        assert_eq!(min.len(), max.len(), "corner dimensionality mismatch");
        assert!(
            min.iter().zip(&max).all(|(a, b)| a <= b),
            "min corner must not exceed max corner"
        );
        Self { min, max }
    }

    /// Dimensionality.
    #[inline]
    pub fn dim(&self) -> usize {
        self.min.len()
    }

    /// Minimum corner.
    #[inline]
    pub fn min(&self) -> &[f64] {
        &self.min
    }

    /// Maximum corner.
    #[inline]
    pub fn max(&self) -> &[f64] {
        &self.max
    }

    /// Grows the box to contain `p`.
    pub fn expand(&mut self, p: &[f64]) {
        debug_assert_eq!(p.len(), self.dim());
        for ((lo, hi), &v) in self.min.iter_mut().zip(self.max.iter_mut()).zip(p) {
            if v < *lo {
                *lo = v;
            }
            if v > *hi {
                *hi = v;
            }
        }
    }

    /// Grows the box to contain another box.
    pub fn union(&mut self, other: &Aabb) {
        self.expand(&other.min);
        self.expand(&other.max);
    }

    /// Grows the box by `delta` on every side (Minkowski sum with a cube).
    pub fn inflate(&self, delta: f64) -> Aabb {
        Aabb {
            min: self.min.iter().map(|v| v - delta).collect(),
            max: self.max.iter().map(|v| v + delta).collect(),
        }
    }

    /// `true` if `p` lies inside (inclusive).
    pub fn contains(&self, p: &[f64]) -> bool {
        p.iter()
            .zip(self.min.iter().zip(&self.max))
            .all(|(v, (lo, hi))| *v >= *lo && *v <= *hi)
    }

    /// Squared distance from `p` to the nearest point of the box (0 when
    /// inside). This is the quantity compared against ε² by both the MBR
    /// skipping rule and kd-tree pruning.
    pub fn min_dist2(&self, p: &[f64]) -> f64 {
        debug_assert_eq!(p.len(), self.dim());
        let mut acc = 0.0;
        for ((&v, &lo), &hi) in p.iter().zip(&self.min).zip(&self.max) {
            let d = if v < lo {
                lo - v
            } else if v > hi {
                v - hi
            } else {
                0.0
            };
            acc += d * d;
        }
        acc
    }

    /// Squared distance from `p` to the farthest point of the box.
    ///
    /// Used by the region query to decide that a cell is *fully* contained
    /// in the query ball, in which case all of its sub-cells qualify
    /// without individual centre checks (§5, "Processing of (ε,ρ)-Region
    /// Query", first case).
    pub fn max_dist2(&self, p: &[f64]) -> f64 {
        debug_assert_eq!(p.len(), self.dim());
        let mut acc = 0.0;
        for ((&v, &lo), &hi) in p.iter().zip(&self.min).zip(&self.max) {
            let d = (v - lo).abs().max((v - hi).abs());
            acc += d * d;
        }
        acc
    }

    /// The paper's Lemma 5.10 skipping test: `true` when no point of the
    /// box can be within `eps` of `p` judged *per dimension* — i.e. there
    /// exists a dimension `i` with `max[i] < p[i] - eps` or
    /// `min[i] > p[i] + eps`.
    pub fn lemma_5_10_skippable(&self, p: &[f64], eps: f64) -> bool {
        debug_assert_eq!(p.len(), self.dim());
        p.iter()
            .zip(self.min.iter().zip(&self.max))
            .any(|(v, (lo, hi))| *hi < *v - eps || *lo > *v + eps)
    }

    /// Side length along dimension `i`.
    #[inline]
    pub fn extent(&self, i: usize) -> f64 {
        self.max[i] - self.min[i]
    }

    /// The dimension with the largest extent.
    pub fn widest_dim(&self) -> usize {
        let mut best = 0;
        for i in 1..self.dim() {
            if self.extent(i) > self.extent(best) {
                best = i;
            }
        }
        best
    }

    /// Centre point of the box.
    pub fn center(&self) -> Vec<f64> {
        self.min
            .iter()
            .zip(&self.max)
            .map(|(a, b)| 0.5 * (a + b))
            .collect()
    }

    /// Splits the box into two halves at `value` along `dim`. The plane
    /// belongs to both halves (closed boxes), mirroring the region-split
    /// border sharing of Figure 1a.
    pub fn split_at(&self, dim: usize, value: f64) -> (Aabb, Aabb) {
        debug_assert!(value >= self.min[dim] && value <= self.max[dim]);
        let mut lo = self.clone();
        let mut hi = self.clone();
        lo.max[dim] = value;
        hi.min[dim] = value;
        (lo, hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit2() -> Aabb {
        Aabb::new(vec![0.0, 0.0], vec![1.0, 1.0])
    }

    #[test]
    fn contains_is_inclusive() {
        let b = unit2();
        assert!(b.contains(&[0.0, 0.0]));
        assert!(b.contains(&[1.0, 1.0]));
        assert!(b.contains(&[0.5, 0.5]));
        assert!(!b.contains(&[1.0 + 1e-12, 0.5]));
    }

    #[test]
    fn expand_grows_box() {
        let mut b = Aabb::point(&[1.0, 2.0]);
        b.expand(&[-1.0, 5.0]);
        assert_eq!(b.min(), &[-1.0, 2.0]);
        assert_eq!(b.max(), &[1.0, 5.0]);
    }

    #[test]
    fn min_dist2_zero_inside() {
        assert_eq!(unit2().min_dist2(&[0.3, 0.7]), 0.0);
    }

    #[test]
    fn min_dist2_outside_corner() {
        // nearest point is corner (1,1); offset is (3,4) scaled by 1.
        assert_eq!(unit2().min_dist2(&[4.0, 5.0]), 9.0 + 16.0);
    }

    #[test]
    fn max_dist2_farthest_corner() {
        // farthest from (0,0) is (1,1)
        assert_eq!(unit2().max_dist2(&[0.0, 0.0]), 2.0);
        // from outside: farthest from (2,0.5) is (0, 1) -> dx=2, dy=0.5
        assert_eq!(unit2().max_dist2(&[2.0, 0.5]), 4.0 + 0.25);
    }

    #[test]
    fn lemma_skip_rule() {
        let b = unit2();
        // p at (3, 0.5): max.x = 1 < 3 - 1.5 = 1.5 -> skippable with eps=1.5
        assert!(b.lemma_5_10_skippable(&[3.0, 0.5], 1.5));
        // eps = 2.5 -> 1 >= 0.5, not skippable
        assert!(!b.lemma_5_10_skippable(&[3.0, 0.5], 2.5));
        // inside the box: never skippable
        assert!(!b.lemma_5_10_skippable(&[0.5, 0.5], 0.1));
    }

    #[test]
    fn skip_rule_is_conservative_vs_min_dist() {
        // Whenever the per-dimension rule fires, the true min distance must
        // exceed eps (the converse need not hold).
        let b = Aabb::new(vec![0.0, 0.0], vec![1.0, 2.0]);
        let eps = 0.5;
        for p in [[2.0, 3.0], [-1.0, 1.0], [0.5, 4.0], [0.6, 0.6]] {
            if b.lemma_5_10_skippable(&p, eps) {
                assert!(b.min_dist2(&p) > eps * eps);
            }
        }
    }

    #[test]
    fn widest_dim_and_split() {
        let b = Aabb::new(vec![0.0, 0.0], vec![4.0, 1.0]);
        assert_eq!(b.widest_dim(), 0);
        let (lo, hi) = b.split_at(0, 1.5);
        assert_eq!(lo.max()[0], 1.5);
        assert_eq!(hi.min()[0], 1.5);
        assert_eq!(lo.min()[0], 0.0);
        assert_eq!(hi.max()[0], 4.0);
    }

    #[test]
    fn inflate_grows_every_side() {
        let b = unit2().inflate(0.5);
        assert_eq!(b.min(), &[-0.5, -0.5]);
        assert_eq!(b.max(), &[1.5, 1.5]);
    }

    #[test]
    fn union_covers_both() {
        let mut a = Aabb::new(vec![0.0], vec![1.0]);
        let b = Aabb::new(vec![5.0], vec![6.0]);
        a.union(&b);
        assert_eq!(a.min(), &[0.0]);
        assert_eq!(a.max(), &[6.0]);
    }

    #[test]
    fn center_midpoint() {
        assert_eq!(unit2().center(), vec![0.5, 0.5]);
    }

    #[test]
    #[should_panic]
    fn new_rejects_inverted_corners() {
        let _ = Aabb::new(vec![1.0], vec![0.0]);
    }
}
