//! Geometric primitives shared across the RP-DBSCAN workspace.
//!
//! This crate provides the low-level building blocks that every other crate
//! in the reproduction relies on:
//!
//! * [`Dataset`] — a cache-friendly, flat (structure-of-arrays) store of
//!   `d`-dimensional points addressed by [`PointId`];
//! * [`Aabb`] — axis-aligned bounding boxes with the min/max distance
//!   queries needed by the sub-dictionary MBR skipping rule (Lemma 5.10 of
//!   the paper);
//! * [`KdTree`] — a static kd-tree supporting radius (range) queries, used
//!   both for neighbour-cell search inside sub-dictionaries and by the
//!   exact DBSCAN baseline;
//! * distance helpers over coordinate slices.
//!
//! Everything here is deterministic and allocation-conscious: points are
//! never boxed individually, and queries write into caller-provided buffers
//! where it matters.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bbox;
pub mod dataset;
pub mod distance;
pub mod kdtree;
pub mod kernel;

pub use bbox::Aabb;
pub use dataset::{Dataset, DatasetBuilder, PointId};
pub use distance::{dist, dist2};
pub use kdtree::KdTree;

/// Errors produced by geometric primitives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GeomError {
    /// A point with the wrong number of coordinates was supplied.
    DimensionMismatch {
        /// Dimensionality the container was created with.
        expected: usize,
        /// Dimensionality of the offending point.
        got: usize,
    },
    /// A dataset with zero dimensions was requested.
    ZeroDimension,
    /// Too many points for the 32-bit point-id space.
    TooManyPoints,
}

impl std::fmt::Display for GeomError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GeomError::DimensionMismatch { expected, got } => {
                write!(f, "dimension mismatch: expected {expected}, got {got}")
            }
            GeomError::ZeroDimension => write!(f, "datasets must have at least one dimension"),
            GeomError::TooManyPoints => {
                write!(f, "datasets are limited to u32::MAX points")
            }
        }
    }
}

impl std::error::Error for GeomError {}
