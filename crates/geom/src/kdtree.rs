//! A static kd-tree with radius (range) queries.
//!
//! Two consumers in the workspace:
//!
//! * `rpdbscan-grid` indexes the *cell centres* of each sub-dictionary so an
//!   `(ε,ρ)`-region query touches `O(log |cell|)` cells (Lemma 5.6 uses an
//!   R*-tree/kd-tree for the same purpose);
//! * `rpdbscan-baselines` exact DBSCAN uses it as its neighbourhood index
//!   for data sets whose dimensionality makes direct grid enumeration
//!   wasteful.
//!
//! The tree is built once over a frozen point set (median splits, bulk
//! loading) and answers queries through a visitor callback so hot paths
//! avoid intermediate allocations.

use crate::distance::dist2;

const LEAF_SIZE: usize = 16;

#[derive(Debug, Clone)]
enum Node {
    Leaf {
        start: u32,
        end: u32,
    },
    Internal {
        axis: u16,
        split: f64,
        /// Index of the right child; the left child is always `self + 1`
        /// (pre-order layout), so only one link is stored.
        right: u32,
    },
}

/// A static kd-tree over `n` points of dimension `d`, carrying a `u32`
/// payload per point (typically a point id or a cell index).
#[derive(Debug, Clone)]
pub struct KdTree {
    dim: usize,
    /// Point coordinates, permuted during construction (SoA row-major).
    coords: Vec<f64>,
    /// Payload for each (permuted) point.
    payload: Vec<u32>,
    nodes: Vec<Node>,
}

impl KdTree {
    /// Builds a tree from a flat coordinate buffer and parallel payload
    /// array. `coords.len() == payload.len() * dim`.
    ///
    /// # Panics
    ///
    /// Panics if the buffer lengths disagree or `dim == 0`.
    pub fn build(dim: usize, mut coords: Vec<f64>, mut payload: Vec<u32>) -> Self {
        assert!(dim > 0, "kd-tree dimension must be positive");
        assert_eq!(coords.len(), payload.len() * dim, "buffer length mismatch");
        let n = payload.len();
        let mut nodes = Vec::new();
        if n > 0 {
            // An index permutation is sorted recursively, then applied once.
            let mut idx: Vec<u32> = (0..n as u32).collect();
            build_rec(dim, &coords, &mut idx, 0, n, &mut nodes);
            let mut new_coords = vec![0.0; coords.len()];
            let mut new_payload = vec![0u32; n];
            for (pos, &orig) in idx.iter().enumerate() {
                let o = orig as usize;
                new_coords[pos * dim..(pos + 1) * dim]
                    .copy_from_slice(&coords[o * dim..(o + 1) * dim]);
                new_payload[pos] = payload[o];
            }
            coords = new_coords;
            payload = new_payload;
        }
        Self {
            dim,
            coords,
            payload,
            nodes,
        }
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.payload.len()
    }

    /// `true` when the tree indexes nothing.
    pub fn is_empty(&self) -> bool {
        self.payload.is_empty()
    }

    #[inline]
    fn pt(&self, i: usize) -> &[f64] {
        &self.coords[i * self.dim..(i + 1) * self.dim]
    }

    /// Visits every indexed point within `radius` of `q` (inclusive).
    ///
    /// The visitor receives `(payload, squared_distance)`.
    pub fn for_each_within<F: FnMut(u32, f64)>(&self, q: &[f64], radius: f64, mut f: F) {
        debug_assert_eq!(q.len(), self.dim);
        if self.nodes.is_empty() {
            return;
        }
        let r2 = radius * radius;
        // Explicit stack of (node index, accumulated squared distance of q
        // to the node's region along split planes crossed so far).
        let mut stack: Vec<(u32, f64)> = vec![(0, 0.0)];
        while let Some((ni, acc)) = stack.pop() {
            if acc > r2 {
                continue;
            }
            match &self.nodes[ni as usize] {
                Node::Leaf { start, end } => {
                    for i in *start as usize..*end as usize {
                        let d2 = dist2(q, self.pt(i));
                        if d2 <= r2 {
                            f(self.payload[i], d2);
                        }
                    }
                }
                Node::Internal { axis, split, right } => {
                    let a = *axis as usize;
                    let diff = q[a] - *split;
                    let (near, far) = if diff <= 0.0 {
                        (ni + 1, *right)
                    } else {
                        (*right, ni + 1)
                    };
                    // Crossing into the far side costs at least diff² along
                    // this axis; the accumulated lower bound stays valid
                    // because planes on distinct axes contribute
                    // independently, and we take the max per axis via the
                    // monotone accumulation below being conservative.
                    let far_acc = acc.max(diff * diff);
                    stack.push((far, far_acc));
                    stack.push((near, acc));
                }
            }
        }
    }

    /// Visits every indexed point within `radius` of the axis-aligned box
    /// `[lo, hi]` (inclusive): points whose squared distance to the box
    /// ([`crate::Aabb::min_dist2`] semantics) is at most `radius²`.
    ///
    /// The visitor receives `(payload, squared_distance_to_box)`. This is
    /// the build-time candidate search of the grid crate's cell query
    /// planner: one box query from a cell's AABB replaces one point query
    /// per member point (any point of the box is within `radius` of a
    /// reported candidate whenever it is within `radius − diam(box)` of
    /// it, so the result is a superset of every per-point search).
    pub fn for_each_near_box<F: FnMut(u32, f64)>(
        &self,
        lo: &[f64],
        hi: &[f64],
        radius: f64,
        mut f: F,
    ) {
        debug_assert_eq!(lo.len(), self.dim);
        debug_assert_eq!(hi.len(), self.dim);
        if self.nodes.is_empty() {
            return;
        }
        let r2 = radius * radius;
        // Same traversal shape as `for_each_within`, with the query point
        // generalised to an interval per axis: crossing a split plane costs
        // the gap between the plane and the nearer interval endpoint.
        let mut stack: Vec<(u32, f64)> = vec![(0, 0.0)];
        while let Some((ni, acc)) = stack.pop() {
            if acc > r2 {
                continue;
            }
            match &self.nodes[ni as usize] {
                Node::Leaf { start, end } => {
                    for i in *start as usize..*end as usize {
                        let p = self.pt(i);
                        let mut d2 = 0.0;
                        for a in 0..self.dim {
                            let d = if p[a] < lo[a] {
                                lo[a] - p[a]
                            } else if p[a] > hi[a] {
                                p[a] - hi[a]
                            } else {
                                0.0
                            };
                            d2 += d * d;
                        }
                        if d2 <= r2 {
                            f(self.payload[i], d2);
                        }
                    }
                }
                Node::Internal { axis, split, right } => {
                    let a = *axis as usize;
                    // Entering the left half-space costs nothing unless the
                    // whole interval sits right of the plane, and vice versa.
                    let dl = if lo[a] > *split { lo[a] - *split } else { 0.0 };
                    let dr = if hi[a] < *split { *split - hi[a] } else { 0.0 };
                    stack.push((*right, acc.max(dr * dr)));
                    stack.push((ni + 1, acc.max(dl * dl)));
                }
            }
        }
    }

    /// Collects payloads within `radius` of `q`.
    pub fn within(&self, q: &[f64], radius: f64) -> Vec<u32> {
        let mut out = Vec::new();
        self.for_each_within(q, radius, |p, _| out.push(p));
        out
    }

    /// The `k` nearest indexed points to `q`, as `(payload, d²)` pairs
    /// sorted ascending by `(d², payload)`.
    ///
    /// Ties at the `k`-th distance resolve by payload, so the result is a
    /// pure function of the indexed point set — independent of tree
    /// layout or traversal order. Returns fewer than `k` pairs only when
    /// the tree indexes fewer than `k` points. The query point is *not*
    /// excluded: a caller indexing its own points asks for `k + 1` and
    /// drops itself. This is the neighbour search of the mutual-kNN
    /// density backend (`rpdbscan-density`).
    pub fn nearest_k(&self, q: &[f64], k: usize) -> Vec<(u32, f64)> {
        debug_assert_eq!(q.len(), self.dim);
        if k == 0 || self.nodes.is_empty() {
            return Vec::new();
        }
        // Max-heap of the current best k, worst candidate on top; a new
        // point displaces the top when lexicographically smaller by
        // (d², payload), which is exactly the final sort order.
        let mut heap: std::collections::BinaryHeap<KnnCand> = std::collections::BinaryHeap::new();
        let mut stack: Vec<(u32, f64)> = vec![(0, 0.0)];
        while let Some((ni, acc)) = stack.pop() {
            // Prune only on strict excess: a subtree at exactly the worst
            // distance may still hold a tied point with smaller payload.
            if heap.len() == k && acc > heap.peek().map(|c| c.d2).unwrap_or(f64::INFINITY) {
                continue;
            }
            match &self.nodes[ni as usize] {
                Node::Leaf { start, end } => {
                    for i in *start as usize..*end as usize {
                        let cand = KnnCand {
                            d2: dist2(q, self.pt(i)),
                            payload: self.payload[i],
                        };
                        if heap.len() < k {
                            heap.push(cand);
                        } else if let Some(worst) = heap.peek() {
                            if cand < *worst {
                                heap.pop();
                                heap.push(cand);
                            }
                        }
                    }
                }
                Node::Internal { axis, split, right } => {
                    let a = *axis as usize;
                    let diff = q[a] - *split;
                    let (near, far) = if diff <= 0.0 {
                        (ni + 1, *right)
                    } else {
                        (*right, ni + 1)
                    };
                    // Far side first so the near side is explored first
                    // (LIFO), tightening the heap before the far bound
                    // check fires.
                    stack.push((far, acc.max(diff * diff)));
                    stack.push((near, acc));
                }
            }
        }
        let mut out: Vec<(u32, f64)> = heap.into_iter().map(|c| (c.payload, c.d2)).collect();
        out.sort_unstable_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        out
    }

    /// Counts points within `radius` of `q`, stopping early once `limit`
    /// is reached (used for `|N_ε(p)| ≥ minPts` tests where the exact count
    /// past the threshold is irrelevant).
    pub fn count_within_at_least(&self, q: &[f64], radius: f64, limit: usize) -> bool {
        let mut n = 0usize;
        // No early-exit hook in the visitor; emulate with a cheap check.
        // The tree prunes well enough that this stays fast, and correctness
        // is what matters for the baseline.
        self.for_each_within(q, radius, |_, _| n += 1);
        n >= limit
    }
}

/// A kNN candidate ordered lexicographically by `(d², payload)` under
/// `f64::total_cmp`, so heap displacement and the final sort agree and
/// the result is traversal-order-independent.
#[derive(Debug, Clone, Copy)]
struct KnnCand {
    d2: f64,
    payload: u32,
}

impl PartialEq for KnnCand {
    fn eq(&self, other: &Self) -> bool {
        matches!(self.cmp(other), std::cmp::Ordering::Equal)
    }
}
impl Eq for KnnCand {}
impl PartialOrd for KnnCand {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for KnnCand {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.d2
            .total_cmp(&other.d2)
            .then(self.payload.cmp(&other.payload))
    }
}

fn build_rec(
    dim: usize,
    coords: &[f64],
    idx: &mut [u32],
    lo: usize,
    hi: usize,
    nodes: &mut Vec<Node>,
) {
    let n = hi - lo;
    if n <= LEAF_SIZE {
        nodes.push(Node::Leaf {
            start: lo as u32,
            end: hi as u32,
        });
        return;
    }
    // Pick the axis with the widest spread over this slice.
    let mut best_axis = 0usize;
    let mut best_spread = f64::NEG_INFINITY;
    for a in 0..dim {
        let mut mn = f64::INFINITY;
        let mut mx = f64::NEG_INFINITY;
        for &i in &idx[lo..hi] {
            let v = coords[i as usize * dim + a];
            mn = mn.min(v);
            mx = mx.max(v);
        }
        let spread = mx - mn;
        if spread > best_spread {
            best_spread = spread;
            best_axis = a;
        }
    }
    let mid = lo + n / 2;
    let slice = &mut idx[lo..hi];
    slice.select_nth_unstable_by(n / 2, |&a, &b| {
        let va = coords[a as usize * dim + best_axis];
        let vb = coords[b as usize * dim + best_axis];
        va.total_cmp(&vb)
    });
    let split = coords[idx[mid] as usize * dim + best_axis];

    let me = nodes.len();
    nodes.push(Node::Internal {
        axis: best_axis as u16,
        split,
        right: 0, // patched below
    });
    build_rec(dim, coords, idx, lo, mid, nodes);
    let right_pos = nodes.len() as u32;
    if let Node::Internal { right, .. } = &mut nodes[me] {
        *right = right_pos;
    }
    build_rec(dim, coords, idx, mid, hi, nodes);
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn brute_within(dim: usize, coords: &[f64], q: &[f64], r: f64) -> Vec<u32> {
        let mut out: Vec<u32> = (0..coords.len() / dim)
            .filter(|&i| dist2(q, &coords[i * dim..(i + 1) * dim]) <= r * r)
            .map(|i| i as u32)
            .collect();
        out.sort_unstable();
        out
    }

    fn random_coords(rng: &mut StdRng, n: usize, dim: usize) -> Vec<f64> {
        (0..n * dim).map(|_| rng.gen_range(-10.0..10.0)).collect()
    }

    #[test]
    fn empty_tree_queries_cleanly() {
        let t = KdTree::build(3, vec![], vec![]);
        assert!(t.is_empty());
        assert!(t.within(&[0.0, 0.0, 0.0], 5.0).is_empty());
    }

    #[test]
    fn single_point() {
        let t = KdTree::build(2, vec![1.0, 2.0], vec![7]);
        assert_eq!(t.within(&[1.0, 2.0], 0.0), vec![7]);
        assert_eq!(t.within(&[5.0, 5.0], 1.0), Vec::<u32>::new());
    }

    #[test]
    fn matches_brute_force_2d() {
        let mut rng = StdRng::seed_from_u64(42);
        let n = 500;
        let coords = random_coords(&mut rng, n, 2);
        let t = KdTree::build(2, coords.clone(), (0..n as u32).collect());
        for _ in 0..50 {
            let q = [rng.gen_range(-12.0..12.0), rng.gen_range(-12.0..12.0)];
            let r = rng.gen_range(0.0..6.0);
            let mut got = t.within(&q, r);
            got.sort_unstable();
            assert_eq!(got, brute_within(2, &coords, &q, r));
        }
    }

    #[test]
    fn matches_brute_force_5d() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 400;
        let coords = random_coords(&mut rng, n, 5);
        let t = KdTree::build(5, coords.clone(), (0..n as u32).collect());
        for _ in 0..25 {
            let q: Vec<f64> = (0..5).map(|_| rng.gen_range(-12.0..12.0)).collect();
            let r = rng.gen_range(0.5..8.0);
            let mut got = t.within(&q, r);
            got.sort_unstable();
            assert_eq!(got, brute_within(5, &coords, &q, r));
        }
    }

    #[test]
    fn duplicate_points_all_reported() {
        let coords = vec![1.0, 1.0, 1.0, 1.0, 1.0, 1.0];
        let t = KdTree::build(2, coords, vec![0, 1, 2]);
        let mut got = t.within(&[1.0, 1.0], 0.1);
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2]);
    }

    #[test]
    fn radius_is_inclusive() {
        let t = KdTree::build(1, vec![0.0, 3.0], vec![0, 1]);
        let got = t.within(&[0.0], 3.0);
        assert_eq!(got.len(), 2);
    }

    #[test]
    fn count_within_at_least() {
        let coords: Vec<f64> = (0..100).map(|i| i as f64 * 0.01).collect();
        let t = KdTree::build(1, coords, (0..100).collect());
        assert!(t.count_within_at_least(&[0.5], 0.2, 30));
        assert!(!t.count_within_at_least(&[0.5], 0.01, 30));
    }

    #[test]
    fn payloads_are_preserved() {
        // Payloads unrelated to positions must come back untouched.
        let coords = vec![0.0, 10.0, 20.0, 30.0];
        let t = KdTree::build(1, coords, vec![100, 200, 300, 400]);
        let got = t.within(&[20.0], 0.5);
        assert_eq!(got, vec![300]);
    }

    #[test]
    fn box_query_matches_brute_force() {
        use crate::bbox::Aabb;
        let mut rng = StdRng::seed_from_u64(21);
        for dim in [1usize, 2, 3, 4] {
            let n = 400;
            let coords = random_coords(&mut rng, n, dim);
            let t = KdTree::build(dim, coords.clone(), (0..n as u32).collect());
            for _ in 0..25 {
                let lo: Vec<f64> = (0..dim).map(|_| rng.gen_range(-11.0..9.0)).collect();
                let hi: Vec<f64> = lo.iter().map(|v| v + rng.gen_range(0.0..4.0)).collect();
                let r = rng.gen_range(0.0..5.0);
                let bb = Aabb::new(lo.clone(), hi.clone());
                let mut expected: Vec<u32> = (0..n)
                    .filter(|&i| bb.min_dist2(&coords[i * dim..(i + 1) * dim]) <= r * r)
                    .map(|i| i as u32)
                    .collect();
                expected.sort_unstable();
                let mut got = Vec::new();
                t.for_each_near_box(&lo, &hi, r, |p, d2| {
                    assert!(d2 <= r * r + 1e-12);
                    got.push(p);
                });
                got.sort_unstable();
                assert_eq!(got, expected, "dim={dim} r={r}");
            }
        }
    }

    #[test]
    fn degenerate_box_equals_point_query() {
        let mut rng = StdRng::seed_from_u64(33);
        let n = 300;
        let coords = random_coords(&mut rng, n, 3);
        let t = KdTree::build(3, coords.clone(), (0..n as u32).collect());
        for _ in 0..20 {
            let q: Vec<f64> = (0..3).map(|_| rng.gen_range(-12.0..12.0)).collect();
            let r = rng.gen_range(0.0..6.0);
            let mut a = t.within(&q, r);
            a.sort_unstable();
            let mut b = Vec::new();
            t.for_each_near_box(&q, &q, r, |p, _| b.push(p));
            b.sort_unstable();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn box_query_on_empty_tree() {
        let t = KdTree::build(2, vec![], vec![]);
        t.for_each_near_box(&[0.0, 0.0], &[1.0, 1.0], 5.0, |_, _| {
            panic!("empty tree reported a point")
        });
    }

    fn brute_nearest_k(dim: usize, coords: &[f64], q: &[f64], k: usize) -> Vec<(u32, f64)> {
        let mut all: Vec<(u32, f64)> = (0..coords.len() / dim)
            .map(|i| (i as u32, dist2(q, &coords[i * dim..(i + 1) * dim])))
            .collect();
        all.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        all.truncate(k);
        all
    }

    #[test]
    fn nearest_k_matches_brute_force() {
        let mut rng = StdRng::seed_from_u64(5);
        for dim in [1usize, 2, 3, 7] {
            let n = 300;
            let coords = random_coords(&mut rng, n, dim);
            let t = KdTree::build(dim, coords.clone(), (0..n as u32).collect());
            for _ in 0..20 {
                let q: Vec<f64> = (0..dim).map(|_| rng.gen_range(-12.0..12.0)).collect();
                for k in [1usize, 4, 17, n, n + 5] {
                    let got = t.nearest_k(&q, k);
                    assert_eq!(got, brute_nearest_k(dim, &coords, &q, k), "dim={dim} k={k}");
                }
            }
        }
    }

    #[test]
    fn nearest_k_ties_resolve_by_payload() {
        // Four coincident points: any k of them is "correct", the
        // contract picks the smallest payloads.
        let coords = vec![1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0];
        let t = KdTree::build(2, coords, vec![9, 3, 7, 1]);
        let got: Vec<u32> = t.nearest_k(&[1.0, 1.0], 2).iter().map(|p| p.0).collect();
        assert_eq!(got, vec![1, 3]);
    }

    #[test]
    fn nearest_k_edge_cases() {
        let empty = KdTree::build(2, vec![], vec![]);
        assert!(empty.nearest_k(&[0.0, 0.0], 3).is_empty());
        let one = KdTree::build(1, vec![2.0], vec![7]);
        assert!(one.nearest_k(&[0.0], 0).is_empty());
        assert_eq!(one.nearest_k(&[0.0], 5), vec![(7, 4.0)]);
    }

    #[test]
    fn large_tree_no_false_negatives_near_splits() {
        // Clustered data stresses split-plane pruning.
        let mut rng = StdRng::seed_from_u64(99);
        let mut coords = Vec::new();
        for c in 0..10 {
            let cx = c as f64 * 2.0;
            for _ in 0..100 {
                coords.push(cx + rng.gen_range(-0.01..0.01));
                coords.push(rng.gen_range(-0.01..0.01));
            }
        }
        let n = coords.len() / 2;
        let t = KdTree::build(2, coords.clone(), (0..n as u32).collect());
        for c in 0..10 {
            let q = [c as f64 * 2.0, 0.0];
            let got = t.within(&q, 0.1);
            assert_eq!(got.len(), 100, "cluster {c} incomplete");
        }
    }
}
