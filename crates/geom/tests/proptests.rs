//! Property-based tests for the geometric primitives.

use proptest::prelude::*;
use rpdbscan_geom::{dist, dist2, Aabb, Dataset, KdTree};

fn point_strategy(dim: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-100.0f64..100.0, dim)
}

proptest! {
    #[test]
    fn dist_triangle_inequality(
        a in point_strategy(3),
        b in point_strategy(3),
        c in point_strategy(3),
    ) {
        let ab = dist(&a, &b);
        let bc = dist(&b, &c);
        let ac = dist(&a, &c);
        prop_assert!(ac <= ab + bc + 1e-9);
    }

    #[test]
    fn dist2_non_negative_and_symmetric(a in point_strategy(4), b in point_strategy(4)) {
        prop_assert!(dist2(&a, &b) >= 0.0);
        prop_assert_eq!(dist2(&a, &b), dist2(&b, &a));
    }

    #[test]
    fn bbox_contains_all_expanded_points(pts in prop::collection::vec(point_strategy(2), 1..50)) {
        let mut bb = Aabb::point(&pts[0]);
        for p in &pts[1..] {
            bb.expand(p);
        }
        for p in &pts {
            prop_assert!(bb.contains(p));
            prop_assert_eq!(bb.min_dist2(p), 0.0);
        }
    }

    #[test]
    fn bbox_min_le_max_dist(p in point_strategy(3), q in point_strategy(3), r in point_strategy(3)) {
        let mut bb = Aabb::point(&q);
        bb.expand(&r);
        prop_assert!(bb.min_dist2(&p) <= bb.max_dist2(&p) + 1e-9);
    }

    #[test]
    fn lemma_5_10_skip_implies_empty_query(
        pts in prop::collection::vec(point_strategy(2), 1..40),
        q in point_strategy(2),
        eps in 0.1f64..50.0,
    ) {
        let mut bb = Aabb::point(&pts[0]);
        for p in &pts[1..] {
            bb.expand(p);
        }
        if bb.lemma_5_10_skippable(&q, eps) {
            // No point in the box may be within eps of q.
            for p in &pts {
                prop_assert!(dist(&q, p) > eps);
            }
        }
    }

    #[test]
    fn kdtree_matches_brute_force(
        pts in prop::collection::vec(point_strategy(3), 0..120),
        q in point_strategy(3),
        radius in 0.0f64..80.0,
    ) {
        let n = pts.len();
        let flat: Vec<f64> = pts.iter().flatten().copied().collect();
        let tree = KdTree::build(3, flat, (0..n as u32).collect());
        let mut got = tree.within(&q, radius);
        got.sort_unstable();
        let mut want: Vec<u32> = (0..n)
            .filter(|&i| dist(&q, &pts[i]) <= radius)
            .map(|i| i as u32)
            .collect();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn dataset_gather_preserves_coordinates(
        pts in prop::collection::vec(point_strategy(2), 1..30),
    ) {
        let ds = Dataset::from_rows(2, &pts).unwrap();
        let ids: Vec<_> = ds.ids().collect();
        let sub = ds.gather(&ids);
        prop_assert_eq!(sub, ds);
    }
}
