//! Cell addressing types.

/// Integer lattice coordinate of a cell (one `i64` per dimension).
///
/// Boxed slice rather than `Vec` to keep the in-memory footprint at two
/// words; coordinates are immutable once computed.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CellCoord(Box<[i64]>);

impl CellCoord {
    /// Builds a coordinate from per-dimension lattice indices.
    pub fn new(coords: impl IntoIterator<Item = i64>) -> Self {
        Self(coords.into_iter().collect())
    }

    /// The lattice indices.
    #[inline]
    pub fn coords(&self) -> &[i64] {
        &self.0
    }

    /// Dimensionality.
    #[inline]
    pub fn dim(&self) -> usize {
        self.0.len()
    }
}

impl std::fmt::Display for CellCoord {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "(")?;
        for (i, c) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, ")")
    }
}

/// Packed local index of a sub-cell within its cell: `(h−1)` bits per
/// dimension (Lemma 4.3's `d(h−1)`-bit position), dimension 0 in the least
/// significant bits. 128 bits accommodates the paper's largest
/// configuration (d = 13, ρ = 0.01 → 91 bits).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SubCellIdx(pub u128);

impl std::fmt::Display for SubCellIdx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "sc{:x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coord_equality_and_hash() {
        use std::collections::HashSet;
        let a = CellCoord::new([1, 2, 3]);
        let b = CellCoord::new([1, 2, 3]);
        let c = CellCoord::new([3, 2, 1]);
        assert_eq!(a, b);
        assert_ne!(a, c);
        let mut s = HashSet::new();
        s.insert(a.clone());
        assert!(s.contains(&b));
        assert!(!s.contains(&c));
    }

    #[test]
    fn display_forms() {
        assert_eq!(CellCoord::new([1, -2]).to_string(), "(1,-2)");
        assert_eq!(SubCellIdx(255).to_string(), "scff");
    }

    #[test]
    fn ordering_is_lexicographic() {
        assert!(CellCoord::new([0, 5]) < CellCoord::new([1, 0]));
        assert!(CellCoord::new([1, 0]) < CellCoord::new([1, 1]));
    }
}
