//! The cell grid and two-level cell dictionary of RP-DBSCAN.
//!
//! This crate implements the paper's Sections 3–5 data structures:
//!
//! * [`GridSpec`] — the grid of `d`-dimensional hypercube cells with
//!   diagonal length ε (Definition 3.1) and their sub-cells with diagonal
//!   `ε/2^(h−1)` (Definition 4.1);
//! * [`CellDictionary`] — the two-level cell dictionary (Definition 4.2)
//!   with the bit-exact size model of Lemma 4.3 and a compact wire encoding
//!   used to measure broadcast cost;
//! * [`DictionaryIndex`] — sub-dictionaries produced by BSP
//!   defragmentation (§4.2.2), each carrying an MBR (Definition 5.9) for
//!   the skipping rule of Lemma 5.10 and a kd-tree over cell centres so an
//!   `(ε,ρ)`-region query costs `O(log |cell|)` (Lemma 5.6);
//! * [`DictionaryIndex::region_query`] — the `(ε,ρ)`-region query itself
//!   (Definition 5.1).
//!
//! The hash tables used throughout are keyed by integer lattice coordinates
//! and use a local FxHash-style hasher ([`fxhash`]) because the default
//! SipHash dominates cell-lookup profiles.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cell;
pub mod dictionary;
pub mod fxhash;
pub mod plan;
pub mod query;
pub mod spec;
pub mod subdict;

pub use cell::{CellCoord, SubCellIdx};
pub use dictionary::{CellDictionary, CellEntry, DecodeError, SubCellEntry};
pub use fxhash::{FxHashMap, FxHashSet};
pub use plan::{CellQueryPlan, PlanCache, PlanCacheStats, PlannerCostModel, QueryRoute};
pub use query::{QueryStats, RegionQueryResult};
pub use spec::GridSpec;
pub use subdict::DictionaryIndex;

/// Errors produced by grid construction.
#[derive(Debug, Clone, PartialEq)]
pub enum GridError {
    /// ε must be strictly positive.
    NonPositiveEps(f64),
    /// ρ must lie in `(0, 1]`.
    InvalidRho(f64),
    /// Dimensionality must be at least 1.
    ZeroDimension,
    /// `d·(h−1)` sub-cell position bits exceed the 128-bit budget.
    SubCellBitsOverflow {
        /// Required bits.
        required: u32,
    },
}

impl std::fmt::Display for GridError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GridError::NonPositiveEps(e) => write!(f, "eps must be > 0, got {e}"),
            GridError::InvalidRho(r) => write!(f, "rho must be in (0, 1], got {r}"),
            GridError::ZeroDimension => write!(f, "dimension must be >= 1"),
            GridError::SubCellBitsOverflow { required } => write!(
                f,
                "sub-cell index needs {required} bits (> 128); increase rho or reduce dimension"
            ),
        }
    }
}

impl std::error::Error for GridError {}
