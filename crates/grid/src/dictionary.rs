//! The two-level cell dictionary (Definition 4.2).
//!
//! The dictionary is the compact summary of the *entire* data set that
//! Phase I broadcasts to every worker: a root level of cells and a leaf
//! level of sub-cells, each entry recording `⟨position, density⟩`. Its two
//! compression tricks (Lemma 4.3) are (a) storing only densities, never
//! point positions, and (b) addressing a sub-cell by its `d(h−1)`-bit
//! local ordering inside its cell instead of by floats.
//!
//! Two size figures are exposed:
//!
//! * [`CellDictionary::size_bits`] — the bit-exact analytical model of
//!   Lemma 4.3, used to regenerate Table 5;
//! * [`CellDictionary::encode`] — an actual wire encoding (length-prefixed,
//!   little-endian, sub-cell positions bit-packed), whose byte length the
//!   execution engine charges as broadcast cost.

use crate::cell::{CellCoord, SubCellIdx};
use crate::fxhash::{FxHashMap, FxHashSet};
use crate::spec::GridSpec;

/// One leaf entry: a sub-cell's packed local position and its density.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SubCellEntry {
    /// Packed `d(h−1)`-bit local position within the parent cell.
    pub idx: SubCellIdx,
    /// Number of points inside the sub-cell.
    pub count: u32,
}

/// One root entry: a cell, its density, and its non-empty sub-cells.
#[derive(Debug, Clone, PartialEq)]
pub struct CellEntry {
    /// Lattice coordinate of the cell.
    pub coord: CellCoord,
    /// Number of points inside the cell (= sum of sub-cell counts).
    pub count: u32,
    /// Non-empty sub-cells, sorted by packed index.
    pub subs: Vec<SubCellEntry>,
}

impl CellEntry {
    /// Summarises the points of one cell into a root+leaf entry.
    ///
    /// Callers guarantee every point actually falls in `coord`'s cell;
    /// boundary points are clamped into it by the sub-index computation.
    pub fn from_points<'a>(
        spec: &GridSpec,
        coord: CellCoord,
        points: impl IntoIterator<Item = &'a [f64]>,
    ) -> Self {
        let mut counts: FxHashMap<SubCellIdx, u32> = FxHashMap::default();
        let mut total = 0u32;
        for p in points {
            debug_assert_eq!(spec.cell_of(p), coord, "point outside its cell");
            *counts.entry(spec.sub_index_of(&coord, p)).or_insert(0) += 1;
            total += 1;
        }
        let mut subs: Vec<SubCellEntry> = counts
            .into_iter()
            .map(|(idx, count)| SubCellEntry { idx, count })
            .collect();
        subs.sort_unstable_by_key(|s| s.idx);
        Self {
            coord,
            count: total,
            subs,
        }
    }

    /// Merges another entry for the same cell (used when the same cell is
    /// summarised by several point batches).
    pub fn merge(&mut self, other: CellEntry) {
        debug_assert_eq!(self.coord, other.coord);
        self.count += other.count;
        let mut map: FxHashMap<SubCellIdx, u32> =
            self.subs.drain(..).map(|s| (s.idx, s.count)).collect();
        for s in other.subs {
            *map.entry(s.idx).or_insert(0) += s.count;
        }
        let mut subs: Vec<SubCellEntry> = map
            .into_iter()
            .map(|(idx, count)| SubCellEntry { idx, count })
            .collect();
        subs.sort_unstable_by_key(|s| s.idx);
        self.subs = subs;
    }
}

/// The two-level cell dictionary over the whole data set.
///
/// ```
/// use rpdbscan_grid::{CellDictionary, GridSpec};
///
/// let spec = GridSpec::new(2, 1.0, 0.1).unwrap();
/// let points: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64 * 0.01, 0.0]).collect();
/// let dict = CellDictionary::build_from_points(
///     spec,
///     points.iter().map(|p| p.as_slice()),
/// );
/// assert_eq!(dict.total_points(), 100);
/// // Broadcast wire format round-trips.
/// let back = CellDictionary::decode(dict.encode()).unwrap();
/// assert_eq!(back.num_cells(), dict.num_cells());
/// ```
#[derive(Debug, Clone)]
pub struct CellDictionary {
    spec: GridSpec,
    cells: Vec<CellEntry>,
    lookup: FxHashMap<CellCoord, u32>,
}

impl CellDictionary {
    /// Assembles a dictionary from per-partition cell entries, merging any
    /// duplicate cells (Algorithm 2, Lines 18–20: `M ← M₁ ∪ … ∪ M_k`).
    pub fn from_entries(spec: GridSpec, entries: impl IntoIterator<Item = CellEntry>) -> Self {
        let mut cells: Vec<CellEntry> = Vec::new();
        let mut lookup: FxHashMap<CellCoord, u32> = FxHashMap::default();
        for e in entries {
            match lookup.get(&e.coord) {
                Some(&i) => cells[i as usize].merge(e),
                None => {
                    lookup.insert(e.coord.clone(), cells.len() as u32);
                    cells.push(e);
                }
            }
        }
        Self {
            spec,
            cells,
            lookup,
        }
    }

    /// Builds a dictionary directly from a point stream (convenience for
    /// tests and the single-machine baselines).
    pub fn build_from_points<'a>(
        spec: GridSpec,
        points: impl IntoIterator<Item = &'a [f64]>,
    ) -> Self {
        let mut by_cell: FxHashMap<CellCoord, Vec<&'a [f64]>> = FxHashMap::default();
        for p in points {
            by_cell.entry(spec.cell_of(p)).or_default().push(p);
        }
        // from_entries assigns dictionary indices in entry order, so sort
        // by coordinate: hash-map iteration order must not decide index
        // assignment.
        let mut entries: Vec<CellEntry> = by_cell
            .into_iter()
            .map(|(coord, pts)| CellEntry::from_points(&spec, coord, pts))
            .collect();
        entries.sort_unstable_by(|a, b| a.coord.cmp(&b.coord));
        Self::from_entries(spec, entries)
    }

    /// The grid the dictionary was built over.
    #[inline]
    pub fn spec(&self) -> &GridSpec {
        &self.spec
    }

    /// Number of (non-empty) cells.
    #[inline]
    pub fn num_cells(&self) -> usize {
        self.cells.len()
    }

    /// Number of (non-empty) sub-cells across all cells.
    pub fn num_sub_cells(&self) -> usize {
        self.cells.iter().map(|c| c.subs.len()).sum()
    }

    /// Total number of summarised points.
    pub fn total_points(&self) -> u64 {
        self.cells.iter().map(|c| c.count as u64).sum()
    }

    /// All cell entries (index order is stable and used as the cell id
    /// space by the cell graph).
    #[inline]
    pub fn cells(&self) -> &[CellEntry] {
        &self.cells
    }

    /// The entry at dictionary index `i`.
    #[inline]
    pub fn entry(&self, i: u32) -> &CellEntry {
        &self.cells[i as usize]
    }

    /// Dictionary index of a cell coordinate, if the cell is non-empty.
    #[inline]
    pub fn index_of(&self, coord: &CellCoord) -> Option<u32> {
        self.lookup.get(coord).copied()
    }

    /// Looks a cell up by coordinate.
    pub fn get(&self, coord: &CellCoord) -> Option<&CellEntry> {
        self.index_of(coord).map(|i| self.entry(i))
    }

    /// Analytical size in bits per Lemma 4.3:
    /// `32(|cell| + |sub|) + 32·d·|cell| + d(h−1)·|sub|`.
    pub fn size_bits(&self) -> u64 {
        let cells = self.num_cells() as u64;
        let subs = self.num_sub_cells() as u64;
        let d = self.spec.dim() as u64;
        let pos_bits_per_sub = d * (self.spec.h() as u64 - 1);
        32 * (cells + subs) + 32 * d * cells + pos_bits_per_sub * subs
    }

    /// Analytical size in bytes (Lemma 4.3, rounded up).
    pub fn size_bytes(&self) -> u64 {
        self.size_bits().div_ceil(8)
    }

    /// Serialises the dictionary to its broadcast wire format.
    ///
    /// Layout (little-endian): magic `RPD1`, `dim: u32`, `h: u32`,
    /// `eps: f64`, `rho: f64`, `n_cells: u64`, then per cell: `d × i64`
    /// coordinates, `count: u32`, `n_subs: u32`, and per sub-cell its
    /// position packed into `⌈d(h−1)/8⌉` bytes followed by `count: u32`.
    pub fn encode(&self) -> Vec<u8> {
        let sub_pos_bytes = (self.spec.sub_bits() as usize).div_ceil(8);
        let mut buf = Vec::with_capacity(64 + self.num_cells() * 32);
        buf.extend_from_slice(b"RPD1");
        buf.extend_from_slice(&(self.spec.dim() as u32).to_le_bytes());
        buf.extend_from_slice(&self.spec.h().to_le_bytes());
        buf.extend_from_slice(&self.spec.eps().to_le_bytes());
        buf.extend_from_slice(&self.spec.rho().to_le_bytes());
        buf.extend_from_slice(&(self.cells.len() as u64).to_le_bytes());
        for cell in &self.cells {
            for &c in cell.coord.coords() {
                buf.extend_from_slice(&c.to_le_bytes());
            }
            buf.extend_from_slice(&cell.count.to_le_bytes());
            buf.extend_from_slice(&(cell.subs.len() as u32).to_le_bytes());
            for s in &cell.subs {
                let bytes = s.idx.0.to_le_bytes();
                buf.extend_from_slice(&bytes[..sub_pos_bytes]);
                buf.extend_from_slice(&s.count.to_le_bytes());
            }
        }
        buf
    }

    /// Parses a dictionary previously produced by [`Self::encode`].
    pub fn decode(data: impl AsRef<[u8]>) -> Result<Self, DecodeError> {
        let mut data = Reader(data.as_ref());
        if data.take(4)? != b"RPD1" {
            return Err(DecodeError::BadMagic);
        }
        let dim = data.get_u32_le()? as usize;
        let _h = data.get_u32_le()?;
        let eps = data.get_f64_le()?;
        let rho = data.get_f64_le()?;
        let n_cells = data.get_u64_le()? as usize;
        let spec = GridSpec::new(dim, eps, rho).map_err(|_| DecodeError::BadHeader)?;
        let sub_pos_bytes = (spec.sub_bits() as usize).div_ceil(8);
        // Never trust wire-supplied lengths for allocation: a 20-byte buffer
        // claiming u64::MAX cells must fail with `Truncated`, not abort on an
        // over-sized `Vec`. Each cell needs at least `8·dim + 8` payload
        // bytes, so the remaining buffer bounds every count up front.
        let min_cell_bytes = (dim as u128) * 8 + 8;
        if (n_cells as u128) * min_cell_bytes > data.remaining() as u128 {
            return Err(DecodeError::Truncated);
        }
        let mut cells = Vec::with_capacity(n_cells);
        for _ in 0..n_cells {
            let mut coords = Vec::with_capacity(dim);
            for _ in 0..dim {
                coords.push(data.get_i64_le()?);
            }
            let coord = CellCoord::new(coords);
            let count = data.get_u32_le()?;
            let n_subs = data.get_u32_le()? as usize;
            let min_sub_bytes = (sub_pos_bytes as u128) + 4;
            if (n_subs as u128) * min_sub_bytes > data.remaining() as u128 {
                return Err(DecodeError::Truncated);
            }
            let mut subs = Vec::with_capacity(n_subs);
            let mut sub_total = 0u64;
            for _ in 0..n_subs {
                let mut raw = [0u8; 16];
                raw[..sub_pos_bytes].copy_from_slice(data.take(sub_pos_bytes)?);
                let idx = SubCellIdx(u128::from_le_bytes(raw));
                let c = data.get_u32_le()?;
                sub_total += c as u64;
                subs.push(SubCellEntry { idx, count: c });
            }
            if sub_total != count as u64 {
                return Err(DecodeError::Inconsistent);
            }
            cells.push(CellEntry { coord, count, subs });
        }
        Ok(Self::from_entries(spec, cells))
    }

    /// Inserts a batch of points, updating cell and sub-cell densities in
    /// place. Returns the coordinate of every cell whose counts changed
    /// (each at most once, sorted). New cells are appended, so existing
    /// dictionary indices stay valid across the call.
    pub fn insert_points<'a>(
        &mut self,
        points: impl IntoIterator<Item = &'a [f64]>,
    ) -> Vec<CellCoord> {
        let mut dirty: FxHashSet<CellCoord> = FxHashSet::default();
        for p in points {
            debug_assert_eq!(p.len(), self.spec.dim(), "point dimension mismatch");
            let coord = self.spec.cell_of(p);
            let i = match self.lookup.get(&coord) {
                Some(&i) => i as usize,
                None => {
                    let i = self.cells.len();
                    self.lookup.insert(coord.clone(), i as u32);
                    self.cells.push(CellEntry {
                        coord: coord.clone(),
                        count: 0,
                        subs: Vec::new(),
                    });
                    i
                }
            };
            let sub = self.spec.sub_index_of(&coord, p);
            let cell = &mut self.cells[i];
            cell.count += 1;
            match cell.subs.binary_search_by_key(&sub, |s| s.idx) {
                Ok(j) => cell.subs[j].count += 1,
                Err(j) => cell.subs.insert(j, SubCellEntry { idx: sub, count: 1 }),
            }
            dirty.insert(coord);
        }
        let mut out: Vec<CellCoord> = dirty.into_iter().collect();
        out.sort_unstable();
        out
    }

    /// Removes a batch of previously inserted points, decrementing cell and
    /// sub-cell densities. Returns the coordinate of every cell whose counts
    /// changed (each at most once, sorted). Sub-cells reaching density zero
    /// are dropped immediately; cells reaching density zero are kept as
    /// empty entries — so indices stay valid — until [`Self::compact`] runs.
    ///
    /// # Panics
    ///
    /// Panics if a point's cell or sub-cell is not present in the
    /// dictionary: removing a point that was never inserted is a caller
    /// bug, not a recoverable condition.
    pub fn remove_points<'a>(
        &mut self,
        points: impl IntoIterator<Item = &'a [f64]>,
    ) -> Vec<CellCoord> {
        let mut dirty: FxHashSet<CellCoord> = FxHashSet::default();
        for p in points {
            debug_assert_eq!(p.len(), self.spec.dim(), "point dimension mismatch");
            let coord = self.spec.cell_of(p);
            let i = *self
                .lookup
                .get(&coord)
                .unwrap_or_else(|| panic!("remove_points: cell {coord} not in dictionary")) // lint:allow(panic-safety): documented `# Panics` contract — removing a never-inserted point is a caller bug
                as usize;
            let sub = self.spec.sub_index_of(&coord, p);
            let cell = &mut self.cells[i];
            let j = cell
                .subs
                .binary_search_by_key(&sub, |s| s.idx)
                .unwrap_or_else(|_| panic!("remove_points: sub-cell {sub} of {coord} is empty")); // lint:allow(panic-safety): documented `# Panics` contract — removing a never-inserted point is a caller bug
            cell.subs[j].count -= 1;
            if cell.subs[j].count == 0 {
                cell.subs.remove(j);
            }
            assert!(cell.count > 0, "remove_points: cell {coord} already empty");
            cell.count -= 1;
            dirty.insert(coord);
        }
        let mut out: Vec<CellCoord> = dirty.into_iter().collect();
        out.sort_unstable();
        out
    }

    /// Drops cells left empty by [`Self::remove_points`] and rebuilds the
    /// coordinate lookup. Invalidates previously obtained dictionary
    /// indices; run it before handing the dictionary to index or graph
    /// construction, which treat every entry as a non-empty cell.
    pub fn compact(&mut self) {
        if self.cells.iter().all(|c| c.count > 0) {
            return;
        }
        self.cells.retain(|c| c.count > 0);
        self.lookup.clear();
        for (i, c) in self.cells.iter().enumerate() {
            self.lookup.insert(c.coord.clone(), i as u32);
        }
    }
}

/// Little-endian slice reader used by [`CellDictionary::decode`].
struct Reader<'a>(&'a [u8]);

impl<'a> Reader<'a> {
    #[inline]
    fn remaining(&self) -> usize {
        self.0.len()
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.0.len() < n {
            return Err(DecodeError::Truncated);
        }
        let (head, rest) = self.0.split_at(n);
        self.0 = rest;
        Ok(head)
    }

    /// Takes exactly `N` bytes as an array; `take` guarantees the length.
    fn take_array<const N: usize>(&mut self) -> Result<[u8; N], DecodeError> {
        let bytes = self.take(N)?;
        let mut buf = [0u8; N];
        buf.copy_from_slice(bytes);
        Ok(buf)
    }

    fn get_u32_le(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(self.take_array()?))
    }

    fn get_u64_le(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_le_bytes(self.take_array()?))
    }

    fn get_i64_le(&mut self) -> Result<i64, DecodeError> {
        Ok(i64::from_le_bytes(self.take_array()?))
    }

    fn get_f64_le(&mut self) -> Result<f64, DecodeError> {
        Ok(f64::from_bits(self.get_u64_le()?))
    }
}

/// Errors from [`CellDictionary::decode`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// The buffer ended mid-structure.
    Truncated,
    /// The magic prefix was not `RPD1`.
    BadMagic,
    /// Header fields describe an invalid grid.
    BadHeader,
    /// A cell's density disagrees with the sum of its sub-cell densities.
    Inconsistent,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "dictionary buffer truncated"),
            DecodeError::BadMagic => write!(f, "bad dictionary magic"),
            DecodeError::BadHeader => write!(f, "invalid dictionary header"),
            DecodeError::Inconsistent => write!(f, "cell/sub-cell densities disagree"),
        }
    }
}

impl std::error::Error for DecodeError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec2d() -> GridSpec {
        GridSpec::new(2, 2.0f64.sqrt(), 0.5).unwrap() // side 1, splits 2
    }

    fn flat(points: &[[f64; 2]]) -> Vec<&[f64]> {
        points.iter().map(|p| p.as_slice()).collect()
    }

    #[test]
    fn build_counts_points_per_cell_and_subcell() {
        let pts = [[0.1, 0.1], [0.2, 0.2], [0.9, 0.9], [1.5, 0.5]];
        let d = CellDictionary::build_from_points(spec2d(), flat(&pts));
        assert_eq!(d.num_cells(), 2);
        assert_eq!(d.total_points(), 4);
        let c00 = d.get(&CellCoord::new([0, 0])).unwrap();
        assert_eq!(c00.count, 3);
        // (0.1,0.1) and (0.2,0.2) share the lower-left sub-cell; (0.9,0.9)
        // sits in the upper-right one.
        assert_eq!(c00.subs.len(), 2);
        assert_eq!(c00.subs.iter().map(|s| s.count).sum::<u32>(), 3);
        let c10 = d.get(&CellCoord::new([1, 0])).unwrap();
        assert_eq!(c10.count, 1);
    }

    #[test]
    fn from_entries_merges_duplicate_cells() {
        let spec = spec2d();
        let coord = CellCoord::new([0, 0]);
        let a = CellEntry::from_points(&spec, coord.clone(), flat(&[[0.1, 0.1]]));
        let b = CellEntry::from_points(&spec, coord.clone(), flat(&[[0.15, 0.15], [0.9, 0.9]]));
        let d = CellDictionary::from_entries(spec, [a, b]);
        assert_eq!(d.num_cells(), 1);
        let e = d.get(&coord).unwrap();
        assert_eq!(e.count, 3);
        assert_eq!(e.subs.iter().map(|s| s.count).sum::<u32>(), 3);
        // subs stay sorted after merge
        assert!(e.subs.windows(2).all(|w| w[0].idx < w[1].idx));
    }

    #[test]
    fn lemma_4_3_size_model() {
        let pts = [[0.1, 0.1], [0.9, 0.9], [1.5, 0.5]];
        let d = CellDictionary::build_from_points(spec2d(), flat(&pts));
        let cells = d.num_cells() as u64; // 2
        let subs = d.num_sub_cells() as u64; // 3
                                             // h = 2, d = 2 -> position bits per sub = 2
        let expect = 32 * (cells + subs) + 32 * 2 * cells + 2 * subs;
        assert_eq!(d.size_bits(), expect);
        assert_eq!(d.size_bytes(), expect.div_ceil(8));
    }

    #[test]
    fn encode_decode_round_trip() {
        let pts = [
            [0.1, 0.1],
            [0.2, 0.7],
            [0.9, 0.9],
            [1.5, 0.5],
            [-3.3, 4.4],
            [100.0, -250.0],
        ];
        let d = CellDictionary::build_from_points(spec2d(), flat(&pts));
        let wire = d.encode();
        let back = CellDictionary::decode(wire).unwrap();
        assert_eq!(back.num_cells(), d.num_cells());
        assert_eq!(back.total_points(), d.total_points());
        for cell in d.cells() {
            let b = back.get(&cell.coord).expect("cell survives round trip");
            assert_eq!(b, cell);
        }
    }

    #[test]
    fn decode_rejects_garbage() {
        assert_eq!(
            CellDictionary::decode(b"nope").unwrap_err(),
            DecodeError::BadMagic
        );
        assert_eq!(
            CellDictionary::decode(b"RP").unwrap_err(),
            DecodeError::Truncated
        );
        // valid magic, truncated header
        assert_eq!(
            CellDictionary::decode(b"RPD1\x02\x00").unwrap_err(),
            DecodeError::Truncated
        );
    }

    #[test]
    fn wire_size_tracks_analytical_size() {
        // The wire format carries an O(1) header and i64 coords instead of
        // f32 positions, so it is within a small constant factor of the
        // Lemma 4.3 figure — broadcast-cost accounting relies on this.
        let mut pts = Vec::new();
        for i in 0..50 {
            for j in 0..50 {
                pts.push([i as f64 * 0.11, j as f64 * 0.13]);
            }
        }
        let refs: Vec<&[f64]> = pts.iter().map(|p| p.as_slice()).collect();
        let d = CellDictionary::build_from_points(spec2d(), refs);
        let wire_bits = d.encode().len() as u64 * 8;
        let model_bits = d.size_bits();
        assert!(wire_bits >= model_bits / 2);
        assert!(wire_bits <= model_bits * 4);
    }

    #[test]
    fn empty_dictionary() {
        let d = CellDictionary::build_from_points(spec2d(), std::iter::empty());
        assert_eq!(d.num_cells(), 0);
        assert_eq!(d.total_points(), 0);
        let back = CellDictionary::decode(d.encode()).unwrap();
        assert_eq!(back.num_cells(), 0);
    }

    #[test]
    fn insert_points_matches_batch_build() {
        let pts = [[0.1, 0.1], [0.2, 0.7], [0.9, 0.9], [1.5, 0.5], [-3.3, 4.4]];
        let batch = CellDictionary::build_from_points(spec2d(), flat(&pts));
        let mut inc = CellDictionary::build_from_points(spec2d(), std::iter::empty());
        // First three points all land in cell (0,0).
        let dirty = inc.insert_points(flat(&pts[..3]));
        assert_eq!(dirty, vec![CellCoord::new([0, 0])]);
        let dirty = inc.insert_points(flat(&pts[3..]));
        assert_eq!(dirty.len(), 2);
        assert_eq!(inc.total_points(), batch.total_points());
        assert_eq!(inc.num_cells(), batch.num_cells());
        for cell in batch.cells() {
            assert_eq!(inc.get(&cell.coord).unwrap(), cell);
        }
        // Sub-cell lists stay sorted through incremental insertion.
        for cell in inc.cells() {
            assert!(cell.subs.windows(2).all(|w| w[0].idx < w[1].idx));
        }
    }

    #[test]
    fn remove_points_reverses_insert_and_compact_drops_empties() {
        let pts = [[0.1, 0.1], [0.2, 0.7], [0.9, 0.9], [1.5, 0.5]];
        let mut d = CellDictionary::build_from_points(spec2d(), flat(&pts));
        let dirty = d.remove_points(flat(&[[1.5, 0.5]]));
        assert_eq!(dirty, vec![CellCoord::new([1, 0])]);
        // The emptied cell survives (indices stable) until compact.
        assert_eq!(d.num_cells(), 2);
        assert_eq!(d.get(&CellCoord::new([1, 0])).unwrap().count, 0);
        assert_eq!(d.total_points(), 3);
        d.compact();
        assert_eq!(d.num_cells(), 1);
        assert!(d.get(&CellCoord::new([1, 0])).is_none());
        // Remaining cell equals a fresh build over the remaining points.
        let fresh = CellDictionary::build_from_points(spec2d(), flat(&pts[..3]));
        assert_eq!(
            d.get(&CellCoord::new([0, 0])),
            fresh.get(&CellCoord::new([0, 0]))
        );
        // Lookup indices are consistent after compaction.
        let i = d.index_of(&CellCoord::new([0, 0])).unwrap();
        assert_eq!(d.entry(i).coord, CellCoord::new([0, 0]));
    }

    #[test]
    #[should_panic(expected = "remove_points")]
    fn remove_unknown_point_panics() {
        let mut d = CellDictionary::build_from_points(spec2d(), flat(&[[0.1, 0.1]]));
        d.remove_points(flat(&[[9.0, 9.0]]));
    }

    #[test]
    fn decode_rejects_every_truncation() {
        // Fuzz-style: every strict prefix of a valid wire image must fail
        // cleanly — no panic, no over-allocation, always `Err`.
        let pts = [[0.1, 0.1], [0.2, 0.7], [0.9, 0.9], [1.5, 0.5], [-3.3, 4.4]];
        let wire = CellDictionary::build_from_points(spec2d(), flat(&pts)).encode();
        for len in 0..wire.len() {
            let err =
                CellDictionary::decode(&wire[..len]).expect_err("prefix decodes successfully");
            assert!(
                matches!(err, DecodeError::Truncated | DecodeError::BadMagic),
                "prefix len {len}: unexpected error {err:?}"
            );
        }
        assert!(CellDictionary::decode(&wire).is_ok());
    }

    #[test]
    fn decode_rejects_huge_claimed_counts_without_allocating() {
        // Header claims u64::MAX cells in a 20-byte payload: must be
        // `Truncated` before any proportional allocation happens.
        let mut wire = Vec::new();
        wire.extend_from_slice(b"RPD1");
        wire.extend_from_slice(&2u32.to_le_bytes()); // dim
        wire.extend_from_slice(&2u32.to_le_bytes()); // h
        wire.extend_from_slice(&1.0f64.to_le_bytes()); // eps
        wire.extend_from_slice(&0.5f64.to_le_bytes()); // rho
        wire.extend_from_slice(&u64::MAX.to_le_bytes()); // n_cells
        wire.extend_from_slice(&[0u8; 20]);
        assert_eq!(
            CellDictionary::decode(&wire).unwrap_err(),
            DecodeError::Truncated
        );

        // rho = 1 gives h = 1 and zero sub-cell bits, so an absurd
        // dimension passes grid validation — the byte budget must still
        // reject it before the per-cell coordinate allocation.
        let mut wire = Vec::new();
        wire.extend_from_slice(b"RPD1");
        wire.extend_from_slice(&u32::MAX.to_le_bytes()); // dim = 4 294 967 295
        wire.extend_from_slice(&1u32.to_le_bytes()); // h
        wire.extend_from_slice(&1.0f64.to_le_bytes()); // eps
        wire.extend_from_slice(&1.0f64.to_le_bytes()); // rho
        wire.extend_from_slice(&1u64.to_le_bytes()); // n_cells
        wire.extend_from_slice(&[0u8; 64]);
        assert_eq!(
            CellDictionary::decode(&wire).unwrap_err(),
            DecodeError::Truncated
        );

        // A plausible cell that claims u32::MAX sub-cells it cannot carry.
        let mut wire = Vec::new();
        wire.extend_from_slice(b"RPD1");
        wire.extend_from_slice(&2u32.to_le_bytes());
        wire.extend_from_slice(&2u32.to_le_bytes());
        wire.extend_from_slice(&1.0f64.to_le_bytes());
        wire.extend_from_slice(&0.5f64.to_le_bytes());
        wire.extend_from_slice(&1u64.to_le_bytes());
        wire.extend_from_slice(&0i64.to_le_bytes()); // coord x
        wire.extend_from_slice(&0i64.to_le_bytes()); // coord y
        wire.extend_from_slice(&7u32.to_le_bytes()); // count
        wire.extend_from_slice(&u32::MAX.to_le_bytes()); // n_subs
        wire.extend_from_slice(&[0u8; 32]);
        assert_eq!(
            CellDictionary::decode(&wire).unwrap_err(),
            DecodeError::Truncated
        );
    }

    #[test]
    fn decode_rejects_corrupt_headers() {
        let base = CellDictionary::build_from_points(spec2d(), flat(&[[0.1, 0.1]])).encode();
        // dim = 0
        let mut w = base.clone();
        w[4..8].copy_from_slice(&0u32.to_le_bytes());
        assert_eq!(
            CellDictionary::decode(&w).unwrap_err(),
            DecodeError::BadHeader
        );
        // eps = NaN
        let mut w = base.clone();
        w[12..20].copy_from_slice(&f64::NAN.to_le_bytes());
        assert_eq!(
            CellDictionary::decode(&w).unwrap_err(),
            DecodeError::BadHeader
        );
        // rho = 0
        let mut w = base.clone();
        w[20..28].copy_from_slice(&0.0f64.to_le_bytes());
        assert_eq!(
            CellDictionary::decode(&w).unwrap_err(),
            DecodeError::BadHeader
        );
        // dimension mismatch: header says d = 3 over a d = 2 payload
        let mut w = base;
        w[4..8].copy_from_slice(&3u32.to_le_bytes());
        assert!(CellDictionary::decode(&w).is_err());
    }

    #[test]
    fn decode_rejects_count_subcell_disagreement() {
        let mut wire =
            CellDictionary::build_from_points(spec2d(), flat(&[[0.1, 0.1], [0.9, 0.9]])).encode();
        // Header: 4 magic + 4 dim + 4 h + 8 eps + 8 rho + 8 n_cells = 36.
        // First cell: 2 × i64 coords (16), then count: u32 at offset 52.
        wire[52..56].copy_from_slice(&17u32.to_le_bytes());
        assert_eq!(
            CellDictionary::decode(&wire).unwrap_err(),
            DecodeError::Inconsistent
        );
    }

    #[test]
    fn decode_never_panics_on_single_byte_corruption() {
        let pts = [[0.1, 0.1], [0.2, 0.7], [0.9, 0.9], [1.5, 0.5]];
        let wire = CellDictionary::build_from_points(spec2d(), flat(&pts)).encode();
        for i in 0..wire.len() {
            for flip in [0x01u8, 0x80, 0xff] {
                let mut w = wire.clone();
                w[i] ^= flip;
                // Ok or Err are both acceptable — panicking or aborting is not.
                let _ = CellDictionary::decode(&w);
            }
        }
    }

    #[test]
    fn high_dimensional_subcell_positions_survive_encoding() {
        // d = 13, rho = 0.01 -> 91-bit packed positions exercise the
        // bit-packing path beyond 64 bits.
        let spec = GridSpec::new(13, 1000.0, 0.01).unwrap();
        let p1: Vec<f64> = (0..13).map(|i| i as f64 * 3.0).collect();
        let p2: Vec<f64> = (0..13).map(|i| i as f64 * 3.0 + 250.0).collect();
        let d = CellDictionary::build_from_points(spec, [p1.as_slice(), p2.as_slice()]);
        let back = CellDictionary::decode(d.encode()).unwrap();
        for cell in d.cells() {
            assert_eq!(back.get(&cell.coord).unwrap(), cell);
        }
    }
}
