//! Cell-level query planning for the Phase II hot path.
//!
//! All points of one cell run nearly the same `(ε,ρ)`-region query: the
//! sub-dictionary scan, the kd-tree candidate search, and most of the
//! distance decisions depend only on the *cell*, not on the individual
//! point. A [`CellQueryPlan`] hoists that shared work out of the
//! per-point loop:
//!
//! 1. **Candidate search once per cell.** The kd-trees are searched once
//!    from the query cell's box with radius `ε + diag` — a guaranteed
//!    superset of every per-point search (per-point radius is
//!    `ε + diag/2` and every point lies inside the box).
//! 2. **Cell- and sub-cell-level classification.** Each candidate cell is
//!    classified by the box-to-box bounds of
//!    [`GridSpec::cell_box_dist2_bounds`]: *never* (min² > ε² plus slack:
//!    no point of the query cell can reach it — pruned from the plan
//!    entirely) or *planned*. Within a planned cell, each sub-cell whose
//!    centre is within ε of **every** point of the query cell box
//!    (point-to-box max² ≤ ε² minus slack) is *always-qualifying*: its
//!    density is folded into a per-cell precomputed sum and it is never
//!    distance-tested again. Note that an entire *cell* can never be
//!    always-qualifying — the cell diagonal is exactly ε (Definition
//!    3.1), so even the query cell's own far corner is at distance ε —
//!    but its *sub-cells* routinely are, because a sub-centre sits at
//!    least `sub_side/2` inside the box, leaving a real margin.
//! 3. **SoA centre layout.** The remaining *tested* sub-cell centres are
//!    materialised into one flat `Vec<f64>` with parallel
//!    `counts`/prefix arrays, so the per-point inner loop is a
//!    branch-light linear scan over contiguous memory instead of
//!    pointer-chasing `CellEntry::subs` and recomputing
//!    `sub_center_into` per sub-cell per point.
//!
//! Classification uses a conservative relative slack ([`PLAN_SLACK`]):
//! near the ε boundary a sub-cell stays in the tested set, where
//! [`CellQueryPlan::query_into`] replicates the unplanned
//! [`DictionaryIndex::region_query`] arithmetic bit for bit (same box
//! origins, same bound formulas, same centre coordinates, same `dist2`).
//! Misclassification towards *tested* therefore costs a few extra
//! per-point distance tests but can never change a result; the
//! *always-qualifying* and *never* buckets only fire with a margin that
//! per-point rounding cannot cross. Lemma 5.6 (kd-tree candidate
//! completeness) and Lemma 5.10 (MBR skipping) are preserved because both
//! are applied with the query cell's whole box substituted for the query
//! point.

use crate::cell::CellCoord;
use crate::fxhash::{FxHashMap, FxHashSet};
use crate::query::{QueryStats, RegionQueryResult};
use crate::subdict::DictionaryIndex;
use rpdbscan_geom::kernel;

/// Relative slack applied to ε² before a sub-cell may be classified
/// *always-qualifying* (max² ≤ ε²·(1−slack)) or a cell *never*
/// (min² > ε²·(1+slack)).
///
/// Box-level bounds and per-point bounds are evaluated with different
/// (though mirrored) floating-point expressions; the slack guarantees a
/// classification can only differ from the per-point decision for
/// sub-cells left in the *tested* set, where the per-point oracle
/// arithmetic is replicated exactly.
pub const PLAN_SLACK: f64 = 1e-9;

/// A memoized `(ε,ρ)`-region query plan for one occupied cell.
///
/// Build once per cell with [`CellQueryPlan::build`], then answer every
/// point of that cell through [`CellQueryPlan::query_into`]. Results are
/// identical to [`DictionaryIndex::region_query_cells`] (density,
/// neighbour-cell set, and the `cells_full`/`cells_partial`/
/// `subcells_reported` counters); only candidate/sub-dictionary counters
/// differ because that work is amortised into
/// [`CellQueryPlan::build_stats`].
#[derive(Debug, Clone)]
pub struct CellQueryPlan {
    dim: usize,
    eps2: f64,
    side: f64,
    /// Planned cells: dictionary index per cell.
    cell_idx: Vec<u32>,
    /// Planned cells: box origin per cell, `dim` values each, computed
    /// exactly as `cell_dist2_bounds` does (`coord · side`).
    lo: Vec<f64>,
    /// Planned cells: Σ densities of **all** sub-cells (full-containment
    /// case).
    total: Vec<u64>,
    /// Planned cells: number of *always-qualifying* sub-cells.
    always_subs: Vec<u32>,
    /// Planned cells: Σ densities of the always-qualifying sub-cells.
    always_total: Vec<u64>,
    /// Planned cells: prefix offsets into `centers`/`counts` for the
    /// *tested* sub-cells (`len = cells + 1`).
    sub_start: Vec<u32>,
    /// Tested sub-cell centres, SoA: `dim` values per sub-cell.
    centers: Vec<f64>,
    /// Tested sub-cell densities, parallel to `centers`.
    counts: Vec<u32>,
    /// One-off build cost: kd-search and skip counters plus
    /// `plans_built = 1`. Merge once per plan, not once per point.
    build_stats: QueryStats,
}

impl CellQueryPlan {
    /// Plans the region query for the cell at dictionary index `idx`.
    pub fn build(index: &DictionaryIndex, idx: u32) -> Self {
        let spec = index.spec();
        let dict = index.dict();
        let dim = spec.dim();
        let eps = spec.eps();
        let eps2 = eps * eps;
        let side = spec.side();
        let qcoord = dict.entry(idx).coord.clone();
        let qlo = spec.cell_origin(&qcoord);
        let qhi: Vec<f64> = qlo.iter().map(|v| v + side).collect();
        // Per-point searches use radius ε + diag/2 from a point inside the
        // box; ε + diag from the box itself is a strict superset with a
        // diag/2 safety margin, so no float edge can lose a candidate.
        let kd_radius = eps + spec.cell_diag();
        let mut build_stats = QueryStats {
            plans_built: 1,
            ..QueryStats::default()
        };

        let mut candidates: Vec<u32> = Vec::new();
        for sd in index.subdicts() {
            // Box-level Lemma 5.10: qualifying sub-cell centres lie inside
            // the fragment MBR, so the fragment is irrelevant to every
            // point of the query box when the box-to-MBR distance exceeds
            // ε (checked with the conservative slack).
            let mut mbr_min2 = 0.0;
            for a in 0..dim {
                let g = if qhi[a] < sd.mbr().min()[a] {
                    sd.mbr().min()[a] - qhi[a]
                } else if qlo[a] > sd.mbr().max()[a] {
                    qlo[a] - sd.mbr().max()[a]
                } else {
                    0.0
                };
                mbr_min2 += g * g;
            }
            if mbr_min2 > eps2 * (1.0 + PLAN_SLACK) {
                build_stats.subdicts_skipped += 1;
                continue;
            }
            build_stats.subdicts_visited += 1;
            sd.tree().for_each_near_box(&qlo, &qhi, kd_radius, |ci, _| {
                build_stats.cells_candidate += 1;
                candidates.push(ci);
            });
        }
        // Fragments partition the cells, so each candidate appears once;
        // sort so the plan layout is independent of fragmentation.
        candidates.sort_unstable();

        let mut plan = Self {
            dim,
            eps2,
            side,
            cell_idx: Vec::new(),
            lo: Vec::new(),
            total: Vec::new(),
            always_subs: Vec::new(),
            always_total: Vec::new(),
            sub_start: vec![0],
            centers: Vec::new(),
            counts: Vec::new(),
            build_stats,
        };
        let never_bound = eps2 * (1.0 + PLAN_SLACK);
        let always_bound = eps2 * (1.0 - PLAN_SLACK);
        let mut center = vec![0.0; dim];
        let mut seg_centers: Vec<f64> = Vec::new();
        let mut seg_counts: Vec<u32> = Vec::new();
        for ci in candidates {
            let entry = dict.entry(ci);
            let (min2, _) = spec.cell_box_dist2_bounds(&qcoord, &entry.coord);
            if min2 > never_bound {
                continue; // *never*: out of reach for every point in the cell
            }
            seg_centers.clear();
            seg_counts.clear();
            let mut total = 0u64;
            let mut n_always = 0u32;
            let mut t_always = 0u64;
            for sub in &entry.subs {
                spec.sub_center_into(&entry.coord, sub.idx, &mut center);
                total += sub.count as u64;
                // Point-to-box bounds with the roles swapped: the
                // nearest/farthest query-cell point from this centre.
                let (cmin2, cmax2) = spec.cell_dist2_bounds(&qcoord, &center);
                if cmin2 > never_bound {
                    // *never*: beyond ε of every query-cell point, so the
                    // per-point test can't hit — drop it from the tested
                    // SoA. (Such a centre also makes the full-containment
                    // branch unreachable for this cell: a point within ε
                    // of the whole cell box would be within ε of the
                    // centre, contradicting this bound — so `total` is
                    // still safe to report there.)
                    continue;
                }
                if cmax2 <= always_bound {
                    n_always += 1;
                    t_always += sub.count as u64;
                } else {
                    seg_centers.extend_from_slice(&center);
                    seg_counts.push(sub.count);
                }
            }
            if n_always == 0 && seg_counts.is_empty() {
                // Every occupied sub-cell was never-pruned: the cell can
                // contribute nothing to any query point (its full-
                // containment branch is unreachable by the argument
                // above), so it earns no slot in the per-point loop.
                continue;
            }
            plan.cell_idx.push(ci);
            for &c in entry.coord.coords() {
                plan.lo.push(c as f64 * side);
            }
            plan.centers.extend_from_slice(&seg_centers);
            plan.counts.extend_from_slice(&seg_counts);
            plan.total.push(total);
            plan.always_subs.push(n_always);
            plan.always_total.push(t_always);
            plan.sub_start.push(plan.counts.len() as u32);
        }
        plan
    }

    /// Answers the region query for `p` (a point of the planned cell),
    /// clearing and refilling `result` exactly like
    /// [`DictionaryIndex::region_query_cells_into`].
    // lint:hot
    pub fn query_into(&self, p: &[f64], result: &mut RegionQueryResult) {
        debug_assert_eq!(p.len(), self.dim);
        result.neighbor_cells.clear();
        result.density = 0;
        let mut stats = QueryStats {
            plan_hits: 1,
            cells_candidate: self.cell_idx.len() as u32,
            ..QueryStats::default()
        };
        let eps2 = self.eps2;
        let dim = self.dim;
        for j in 0..self.cell_idx.len() {
            // Per-point box bounds, bit-identical to
            // `GridSpec::cell_dist2_bounds` (same origins, same formulas).
            let lo = &self.lo[j * dim..(j + 1) * dim];
            let mut min_acc = 0.0;
            let mut max_acc = 0.0;
            for (&l, &v) in lo.iter().zip(p.iter()) {
                let hi = l + self.side;
                // Branch-free selection of the same values the branchy
                // `cell_dist2_bounds` arms produce: `l - v` when the
                // point is left of the box, `v - hi` right of it, else 0.
                let dmin = (l - v).max(v - hi).max(0.0);
                let dmax = (v - l).abs().max((v - hi).abs());
                min_acc += dmin * dmin;
                max_acc += dmax * dmax;
            }
            if min_acc > eps2 {
                continue; // cannot contain any qualifying centre
            }
            let start = self.sub_start[j] as usize;
            let end = self.sub_start[j + 1] as usize;
            if max_acc <= eps2 {
                // Fully contained for this particular point: every
                // sub-cell qualifies, tested or not.
                stats.cells_full += 1;
                stats.subcells_reported += self.always_subs[j] + (end - start) as u32;
                result.density += self.total[j];
                result.neighbor_cells.push(self.cell_idx[j]);
            } else {
                // Always-qualifying sub-cells need no distance test; the
                // rest is the shared chunked kernel over the flattened
                // SoA centres — bit-identical to a scalar `dist2` scan
                // (see `rpdbscan_geom::kernel`).
                let (hits, tested_density) = kernel::sum_within_u32(
                    p,
                    &self.centers[start * dim..end * dim],
                    dim,
                    eps2,
                    &self.counts[start..end],
                );
                let reported = self.always_subs[j] + hits;
                result.density += self.always_total[j] + tested_density;
                if reported > 0 {
                    stats.cells_partial += 1;
                    stats.subcells_reported += reported;
                    result.neighbor_cells.push(self.cell_idx[j]);
                    if start == end {
                        // Answered purely from precomputed data.
                        stats.cells_planned_full += 1;
                    }
                }
            }
        }
        result.stats = stats;
    }

    /// Number of planned (non-pruned) candidate cells.
    pub fn num_cells(&self) -> usize {
        self.cell_idx.len()
    }

    /// Number of *always-qualifying* sub-cells across all planned cells —
    /// answered from precomputed density sums, never distance-tested.
    pub fn num_always_subcells(&self) -> u64 {
        self.always_subs.iter().map(|&n| n as u64).sum()
    }

    /// Number of *tested* sub-cell centres materialised in the SoA layout.
    pub fn num_tested_subcells(&self) -> usize {
        self.counts.len()
    }

    /// One-off build counters (`plans_built = 1`, kd-search and skip
    /// figures). Merge once per plan so aggregate stats stay meaningful.
    pub fn build_stats(&self) -> &QueryStats {
        &self.build_stats
    }
}

/// Route chosen by the [`PlannerCostModel`] for one occupied cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryRoute {
    /// Build a [`CellQueryPlan`] and answer every point through
    /// [`CellQueryPlan::query_into`].
    Planned,
    /// Run each point through the per-point kd path
    /// ([`DictionaryIndex::region_query_cells_scratch`]); the cell is too
    /// sparse to amortise a plan build.
    Kd,
}

/// Per-cell routing decision between the memoized planner and the
/// per-point kd path.
///
/// Building a [`CellQueryPlan`] is a fixed cost per cell — one kd search
/// at radius `ε + diag` (sweeping `(4/3)^d` the volume of a per-point
/// search, whose radius is `ε + diag/2`) plus a classification pass over
/// the gathered candidates — while the steady-state planned query costs a
/// measured ~0.15× of a kd point query (BENCH_query dense: 6.8×). The
/// break-even occupancy is therefore `build_cost / 0.85` point queries;
/// below it, planning is pure overhead (the historical 0.69× sparse
/// regression). The model is **calibrated once per dictionary build** from
/// structural quantities only (dimension), with a conservative floor —
/// deterministic, no clocks, so identical inputs always route
/// identically.
///
/// Routing never affects results: both paths are pinned bit-identical by
/// the planned-vs-oracle equivalence suite, so the model is free to be a
/// pure performance heuristic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlannerCostModel {
    /// Minimum cell occupancy (query points per cell) at which plan
    /// construction amortises; cells below it route to the kd path.
    pub min_occupancy: u32,
}

impl PlannerCostModel {
    /// Conservative floor on the break-even occupancy: even when the
    /// dimensional estimate predicts a lower break-even, cells must hold
    /// at least this many points before a plan is built. Keeps routing
    /// robustly on the kd path for sparse workloads (~3 points/cell)
    /// where the planner measured 0.69×.
    pub const MIN_OCCUPANCY_FLOOR: u32 = 8;

    /// Calibrates the model for one dictionary build.
    pub fn calibrate(index: &DictionaryIndex) -> Self {
        Self::from_dim(index.spec().dim())
    }

    /// Model from structural quantities alone (integer arithmetic in
    /// milli-units; deterministic across platforms).
    pub fn from_dim(dim: usize) -> Self {
        // (4/3)^d volume inflation of the cell-level kd search relative
        // to a per-point search, in milli-units.
        let mut inflation = 1000u64;
        for _ in 0..dim.min(16) {
            inflation = inflation * 4 / 3;
        }
        // Build cost in point-query equivalents: the inflated kd search
        // plus one candidate classification pass.
        let build_cost = 1000 + inflation;
        // Break-even = build_cost / 0.85 (the measured per-point saving
        // of the planned steady state), rounded up.
        let break_even = (build_cost * 20).div_ceil(17 * 1000);
        Self {
            min_occupancy: (break_even as u32).max(Self::MIN_OCCUPANCY_FLOOR),
        }
    }

    /// Routes a cell with `occupancy` resident query points.
    #[inline]
    pub fn route(&self, occupancy: usize) -> QueryRoute {
        if occupancy >= self.min_occupancy as usize {
            QueryRoute::Planned
        } else {
            QueryRoute::Kd
        }
    }
}

/// Per-run cache counters of a [`PlanCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlanCacheStats {
    /// Plans built (cache misses).
    pub built: u64,
    /// Queries served by an already-built plan of the current epoch.
    pub hits: u64,
    /// Previously planned cells whose plan was dropped because the cell
    /// was dirtied by an update.
    pub invalidated: u64,
}

/// Coordinate-keyed plan memo for the streaming repair path.
///
/// Dictionary indices — and therefore every index stored inside a
/// [`CellQueryPlan`] — are *epoch-scoped*: the streaming engine compacts
/// the dictionary and rebuilds its [`DictionaryIndex`] on every repair
/// epoch, so a plan must never be applied across epochs. The cache
/// enforces that rule structurally: [`PlanCache::begin_epoch`] drops all
/// cached plans and records, per dirty cell that had a plan, an
/// invalidation. Within an epoch, plans are shared by every query point
/// of the same cell.
#[derive(Debug, Default)]
pub struct PlanCache {
    /// Plans of the current epoch only.
    epoch_plans: FxHashMap<CellCoord, CellQueryPlan>,
    /// Coordinates planned in any epoch — the set invalidations are
    /// charged against.
    planned: FxHashSet<CellCoord>,
    stats: PlanCacheStats,
}

impl PlanCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts a repair epoch: drops every cached plan (indices from the
    /// previous epoch are invalid) and counts an invalidation for each
    /// `dirty` cell that had been planned before.
    pub fn begin_epoch<'a>(&mut self, dirty: impl IntoIterator<Item = &'a CellCoord>) {
        for c in dirty {
            if self.planned.remove(c) {
                self.stats.invalidated += 1;
            }
        }
        self.epoch_plans.clear();
    }

    /// Returns the current epoch's plan for `coord`, building it on first
    /// use. `None` when `coord` is not an occupied cell of the index.
    pub fn get_or_build(
        &mut self,
        index: &DictionaryIndex,
        coord: &CellCoord,
    ) -> Option<&CellQueryPlan> {
        let idx = index.dict().index_of(coord)?;
        if self.epoch_plans.contains_key(coord) {
            self.stats.hits += 1;
        } else {
            self.stats.built += 1;
            self.planned.insert(coord.clone());
            self.epoch_plans
                .insert(coord.clone(), CellQueryPlan::build(index, idx));
        }
        self.epoch_plans.get(coord)
    }

    /// Read-only lookup into the current epoch (for parallel stages that
    /// share a prebuilt cache).
    pub fn get(&self, coord: &CellCoord) -> Option<&CellQueryPlan> {
        self.epoch_plans.get(coord)
    }

    /// Number of plans held for the current epoch.
    pub fn len(&self) -> usize {
        self.epoch_plans.len()
    }

    /// True when no plan is cached for the current epoch.
    pub fn is_empty(&self) -> bool {
        self.epoch_plans.is_empty()
    }

    /// Cache counters.
    pub fn stats(&self) -> PlanCacheStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dictionary::CellDictionary;
    use crate::spec::GridSpec;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_dict(seed: u64, n: usize, dim: usize, eps: f64, rho: f64) -> CellDictionary {
        let mut rng = StdRng::seed_from_u64(seed);
        let pts: Vec<Vec<f64>> = (0..n)
            .map(|_| (0..dim).map(|_| rng.gen_range(0.0..10.0)).collect())
            .collect();
        let refs: Vec<&[f64]> = pts.iter().map(|p| p.as_slice()).collect();
        CellDictionary::build_from_points(GridSpec::new(dim, eps, rho).unwrap(), refs)
    }

    #[test]
    fn planned_query_matches_oracle_for_cell_points() {
        let dict = random_dict(21, 900, 2, 0.9, 0.25);
        let idx = DictionaryIndex::new(dict, 64);
        let spec = idx.spec().clone();
        let mut rng = StdRng::seed_from_u64(22);
        let mut planned = RegionQueryResult::default();
        for ci in 0..idx.dict().num_cells() as u32 {
            let plan = CellQueryPlan::build(&idx, ci);
            let bb = spec.cell_aabb(&idx.dict().entry(ci).coord);
            for _ in 0..5 {
                let p: Vec<f64> = (0..2)
                    .map(|a| rng.gen_range(bb.min()[a]..bb.max()[a]))
                    .collect();
                plan.query_into(&p, &mut planned);
                let oracle = idx.region_query_cells(&p);
                assert_eq!(planned.density, oracle.density);
                let mut a = planned.neighbor_cells.clone();
                let mut b = oracle.neighbor_cells.clone();
                a.sort_unstable();
                b.sort_unstable();
                b.dedup();
                assert_eq!(a, b);
                assert_eq!(planned.stats.cells_full, oracle.stats.cells_full);
                assert_eq!(planned.stats.cells_partial, oracle.stats.cells_partial);
                assert_eq!(
                    planned.stats.subcells_reported,
                    oracle.stats.subcells_reported
                );
            }
        }
    }

    #[test]
    fn dense_cells_produce_always_qualifying_subcells() {
        // A tight blob: the own cell's sub-cell centres are within ε of
        // every point of the cell, so the plan must fold them into the
        // precomputed per-cell sums.
        let spec = GridSpec::new(2, 4.0, 0.5).unwrap();
        let mut pts = Vec::new();
        for i in 0..40 {
            for j in 0..40 {
                pts.push(vec![i as f64 * 0.2, j as f64 * 0.2]);
            }
        }
        let refs: Vec<&[f64]> = pts.iter().map(|p| p.as_slice()).collect();
        let dict = CellDictionary::build_from_points(spec, refs);
        let idx = DictionaryIndex::single(dict);
        for ci in 0..idx.dict().num_cells() as u32 {
            let plan = CellQueryPlan::build(&idx, ci);
            assert!(
                plan.num_always_subcells() > 0,
                "cell {ci}: no always-qualifying sub-cell in a dense blob"
            );
            assert_eq!(plan.build_stats().plans_built, 1);
        }
    }

    #[test]
    fn cost_model_floor_makes_sparse_cells_unplannable() {
        for dim in 1..=6 {
            let m = PlannerCostModel::from_dim(dim);
            assert!(m.min_occupancy >= PlannerCostModel::MIN_OCCUPANCY_FLOOR);
            // Every occupancy below the threshold routes kd — this is the
            // structural guarantee behind the sparse-workload regression
            // test: a cell can only be planned at or above break-even.
            for occ in 0..m.min_occupancy as usize {
                assert_eq!(m.route(occ), QueryRoute::Kd, "dim={dim} occ={occ}");
            }
            assert_eq!(m.route(m.min_occupancy as usize), QueryRoute::Planned);
            assert_eq!(m.route(1_000_000), QueryRoute::Planned);
        }
    }

    #[test]
    fn cost_model_is_deterministic_per_build() {
        let dict = random_dict(41, 300, 3, 1.0, 0.5);
        let idx = DictionaryIndex::new(dict, 64);
        let a = PlannerCostModel::calibrate(&idx);
        let b = PlannerCostModel::calibrate(&idx);
        assert_eq!(a, b);
        assert_eq!(a, PlannerCostModel::from_dim(3));
    }

    #[test]
    fn cache_memoizes_within_epoch_and_invalidates_dirty_cells() {
        let dict = random_dict(31, 200, 2, 1.0, 0.5);
        let idx = DictionaryIndex::new(dict, 64);
        let coord = idx.dict().entry(0).coord.clone();
        let mut cache = PlanCache::new();
        assert!(cache.get_or_build(&idx, &coord).is_some());
        assert!(cache.get_or_build(&idx, &coord).is_some());
        assert_eq!(cache.stats().built, 1);
        assert_eq!(cache.stats().hits, 1);
        // Next epoch dirties that cell: its plan counts as invalidated and
        // is rebuilt on next use.
        cache.begin_epoch([&coord]);
        assert!(cache.get(&coord).is_none());
        assert_eq!(cache.stats().invalidated, 1);
        assert!(cache.get_or_build(&idx, &coord).is_some());
        assert_eq!(cache.stats().built, 2);
        // A coordinate outside the dictionary has no plan.
        let missing = CellCoord::new([1_000, 1_000]);
        assert!(cache.get_or_build(&idx, &missing).is_none());
    }
}
