//! Grid geometry: cells and sub-cells.
//!
//! Definition 3.1 fixes a cell as a `d`-dimensional hypercube whose
//! *diagonal* is ε, so its side is `ε/√d`: any two points sharing a cell
//! are within ε of each other, which is what makes one core point promote
//! its whole cell (Figure 3a).
//!
//! Definition 4.1 splits each cell into `2^{d(h−1)}` sub-cells, where
//! `h = 1 + ⌈log₂(1/ρ)⌉`; a sub-cell's diagonal is `ε/2^{h−1} ≤ ρ·ε`, which
//! is exactly the bound Lemma 5.2 needs for the `(ε,ρ)`-query sandwich.

use crate::cell::{CellCoord, SubCellIdx};
use crate::GridError;
use rpdbscan_geom::Aabb;
/// Immutable description of the grid induced by `(d, ε, ρ)`.
///
/// ```
/// use rpdbscan_grid::GridSpec;
///
/// let spec = GridSpec::new(2, 1.0, 0.01).unwrap();
/// // Cell diagonal is exactly eps, so the side is eps/sqrt(d).
/// assert!((spec.side() - 1.0 / 2f64.sqrt()).abs() < 1e-12);
/// // rho = 0.01 needs h = 8 approximation levels (Definition 4.1).
/// assert_eq!(spec.h(), 8);
/// let cell = spec.cell_of(&[3.2, -1.7]);
/// assert!(spec.cell_aabb(&cell).contains(&[3.2, -1.7]));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct GridSpec {
    dim: usize,
    eps: f64,
    rho: f64,
    /// Side length of a cell: `ε/√d` (diagonal = ε).
    side: f64,
    /// Approximation level `h = 1 + ⌈log₂(1/ρ)⌉` (Definition 4.1).
    h: u32,
    /// Sub-cell subdivisions per dimension: `2^{h−1}`.
    splits: u32,
    /// Side length of a sub-cell: `side / splits`.
    sub_side: f64,
}

impl GridSpec {
    /// Creates a grid for `dim`-dimensional data with DBSCAN radius `eps`
    /// and approximation parameter `rho ∈ (0, 1]`.
    pub fn new(dim: usize, eps: f64, rho: f64) -> Result<Self, GridError> {
        if dim == 0 {
            return Err(GridError::ZeroDimension);
        }
        if !eps.is_finite() || eps <= 0.0 {
            return Err(GridError::NonPositiveEps(eps));
        }
        if !(rho > 0.0 && rho <= 1.0) {
            return Err(GridError::InvalidRho(rho));
        }
        let h = 1 + (1.0 / rho).log2().ceil() as u32;
        let bits = dim as u32 * (h - 1);
        if bits > 128 {
            return Err(GridError::SubCellBitsOverflow { required: bits });
        }
        let side = eps / (dim as f64).sqrt();
        let splits = 1u32 << (h - 1);
        Ok(Self {
            dim,
            eps,
            rho,
            side,
            h,
            splits,
            sub_side: side / splits as f64,
        })
    }

    /// Data dimensionality `d`.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The neighbourhood radius ε.
    #[inline]
    pub fn eps(&self) -> f64 {
        self.eps
    }

    /// The approximation parameter ρ.
    #[inline]
    pub fn rho(&self) -> f64 {
        self.rho
    }

    /// Cell side length (`ε/√d`).
    #[inline]
    pub fn side(&self) -> f64 {
        self.side
    }

    /// Cell diagonal length — always exactly ε by construction.
    #[inline]
    pub fn cell_diag(&self) -> f64 {
        self.eps
    }

    /// The approximation level `h` of Definition 4.1.
    #[inline]
    pub fn h(&self) -> u32 {
        self.h
    }

    /// Sub-cell subdivisions per dimension (`2^{h−1}`).
    #[inline]
    pub fn splits_per_dim(&self) -> u32 {
        self.splits
    }

    /// Sub-cell side length.
    #[inline]
    pub fn sub_side(&self) -> f64 {
        self.sub_side
    }

    /// Number of position bits per sub-cell (`d(h−1)`, Lemma 4.3).
    #[inline]
    pub fn sub_bits(&self) -> u32 {
        self.dim as u32 * (self.h - 1)
    }

    /// Number of sub-cells per cell (`2^{d(h−1)}`); saturates at
    /// `u128::MAX` for extreme configurations.
    pub fn sub_cells_per_cell(&self) -> u128 {
        1u128.checked_shl(self.sub_bits()).unwrap_or(u128::MAX)
    }

    /// Lattice coordinate of the cell containing `p`.
    pub fn cell_of(&self, p: &[f64]) -> CellCoord {
        debug_assert_eq!(p.len(), self.dim);
        CellCoord::new(p.iter().map(|v| (v / self.side).floor() as i64))
    }

    /// Minimum corner of a cell.
    pub fn cell_origin(&self, c: &CellCoord) -> Vec<f64> {
        c.coords().iter().map(|&i| i as f64 * self.side).collect()
    }

    /// Centre point of a cell.
    pub fn cell_center(&self, c: &CellCoord) -> Vec<f64> {
        c.coords()
            .iter()
            .map(|&i| (i as f64 + 0.5) * self.side)
            .collect()
    }

    /// Axis-aligned box of a cell.
    pub fn cell_aabb(&self, c: &CellCoord) -> Aabb {
        let min = self.cell_origin(c);
        let max: Vec<f64> = min.iter().map(|v| v + self.side).collect();
        Aabb::new(min, max)
    }

    /// Local sub-cell index of `p` within its cell `c` — `(h−1)` bits per
    /// dimension, dimension 0 in the least significant bits.
    pub fn sub_index_of(&self, c: &CellCoord, p: &[f64]) -> SubCellIdx {
        debug_assert_eq!(p.len(), self.dim);
        let bits = (self.h - 1) as u128; // bits per dimension (as shift width)
        let mut idx: u128 = 0;
        for (i, (&coord, &v)) in c.coords().iter().zip(p.iter()).enumerate() {
            let origin = coord as f64 * self.side;
            let mut local = ((v - origin) / self.sub_side).floor() as i64;
            // Floating-point boundary safety: points exactly on the upper
            // face (or off by one ulp) clamp into the cell.
            local = local.clamp(0, (self.splits - 1) as i64);
            idx |= (local as u128) << (i as u128 * bits);
        }
        SubCellIdx(idx)
    }

    /// Centre point of sub-cell `sub` of cell `c` — the approximated
    /// position `q̂` of Definition 5.1.
    pub fn sub_center(&self, c: &CellCoord, sub: SubCellIdx) -> Vec<f64> {
        let mut out = vec![0.0; self.dim];
        self.sub_center_into(c, sub, &mut out);
        out
    }

    /// Allocation-free form of [`Self::sub_center`] for query hot loops.
    #[inline]
    pub fn sub_center_into(&self, c: &CellCoord, sub: SubCellIdx, out: &mut [f64]) {
        debug_assert_eq!(out.len(), self.dim);
        let bits = self.h - 1;
        let mask: u128 = if bits == 0 { 0 } else { (1u128 << bits) - 1 };
        for (i, (&coord, o)) in c.coords().iter().zip(out.iter_mut()).enumerate() {
            let local = ((sub.0 >> (i as u32 * bits)) & mask) as f64;
            *o = coord as f64 * self.side + (local + 0.5) * self.sub_side;
        }
    }

    /// Squared distance from `p` to the nearest and farthest points of
    /// cell `c`'s box, computed without materialising the box. The pair
    /// drives the fully/partially-contained split of the region query.
    #[inline]
    pub fn cell_dist2_bounds(&self, c: &CellCoord, p: &[f64]) -> (f64, f64) {
        debug_assert_eq!(p.len(), self.dim);
        let mut min_acc = 0.0;
        let mut max_acc = 0.0;
        for (&coord, &v) in c.coords().iter().zip(p.iter()) {
            let lo = coord as f64 * self.side;
            let hi = lo + self.side;
            let dmin = if v < lo {
                lo - v
            } else if v > hi {
                v - hi
            } else {
                0.0
            };
            let dmax = (v - lo).abs().max((v - hi).abs());
            min_acc += dmin * dmin;
            max_acc += dmax * dmax;
        }
        (min_acc, max_acc)
    }

    /// Squared minimum distance between the boxes of two cells. Zero for
    /// identical or face/edge/corner-adjacent cells; otherwise the summed
    /// squared per-dimension gaps. Used by the streaming subsystem to bound
    /// which cells an update can affect: a cell whose box is farther than ε
    /// from every changed cell cannot change core status or edges.
    #[inline]
    pub fn cell_min_dist2(&self, a: &CellCoord, b: &CellCoord) -> f64 {
        debug_assert_eq!(a.dim(), b.dim());
        let mut acc = 0.0;
        for (&x, &y) in a.coords().iter().zip(b.coords().iter()) {
            let gap = (x as i128 - y as i128).abs() - 1;
            if gap > 0 {
                let g = gap as f64 * self.side;
                acc += g * g;
            }
        }
        acc
    }

    /// Squared distance bounds between the boxes of two cells:
    /// `(min², max²)` over all point pairs `(p, q)` with `p` in `a`'s box
    /// and `q` in `b`'s box.
    ///
    /// This is the cell-to-cell generalisation of
    /// [`Self::cell_dist2_bounds`], and it deliberately mirrors that
    /// method's arithmetic (`lo = coord·side`, `hi = lo + side`, absolute
    /// differences, squares summed per dimension) so the query planner can
    /// classify candidate cells consistently with the per-point bounds the
    /// unplanned query computes: for every `p` in `a`'s box,
    /// `min² ≤ cell_dist2_bounds(b, p).0` and
    /// `cell_dist2_bounds(b, p).1 ≤ max²` up to f64 rounding (the planner
    /// adds a relative slack before acting on either bound).
    #[inline]
    pub fn cell_box_dist2_bounds(&self, a: &CellCoord, b: &CellCoord) -> (f64, f64) {
        debug_assert_eq!(a.dim(), b.dim());
        let mut min_acc = 0.0;
        let mut max_acc = 0.0;
        for (&x, &y) in a.coords().iter().zip(b.coords().iter()) {
            let alo = x as f64 * self.side;
            let ahi = alo + self.side;
            let blo = y as f64 * self.side;
            let bhi = blo + self.side;
            let dmin = if ahi < blo {
                blo - ahi
            } else if bhi < alo {
                alo - bhi
            } else {
                0.0
            };
            let dmax = (ahi - blo).max(bhi - alo);
            min_acc += dmin * dmin;
            max_acc += dmax * dmax;
        }
        (min_acc, max_acc)
    }

    /// Decomposes a packed sub-cell index into per-dimension locals.
    pub fn sub_locals(&self, sub: SubCellIdx) -> Vec<u32> {
        let bits = self.h - 1;
        let mask: u128 = if bits == 0 { 0 } else { (1u128 << bits) - 1 };
        (0..self.dim)
            .map(|i| ((sub.0 >> (i as u32 * bits)) & mask) as u32)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpdbscan_geom::dist;

    #[test]
    fn h_matches_definition_4_1() {
        // rho = 0.01 -> h = 1 + ceil(log2(100)) = 1 + 7 = 8
        assert_eq!(GridSpec::new(2, 1.0, 0.01).unwrap().h(), 8);
        // rho = 0.05 -> ceil(log2(20)) = 5 -> h = 6
        assert_eq!(GridSpec::new(2, 1.0, 0.05).unwrap().h(), 6);
        // rho = 0.10 -> ceil(log2(10)) = 4 -> h = 5
        assert_eq!(GridSpec::new(2, 1.0, 0.10).unwrap().h(), 5);
        // rho = 1 -> h = 1: sub-cell == cell
        assert_eq!(GridSpec::new(2, 1.0, 1.0).unwrap().h(), 1);
        // rho = 0.5 -> h = 2 as in the paper's running figures
        assert_eq!(GridSpec::new(2, 1.0, 0.5).unwrap().h(), 2);
    }

    #[test]
    fn cell_diagonal_is_eps() {
        for d in [1usize, 2, 3, 5, 13] {
            let g = GridSpec::new(d, 2.0, 0.5).unwrap();
            let diag = (g.side() * g.side() * d as f64).sqrt();
            assert!((diag - 2.0).abs() < 1e-12, "d={d}");
        }
    }

    #[test]
    fn sub_cell_diagonal_at_most_rho_eps() {
        // Lemma 5.2 requires diag(sub-cell) <= rho * eps.
        for rho in [0.01, 0.05, 0.1, 0.3, 0.77, 1.0] {
            let g = GridSpec::new(3, 1.5, rho).unwrap();
            let sub_diag = g.sub_side() * (3f64).sqrt();
            assert!(
                sub_diag <= rho * 1.5 + 1e-12,
                "rho={rho}: sub diag {sub_diag}"
            );
        }
    }

    #[test]
    fn invalid_params_rejected() {
        assert!(GridSpec::new(0, 1.0, 0.5).is_err());
        assert!(GridSpec::new(2, 0.0, 0.5).is_err());
        assert!(GridSpec::new(2, -1.0, 0.5).is_err());
        assert!(GridSpec::new(2, f64::NAN, 0.5).is_err());
        assert!(GridSpec::new(2, 1.0, 0.0).is_err());
        assert!(GridSpec::new(2, 1.0, 1.5).is_err());
        // d=20, rho=0.01 -> 20*7 = 140 bits > 128
        assert!(matches!(
            GridSpec::new(20, 1.0, 0.01),
            Err(GridError::SubCellBitsOverflow { required: 140 })
        ));
    }

    #[test]
    fn teraclick_dimensionality_fits() {
        // d=13, rho=0.01 -> 91 bits: the paper's largest configuration.
        let g = GridSpec::new(13, 1500.0, 0.01).unwrap();
        assert_eq!(g.sub_bits(), 91);
    }

    #[test]
    fn cell_of_floor_semantics() {
        let g = GridSpec::new(2, 2.0f64.sqrt(), 0.5).unwrap(); // side = 1.0
        assert!((g.side() - 1.0).abs() < 1e-12);
        assert_eq!(g.cell_of(&[0.5, 0.5]).coords(), &[0, 0]);
        assert_eq!(g.cell_of(&[-0.5, 1.5]).coords(), &[-1, 1]);
        assert_eq!(g.cell_of(&[3.0, -3.0]).coords(), &[3, -3]);
    }

    #[test]
    fn cell_aabb_contains_its_points() {
        let g = GridSpec::new(3, 1.0, 0.1).unwrap();
        let p = [0.123, -4.56, 7.89];
        let c = g.cell_of(&p);
        assert!(g.cell_aabb(&c).contains(&p));
    }

    #[test]
    fn sub_index_round_trips_through_center() {
        let g = GridSpec::new(2, 2.0f64.sqrt(), 0.25).unwrap(); // h=3, splits=4
        assert_eq!(g.splits_per_dim(), 4);
        let p = [0.30, 0.80];
        let c = g.cell_of(&p);
        let sub = g.sub_index_of(&c, &p);
        let center = g.sub_center(&c, sub);
        // The point must lie within half a sub-cell diagonal of the centre.
        let max_err = g.sub_side() * (2f64).sqrt() / 2.0;
        assert!(dist(&p, &center) <= max_err + 1e-12);
        // And the centre must itself fall back into the same sub-cell.
        assert_eq!(g.sub_index_of(&c, &center), sub);
    }

    #[test]
    fn sub_index_clamps_boundary_points() {
        let g = GridSpec::new(1, 1.0, 0.5).unwrap(); // splits = 2, side = 1
        let c = CellCoord::new([0]);
        // exactly on the upper cell face
        let sub = g.sub_index_of(&c, &[1.0]);
        assert!(sub.0 < 2);
    }

    #[test]
    fn sub_locals_decompose() {
        let g = GridSpec::new(3, 3f64.sqrt(), 0.25).unwrap(); // side=1, splits=4
        let c = CellCoord::new([0, 0, 0]);
        let p = [0.1, 0.6, 0.9]; // locals 0, 2, 3
        let sub = g.sub_index_of(&c, &p);
        assert_eq!(g.sub_locals(sub), vec![0, 2, 3]);
    }

    #[test]
    fn cell_min_dist2_matches_box_geometry() {
        let g = GridSpec::new(2, 2.0f64.sqrt(), 0.5).unwrap(); // side = 1
        let origin = CellCoord::new([0, 0]);
        // Same cell and all eight surrounding cells touch: distance 0.
        for dx in -1..=1 {
            for dy in -1..=1 {
                assert_eq!(g.cell_min_dist2(&origin, &CellCoord::new([dx, dy])), 0.0);
            }
        }
        // One empty cell of gap along x: distance = side = 1.
        assert_eq!(g.cell_min_dist2(&origin, &CellCoord::new([2, 0])), 1.0);
        // Diagonal gap of one cell in each axis.
        assert_eq!(g.cell_min_dist2(&origin, &CellCoord::new([2, -2])), 2.0);
        // Symmetry.
        let a = CellCoord::new([-3, 7]);
        let b = CellCoord::new([4, 4]);
        assert_eq!(g.cell_min_dist2(&a, &b), g.cell_min_dist2(&b, &a));
        // Agrees with the point-to-box bound evaluated at the nearest
        // corner of the other cell.
        let d2 = g.cell_min_dist2(&origin, &CellCoord::new([3, 5]));
        let (near, _) = g.cell_dist2_bounds(&CellCoord::new([3, 5]), &[1.0, 1.0]);
        assert!((d2 - near).abs() < 1e-12);
    }

    #[test]
    fn rho_one_single_subcell() {
        let g = GridSpec::new(2, 1.0, 1.0).unwrap();
        let c = CellCoord::new([0, 0]);
        let s1 = g.sub_index_of(&c, &[0.1, 0.1]);
        let s2 = g.sub_index_of(&c, &[0.6, 0.2]);
        assert_eq!(s1, s2);
        assert_eq!(g.sub_center(&c, s1), g.cell_center(&c));
    }

    #[test]
    fn negative_coordinates_subcells_stay_local() {
        let g = GridSpec::new(2, 2.0f64.sqrt(), 0.25).unwrap();
        let p = [-0.3, -1.7];
        let c = g.cell_of(&p);
        let sub = g.sub_index_of(&c, &p);
        let center = g.sub_center(&c, sub);
        assert!(g.cell_aabb(&c).contains(&center));
        let max_err = g.sub_side() * (2f64).sqrt() / 2.0;
        assert!(dist(&p, &center) <= max_err + 1e-12);
    }
}
