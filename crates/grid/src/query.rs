//! The `(ε,ρ)`-region query (Definition 5.1).
//!
//! Given a query point `p`, the query finds every *sub-cell* whose centre
//! `q̂` satisfies `dist(p, q̂) ≤ ε`, returning densities rather than points.
//! Processing follows §5 exactly:
//!
//! 1. sub-dictionaries whose MBR fails the Lemma 5.10 test are skipped;
//! 2. within a fragment, candidate cells are found by a kd-tree radius
//!    search over cell centres (radius `ε + diag/2`);
//! 3. a candidate cell *fully contained* in the query ball contributes all
//!    of its sub-cells without individual checks; a *partially contained*
//!    cell contributes only sub-cells whose centre passes the distance
//!    test.

use crate::dictionary::SubCellEntry;
use crate::subdict::DictionaryIndex;
use rpdbscan_geom::dist2;

/// Instrumentation counters for one region query — used by the anatomy
/// benches (§7.6) to demonstrate the effect of defragmentation and MBR
/// skipping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryStats {
    /// Density backend these counters are attributed to. The grid's own
    /// query path is the exact `(ε,ρ)`-region query, so the default is
    /// `exact`; the sampled-core backend re-tags the stats it
    /// aggregates so per-backend routing counters stay separable in
    /// mixed reports.
    pub backend: &'static str,
    /// Sub-dictionaries skipped by the Lemma 5.10 MBR rule.
    pub subdicts_skipped: u32,
    /// Sub-dictionaries whose kd-tree was searched.
    pub subdicts_visited: u32,
    /// Candidate cells returned by kd-tree searches.
    pub cells_candidate: u32,
    /// Candidate cells fully contained in the query ball.
    pub cells_full: u32,
    /// Candidate cells contributing at least one sub-cell after per-centre
    /// checks.
    pub cells_partial: u32,
    /// Sub-cells reported to the visitor.
    pub subcells_reported: u32,
    /// Query plans built (cell-level planner; one per planned cell).
    pub plans_built: u32,
    /// Queries answered through a memoized [`crate::plan::CellQueryPlan`].
    pub plan_hits: u32,
    /// Cells answered from a plan's precomputed *always-full* set without
    /// any per-point distance test (subset of `cells_full`).
    pub cells_planned_full: u32,
    /// Occupied cells the cost model routed through the memoized planner
    /// ([`crate::plan::PlannerCostModel`]).
    pub cells_routed_planned: u32,
    /// Occupied cells the cost model routed through the per-point kd
    /// path (occupancy below the plan-build break-even).
    pub cells_routed_kd: u32,
}

impl Default for QueryStats {
    fn default() -> Self {
        QueryStats {
            backend: "exact",
            subdicts_skipped: 0,
            subdicts_visited: 0,
            cells_candidate: 0,
            cells_full: 0,
            cells_partial: 0,
            subcells_reported: 0,
            plans_built: 0,
            plan_hits: 0,
            cells_planned_full: 0,
            cells_routed_planned: 0,
            cells_routed_kd: 0,
        }
    }
}

impl QueryStats {
    /// Accumulates another query's counters. The backend tag is sticky:
    /// the accumulating side keeps its own attribution.
    pub fn merge(&mut self, other: &QueryStats) {
        self.subdicts_skipped += other.subdicts_skipped;
        self.subdicts_visited += other.subdicts_visited;
        self.cells_candidate += other.cells_candidate;
        self.cells_full += other.cells_full;
        self.cells_partial += other.cells_partial;
        self.subcells_reported += other.subcells_reported;
        self.plans_built += other.plans_built;
        self.plan_hits += other.plan_hits;
        self.cells_planned_full += other.cells_planned_full;
        self.cells_routed_planned += other.cells_routed_planned;
        self.cells_routed_kd += other.cells_routed_kd;
    }
}

/// Aggregated result of a region query at the cell level: the neighbour
/// cells (dictionary indices) and the total neighbour density.
#[derive(Debug, Clone, Default)]
pub struct RegionQueryResult {
    /// Cells contributing at least one `(ε,ρ)`-neighbour sub-cell, i.e.
    /// the cells fully or partially directly reachable from the query
    /// point's cell (Algorithm 3, Line 13).
    pub neighbor_cells: Vec<u32>,
    /// Σ densities of qualifying sub-cells — the `num` of Algorithm 3,
    /// Line 8, compared against `minPts`.
    pub density: u64,
    /// Query counters.
    pub stats: QueryStats,
}

impl DictionaryIndex {
    /// Runs an `(ε,ρ)`-region query, invoking `visit(cell_idx, sub)` for
    /// every qualifying sub-cell. Returns instrumentation counters.
    pub fn region_query<F>(&self, p: &[f64], visit: F) -> QueryStats
    where
        F: FnMut(u32, &SubCellEntry),
    {
        let mut center = vec![0.0; self.spec().dim()];
        self.region_query_scratch(p, &mut center, visit)
    }

    /// Scratch-threaded form of [`Self::region_query`]: the caller owns
    /// the `dim`-sized centre buffer, so per-point callers (Phase II runs
    /// one query per point) stay allocation-free across queries.
    // lint:hot
    pub fn region_query_scratch<F>(&self, p: &[f64], center: &mut [f64], mut visit: F) -> QueryStats
    where
        F: FnMut(u32, &SubCellEntry),
    {
        let spec = self.spec();
        debug_assert_eq!(p.len(), spec.dim());
        debug_assert_eq!(center.len(), spec.dim());
        let eps = spec.eps();
        let eps2 = eps * eps;
        // A cell can hold a qualifying sub-cell centre only if its own
        // centre lies within ε + diag/2 of p (centres sit inside cells).
        let cell_radius = eps + spec.cell_diag() * 0.5;
        let mut stats = QueryStats::default();

        for sd in self.subdicts() {
            if sd.mbr().lemma_5_10_skippable(p, eps) {
                stats.subdicts_skipped += 1;
                continue;
            }
            stats.subdicts_visited += 1;
            sd.tree().for_each_within(p, cell_radius, |cell_idx, _| {
                stats.cells_candidate += 1;
                let entry = self.dict().entry(cell_idx);
                let (min_d2, max_d2) = spec.cell_dist2_bounds(&entry.coord, p);
                if min_d2 > eps2 {
                    return; // cannot contain any qualifying centre
                }
                if max_d2 <= eps2 {
                    // Fully contained: every sub-cell qualifies.
                    stats.cells_full += 1;
                    for sub in &entry.subs {
                        stats.subcells_reported += 1;
                        visit(cell_idx, sub);
                    }
                } else {
                    // Partially contained: test each sub-cell centre.
                    let mut any = false;
                    for sub in &entry.subs {
                        spec.sub_center_into(&entry.coord, sub.idx, center);
                        if dist2(p, center) <= eps2 {
                            stats.subcells_reported += 1;
                            any = true;
                            visit(cell_idx, sub);
                        }
                    }
                    if any {
                        stats.cells_partial += 1;
                    }
                }
            });
        }
        stats
    }

    /// Region query aggregated to the cell level: neighbour cells (each
    /// listed once) plus the total qualifying density.
    pub fn region_query_cells(&self, p: &[f64]) -> RegionQueryResult {
        let mut result = RegionQueryResult::default();
        self.region_query_cells_into(p, &mut result);
        result
    }

    /// Buffer-reusing form of [`Self::region_query_cells`]: clears and
    /// refills `result` so per-point callers (core marking runs one query
    /// per point) avoid an allocation per query.
    pub fn region_query_cells_into(&self, p: &[f64], result: &mut RegionQueryResult) {
        let mut center = vec![0.0; self.spec().dim()];
        self.region_query_cells_scratch(p, result, &mut center);
    }

    /// Scratch-threaded form of [`Self::region_query_cells_into`]; see
    /// [`Self::region_query_scratch`] for the buffer contract.
    pub fn region_query_cells_scratch(
        &self,
        p: &[f64],
        result: &mut RegionQueryResult,
        center: &mut [f64],
    ) {
        result.neighbor_cells.clear();
        result.density = 0;
        let mut last: Option<u32> = None;
        // Split borrows: the closure mutates fields, not the whole struct.
        let cells = &mut result.neighbor_cells;
        let density = &mut result.density;
        let stats = self.region_query_scratch(p, center, |cell_idx, sub| {
            *density += sub.count as u64;
            // Sub-cells of one cell arrive contiguously, so dedup is a
            // constant-time check against the previous id.
            if last != Some(cell_idx) {
                cells.push(cell_idx);
                last = Some(cell_idx);
            }
        });
        result.stats = stats;
    }

    /// Just the neighbour density of `p` (core test helper).
    pub fn neighbor_density(&self, p: &[f64]) -> u64 {
        let mut density = 0u64;
        self.region_query(p, |_, sub| density += sub.count as u64);
        density
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dictionary::CellDictionary;
    use crate::spec::GridSpec;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use rpdbscan_geom::dist;

    /// Brute-force reference: qualifying density = Σ counts of sub-cells
    /// whose centre is within eps of p, computed straight off the
    /// dictionary without any index.
    fn brute_density(dict: &CellDictionary, p: &[f64]) -> u64 {
        let spec = dict.spec();
        let mut density = 0;
        for cell in dict.cells() {
            for sub in &cell.subs {
                let c = spec.sub_center(&cell.coord, sub.idx);
                if dist(p, &c) <= spec.eps() {
                    density += sub.count as u64;
                }
            }
        }
        density
    }

    fn random_dict(seed: u64, n: usize, dim: usize, eps: f64, rho: f64) -> CellDictionary {
        let mut rng = StdRng::seed_from_u64(seed);
        let pts: Vec<Vec<f64>> = (0..n)
            .map(|_| (0..dim).map(|_| rng.gen_range(0.0..10.0)).collect())
            .collect();
        let refs: Vec<&[f64]> = pts.iter().map(|p| p.as_slice()).collect();
        CellDictionary::build_from_points(GridSpec::new(dim, eps, rho).unwrap(), refs)
    }

    #[test]
    fn query_matches_brute_force_2d() {
        let dict = random_dict(1, 800, 2, 0.9, 0.25);
        let idx = DictionaryIndex::new(dict, 64);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..60 {
            let p = [rng.gen_range(-1.0..11.0), rng.gen_range(-1.0..11.0)];
            assert_eq!(idx.neighbor_density(&p), brute_density(idx.dict(), &p));
        }
    }

    #[test]
    fn query_matches_brute_force_3d_various_rho() {
        for rho in [1.0, 0.5, 0.1, 0.05] {
            let dict = random_dict(3, 500, 3, 1.4, rho);
            let idx = DictionaryIndex::new(dict, 128);
            let mut rng = StdRng::seed_from_u64(4);
            for _ in 0..30 {
                let p: Vec<f64> = (0..3).map(|_| rng.gen_range(0.0..10.0)).collect();
                assert_eq!(
                    idx.neighbor_density(&p),
                    brute_density(idx.dict(), &p),
                    "rho={rho}"
                );
            }
        }
    }

    #[test]
    fn defragmentation_does_not_change_results() {
        // §5.2: skipping + defragmentation must not affect query output.
        let dict = random_dict(5, 600, 2, 0.8, 0.25);
        let single = DictionaryIndex::single(dict.clone());
        let frag = DictionaryIndex::new(dict, 16);
        assert!(frag.num_subdicts() > 4);
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..50 {
            let p = [rng.gen_range(0.0..10.0), rng.gen_range(0.0..10.0)];
            let a = single.region_query_cells(&p);
            let b = frag.region_query_cells(&p);
            assert_eq!(a.density, b.density);
            let mut ca = a.neighbor_cells.clone();
            let mut cb = b.neighbor_cells.clone();
            ca.sort_unstable();
            ca.dedup();
            cb.sort_unstable();
            cb.dedup();
            assert_eq!(ca, cb);
        }
    }

    #[test]
    fn skipping_actually_skips_far_fragments() {
        // Two distant blobs -> fragments around each; querying near one
        // must skip the other's fragment.
        let spec = GridSpec::new(2, 1.0, 0.5).unwrap();
        let mut pts = Vec::new();
        for i in 0..50 {
            pts.push(vec![i as f64 * 0.1, 0.0]);
            pts.push(vec![100.0 + i as f64 * 0.1, 0.0]);
        }
        let refs: Vec<&[f64]> = pts.iter().map(|p| p.as_slice()).collect();
        let dict = CellDictionary::build_from_points(spec, refs);
        let idx = DictionaryIndex::new(dict, 20);
        let stats = idx.region_query(&[0.0, 0.0], |_, _| {});
        assert!(stats.subdicts_skipped > 0, "{stats:?}");
        assert!(stats.subdicts_visited > 0);
    }

    #[test]
    fn lemma_5_2_sandwich_bound() {
        // Every point counted by the (eps,rho)-query lies within
        // (1+rho/2)eps of p, and every point within (1-rho/2)eps is
        // counted. We verify on the generating points themselves.
        let mut rng = StdRng::seed_from_u64(9);
        let pts: Vec<Vec<f64>> = (0..400)
            .map(|_| vec![rng.gen_range(0.0..5.0), rng.gen_range(0.0..5.0)])
            .collect();
        let refs: Vec<&[f64]> = pts.iter().map(|p| p.as_slice()).collect();
        let eps = 0.7;
        let rho = 0.05;
        let spec = GridSpec::new(2, eps, rho).unwrap();
        let dict = CellDictionary::build_from_points(spec, refs);
        let idx = DictionaryIndex::new(dict, 256);
        for _ in 0..20 {
            let q = vec![rng.gen_range(0.0..5.0), rng.gen_range(0.0..5.0)];
            let approx = idx.neighbor_density(&q);
            let lower = pts
                .iter()
                .filter(|p| dist(&q, p) <= (1.0 - rho / 2.0) * eps)
                .count() as u64;
            let upper = pts
                .iter()
                .filter(|p| dist(&q, p) <= (1.0 + rho / 2.0) * eps)
                .count() as u64;
            assert!(
                lower <= approx && approx <= upper,
                "sandwich violated: {lower} <= {approx} <= {upper}"
            );
        }
    }

    #[test]
    fn neighbor_cells_are_deduplicated() {
        let dict = random_dict(11, 300, 2, 1.2, 0.25);
        let idx = DictionaryIndex::new(dict, 64);
        let r = idx.region_query_cells(&[5.0, 5.0]);
        let mut sorted = r.neighbor_cells.clone();
        sorted.sort_unstable();
        let before = sorted.len();
        sorted.dedup();
        assert_eq!(before, sorted.len(), "duplicate neighbour cells reported");
    }

    #[test]
    fn empty_region_reports_nothing() {
        let dict = random_dict(13, 100, 2, 0.5, 0.5);
        let idx = DictionaryIndex::new(dict, 64);
        let r = idx.region_query_cells(&[500.0, 500.0]);
        assert_eq!(r.density, 0);
        assert!(r.neighbor_cells.is_empty());
    }

    #[test]
    fn own_subcell_counts_toward_density() {
        // A lone point: its own sub-cell centre is within eps (Example 5.7
        // counts p itself).
        let spec = GridSpec::new(2, 1.0, 0.1).unwrap();
        let p = [3.3f64, 4.4];
        let dict = CellDictionary::build_from_points(spec, [p.as_slice()]);
        let idx = DictionaryIndex::single(dict);
        assert_eq!(idx.neighbor_density(&p), 1);
    }
}
