//! A local FxHash-style hasher.
//!
//! The workspace hashes small integer keys (cell lattice coordinates,
//! point ids) on hot paths; SipHash is needlessly expensive there and
//! HashDoS is not a concern for an analytics library operating on trusted
//! inputs. The algorithm below is the well-known Fx multiply-rotate mix
//! used by rustc — implemented locally (~40 lines) instead of pulling in
//! the `rustc-hash` crate, which is outside the approved dependency set.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant from the Firefox/rustc Fx hash.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A fast, non-cryptographic hasher for small integer-ish keys.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            // lint:allow(panic-safety): chunks_exact(8) yields exactly 8 bytes
            self.add_to_hash(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add_to_hash(v);
    }

    #[inline]
    fn write_i64(&mut self, v: i64) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add_to_hash(v as u64);
    }
}

/// `HashMap` with the Fx hasher.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// `HashSet` with the Fx hasher.
pub type FxHashSet<T> = std::collections::HashSet<T, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, BuildHasherDefault, Hash};

    fn hash_one<T: Hash>(v: &T) -> u64 {
        BuildHasherDefault::<FxHasher>::default().hash_one(v)
    }

    #[test]
    fn deterministic() {
        assert_eq!(hash_one(&42u64), hash_one(&42u64));
        assert_eq!(hash_one(&"cell"), hash_one(&"cell"));
    }

    #[test]
    fn distinguishes_nearby_keys() {
        assert_ne!(hash_one(&1u64), hash_one(&2u64));
        assert_ne!(hash_one(&[0i64, 1]), hash_one(&[1i64, 0]));
    }

    #[test]
    fn map_and_set_work() {
        let mut m: FxHashMap<Vec<i64>, u32> = FxHashMap::default();
        m.insert(vec![1, 2, 3], 7);
        m.insert(vec![3, 2, 1], 8);
        assert_eq!(m[&vec![1, 2, 3]], 7);
        assert_eq!(m.len(), 2);

        let mut s: FxHashSet<u32> = FxHashSet::default();
        s.insert(5);
        assert!(s.contains(&5));
    }

    #[test]
    fn partial_byte_writes_differ_from_full() {
        // Tail handling must incorporate all remainder bytes.
        assert_ne!(hash_one(&[1u8, 2, 3]), hash_one(&[1u8, 2, 4]));
        assert_ne!(hash_one(&[1u8, 2, 3]), hash_one(&[1u8, 2]));
    }
}
