//! Sub-dictionaries: BSP defragmentation and MBR skipping (§4.2.2, §5.2).
//!
//! A worker cannot always hold the whole dictionary resident, so the
//! dictionary is kept as disjoint *sub-dictionaries* (Definition 4.4).
//! *Dictionary defragmentation* reallocates cells so that contiguous cells
//! share a sub-dictionary and sub-dictionaries have similar sizes; the
//! paper adopts binary space partitioning that enumerates cut candidates
//! and picks the one minimising the size difference of the two components.
//! Each sub-dictionary carries a minimum bounding rectangle (Definition
//! 5.9) so region queries can skip irrelevant sub-dictionaries wholesale
//! (Lemma 5.10), plus a kd-tree over its cell centres for the
//! `O(log |cell|)` candidate search of Lemma 5.6.

use crate::dictionary::CellDictionary;
use crate::spec::GridSpec;
use rpdbscan_geom::{Aabb, KdTree};

/// One defragmented fragment of the dictionary.
#[derive(Debug, Clone)]
pub struct SubDictionary {
    /// Dictionary indices of the cells in this fragment.
    cell_ids: Vec<u32>,
    /// MBR over the member cells' boxes (Definition 5.9).
    mbr: Aabb,
    /// kd-tree over member cell centres; payload = dictionary cell index.
    tree: KdTree,
    /// Root+leaf entry count (the "size" balanced by defragmentation).
    weight: u64,
}

impl SubDictionary {
    fn build(spec: &GridSpec, dict: &CellDictionary, cell_ids: Vec<u32>) -> Self {
        debug_assert!(!cell_ids.is_empty());
        let dim = spec.dim();
        let mut mbr: Option<Aabb> = None;
        let mut coords = Vec::with_capacity(cell_ids.len() * dim);
        let mut weight = 0u64;
        for &id in &cell_ids {
            let entry = dict.entry(id);
            let bb = spec.cell_aabb(&entry.coord);
            match &mut mbr {
                Some(m) => m.union(&bb),
                None => mbr = Some(bb),
            }
            coords.extend_from_slice(&spec.cell_center(&entry.coord));
            weight += 1 + entry.subs.len() as u64;
        }
        let tree = KdTree::build(dim, coords, cell_ids.clone());
        Self {
            cell_ids,
            mbr: mbr.expect("non-empty fragment"), // lint:allow(panic-safety): fragments are built from at least one cell, so the union is Some
            tree,
            weight,
        }
    }

    /// Dictionary indices of member cells.
    pub fn cell_ids(&self) -> &[u32] {
        &self.cell_ids
    }

    /// The fragment's minimum bounding rectangle.
    pub fn mbr(&self) -> &Aabb {
        &self.mbr
    }

    /// The fragment's kd-tree over cell centres.
    pub(crate) fn tree(&self) -> &KdTree {
        &self.tree
    }

    /// Root+leaf entry count.
    pub fn weight(&self) -> u64 {
        self.weight
    }
}

/// The queryable form of a broadcast dictionary: defragmented
/// sub-dictionaries with MBRs and per-fragment kd-trees.
#[derive(Debug, Clone)]
pub struct DictionaryIndex {
    dict: CellDictionary,
    subdicts: Vec<SubDictionary>,
}

impl DictionaryIndex {
    /// Defragments `dict` into sub-dictionaries of at most
    /// `max_entries_per_subdict` root+leaf entries each (the "available
    /// main memory" budget of §4.2.2) and indexes each fragment.
    ///
    /// A zero capacity is meaningless — every fragment must hold at least
    /// one cell's root+leaf entries — so it is clamped to 1, which
    /// degenerates to one fragment per cell (queries still return the
    /// exact same results, just without batching).
    pub fn new(dict: CellDictionary, max_entries_per_subdict: u64) -> Self {
        // Clamp before anything else so `new(d, 0)` and `new(d, 1)` are
        // the same index by construction (regression: the clamp used to
        // sit inside the non-empty branch only).
        let cap = max_entries_per_subdict.max(1);
        let spec = dict.spec().clone();
        let n = dict.num_cells();
        let mut subdicts = Vec::new();
        if n > 0 {
            let mut items: Vec<u32> = (0..n as u32).collect();
            let mut out: Vec<Vec<u32>> = Vec::new();
            bsp_split(&spec, &dict, &mut items, cap, &mut out);
            subdicts = out
                .into_iter()
                .map(|ids| SubDictionary::build(&spec, &dict, ids))
                .collect();
        }
        Self { dict, subdicts }
    }

    /// Ablation helper: a single un-defragmented sub-dictionary covering
    /// everything (what §5.2 compares against). Same construction path as
    /// [`Self::new`], just with an unbounded memory budget.
    pub fn single(dict: CellDictionary) -> Self {
        Self::new(dict, u64::MAX)
    }

    /// The underlying dictionary.
    #[inline]
    pub fn dict(&self) -> &CellDictionary {
        &self.dict
    }

    /// The grid spec.
    #[inline]
    pub fn spec(&self) -> &GridSpec {
        self.dict.spec()
    }

    /// The sub-dictionaries.
    #[inline]
    pub fn subdicts(&self) -> &[SubDictionary] {
        &self.subdicts
    }

    /// Number of fragments.
    pub fn num_subdicts(&self) -> usize {
        self.subdicts.len()
    }
}

/// Recursive BSP: splits `items` (dictionary cell indices) until each
/// fragment's entry weight fits the cap, cutting along the candidate that
/// best balances the two sides, as in §4.2.2.
fn bsp_split(
    spec: &GridSpec,
    dict: &CellDictionary,
    items: &mut Vec<u32>,
    cap: u64,
    out: &mut Vec<Vec<u32>>,
) {
    let weight = |id: u32| -> u64 { 1 + dict.entry(id).subs.len() as u64 };
    let total: u64 = items.iter().map(|&i| weight(i)).sum();
    if total <= cap || items.len() <= 1 {
        out.push(std::mem::take(items));
        return;
    }
    let dim = spec.dim();
    // Pick, over all dimensions, the cut between adjacent distinct lattice
    // coordinates minimising the weight difference of the two components.
    let mut best: Option<(usize, i64, u64)> = None; // (dim, cut_after, diff)
    let mut sorted = items.clone();
    for d in 0..dim {
        sorted.sort_unstable_by_key(|&i| dict.entry(i).coord.coords()[d]);
        let mut prefix = 0u64;
        for w in sorted.windows(2) {
            prefix += weight(w[0]);
            let (a, b) = (
                dict.entry(w[0]).coord.coords()[d],
                dict.entry(w[1]).coord.coords()[d],
            );
            if a == b {
                continue; // cut must fall between distinct coordinates
            }
            let diff = prefix.abs_diff(total - prefix);
            if best.is_none_or(|(_, _, bd)| diff < bd) {
                best = Some((d, a, diff));
            }
        }
        // windows(2) misses the last element's weight; irrelevant since a
        // cut after the final element keeps everything on one side.
    }
    match best {
        Some((d, cut_after, _)) => {
            let (mut left, mut right): (Vec<u32>, Vec<u32>) = items
                .drain(..)
                .partition(|&i| dict.entry(i).coord.coords()[d] <= cut_after);
            debug_assert!(!left.is_empty() && !right.is_empty());
            bsp_split(spec, dict, &mut left, cap, out);
            bsp_split(spec, dict, &mut right, cap, out);
        }
        None => {
            // Every cell shares one lattice coordinate in all dimensions —
            // a single cell duplicated is impossible, so this means one
            // coordinate only: emit as-is.
            out.push(std::mem::take(items));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::CellCoord;

    fn dict_grid(nx: i64, ny: i64) -> CellDictionary {
        // One point per cell on an nx × ny lattice.
        let spec = GridSpec::new(2, 2.0f64.sqrt(), 0.5).unwrap(); // side 1
        let mut pts = Vec::new();
        for x in 0..nx {
            for y in 0..ny {
                pts.push(vec![x as f64 + 0.5, y as f64 + 0.5]);
            }
        }
        let refs: Vec<&[f64]> = pts.iter().map(|p| p.as_slice()).collect();
        CellDictionary::build_from_points(spec, refs)
    }

    #[test]
    fn fragments_are_disjoint_and_cover() {
        let dict = dict_grid(8, 8);
        let n = dict.num_cells();
        let idx = DictionaryIndex::new(dict, 20);
        assert!(idx.num_subdicts() > 1);
        let mut seen = vec![false; n];
        for sd in idx.subdicts() {
            for &c in sd.cell_ids() {
                assert!(!seen[c as usize], "cell {c} in two fragments");
                seen[c as usize] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "some cell missing from fragments");
    }

    #[test]
    fn fragment_weights_respect_cap() {
        let dict = dict_grid(10, 10); // weight 2 per cell (1 cell + 1 sub)
        let idx = DictionaryIndex::new(dict, 30);
        for sd in idx.subdicts() {
            assert!(sd.weight() <= 30, "fragment weight {}", sd.weight());
        }
    }

    #[test]
    fn balanced_cuts_roughly_halve() {
        let dict = dict_grid(16, 1);
        let idx = DictionaryIndex::new(dict, 17); // force one split of 32
        assert_eq!(idx.num_subdicts(), 2);
        let w: Vec<u64> = idx.subdicts().iter().map(|s| s.weight()).collect();
        assert_eq!(w[0] + w[1], 32);
        assert!(w[0].abs_diff(w[1]) <= 2, "unbalanced: {w:?}");
    }

    #[test]
    fn mbr_covers_member_cells() {
        let dict = dict_grid(6, 6);
        let spec = dict.spec().clone();
        let idx = DictionaryIndex::new(dict, 24);
        for sd in idx.subdicts() {
            for &c in sd.cell_ids() {
                let bb = spec.cell_aabb(&idx.dict().entry(c).coord);
                assert!(sd.mbr().contains(bb.min()));
                assert!(sd.mbr().contains(bb.max()));
            }
        }
    }

    #[test]
    fn single_puts_everything_in_one_fragment() {
        let dict = dict_grid(5, 5);
        let idx = DictionaryIndex::single(dict);
        assert_eq!(idx.num_subdicts(), 1);
        assert_eq!(idx.subdicts()[0].cell_ids().len(), 25);
    }

    #[test]
    fn zero_capacity_is_clamped_not_degenerate() {
        // Regression: a zero budget used to reach bsp_split unclamped in
        // some constructions; it must behave exactly like capacity 1
        // (one fragment per cell) and answer queries identically to the
        // single-fragment ablation index.
        let dict = dict_grid(4, 4);
        let zero = DictionaryIndex::new(dict.clone(), 0);
        let one = DictionaryIndex::new(dict.clone(), 1);
        let single = DictionaryIndex::single(dict);
        assert_eq!(zero.num_subdicts(), 16, "expected one fragment per cell");
        assert_eq!(zero.num_subdicts(), one.num_subdicts());
        for x in 0..5 {
            for y in 0..5 {
                let p = [x as f64 + 0.3, y as f64 + 0.7];
                let a = zero.region_query_cells(&p);
                let b = single.region_query_cells(&p);
                assert_eq!(a.density, b.density);
                let mut ca = a.neighbor_cells.clone();
                let mut cb = b.neighbor_cells.clone();
                ca.sort_unstable();
                cb.sort_unstable();
                assert_eq!(ca, cb);
            }
        }
    }

    #[test]
    fn empty_dictionary_yields_no_fragments() {
        let spec = GridSpec::new(2, 1.0, 0.5).unwrap();
        let dict = CellDictionary::build_from_points(spec, std::iter::empty());
        let idx = DictionaryIndex::new(dict, 10);
        assert_eq!(idx.num_subdicts(), 0);
    }

    #[test]
    fn identical_column_cannot_split_along_that_dim() {
        // All cells share x = 0; splitting must happen along y.
        let spec = GridSpec::new(2, 2.0f64.sqrt(), 0.5).unwrap();
        let mut pts = Vec::new();
        for y in 0..10 {
            pts.push(vec![0.5, y as f64 + 0.5]);
        }
        let refs: Vec<&[f64]> = pts.iter().map(|p| p.as_slice()).collect();
        let dict = CellDictionary::build_from_points(spec, refs);
        let idx = DictionaryIndex::new(dict, 8);
        assert!(idx.num_subdicts() >= 2);
        for sd in idx.subdicts() {
            assert!(sd.weight() <= 8);
        }
        let _ = CellCoord::new([0, 0]); // silence unused import in cfg(test)
    }
}
