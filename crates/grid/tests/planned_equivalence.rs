//! Equivalence suite for the cell-level query planner: a planned query
//! must be indistinguishable from the unplanned `(ε,ρ)`-region query — the
//! correctness oracle — for every point of the planned cell's box, across
//! approximation rates, dimensionalities, and fragmentations.
//!
//! "Indistinguishable" is checked strictly: equal density, equal neighbour
//! cell set, and equal per-point `cells_full` / `cells_partial` /
//! `subcells_reported` counters. Only the amortised candidate-search
//! counters may differ (they live in the plan's one-off build stats).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rpdbscan_grid::{CellDictionary, CellQueryPlan, DictionaryIndex, GridSpec, RegionQueryResult};

fn random_index(seed: u64, n: usize, dim: usize, eps: f64, rho: f64, cap: u64) -> DictionaryIndex {
    let mut rng = StdRng::seed_from_u64(seed);
    let pts: Vec<Vec<f64>> = (0..n)
        .map(|_| (0..dim).map(|_| rng.gen_range(0.0..8.0)).collect())
        .collect();
    let refs: Vec<&[f64]> = pts.iter().map(|p| p.as_slice()).collect();
    let dict = CellDictionary::build_from_points(GridSpec::new(dim, eps, rho).unwrap(), refs);
    DictionaryIndex::new(dict, cap)
}

/// For every occupied cell: build its plan and fire `per_cell` random
/// queries from inside the cell box, plus the box's lo/hi corners (the
/// adversarial float case — corner-to-corner distance is exactly ε).
/// Each query must match the oracle exactly.
fn assert_plan_matches_oracle(idx: &DictionaryIndex, seed: u64, per_cell: usize) {
    let spec = idx.spec().clone();
    let dim = spec.dim();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut planned = RegionQueryResult::default();
    for ci in 0..idx.dict().num_cells() as u32 {
        let plan = CellQueryPlan::build(idx, ci);
        let bb = spec.cell_aabb(&idx.dict().entry(ci).coord);
        let mut queries: Vec<Vec<f64>> = vec![bb.min().to_vec(), bb.max().to_vec()];
        for _ in 0..per_cell {
            queries.push(
                (0..dim)
                    .map(|a| rng.gen_range(bb.min()[a]..bb.max()[a]))
                    .collect(),
            );
        }
        for p in &queries {
            plan.query_into(p, &mut planned);
            let oracle = idx.region_query_cells(p);
            assert_eq!(planned.density, oracle.density, "cell {ci}, p = {p:?}");
            // The plan reports each cell once, ascending; the oracle's
            // order depends on fragmentation, with adjacent dedup only.
            let mut want = oracle.neighbor_cells.clone();
            want.sort_unstable();
            want.dedup();
            assert_eq!(planned.neighbor_cells, want, "cell {ci}, p = {p:?}");
            assert_eq!(planned.stats.cells_full, oracle.stats.cells_full);
            assert_eq!(planned.stats.cells_partial, oracle.stats.cells_partial);
            assert_eq!(
                planned.stats.subcells_reported,
                oracle.stats.subcells_reported
            );
            // Per-query invariants of the planned path.
            assert_eq!(planned.stats.plan_hits, 1);
            assert_eq!(planned.stats.plans_built, 0);
            assert_eq!(planned.stats.cells_candidate, plan.num_cells() as u32);
            assert!(planned.stats.cells_planned_full <= planned.stats.cells_partial);
            // And of the oracle path.
            assert_eq!(oracle.stats.plan_hits, 0);
            assert_eq!(oracle.stats.cells_planned_full, 0);
        }
    }
}

#[test]
fn planned_equals_oracle_across_rho() {
    for rho in [1.0, 0.5, 0.1, 0.05] {
        let idx = random_index(41, 400, 2, 1.1, rho, 64);
        assert_plan_matches_oracle(&idx, 42, 4);
    }
}

#[test]
fn planned_equals_oracle_across_dims() {
    for dim in 1..=4 {
        let idx = random_index(50 + dim as u64, 300, dim, 1.6, 0.25, 128);
        assert_plan_matches_oracle(&idx, 60 + dim as u64, 3);
    }
}

#[test]
fn planned_equals_oracle_across_fragment_capacities() {
    // The plan sorts kd candidates, so its layout — and every result — is
    // independent of how the dictionary happens to be fragmented.
    let base = random_index(71, 500, 2, 0.9, 0.25, u64::MAX);
    for cap in [1, 4, 32, u64::MAX] {
        let idx = DictionaryIndex::new(base.dict().clone(), cap);
        assert_plan_matches_oracle(&idx, 72, 3);
        // Same plan answers regardless of cap: spot-check density against
        // the unfragmented build.
        let mut a = RegionQueryResult::default();
        let mut b = RegionQueryResult::default();
        for ci in 0..idx.dict().num_cells() as u32 {
            let p = idx
                .spec()
                .cell_aabb(&idx.dict().entry(ci).coord)
                .min()
                .to_vec();
            CellQueryPlan::build(&idx, ci).query_into(&p, &mut a);
            CellQueryPlan::build(&base, ci).query_into(&p, &mut b);
            assert_eq!(a.density, b.density, "cap {cap}, cell {ci}");
            assert_eq!(a.neighbor_cells, b.neighbor_cells, "cap {cap}, cell {ci}");
        }
    }
}

#[test]
fn plan_accounting_is_consistent() {
    let idx = random_index(81, 400, 3, 1.3, 0.25, 64);
    let total_subcells: u64 = idx.dict().cells().iter().map(|c| c.subs.len() as u64).sum();
    for ci in 0..idx.dict().num_cells() as u32 {
        let plan = CellQueryPlan::build(&idx, ci);
        // The plan's own cell always survives pruning (distance 0).
        let own = idx.dict().index_of(&idx.dict().entry(ci).coord).unwrap();
        assert_eq!(own, ci);
        assert!(plan.num_cells() >= 1, "cell {ci}: own cell pruned");
        // Classified sub-cells are a partition of the planned cells' subs.
        assert!(plan.num_always_subcells() + plan.num_tested_subcells() as u64 <= total_subcells);
        // Build stats carry exactly one plan and at least the own-cell
        // candidate.
        assert_eq!(plan.build_stats().plans_built, 1);
        assert!(plan.build_stats().cells_candidate as usize >= plan.num_cells());
    }
}
