//! Regression guard for the planner cost model: the sparse
//! `query_throughput` workload (the shape that historically measured a
//! 0.69× planner *slowdown*) must route to the per-point kd path, and it
//! must do so *structurally* — any cell below the calibrated break-even
//! occupancy can never be planned, so the regression cannot recur no
//! matter how the workload is shuffled.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rpdbscan_grid::{CellDictionary, DictionaryIndex, GridSpec, PlannerCostModel, QueryRoute};

/// Same generator as the `query_throughput` bench: uniform points over
/// `[0, extent)²`; occupancy is set by the extent/ε ratio.
fn uniform_index(n: usize, extent: f64, eps: f64, seed: u64) -> DictionaryIndex {
    let mut rng = StdRng::seed_from_u64(seed);
    let pts: Vec<Vec<f64>> = (0..n)
        .map(|_| vec![rng.gen_range(0.0..extent), rng.gen_range(0.0..extent)])
        .collect();
    let spec = GridSpec::new(2, eps, 0.03125).expect("valid grid");
    let refs: Vec<&[f64]> = pts.iter().map(|p| p.as_slice()).collect();
    DictionaryIndex::new(CellDictionary::build_from_points(spec, refs), 1 << 16)
}

/// Points resident in a cell = Σ sub-cell counts (each point lands in
/// exactly one sub-cell).
fn occupancy(index: &DictionaryIndex, ci: u32) -> usize {
    index
        .dict()
        .entry(ci)
        .subs
        .iter()
        .map(|s| s.count as usize)
        .sum()
}

#[test]
fn sparse_bench_workload_routes_to_kd() {
    // The BENCH_query sparse shape scaled down with occupancy preserved:
    // eps = 0.8 over [0, 25)² at n = 6000 gives ~3 points/cell, matching
    // the 3.15 pts/cell of the full 60k-point run.
    let index = uniform_index(6_000, 25.0, 0.8, 42);
    let model = PlannerCostModel::calibrate(&index);
    let n_cells = index.dict().num_cells();
    assert!(n_cells > 500, "workload degenerated: {n_cells} cells");

    let mut kd = 0usize;
    for ci in 0..n_cells as u32 {
        let occ = occupancy(&index, ci);
        let route = model.route(occ);
        // Structural guarantee: below break-even the planner is
        // unreachable, full stop.
        if occ < model.min_occupancy as usize {
            assert_eq!(route, QueryRoute::Kd, "cell {ci} (occ {occ}) planned");
        }
        if route == QueryRoute::Kd {
            kd += 1;
        }
    }
    // At ~3 points/cell virtually every cell sits below the break-even
    // floor; the sparse shape as a whole runs on the kd path.
    assert!(
        kd as f64 >= 0.95 * n_cells as f64,
        "sparse workload should be kd-dominated: {kd}/{n_cells} routed kd"
    );
}

#[test]
fn dense_bench_workload_routes_to_planner() {
    // The BENCH_query dense shape (eps = 1.6 over [0, 8)²) at n = 6000:
    // ~120 points/cell in the interior, far past break-even. Boundary
    // slivers (the extent is not a multiple of the cell side) may stay
    // sparse and route kd — correctly — so the guarantee is
    // point-weighted: nearly all *queries* run planned.
    let index = uniform_index(6_000, 8.0, 1.6, 42);
    let model = PlannerCostModel::calibrate(&index);
    let mut planned_points = 0usize;
    let mut total_points = 0usize;
    for ci in 0..index.dict().num_cells() as u32 {
        let occ = occupancy(&index, ci);
        total_points += occ;
        if model.route(occ) == QueryRoute::Planned {
            planned_points += occ;
        }
    }
    assert_eq!(total_points, 6_000);
    assert!(
        planned_points as f64 >= 0.9 * total_points as f64,
        "dense workload should be planner-dominated: {planned_points}/{total_points} points planned"
    );
}

#[test]
fn break_even_floor_is_workload_independent() {
    // The floor is part of the public contract the regression rests on:
    // a 0.69×-style sparse regression would require planning cells with
    // fewer than MIN_OCCUPANCY_FLOOR points, which route() forbids.
    for dim in 1..=8 {
        let m = PlannerCostModel::from_dim(dim);
        assert!(m.min_occupancy >= PlannerCostModel::MIN_OCCUPANCY_FLOOR);
        assert_eq!(m.route(3), QueryRoute::Kd, "dim={dim}");
    }
}
