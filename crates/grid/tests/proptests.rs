//! Property-based tests for the grid and dictionary.

use proptest::prelude::*;
use rpdbscan_geom::dist;
use rpdbscan_grid::{CellDictionary, DictionaryIndex, GridSpec};

fn points_strategy(dim: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
    prop::collection::vec(prop::collection::vec(-20.0f64..20.0, dim), 1..80)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every point maps to a cell whose box contains it, and to a sub-cell
    /// whose centre is within half a sub-cell diagonal.
    #[test]
    fn cell_and_subcell_containment(
        pts in points_strategy(3),
        eps in 0.2f64..5.0,
        rho_exp in 0u32..5,
    ) {
        let rho = 1.0 / (1 << rho_exp) as f64;
        let spec = GridSpec::new(3, eps, rho).unwrap();
        for p in &pts {
            let c = spec.cell_of(p);
            prop_assert!(spec.cell_aabb(&c).contains(p));
            let sub = spec.sub_index_of(&c, p);
            let center = spec.sub_center(&c, sub);
            let max_err = spec.sub_side() * (3f64).sqrt() / 2.0;
            prop_assert!(dist(p, &center) <= max_err + 1e-9);
        }
    }

    /// Dictionary totals equal the number of points, and cell counts equal
    /// the sum of their sub-cell counts.
    #[test]
    fn dictionary_conserves_mass(pts in points_strategy(2), eps in 0.2f64..5.0) {
        let spec = GridSpec::new(2, eps, 0.25).unwrap();
        let refs: Vec<&[f64]> = pts.iter().map(|p| p.as_slice()).collect();
        let dict = CellDictionary::build_from_points(spec, refs);
        prop_assert_eq!(dict.total_points(), pts.len() as u64);
        for cell in dict.cells() {
            let sub_sum: u32 = cell.subs.iter().map(|s| s.count).sum();
            prop_assert_eq!(cell.count, sub_sum);
        }
    }

    /// Wire encoding round-trips exactly.
    #[test]
    fn encode_decode_identity(pts in points_strategy(2), eps in 0.2f64..5.0) {
        let spec = GridSpec::new(2, eps, 0.125).unwrap();
        let refs: Vec<&[f64]> = pts.iter().map(|p| p.as_slice()).collect();
        let dict = CellDictionary::build_from_points(spec, refs);
        let back = CellDictionary::decode(dict.encode()).unwrap();
        prop_assert_eq!(back.num_cells(), dict.num_cells());
        for cell in dict.cells() {
            prop_assert_eq!(back.get(&cell.coord), Some(cell));
        }
    }

    /// The Lemma 5.2 sandwich: (1−ρ/2)ε-neighbours ≤ approximate density ≤
    /// (1+ρ/2)ε-neighbours, evaluated against the generating points.
    #[test]
    fn region_query_sandwich(
        pts in points_strategy(2),
        q in prop::collection::vec(-20.0f64..20.0, 2),
        eps in 0.3f64..4.0,
        rho_exp in 1u32..6,
    ) {
        let rho = 1.0 / (1 << rho_exp) as f64;
        let spec = GridSpec::new(2, eps, rho).unwrap();
        let refs: Vec<&[f64]> = pts.iter().map(|p| p.as_slice()).collect();
        let dict = CellDictionary::build_from_points(spec, refs);
        let idx = DictionaryIndex::new(dict, 32);
        let approx = idx.neighbor_density(&q);
        let lower = pts.iter().filter(|p| dist(&q, p) <= (1.0 - rho / 2.0) * eps).count() as u64;
        let upper = pts.iter().filter(|p| dist(&q, p) <= (1.0 + rho / 2.0) * eps).count() as u64;
        prop_assert!(lower <= approx, "lower {lower} > approx {approx}");
        prop_assert!(approx <= upper, "approx {approx} > upper {upper}");
    }

    /// Defragmentation with any cap returns the same query results as the
    /// single-fragment dictionary (§5.2 claims no effect on results).
    #[test]
    fn defrag_invariance(
        pts in points_strategy(2),
        q in prop::collection::vec(-20.0f64..20.0, 2),
        cap in 2u64..64,
    ) {
        let spec = GridSpec::new(2, 1.0, 0.25).unwrap();
        let refs: Vec<&[f64]> = pts.iter().map(|p| p.as_slice()).collect();
        let dict = CellDictionary::build_from_points(spec, refs);
        let single = DictionaryIndex::single(dict.clone());
        let frag = DictionaryIndex::new(dict, cap);
        prop_assert_eq!(single.neighbor_density(&q), frag.neighbor_density(&q));
    }
}
