//! Edge-case integration tests for the grid crate: degenerate grid
//! configurations the unit tests don't reach.

use rpdbscan_grid::{CellDictionary, DictionaryIndex, GridSpec};

fn pts(rows: &[Vec<f64>]) -> Vec<&[f64]> {
    rows.iter().map(|r| r.as_slice()).collect()
}

#[test]
fn rho_one_zero_position_bits_encode_round_trip() {
    // rho = 1 -> h = 1 -> sub-cell == cell -> d(h-1) = 0 position bits:
    // the wire format writes zero-length packed positions.
    let spec = GridSpec::new(2, 1.0, 1.0).unwrap();
    assert_eq!(spec.sub_bits(), 0);
    let rows = vec![vec![0.1, 0.1], vec![0.2, 0.2], vec![5.0, 5.0]];
    let dict = CellDictionary::build_from_points(spec, pts(&rows));
    assert!(dict.cells().iter().all(|c| c.subs.len() == 1));
    let back = CellDictionary::decode(dict.encode()).unwrap();
    for cell in dict.cells() {
        assert_eq!(back.get(&cell.coord), Some(cell));
    }
}

#[test]
fn rho_one_queries_still_sandwich() {
    // Coarsest approximation: every point approximated by its cell
    // centre; the density must stay within the (1 ± 1/2)eps sandwich.
    let spec = GridSpec::new(2, 2.0, 1.0).unwrap();
    let rows: Vec<Vec<f64>> = (0..100)
        .map(|i| vec![(i % 10) as f64, (i / 10) as f64])
        .collect();
    let dict = CellDictionary::build_from_points(spec, pts(&rows));
    let idx = DictionaryIndex::single(dict);
    let q = [4.5, 4.5];
    let approx = idx.neighbor_density(&q);
    let count = |r: f64| {
        rows.iter()
            .filter(|p| rpdbscan_geom::dist(&q, p) <= r)
            .count() as u64
    };
    assert!(count(1.0) <= approx, "lower bound violated");
    assert!(approx <= count(3.0), "upper bound violated");
}

#[test]
fn one_dimensional_grid() {
    let spec = GridSpec::new(1, 0.5, 0.25).unwrap();
    assert_eq!(spec.side(), 0.5); // diag == side in 1-d
    let rows: Vec<Vec<f64>> = (0..50).map(|i| vec![i as f64 * 0.1]).collect();
    let dict = CellDictionary::build_from_points(spec, pts(&rows));
    let idx = DictionaryIndex::new(dict, 8);
    // Point at 2.5 sees [2.0, 3.0]: 11 points, sub-cell error ±rho*eps/2.
    let d = idx.neighbor_density(&[2.5]);
    assert!((9..=13).contains(&d), "density {d}");
}

#[test]
fn negative_and_large_coordinates() {
    let spec = GridSpec::new(2, 1.0, 0.25).unwrap();
    let rows = vec![vec![-1e7, -1e7], vec![-1e7 + 0.1, -1e7], vec![1e7, 1e7]];
    let dict = CellDictionary::build_from_points(spec, pts(&rows));
    let idx = DictionaryIndex::new(dict, 4);
    assert_eq!(idx.neighbor_density(&[-1e7, -1e7]), 2);
    assert_eq!(idx.neighbor_density(&[1e7, 1e7]), 1);
    assert_eq!(idx.neighbor_density(&[0.0, 0.0]), 0);
}

#[test]
fn duplicate_points_accumulate_density() {
    let spec = GridSpec::new(2, 1.0, 0.1).unwrap();
    let rows = vec![vec![3.0, 3.0]; 250];
    let dict = CellDictionary::build_from_points(spec, pts(&rows));
    assert_eq!(dict.num_cells(), 1);
    assert_eq!(dict.num_sub_cells(), 1);
    assert_eq!(dict.total_points(), 250);
    let idx = DictionaryIndex::single(dict);
    assert_eq!(idx.neighbor_density(&[3.0, 3.0]), 250);
}

#[test]
fn query_stats_accounting_consistent() {
    let spec = GridSpec::new(2, 1.0, 0.25).unwrap();
    let rows: Vec<Vec<f64>> = (0..200)
        .map(|i| vec![(i % 20) as f64 * 0.7, (i / 20) as f64 * 0.7])
        .collect();
    let dict = CellDictionary::build_from_points(spec, pts(&rows));
    let idx = DictionaryIndex::new(dict, 16);
    let total_frags = idx.num_subdicts() as u32;
    let stats = idx.region_query(&[5.0, 3.0], |_, _| {});
    assert_eq!(stats.subdicts_skipped + stats.subdicts_visited, total_frags);
    assert!(stats.cells_full + stats.cells_partial <= stats.cells_candidate);
}
